//! One test per quotable claim from the paper's text, beyond the
//! figure/table reproductions (those live in `tests/scenario_pipeline.rs`
//! and the bench harnesses).

use anr_marching::harmonic::{fill_holes, harmonic_map_to_disk, DiskOverlay, HarmonicConfig};
use anr_marching::march::{march, MarchConfig, MarchProblem, Method};
use anr_marching::mesh::FoiMesher;
use anr_marching::netgraph::{extract_triangulation, UnitDiskGraph};
use anr_marching::scenarios::{build_scenario, ScenarioParams};

fn problem(id: u8) -> MarchProblem {
    let s = build_scenario(id, &ScenarioParams::default()).unwrap();
    MarchProblem::with_lattice_deployment(s.m1, s.m2, s.robots, s.range).unwrap()
}

/// "It is obvious that the positions of mobile robots have been very
/// close to the optimal coverage positions after harmonic map.
/// Therefore the moving cost in the minor adjustment step ... is low."
/// (Sec. IV-A)
#[test]
fn minor_adjustment_cost_is_minor() {
    let p = problem(1);
    let out = march(&p, Method::MaxStableLinks, &MarchConfig::default()).unwrap();
    let transition_d = out.transition.total_length();
    let adjustment_d = out.metrics.total_distance - transition_d;
    assert!(
        adjustment_d < 0.05 * transition_d,
        "adjustment {adjustment_d:.0} m vs transition {transition_d:.0} m"
    );
    // Per-robot adjustment is a fraction of the communication range.
    let per_robot: f64 = out
        .mapped
        .iter()
        .zip(&out.final_positions)
        .map(|(a, b)| a.distance(*b))
        .sum::<f64>()
        / p.num_robots() as f64;
    assert!(per_robot < p.range, "mean adjustment {per_robot:.1} m");
}

/// "Lloyd algorithm only needs a few steps to converge" (Sec. III-C).
#[test]
fn lloyd_converges_in_a_few_steps() {
    let p = problem(1);
    let out = march(&p, Method::MaxStableLinks, &MarchConfig::default()).unwrap();
    assert!(
        out.lloyd_iterations <= 30,
        "{} Lloyd iterations",
        out.lloyd_iterations
    );
}

/// "The computed rotation angle has been very close to the optimal one
/// with the search depth value [4]" (Sec. III-B) — the depth-limited
/// search recovers ≥ 92% of the exhaustive-sweep link ratio.
#[test]
fn depth_limited_rotation_close_to_exhaustive() {
    let p = problem(3);
    let n = p.num_robots();
    let t = extract_triangulation(&p.positions, p.range).unwrap();
    let filled_t = fill_holes(&t).unwrap();
    let disk_t = harmonic_map_to_disk(filled_t.mesh(), &HarmonicConfig::default()).unwrap();
    let robot_disk: Vec<_> = (0..n).map(|v| disk_t.position(v)).collect();

    let spacing = MarchConfig::default().resolve_mesh_spacing(p.m2.area(), n);
    let foi2 = FoiMesher::new(spacing).mesh(&p.m2).unwrap();
    let filled2 = fill_holes(foi2.mesh()).unwrap();
    let disk2 = harmonic_map_to_disk(filled2.mesh(), &HarmonicConfig::default()).unwrap();
    let overlay = DiskOverlay::new(
        filled2.mesh(),
        disk2.positions(),
        filled2.virtual_vertices(),
    );

    let links = UnitDiskGraph::new(&p.positions, p.range).links();
    let objective = |theta: f64| -> f64 {
        let q: Vec<_> = overlay
            .map_all(&robot_disk, theta)
            .into_iter()
            .map(|m| m.position)
            .collect();
        links
            .iter()
            .filter(|&&(i, j)| q[i].distance(q[j]) <= p.range)
            .count() as f64
            / links.len() as f64
    };

    let search = anr_marching::harmonic::RotationSearch::default();
    let (_, l_search, evals) = search.maximize(objective);
    let (_, l_exhaustive) = anr_marching::harmonic::RotationSearch::exhaustive(360, objective);
    assert!(evals <= 24);
    assert!(
        l_search >= 0.92 * l_exhaustive,
        "search {l_search:.3} vs exhaustive {l_exhaustive:.3}"
    );
}

/// "Boundary vertices of T are mapped to the boundary of M2 and form a
/// closed loop" (Sec. III-D-1): the boundary robots' destinations hug
/// M2's outer boundary.
#[test]
fn boundary_robots_map_to_m2_boundary() {
    let p = problem(1);
    let cfg = MarchConfig {
        refine_coverage: false,
        ..Default::default()
    };
    let out = march(&p, Method::MaxStableLinks, &cfg).unwrap();
    let t = extract_triangulation(&p.positions, p.range).unwrap();
    let boundary = t.boundary_loops().into_iter().next().unwrap();
    let spacing = cfg.resolve_mesh_spacing(p.m2.area(), p.num_robots());
    for &v in &boundary {
        let d = p.m2.outer().distance_to_boundary(out.mapped[v]);
        assert!(
            d < 1.5 * spacing,
            "boundary robot {v} mapped {d:.1} m from M2's boundary"
        );
    }
}

/// "Every sensor is connected to six neighboring sensors" for the
/// triangular lattice at r_c ≥ √3·r_s (Sec. II-A): interior robots of
/// the generated deployments have degree ≥ 6.
#[test]
fn interior_robots_have_six_neighbors() {
    let p = problem(1);
    let g = UnitDiskGraph::new(&p.positions, p.range);
    let t = extract_triangulation(&p.positions, p.range).unwrap();
    let boundary: std::collections::HashSet<usize> =
        t.boundary_loops().into_iter().flatten().collect();
    let mut interior_checked = 0;
    for v in 0..p.num_robots() {
        if !boundary.contains(&v) {
            assert!(
                g.degree(v) >= 5,
                "interior robot {v} has degree {}",
                g.degree(v)
            );
            interior_checked += 1;
        }
    }
    assert!(
        interior_checked > 50,
        "only {interior_checked} interior robots"
    );
}

/// The global-connectivity definition is about *paths to the network
/// boundary* (Def. 2): with C = 1 every robot can reach a boundary robot
/// at every sample.
#[test]
fn every_robot_reaches_the_boundary_at_every_sample() {
    let p = problem(6);
    let out = march(&p, Method::MaxStableLinks, &MarchConfig::default()).unwrap();
    assert_eq!(out.metrics.global_connectivity, 1);
    let t = extract_triangulation(&p.positions, p.range).unwrap();
    let boundary: Vec<usize> = t.boundary_loops().into_iter().next().unwrap();
    for (k, row) in out.timeline.iter().enumerate().step_by(7) {
        let g = UnitDiskGraph::new(row, p.range);
        let hops = g.multi_source_hops(&boundary);
        assert!(
            hops.iter().all(Option::is_some),
            "sample {k}: some robot cannot reach the boundary"
        );
    }
}
