//! Cross-crate integration: the distributed protocols running on the
//! message-passing simulator agree with their centralized references on
//! realistic scenario deployments.

use anr_marching::coverage::deploy_exactly;
use anr_marching::geom::Point;
use anr_marching::netgraph::protocols::{run_boundary_loop, run_flood_sum, run_hop_field};
use anr_marching::netgraph::{
    extract_triangulation, extract_triangulation_distributed, UnitDiskGraph,
};
use anr_marching::scenarios::m1_standard;

fn paper_deployment() -> (Vec<Point>, f64) {
    let m1 = m1_standard().unwrap();
    (deploy_exactly(&m1, 144).unwrap(), 80.0)
}

#[test]
fn distributed_triangulation_matches_centralized_on_paper_deployment() {
    let (positions, range) = paper_deployment();
    let mesh = extract_triangulation(&positions, range).unwrap();
    let mut central: Vec<(usize, usize)> = mesh.edges().collect();
    central.sort_unstable();

    let mut dist = extract_triangulation_distributed(&positions, range).unwrap();
    dist.sort_unstable();

    // Every centralized triangulation link is kept by the local rule.
    for e in &central {
        assert!(dist.binary_search(e).is_ok(), "missing link {e:?}");
    }
    // The distributed rule keeps at most a few extra links.
    assert!(
        dist.len() <= central.len() * 11 / 10 + 4,
        "distributed {} vs centralized {}",
        dist.len(),
        central.len()
    );
}

#[test]
fn boundary_loop_protocol_matches_mesh_boundary() {
    let (positions, range) = paper_deployment();
    let mesh = extract_triangulation(&positions, range).unwrap();
    let loops = mesh.boundary_loops();
    let outer = &loops[0];

    // Run the paper's hop-counting token over the boundary cycle.
    let result = run_boundary_loop(outer).unwrap();
    // Everyone learns the correct loop size.
    for &(_, size) in &result {
        assert_eq!(size, outer.len());
    }
    // Indices are the distinct loop positions starting at the smallest
    // robot ID (the protocol's initiator rule).
    let min_pos = outer
        .iter()
        .enumerate()
        .min_by_key(|&(_, &id)| id)
        .map(|(i, _)| i)
        .unwrap();
    for (k, &(index, _)) in result.iter().enumerate() {
        let expected = (k + outer.len() - min_pos) % outer.len();
        assert_eq!(index, expected, "vertex at loop position {k}");
    }
}

#[test]
fn hop_field_protocol_matches_bfs_on_deployment() {
    let (positions, range) = paper_deployment();
    let g = UnitDiskGraph::new(&positions, range);
    let mesh = extract_triangulation(&positions, range).unwrap();
    let outer = mesh.boundary_loops().into_iter().next().unwrap();

    let mut is_source = vec![false; positions.len()];
    for &v in &outer {
        is_source[v] = true;
    }
    let distributed = run_hop_field(&is_source, g.adjacency()).unwrap();
    let centralized = g.multi_source_hops(&outer);
    assert_eq!(distributed, centralized);
    // A connected deployment has no isolated subgroups.
    assert!(distributed.iter().all(Option::is_some));
}

#[test]
fn flooding_aggregates_link_ratios() {
    // The rotation-search aggregation of Sec. III-B: each robot floods
    // its local stable-link count; everyone learns the global total.
    let (positions, range) = paper_deployment();
    let g = UnitDiskGraph::new(&positions, range);
    let local_counts: Vec<f64> = (0..positions.len()).map(|i| g.degree(i) as f64).collect();
    let sums = run_flood_sum(&local_counts, g.adjacency()).unwrap();
    let expected: f64 = local_counts.iter().sum();
    for s in sums {
        assert!((s - expected).abs() < 1e-9);
    }
    // Σ mᵢ (each link counted twice) = 2 × link count.
    assert_eq!(expected as usize, 2 * g.num_links());
}

#[test]
fn protocol_message_complexity_is_sane() {
    // The triangulation-extraction protocol is one broadcast per robot:
    // message count equals twice the link count (one delivery per link
    // direction).
    let (positions, range) = paper_deployment();
    let g = UnitDiskGraph::new(&positions, range);
    let edges = extract_triangulation_distributed(&positions, range).unwrap();
    assert!(!edges.is_empty());
    // Every kept edge is a real link.
    for (i, j) in &edges {
        assert!(g.has_link(*i, *j));
    }
}
