//! Integration: the PCG and Gauss–Seidel harmonic solvers agree on
//! every seed scenario mesh — same linear system, different solver, so
//! the embeddings must coincide to solver tolerance.

use anr_marching::coverage::deploy_exactly;
use anr_marching::harmonic::{fill_holes, harmonic_map_to_disk, HarmonicConfig, Solver};
use anr_marching::march::MarchConfig;
use anr_marching::mesh::FoiMesher;
use anr_marching::netgraph::extract_triangulation;
use anr_marching::scenarios::{all_scenarios, ScenarioParams};
use anr_mesh::TriMesh;

fn pcg_config() -> HarmonicConfig {
    HarmonicConfig {
        solver: Solver::Pcg,
        ..HarmonicConfig::default()
    }
}

fn gs_config() -> HarmonicConfig {
    HarmonicConfig {
        solver: Solver::GaussSeidel,
        ..HarmonicConfig::default()
    }
}

/// Solves `mesh` with both solvers and returns the max per-vertex
/// distance between the embeddings plus the two iteration counts.
fn compare_solvers(mesh: &TriMesh) -> (f64, usize, usize) {
    let pcg = harmonic_map_to_disk(mesh, &pcg_config()).unwrap();
    let gs = harmonic_map_to_disk(mesh, &gs_config()).unwrap();
    let max_diff = pcg
        .positions()
        .iter()
        .zip(gs.positions())
        .map(|(a, b)| a.distance(*b))
        .fold(0.0f64, f64::max);
    (max_diff, pcg.iterations(), gs.iterations())
}

#[test]
fn pcg_matches_gauss_seidel_on_every_scenario_foi_mesh() {
    let scenarios = all_scenarios(&ScenarioParams::default()).unwrap();
    for s in &scenarios {
        let spacing = MarchConfig::default().resolve_mesh_spacing(s.m2.area(), s.robots);
        let meshed = FoiMesher::new(spacing).mesh(&s.m2).unwrap();
        let filled = fill_holes(meshed.mesh()).unwrap();
        let (max_diff, pcg_iters, gs_iters) = compare_solvers(filled.mesh());
        assert!(
            max_diff < 1e-6,
            "scenario {}: embeddings diverge by {max_diff}",
            s.id
        );
        assert!(
            pcg_iters < gs_iters,
            "scenario {}: PCG took {pcg_iters} iterations vs GS {gs_iters}",
            s.id
        );
    }
}

#[test]
fn pcg_matches_gauss_seidel_on_every_robot_triangulation() {
    let scenarios = all_scenarios(&ScenarioParams::default()).unwrap();
    for s in &scenarios {
        let positions = deploy_exactly(&s.m1, s.robots).unwrap();
        let t = extract_triangulation(&positions, s.range).unwrap();
        let filled = fill_holes(&t).unwrap();
        let (max_diff, pcg_iters, gs_iters) = compare_solvers(filled.mesh());
        assert!(
            max_diff < 1e-6,
            "scenario {}: robot-mesh embeddings diverge by {max_diff}",
            s.id
        );
        assert!(
            pcg_iters < gs_iters,
            "scenario {}: PCG took {pcg_iters} iterations vs GS {gs_iters}",
            s.id
        );
    }
}

#[test]
fn full_pipeline_agrees_across_solvers() {
    // End to end: the march outcome under the PCG default matches the
    // Gauss–Seidel reference — destinations differ only by solver
    // tolerance, far below a millimetre at field scale.
    use anr_marching::march::{march, MarchProblem, Method};
    let scenarios = all_scenarios(&ScenarioParams::default()).unwrap();
    let s = &scenarios[0];
    let problem =
        MarchProblem::with_lattice_deployment(s.m1.clone(), s.m2.clone(), s.robots, s.range)
            .unwrap();
    let pcg_cfg = MarchConfig {
        harmonic: pcg_config(),
        ..MarchConfig::default()
    };
    let gs_cfg = MarchConfig {
        harmonic: gs_config(),
        ..MarchConfig::default()
    };
    let a = march(&problem, Method::MaxStableLinks, &pcg_cfg).unwrap();
    let b = march(&problem, Method::MaxStableLinks, &gs_cfg).unwrap();
    assert_eq!(a.rotation, b.rotation, "same rotation chosen");
    let max_diff = a
        .mapped
        .iter()
        .zip(&b.mapped)
        .map(|(p, q)| p.distance(*q))
        .fold(0.0f64, f64::max);
    assert!(max_diff < 1e-3, "mapped positions diverge by {max_diff} m");
}
