//! Integration: harmonic maps over every scenario FoI — embedding
//! validity (Tutte), hole filling, and overlay composition.

use anr_marching::coverage::deploy_exactly;
use anr_marching::harmonic::{fill_holes, harmonic_map_to_disk, DiskOverlay, HarmonicConfig};
use anr_marching::march::MarchConfig;
use anr_marching::mesh::FoiMesher;
use anr_marching::netgraph::extract_triangulation;
use anr_marching::scenarios::{all_scenarios, ScenarioParams};

#[test]
fn every_scenario_foi_maps_to_a_valid_disk_embedding() {
    let scenarios = all_scenarios(&ScenarioParams::default()).unwrap();
    for s in &scenarios {
        let spacing = MarchConfig::default().resolve_mesh_spacing(s.m2.area(), s.robots);
        let meshed = FoiMesher::new(spacing).mesh(&s.m2).unwrap();
        assert_eq!(
            meshed.hole_loops().len(),
            s.m2.holes().len(),
            "scenario {}: hole loop count",
            s.id
        );
        let filled = fill_holes(meshed.mesh()).unwrap();
        let disk = harmonic_map_to_disk(filled.mesh(), &HarmonicConfig::default()).unwrap();

        // Tutte guarantee: the disk embedding has no flipped triangles.
        let dmesh = disk.as_disk_mesh(filled.mesh());
        for t in 0..dmesh.num_triangles() {
            assert!(
                dmesh.triangle(t).signed_area() > 0.0,
                "scenario {}: flipped triangle {t}",
                s.id
            );
        }
        // All vertices inside the closed unit disk.
        for v in 0..dmesh.num_vertices() {
            assert!(dmesh.vertex(v).to_vector().norm() <= 1.0 + 1e-9);
        }
    }
}

#[test]
fn robot_triangulations_map_to_valid_disks() {
    let scenarios = all_scenarios(&ScenarioParams::default()).unwrap();
    for s in &scenarios {
        let positions = deploy_exactly(&s.m1, s.robots).unwrap();
        let t = extract_triangulation(&positions, s.range).unwrap();
        let filled = fill_holes(&t).unwrap();
        let disk = harmonic_map_to_disk(filled.mesh(), &HarmonicConfig::default()).unwrap();
        let dmesh = disk.as_disk_mesh(filled.mesh());
        for tri in 0..dmesh.num_triangles() {
            assert!(
                dmesh.triangle(tri).signed_area() > 0.0,
                "scenario {}: robot-mesh triangle {tri} flipped",
                s.id
            );
        }
    }
}

#[test]
fn overlay_composition_is_piecewise_identity() {
    // Map the target mesh's own disk vertices through the overlay at
    // zero rotation: each must land on its own geographic position.
    let s = &all_scenarios(&ScenarioParams::default()).unwrap()[2]; // scenario 3
    let spacing = MarchConfig::default().resolve_mesh_spacing(s.m2.area(), s.robots);
    let meshed = FoiMesher::new(spacing).mesh(&s.m2).unwrap();
    let filled = fill_holes(meshed.mesh()).unwrap();
    let disk = harmonic_map_to_disk(filled.mesh(), &HarmonicConfig::default()).unwrap();
    let overlay = DiskOverlay::new(filled.mesh(), disk.positions(), filled.virtual_vertices());

    for v in (0..filled.num_real()).step_by(13) {
        let mapped = overlay.map_point(disk.position(v), 0.0);
        if mapped.via_hole_fallback {
            continue; // vertices on the hole rim may hit virtual fans
        }
        let expect = filled.mesh().vertex(v);
        assert!(
            mapped.position.distance(expect) < 1e-6,
            "vertex {v}: {} vs {}",
            mapped.position,
            expect
        );
    }
}

#[test]
fn rotation_sweep_stays_inside_target() {
    // Whatever the rotation, mapped points stay within the target FoI's
    // bounding box (the overlay clamps to the mesh).
    let s = &all_scenarios(&ScenarioParams::default()).unwrap()[3]; // scenario 4
    let spacing = MarchConfig::default().resolve_mesh_spacing(s.m2.area(), s.robots);
    let meshed = FoiMesher::new(spacing).mesh(&s.m2).unwrap();
    let filled = fill_holes(meshed.mesh()).unwrap();
    let disk = harmonic_map_to_disk(filled.mesh(), &HarmonicConfig::default()).unwrap();
    let overlay = DiskOverlay::new(filled.mesh(), disk.positions(), filled.virtual_vertices());

    let bbox = s.m2.bbox().inflated(1.0);
    let probes = [
        anr_marching::geom::Point::new(0.0, 0.0),
        anr_marching::geom::Point::new(0.5, 0.3),
        anr_marching::geom::Point::new(-0.7, 0.2),
        anr_marching::geom::Point::new(0.99, 0.0),
    ];
    for k in 0..12 {
        let theta = std::f64::consts::TAU * k as f64 / 12.0;
        for &p in &probes {
            let m = overlay.map_point(p, theta);
            assert!(
                bbox.contains(m.position),
                "θ={theta:.2}: {} escaped",
                m.position
            );
        }
    }
}
