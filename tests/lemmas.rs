//! Executable reproductions of the paper's two impossibility results
//! (Sec. II-A, Fig. 1).
//!
//! * **Lemma 1**: maximizing the stable link ratio `L` and minimizing
//!   the total moving distance `D` cannot both be achieved — shown on
//!   the paper's own seven-robot example (a horizontal slim-rectangle
//!   lattice relocating to a vertical one).
//! * **Lemma 2**: local connectivity cannot be fully preserved in
//!   general — shown on the paper's hexagon-to-line example, where the
//!   center robot must lose at least two of its six links.

use anr_marching::assign::{euclidean_costs, hungarian};
use anr_marching::geom::Point;
use anr_marching::netgraph::UnitDiskGraph;

const RANGE: f64 = 80.0;
const SPACING: f64 = 60.0; // lattice edge, < r_c

/// The paper's Fig. 1(a) left: seven robots in a slim horizontal strip —
/// two rows of a triangular lattice (4 + 3).
fn horizontal_strip() -> Vec<Point> {
    let s = SPACING;
    let h = s * 3f64.sqrt() / 2.0;
    vec![
        // Bottom row: A B C D
        Point::new(0.0, 0.0),
        Point::new(s, 0.0),
        Point::new(2.0 * s, 0.0),
        Point::new(3.0 * s, 0.0),
        // Top row: E F G
        Point::new(s / 2.0, h),
        Point::new(1.5 * s, h),
        Point::new(2.5 * s, h),
    ]
}

/// Fig. 1(a) right: the same lattice rotated to vertical.
fn vertical_strip() -> Vec<Point> {
    horizontal_strip()
        .into_iter()
        .map(|p| Point::new(-p.y, p.x))
        .collect()
}

/// Fig. 1(b) left: one robot centered, six around it (hexagon).
fn hexagon() -> Vec<Point> {
    let mut pts = vec![Point::new(0.0, 0.0)];
    for k in 0..6 {
        let theta = std::f64::consts::TAU * k as f64 / 6.0;
        pts.push(Point::new(SPACING * theta.cos(), SPACING * theta.sin()));
    }
    pts
}

/// Fig. 1(b) right: seven robots in a line (slim-rectangle deployment).
fn line_of_seven() -> Vec<Point> {
    (0..7)
        .map(|i| Point::new(i as f64 * SPACING, 0.0))
        .collect()
}

/// Count of initial links preserved by the assignment `perm`
/// (synchronized straight-line motion ⇒ a link survives iff it holds at
/// both endpoints).
fn preserved_links(from: &[Point], to: &[Point], perm: &[usize]) -> usize {
    let g = UnitDiskGraph::new(from, RANGE);
    g.links()
        .iter()
        .filter(|&&(i, j)| to[perm[i]].distance(to[perm[j]]) <= RANGE)
        .count()
}

fn total_distance(from: &[Point], to: &[Point], perm: &[usize]) -> f64 {
    from.iter()
        .enumerate()
        .map(|(i, p)| p.distance(to[perm[i]]))
        .sum()
}

/// All permutations of 0..n (n = 7 ⇒ 5040, fine for a test).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 1 {
        return vec![vec![0]];
    }
    let mut out = Vec::new();
    for p in permutations(n - 1) {
        for k in 0..n {
            let mut q: Vec<usize> = p.iter().map(|&x| if x >= k { x + 1 } else { x }).collect();
            q.push(k);
            out.push(q);
        }
    }
    out
}

#[test]
fn lemma1_max_links_and_min_distance_disagree() {
    let from = horizontal_strip();
    // Separate the target so the relocation is a real march.
    let to: Vec<Point> = vertical_strip()
        .into_iter()
        .map(|p| Point::new(p.x + 1000.0, p.y))
        .collect();

    // Exhaustively find (a) the assignments maximizing preserved links,
    // and (b) the minimum-distance assignment.
    let perms = permutations(7);
    let max_links = perms
        .iter()
        .map(|p| preserved_links(&from, &to, p))
        .max()
        .expect("non-empty");
    let best_link_perms: Vec<&Vec<usize>> = perms
        .iter()
        .filter(|p| preserved_links(&from, &to, p) == max_links)
        .collect();
    let min_distance = perms
        .iter()
        .map(|p| total_distance(&from, &to, p))
        .fold(f64::INFINITY, f64::min);

    // Lemma 1: no link-maximal assignment achieves the distance minimum.
    let best_links_min_distance = best_link_perms
        .iter()
        .map(|p| total_distance(&from, &to, p))
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_links_min_distance > min_distance + 1.0,
        "link-optimal D {best_links_min_distance} vs optimal D {min_distance}"
    );

    // Cross-check the min-distance side with the Hungarian solver.
    let costs = euclidean_costs(&from, &to).expect("balanced");
    let h = hungarian(&costs);
    assert!((h.total_cost - min_distance).abs() < 1e-9);
    // ... and the Hungarian matching does not preserve all links.
    let h_perm: Vec<usize> = (0..7).map(|i| h.target_of(i)).collect();
    assert!(preserved_links(&from, &to, &h_perm) < max_links);
}

#[test]
fn lemma2_hexagon_to_line_must_break_links() {
    let from = hexagon();
    let to: Vec<Point> = line_of_seven()
        .into_iter()
        .map(|p| Point::new(p.x + 1000.0, p.y))
        .collect();

    // The hexagon's 12 links (6 spokes + 6 rim) cannot all survive in a
    // line: exhaustively, every assignment breaks at least 4.
    let g = UnitDiskGraph::new(&from, RANGE);
    assert_eq!(g.num_links(), 12);
    assert_eq!(g.degree(0), 6); // the center robot

    let best = permutations(7)
        .iter()
        .map(|p| preserved_links(&from, &to, p))
        .max()
        .expect("non-empty");
    assert!(
        best <= g.num_links() - 4,
        "some assignment preserved {best} of 12 links"
    );

    // The center robot specifically keeps at most 2 of its 6 links (a
    // line vertex has degree ≤ 2), matching the paper's "have to break
    // at least two communication links individually".
    for p in permutations(7) {
        let kept_by_center = g
            .neighbors(0)
            .iter()
            .filter(|&&j| to[p[0]].distance(to[p[j]]) <= RANGE)
            .count();
        assert!(kept_by_center <= 2);
    }
}

#[test]
fn lemma_geometries_are_valid_deployments() {
    // Both Fig. 1 configurations are connected optimal-coverage lattices
    // under the paper's r_c ≥ √3·r_s assumption.
    for pts in [
        horizontal_strip(),
        vertical_strip(),
        hexagon(),
        line_of_seven(),
    ] {
        let g = UnitDiskGraph::new(&pts, RANGE);
        assert!(g.is_connected());
        assert_eq!(pts.len(), 7);
    }
    // The hexagon center is 6-connected — the paper's "every sensor is
    // connected to six neighboring sensors" for r_c ≥ √3·r_s.
    let g = UnitDiskGraph::new(&hexagon(), RANGE);
    assert_eq!(g.degree(0), 6);
}
