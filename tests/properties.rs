//! Cross-crate property tests: randomized FoI shapes and deployments
//! through the full pipeline.

use anr_marching::geom::{Point, Polygon, PolygonWithHoles};
use anr_marching::march::{march, MarchConfig, MarchProblem, Method};
use anr_marching::netgraph::UnitDiskGraph;
use anr_marching::scenarios::blob;
use proptest::prelude::*;

proptest! {
    // Full-pipeline runs are comparatively expensive; a handful of cases
    // each is plenty to sweep the seeded shape space.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn marching_between_random_blobs_keeps_connectivity(
        seed1 in 0u64..1000,
        seed2 in 1000u64..2000,
        sep in 8.0..40.0f64,
    ) {
        let m1 = PolygonWithHoles::without_holes(
            blob(Point::ORIGIN, 200_000.0, seed1, 48).unwrap(),
        );
        let m2 = PolygonWithHoles::without_holes(
            blob(Point::new(sep * 80.0, 0.0), 180_000.0, seed2, 48).unwrap(),
        );
        let problem = MarchProblem::with_lattice_deployment(m1, m2, 96, 80.0).unwrap();
        let out = march(&problem, Method::MaxStableLinks, &MarchConfig::default()).unwrap();

        // The paper's guarantee: global connectivity at every sample.
        prop_assert_eq!(out.metrics.global_connectivity, 1);
        // Everyone ends inside the target FoI.
        for q in &out.final_positions {
            prop_assert!(problem.m2.contains(*q));
        }
        // Stable link ratio is meaningful.
        prop_assert!(out.metrics.stable_link_ratio > 0.3);
        prop_assert!(out.metrics.stable_link_ratio <= 1.0);
    }

    #[test]
    fn metrics_are_internally_consistent(
        seed in 0u64..500,
    ) {
        let m1 = PolygonWithHoles::without_holes(
            blob(Point::ORIGIN, 150_000.0, seed, 48).unwrap(),
        );
        let m2 = PolygonWithHoles::without_holes(
            blob(Point::new(1500.0, 0.0), 150_000.0, seed + 7, 48).unwrap(),
        );
        let problem = MarchProblem::with_lattice_deployment(m1, m2, 72, 80.0).unwrap();
        let out = march(&problem, Method::MinMovingDistance, &MarchConfig::default()).unwrap();

        prop_assert_eq!(out.metrics.initial_links,
            UnitDiskGraph::new(&problem.positions, 80.0).num_links());
        prop_assert!(out.metrics.preserved_links <= out.metrics.initial_links);
        let expect_ratio = out.metrics.preserved_links as f64 / out.metrics.initial_links as f64;
        prop_assert!((out.metrics.stable_link_ratio - expect_ratio).abs() < 1e-12);
        // D is at least the sum of straight-line displacements.
        let lower: f64 = problem.positions.iter()
            .zip(&out.final_positions)
            .map(|(a, b)| a.distance(*b))
            .sum();
        prop_assert!(out.metrics.total_distance >= lower - 1e-6);
    }

    #[test]
    fn degenerate_square_fois_work(side in 250.0..500.0f64, robots in 16usize..48) {
        // Axis-aligned rectangles are a degenerate boundary case for the
        // meshing (collinear boundary runs): the pipeline must not panic.
        let m1 = PolygonWithHoles::without_holes(
            Polygon::rectangle(Point::ORIGIN, side, side),
        );
        let m2 = PolygonWithHoles::without_holes(
            Polygon::rectangle(Point::new(side + 900.0, 0.0), side, side * 0.8),
        );
        // Skip deployments whose lattice pitch exceeds the range.
        let pitch = (side * side / robots as f64 * 2.0 / 3f64.sqrt()).sqrt();
        // Near-range pitches can disconnect after the coverage
        // refinement redistributes the lattice; stay clearly below r_c.
        prop_assume!(pitch < 68.0);
        let problem = match MarchProblem::with_lattice_deployment(m1, m2, robots, 80.0) {
            Ok(p) => p,
            // Marginal lattices can end up disconnected after refinement.
            Err(anr_marching::march::MarchError::DisconnectedDeployment { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("problem: {e}"))),
        };
        let out = match march(&problem, Method::MaxStableLinks, &MarchConfig::default()) {
            Ok(o) => o,
            // A robot connected only through over-range Delaunay edges is
            // a documented error path, not a pipeline failure.
            Err(anr_marching::march::MarchError::RobotOutsideTriangulation { .. }) => {
                return Ok(())
            }
            Err(e) => return Err(TestCaseError::fail(format!("march: {e}"))),
        };
        prop_assert_eq!(out.metrics.global_connectivity, 1);
    }
}

proptest! {
    // Dense-sampling cross-checks are cheap; run more cases than the
    // full-pipeline properties above.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The closed-form continuous-time auditor against brute force: on
    /// random piecewise-linear timelines, everything a 10⁴-sample dense
    /// check can see must agree with the exact (quadratic-extremum)
    /// verdict, and the exact verdict may only be *stricter* — it
    /// catches violations that slip between samples, never the reverse.
    #[test]
    fn exact_audit_agrees_with_dense_sampling(
        coords in prop::collection::vec((-250.0..250.0f64, -250.0..250.0f64), 18),
    ) {
        use anr_marching::march::audit_piecewise;
        use anr_marching::trace::Tracer;

        const ROWS: usize = 3;
        const SAMPLES: usize = 10_000;
        let n = coords.len() / ROWS;
        let range = 150.0;
        let rows: Vec<Vec<Point>> = (0..ROWS)
            .map(|k| (0..n).map(|i| {
                let (x, y) = coords[k * n + i];
                Point::new(x, y)
            }).collect())
            .collect();
        let times = vec![0.0, 0.5, 1.0];
        let report = audit_piecewise(&rows, &times, range, &Tracer::disabled()).unwrap();

        let sample_pos = |s: f64| -> Vec<Point> {
            let seg = if s < 0.5 { 0 } else { 1 };
            let tau = (s - times[seg]) / (times[seg + 1] - times[seg]);
            (0..n).map(|i| {
                let a = rows[seg][i];
                let b = rows[seg + 1][i];
                Point::new(a.x + (b.x - a.x) * tau, a.y + (b.y - a.y) * tau)
            }).collect()
        };

        let initial = UnitDiskGraph::new(&rows[0], range).links();
        let mut sampled_stable: std::collections::HashSet<(usize, usize)> =
            initial.iter().copied().collect();
        let mut sampled_connected = true;
        for k in 0..=SAMPLES {
            let pos = sample_pos(k as f64 / SAMPLES as f64);
            sampled_connected &= UnitDiskGraph::new(&pos, range).is_connected();
            sampled_stable.retain(|&(i, j)| pos[i].distance(pos[j]) <= range);
        }

        let exact_violated: std::collections::HashSet<(usize, usize)> =
            report.violations.iter().map(|v| v.link).collect();

        // Exact bookkeeping is internally consistent.
        prop_assert_eq!(report.initial_links, initial.len());
        prop_assert_eq!(
            report.preserved_links,
            report.initial_links - exact_violated.len()
        );

        for &link in &initial {
            if !exact_violated.contains(&link) {
                // Exact says stable ⇒ no sample may see it out of range.
                prop_assert!(
                    sampled_stable.contains(&link),
                    "auditor kept {:?} but a dense sample breaks it", link
                );
            } else if !sampled_stable.contains(&link) {
                // Both agree it breaks — fine.
            } else {
                // Exact caught a violation the samples missed: it must
                // be a genuinely narrow excursion (shorter than two
                // sample steps), not a bookkeeping error.
                let v = report.violations.iter().find(|v| v.link == link).unwrap();
                prop_assert!(
                    v.interval.1 - v.interval.0 < 2.0 / SAMPLES as f64,
                    "wide violation {:?} of {:?} invisible to 10^4 samples",
                    v.interval, link
                );
                prop_assert!(v.max_distance > range);
            }
        }

        // Connectivity: a dense-sample disconnect must be caught
        // exactly; the exact C may only be stricter.
        if report.global_connectivity == 1 {
            prop_assert!(sampled_connected);
        }
    }
}
