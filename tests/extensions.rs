//! Integration tests for the extension features: distributed harmonic
//! computation, resilience analysis, the energy model, missions and
//! message loss.

use anr_marching::coverage::deploy_exactly;
use anr_marching::harmonic::{
    distributed_harmonic_map, fill_holes, harmonic_map_to_disk, DistributedHarmonicConfig,
    HarmonicConfig,
};
use anr_marching::march::{
    hungarian_direct, march, march_mission, EnergyModel, MarchConfig, MarchProblem, Method,
    Mission, ResilienceReport,
};
use anr_marching::netgraph::extract_triangulation;
use anr_marching::scenarios::{build_scenario, m1_standard, ScenarioParams};

#[test]
fn distributed_harmonic_matches_centralized_on_paper_deployment() {
    let m1 = m1_standard().unwrap();
    let positions = deploy_exactly(&m1, 144).unwrap();
    let t = extract_triangulation(&positions, 80.0).unwrap();
    let filled = fill_holes(&t).unwrap();

    let central = harmonic_map_to_disk(filled.mesh(), &HarmonicConfig::default()).unwrap();
    let dist =
        distributed_harmonic_map(filled.mesh(), &DistributedHarmonicConfig::default()).unwrap();

    // Jacobi gossip and Gauss–Seidel converge to the same harmonic map.
    for v in 0..filled.mesh().num_vertices() {
        let d = central.position(v).distance(dist.map.position(v));
        assert!(d < 5e-3, "vertex {v} differs by {d}");
    }
    // The message count is what a real swarm would pay: every round each
    // still-moving robot gossips to its neighbors.
    assert!(dist.messages > 0);
    assert!(dist.rounds > 10);
}

#[test]
fn marching_preserves_energy_advantage() {
    // The energy framing of the paper's Sec. IV-A claim: preserving
    // links makes our method cheaper than Hungarian under any model that
    // prices link re-establishment, despite the slightly longer paths.
    let s = build_scenario(1, &ScenarioParams::default()).unwrap();
    let problem = MarchProblem::with_lattice_deployment(s.m1, s.m2, s.robots, s.range).unwrap();
    let cfg = MarchConfig::default();
    let ours = march(&problem, Method::MaxStableLinks, &cfg).unwrap();
    let hung = hungarian_direct(&problem, &cfg).unwrap();

    let model = EnergyModel::default();
    let e_ours = model.evaluate(&ours.metrics, problem.num_robots());
    let e_hung = model.evaluate(&hung.metrics, problem.num_robots());
    assert!(
        e_ours.link_maintenance < e_hung.link_maintenance,
        "ours {} vs hungarian {}",
        e_ours.link_maintenance,
        e_hung.link_maintenance
    );

    // With free motion the comparison is pure link maintenance; the
    // total also favors ours for the default per-metre price because the
    // distance gap is small.
    assert!(e_ours.total() < e_hung.total());
}

#[test]
fn final_deployments_have_no_single_point_of_failure() {
    // A CVT lattice deployment should be biconnected: any one robot may
    // fail without splitting the network.
    for id in [1u8, 3] {
        let s = build_scenario(id, &ScenarioParams::default()).unwrap();
        let problem = MarchProblem::with_lattice_deployment(s.m1, s.m2, s.robots, s.range).unwrap();
        let out = march(&problem, Method::MaxStableLinks, &MarchConfig::default()).unwrap();
        let report = ResilienceReport::of(&out.final_positions, problem.range);
        assert!(report.connected, "scenario {id}");
        assert!(
            report.biconnected,
            "scenario {id}: articulation robots {:?}",
            report.articulation_robots
        );
        assert!(report.vertex_connectivity >= 2, "scenario {id}");
    }
}

#[test]
fn mission_through_scenario_fois() {
    // Tour M1 → scenario-1 M2 → scenario-3 M2 (re-centered by the
    // scenario builder's separation).
    let p1 = build_scenario(1, &ScenarioParams::default()).unwrap();
    let p3 = build_scenario(
        3,
        &ScenarioParams {
            separation_ranges: 60.0,
            ..Default::default()
        },
    )
    .unwrap();
    let mission = Mission::new(vec![p1.m1, p1.m2, p3.m2], 144, 80.0);
    let out = march_mission(&mission, Method::MaxStableLinks, &MarchConfig::default()).unwrap();
    assert_eq!(out.legs.len(), 2);
    assert_eq!(out.metrics.global_connectivity, 1);
    assert!(out.metrics.mean_stable_link_ratio > 0.6);
}
