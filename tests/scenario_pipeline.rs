//! End-to-end integration tests: the full marching pipeline on the
//! paper's scenarios at paper scale (144 robots, r_c = 80 m).

use anr_marching::coverage::{covered_fraction, GridPartition};
use anr_marching::march::{
    direct_translation, hungarian_direct, march, MarchConfig, MarchProblem, Method,
};
use anr_marching::netgraph::UnitDiskGraph;
use anr_marching::scenarios::{build_scenario, ScenarioParams};

fn problem(id: u8) -> MarchProblem {
    let s = build_scenario(id, &ScenarioParams::default()).unwrap();
    MarchProblem::with_lattice_deployment(s.m1, s.m2, s.robots, s.range).unwrap()
}

#[test]
fn scenario1_full_pipeline_invariants() {
    let p = problem(1);
    let cfg = MarchConfig::default();
    let a = march(&p, Method::MaxStableLinks, &cfg).unwrap();

    // Definition 2: global connectivity throughout.
    assert_eq!(a.metrics.global_connectivity, 1);
    // High link preservation on similar shapes.
    assert!(
        a.metrics.stable_link_ratio > 0.85,
        "L = {}",
        a.metrics.stable_link_ratio
    );
    // All robots end in M2, outside holes.
    for q in &a.final_positions {
        assert!(p.m2.contains(*q));
        assert!(!p.m2.in_hole(*q));
    }
    // The final network is connected.
    assert!(UnitDiskGraph::new(&a.final_positions, p.range).is_connected());
}

#[test]
fn final_deployment_achieves_full_coverage() {
    // The paper's premise: with r_c >= sqrt(3) * r_s the triangular-lattice
    // CVT layout fully covers the FoI. Verify for the flower-pond target.
    let p = problem(3);
    let out = march(&p, Method::MaxStableLinks, &MarchConfig::default()).unwrap();
    let partition = GridPartition::new(&p.m2, 8.0);
    let f = covered_fraction(&partition, &out.final_positions, p.sensing_range());
    assert!(f > 0.93, "coverage fraction {f}");
}

#[test]
fn scenario1_method_ordering() {
    let p = problem(1);
    let cfg = MarchConfig::default();
    let a = march(&p, Method::MaxStableLinks, &cfg).unwrap();
    let b = march(&p, Method::MinMovingDistance, &cfg).unwrap();
    let dt = direct_translation(&p, &cfg).unwrap();
    let hu = hungarian_direct(&p, &cfg).unwrap();

    // Paper Fig. 3 row 5: L(ours) > L(direct translation) > L(Hungarian).
    assert!(a.metrics.stable_link_ratio > dt.metrics.stable_link_ratio);
    assert!(dt.metrics.stable_link_ratio > hu.metrics.stable_link_ratio);

    // Paper Fig. 3 row 4: D(Hungarian) is minimal; ours within a small
    // factor; method (b) does not move more than method (a) (within the
    // coverage-refinement noise).
    assert!(hu.metrics.total_distance <= a.metrics.total_distance);
    assert!(hu.metrics.total_distance <= dt.metrics.total_distance);
    assert!(
        a.metrics.total_distance < hu.metrics.total_distance * 1.10,
        "ours(a) {} vs hungarian {}",
        a.metrics.total_distance,
        hu.metrics.total_distance
    );
    assert!(b.metrics.total_distance <= a.metrics.total_distance * 1.02);
}

#[test]
fn hole_scenarios_maintain_connectivity() {
    for id in [3u8, 4, 5] {
        let p = problem(id);
        let out = march(&p, Method::MaxStableLinks, &MarchConfig::default()).unwrap();
        assert_eq!(out.metrics.global_connectivity, 1, "scenario {id}");
        for q in &out.final_positions {
            assert!(!p.m2.in_hole(*q), "scenario {id}: robot in hole at {q}");
        }
        assert!(
            out.metrics.stable_link_ratio > 0.7,
            "scenario {id}: L = {}",
            out.metrics.stable_link_ratio
        );
    }
}

#[test]
fn hole_to_hole_scenarios_work() {
    for id in [6u8, 7] {
        let p = problem(id);
        let cfg = MarchConfig::default();
        let a = march(&p, Method::MaxStableLinks, &cfg).unwrap();
        let hu = hungarian_direct(&p, &cfg).unwrap();
        assert_eq!(a.metrics.global_connectivity, 1, "scenario {id}");
        // Ours beats the Hungarian baseline on link preservation by a
        // wide margin in the hardest scenarios.
        assert!(
            a.metrics.stable_link_ratio > 2.0 * hu.metrics.stable_link_ratio,
            "scenario {id}: L(a) = {} vs L(hung) = {}",
            a.metrics.stable_link_ratio,
            hu.metrics.stable_link_ratio
        );
    }
}

#[test]
fn timeline_is_consistent() {
    let p = problem(2);
    let out = march(&p, Method::MaxStableLinks, &MarchConfig::default()).unwrap();
    // Starts at the initial deployment, ends at the final positions.
    assert_eq!(out.timeline[0], p.positions);
    let last = out.timeline.last().unwrap();
    for (a, b) in last.iter().zip(&out.final_positions) {
        assert!(a.distance(*b) < 1e-9);
    }
    // Metrics sampled the whole timeline.
    assert_eq!(out.metrics.samples, out.timeline.len());
    // Total distance at least the straight-line lower bound.
    let lower: f64 = p
        .positions
        .iter()
        .zip(&out.final_positions)
        .map(|(a, b)| a.distance(*b))
        .sum();
    assert!(out.metrics.total_distance >= lower - 1e-6);
}

#[test]
fn baselines_share_final_coverage_positions() {
    let p = problem(1);
    let cfg = MarchConfig::default();
    let dt = direct_translation(&p, &cfg).unwrap();
    let hu = hungarian_direct(&p, &cfg).unwrap();
    let key = |pts: &[anr_marching::geom::Point]| {
        let mut v: Vec<(i64, i64)> = pts
            .iter()
            .map(|q| ((q.x * 10.0).round() as i64, (q.y * 10.0).round() as i64))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(key(&dt.final_positions), key(&hu.final_positions));
}

#[test]
fn separation_sweep_converges_to_hungarian() {
    // Fig. 3 row 4: as the FoI separation grows, every method's D
    // converges to the Hungarian optimum.
    let cfg = MarchConfig::default();
    let mut ratios = Vec::new();
    for sep in [10.0, 40.0, 100.0] {
        let s = build_scenario(
            1,
            &ScenarioParams {
                separation_ranges: sep,
                ..Default::default()
            },
        )
        .unwrap();
        let p = MarchProblem::with_lattice_deployment(s.m1, s.m2, s.robots, s.range).unwrap();
        let a = march(&p, Method::MaxStableLinks, &cfg).unwrap();
        let hu = hungarian_direct(&p, &cfg).unwrap();
        ratios.push(a.metrics.total_distance / hu.metrics.total_distance);
    }
    assert!(
        ratios[2] < ratios[0],
        "D(ours)/D(hungarian) should shrink with separation: {ratios:?}"
    );
    assert!(
        ratios[2] < 1.05,
        "at 100× separation the ratio is ~1: {ratios:?}"
    );
}
