//! # anr-marching — optimal marching of autonomous networked robots
//!
//! Umbrella crate of the reproduction of *"Optimal Marching of
//! Autonomous Networked Robots"* (Ban, Jin, Wu — ICDCS 2016): a swarm of
//! mobile robots redeploys from one field of interest to another while
//! guaranteeing global connectivity, preserving local communication
//! links, and paying little extra moving distance.
//!
//! Each subsystem lives in its own crate, re-exported here:
//!
//! * [`geom`] — planar geometry (points, polygons with holes, predicates)
//! * [`mesh`] — triangle meshes, Delaunay, FoI meshing
//! * [`distsim`] — synchronous message-passing simulator
//! * [`netgraph`] — unit-disk connectivity graphs and protocols
//! * [`assign`] — Hungarian minimum-cost matching
//! * [`harmonic`] — harmonic maps to the unit disk, rotation search
//! * [`coverage`] — centroidal-Voronoi coverage control (Lloyd)
//! * [`march`] — the paper's pipeline, methods (a)/(b) and baselines
//! * [`scenarios`] — the seven evaluation scenarios
//! * [`trace`] — zero-dependency structured tracing and the audit hooks
//! * [`viz`] — SVG rendering of deployments
//!
//! ## Quickstart
//!
//! ```no_run
//! use anr_marching::march::{march, MarchConfig, MarchProblem, Method};
//! use anr_marching::scenarios::{build_scenario, ScenarioParams};
//!
//! let scenario = build_scenario(1, &ScenarioParams::default())?;
//! let problem = MarchProblem::with_lattice_deployment(
//!     scenario.m1, scenario.m2, scenario.robots, scenario.range,
//! )?;
//! let outcome = march(&problem, Method::MaxStableLinks, &MarchConfig::default())?;
//! println!(
//!     "L = {:.3}, D = {:.0} m, C = {}",
//!     outcome.metrics.stable_link_ratio,
//!     outcome.metrics.total_distance,
//!     outcome.metrics.global_connectivity,
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub use anr_assign as assign;
pub use anr_coverage as coverage;
pub use anr_distsim as distsim;
pub use anr_geom as geom;
pub use anr_harmonic as harmonic;
pub use anr_march as march;
pub use anr_mesh as mesh;
pub use anr_netgraph as netgraph;
pub use anr_scenarios as scenarios;
pub use anr_trace as trace;
pub use anr_viz as viz;
