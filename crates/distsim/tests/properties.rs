//! Property tests for the message-passing simulator: delivery
//! accounting, loss statistics, deterministic replay, and the
//! fault-harness ≡ reliable-simulator equivalence under a zero-fault
//! plan.

use anr_distsim::{Envelope, FaultPlan, FaultySimulator, Node, Outbox, SimStats, Simulator};
use proptest::prelude::*;

/// Node that broadcasts once and counts what it receives.
struct OneShot {
    received: usize,
}

impl Node for OneShot {
    type Msg = u32;
    fn on_start(&mut self, out: &mut Outbox<u32>) {
        out.broadcast(7);
    }
    fn on_round(&mut self, _round: usize, inbox: &[Envelope<u32>], _out: &mut Outbox<u32>) {
        self.received += inbox.len();
    }
}

fn ring(n: usize) -> Vec<Vec<usize>> {
    (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect()
}

/// Gossip node whose state captures the *exact* delivery trace: every
/// received envelope in order. Any divergence in scheduling between two
/// runs shows up as a state difference.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Gossip {
    id: usize,
    min_seen: usize,
    trace: Vec<(usize, usize)>,
}

impl Node for Gossip {
    type Msg = usize;
    fn on_start(&mut self, out: &mut Outbox<usize>) {
        out.broadcast(self.id);
    }
    fn on_round(&mut self, _round: usize, inbox: &[Envelope<usize>], out: &mut Outbox<usize>) {
        for env in inbox {
            self.trace.push((env.from, env.msg));
            if env.msg < self.min_seen {
                self.min_seen = env.msg;
                out.broadcast(env.msg);
            }
        }
    }
}

fn gossip_nodes(n: usize) -> Vec<Gossip> {
    (0..n)
        .map(|id| Gossip {
            id,
            min_seen: id,
            trace: Vec::new(),
        })
        .collect()
}

/// A path `0-1-…-(n-1)` plus `extra` seeded chords: always connected,
/// shape varies with the seed.
fn random_connected(n: usize, extra: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            let mut v = Vec::new();
            if i > 0 {
                v.push(i - 1);
            }
            if i + 1 < n {
                v.push(i + 1);
            }
            v
        })
        .collect();
    let mut state = seed ^ 0x9E3779B97F4A7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for _ in 0..extra {
        let u = (next() % n as u64) as usize;
        let v = (next() % n as u64) as usize;
        if u != v && !adj[u].contains(&v) {
            adj[u].push(v);
            adj[v].push(u);
        }
    }
    adj
}

fn run(n: usize, loss: f64, seed: u64) -> (SimStats, Vec<usize>) {
    let nodes = (0..n).map(|_| OneShot { received: 0 }).collect();
    let mut sim = Simulator::new(nodes, ring(n)).unwrap();
    if loss > 0.0 {
        sim = sim.with_loss(loss, seed);
    }
    let stats = sim.run_until_quiet(10).unwrap();
    let received = sim.into_nodes().into_iter().map(|nd| nd.received).collect();
    (stats, received)
}

proptest! {
    #[test]
    fn delivered_plus_dropped_is_total(n in 3usize..40, loss in 0.0..0.9f64, seed in 0u64..1000) {
        let (stats, received) = run(n, loss, seed);
        // Each node broadcasts once to 2 neighbors.
        prop_assert_eq!(stats.messages + stats.dropped, 2 * n);
        let total_received: usize = received.iter().sum();
        prop_assert_eq!(total_received, stats.messages);
    }

    #[test]
    fn lossless_delivers_everything(n in 3usize..40) {
        let (stats, received) = run(n, 0.0, 0);
        prop_assert_eq!(stats.dropped, 0);
        prop_assert!(received.iter().all(|&r| r == 2));
    }

    #[test]
    fn replay_is_deterministic(n in 3usize..30, loss in 0.1..0.9f64, seed in 0u64..1000) {
        let a = run(n, loss, seed);
        let b = run(n, loss, seed);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_to_reliable_simulator(
        n in 3usize..32,
        extra_edges in 0usize..12,
        topo_seed in 0u64..1000,
        plan_seed in 0u64..1000,
    ) {
        // Random connected topology: a path plus seeded chords.
        let adj = random_connected(n, extra_edges, topo_seed);

        let mut reliable = Simulator::new(gossip_nodes(n), adj.clone()).unwrap();
        let rel_stats = reliable.run_until_quiet(4 * n + 8).unwrap();

        // The zero-fault plan must reproduce the trace exactly,
        // regardless of its seed (no random draws may be consumed).
        let mut faulty =
            FaultySimulator::new(gossip_nodes(n), adj, FaultPlan::reliable(plan_seed)).unwrap();
        let f_stats = faulty.run_until_quiet(4 * n + 8).unwrap();

        prop_assert_eq!(f_stats.rounds, rel_stats.rounds, "round counts differ");
        prop_assert_eq!(f_stats.sent, rel_stats.messages, "sent counts differ");
        prop_assert_eq!(f_stats.delivered, rel_stats.messages, "delivered counts differ");
        prop_assert_eq!(f_stats.dropped_loss, 0);
        prop_assert_eq!(f_stats.dropped_crash, 0);
        prop_assert_eq!(f_stats.duplicated, 0);
        prop_assert_eq!(f_stats.delayed, 0);
        prop_assert_eq!(faulty.into_nodes(), reliable.into_nodes(), "final states differ");
    }

    #[test]
    fn loss_rate_tracks_probability(loss in 0.1..0.9f64, seed in 0u64..50) {
        // Large sample: 400 deliveries; the empirical rate should land
        // within ±0.15 of the configured probability.
        let (stats, _) = run(200, loss, seed);
        let rate = stats.dropped as f64 / (stats.messages + stats.dropped) as f64;
        prop_assert!((rate - loss).abs() < 0.15, "rate {} vs p {}", rate, loss);
    }
}
