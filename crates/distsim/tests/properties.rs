//! Property tests for the message-passing simulator: delivery
//! accounting, loss statistics and deterministic replay.

use anr_distsim::{Envelope, Node, Outbox, SimStats, Simulator};
use proptest::prelude::*;

/// Node that broadcasts once and counts what it receives.
struct OneShot {
    received: usize,
}

impl Node for OneShot {
    type Msg = u32;
    fn on_start(&mut self, out: &mut Outbox<u32>) {
        out.broadcast(7);
    }
    fn on_round(&mut self, _round: usize, inbox: &[Envelope<u32>], _out: &mut Outbox<u32>) {
        self.received += inbox.len();
    }
}

fn ring(n: usize) -> Vec<Vec<usize>> {
    (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect()
}

fn run(n: usize, loss: f64, seed: u64) -> (SimStats, Vec<usize>) {
    let nodes = (0..n).map(|_| OneShot { received: 0 }).collect();
    let mut sim = Simulator::new(nodes, ring(n)).unwrap();
    if loss > 0.0 {
        sim = sim.with_loss(loss, seed);
    }
    let stats = sim.run_until_quiet(10).unwrap();
    let received = sim.into_nodes().into_iter().map(|nd| nd.received).collect();
    (stats, received)
}

proptest! {
    #[test]
    fn delivered_plus_dropped_is_total(n in 3usize..40, loss in 0.0..0.9f64, seed in 0u64..1000) {
        let (stats, received) = run(n, loss, seed);
        // Each node broadcasts once to 2 neighbors.
        prop_assert_eq!(stats.messages + stats.dropped, 2 * n);
        let total_received: usize = received.iter().sum();
        prop_assert_eq!(total_received, stats.messages);
    }

    #[test]
    fn lossless_delivers_everything(n in 3usize..40) {
        let (stats, received) = run(n, 0.0, 0);
        prop_assert_eq!(stats.dropped, 0);
        prop_assert!(received.iter().all(|&r| r == 2));
    }

    #[test]
    fn replay_is_deterministic(n in 3usize..30, loss in 0.1..0.9f64, seed in 0u64..1000) {
        let a = run(n, loss, seed);
        let b = run(n, loss, seed);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }

    #[test]
    fn loss_rate_tracks_probability(loss in 0.1..0.9f64, seed in 0u64..50) {
        // Large sample: 400 deliveries; the empirical rate should land
        // within ±0.15 of the configured probability.
        let (stats, _) = run(200, loss, seed);
        let rate = stats.dropped as f64 / (stats.messages + stats.dropped) as f64;
        prop_assert!((rate - loss).abs() < 0.15, "rate {} vs p {}", rate, loss);
    }
}
