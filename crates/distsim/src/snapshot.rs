//! Byte-stable snapshot codec for simulator state.
//!
//! The discrete-event engine (`anr-eventsim`) checkpoints a running
//! simulation — heap, node state, RNG streams — into a versioned,
//! byte-stable blob so long-horizon runs are resumable and a restored
//! run is bit-identical to an uninterrupted one. This module holds the
//! low-level codec that blob is built from:
//!
//! * [`SnapshotWriter`] / [`SnapshotReader`] — little-endian byte
//!   cursors with typed, panic-free error paths;
//! * [`Persist`] — the round-trip trait (`persist` + `restore`)
//!   implemented here for primitives, containers, and the fault-model
//!   types ([`FaultPlan`], [`FaultRng`], …) whose private state must
//!   survive a checkpoint.
//!
//! **Byte stability.** Encoding is defined structurally, not via any
//! derive or hash order: integers are fixed-width little-endian,
//! `f64` goes through [`f64::to_bits`], sequences are a `u64` length
//! followed by elements in order, enums are a `u8` tag in declaration
//! order. Two equal values always encode to identical bytes, on every
//! platform, across runs.

use crate::fault::{ChurnEvent, ChurnKind, DelayModel, FaultPlan, FaultRng};
use std::error::Error;
use std::fmt;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PersistError {
    /// The byte stream ended before a field could be read.
    Truncated {
        /// Byte offset at which the read was attempted.
        at: usize,
        /// Bytes the field needed.
        needed: usize,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The offending tag value.
        tag: u8,
        /// The type being decoded.
        context: &'static str,
    },
    /// A decoded value was out of range for its in-memory type.
    BadValue {
        /// What was being decoded.
        context: &'static str,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated { at, needed } => {
                write!(
                    f,
                    "snapshot truncated: needed {needed} bytes at offset {at}"
                )
            }
            PersistError::BadTag { tag, context } => {
                write!(f, "snapshot has invalid tag {tag} for {context}")
            }
            PersistError::BadValue { context } => {
                write!(f, "snapshot value out of range for {context}")
            }
        }
    }
}

impl Error for PersistError {}

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far, without consuming the writer.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Forward-only little-endian byte cursor.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        SnapshotReader { bytes, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                at: self.pos,
                needed: n,
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(b);
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        self.take(n)
    }
}

/// Byte-stable round-trip encoding.
///
/// `restore(persist(x)) == x` for every value, and equal values encode
/// to identical bytes. Decoding never panics: malformed input surfaces
/// as a [`PersistError`].
pub trait Persist: Sized {
    /// Appends this value's encoding to `w`.
    fn persist(&self, w: &mut SnapshotWriter);
    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// [`PersistError`] when the stream is truncated or malformed.
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError>;
}

impl Persist for u8 {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_u8(*self);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        r.get_u8()
    }
}

impl Persist for u32 {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_u32(*self);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        r.get_u32()
    }
}

impl Persist for u64 {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_u64(*self);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        r.get_u64()
    }
}

impl Persist for usize {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_u64(*self as u64);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        usize::try_from(r.get_u64()?).map_err(|_| PersistError::BadValue { context: "usize" })
    }
}

impl Persist for bool {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_u8(u8::from(*self));
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(PersistError::BadTag {
                tag,
                context: "bool",
            }),
        }
    }
}

impl Persist for f64 {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.to_bits());
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(f64::from_bits(r.get_u64()?))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn persist(&self, w: &mut SnapshotWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.persist(w);
            }
        }
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            tag => Err(PersistError::BadTag {
                tag,
                context: "Option",
            }),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.len() as u64);
        for item in self {
            item.persist(w);
        }
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        let len =
            usize::try_from(r.get_u64()?).map_err(|_| PersistError::BadValue { context: "Vec" })?;
        // Guard against a corrupt length claiming more elements than
        // bytes remain (each element encodes to >= 1 byte).
        if len > r.remaining() {
            return Err(PersistError::Truncated {
                at: r.position(),
                needed: len,
            });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn persist(&self, w: &mut SnapshotWriter) {
        self.0.persist(w);
        self.1.persist(w);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

impl Persist for DelayModel {
    fn persist(&self, w: &mut SnapshotWriter) {
        match *self {
            DelayModel::None => w.put_u8(0),
            DelayModel::Fixed(k) => {
                w.put_u8(1);
                k.persist(w);
            }
            DelayModel::Uniform { min, max } => {
                w.put_u8(2);
                min.persist(w);
                max.persist(w);
            }
        }
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(DelayModel::None),
            1 => Ok(DelayModel::Fixed(usize::restore(r)?)),
            2 => Ok(DelayModel::Uniform {
                min: usize::restore(r)?,
                max: usize::restore(r)?,
            }),
            tag => Err(PersistError::BadTag {
                tag,
                context: "DelayModel",
            }),
        }
    }
}

impl Persist for ChurnKind {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_u8(match self {
            ChurnKind::Crash => 0,
            ChurnKind::Recover => 1,
        });
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(ChurnKind::Crash),
            1 => Ok(ChurnKind::Recover),
            tag => Err(PersistError::BadTag {
                tag,
                context: "ChurnKind",
            }),
        }
    }
}

impl Persist for ChurnEvent {
    fn persist(&self, w: &mut SnapshotWriter) {
        self.round.persist(w);
        self.robot.persist(w);
        self.kind.persist(w);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(ChurnEvent {
            round: usize::restore(r)?,
            robot: usize::restore(r)?,
            kind: ChurnKind::restore(r)?,
        })
    }
}

impl Persist for FaultPlan {
    fn persist(&self, w: &mut SnapshotWriter) {
        self.seed.persist(w);
        self.loss.persist(w);
        self.link_loss.persist(w);
        self.delay.persist(w);
        self.duplication.persist(w);
        self.churn.persist(w);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(FaultPlan {
            seed: u64::restore(r)?,
            loss: f64::restore(r)?,
            link_loss: Vec::restore(r)?,
            delay: DelayModel::restore(r)?,
            duplication: f64::restore(r)?,
            churn: Vec::restore(r)?,
        })
    }
}

impl Persist for FaultRng {
    fn persist(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.state());
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(FaultRng::from_state(r.get_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(value: &T) {
        let mut w = SnapshotWriter::new();
        value.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let back = T::restore(&mut r).expect("restore");
        assert_eq!(&back, value);
        assert_eq!(r.remaining(), 0, "decoder must consume all bytes");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&0u8);
        round_trip(&0xAAu8);
        round_trip(&123_456u32);
        round_trip(&u64::MAX);
        round_trip(&usize::MAX);
        round_trip(&true);
        round_trip(&false);
        round_trip(&1.5f64);
        round_trip(&f64::NEG_INFINITY);
        round_trip(&Some(7usize));
        round_trip(&Option::<u64>::None);
        round_trip(&vec![1u64, 2, 3]);
        round_trip(&(3usize, 0.25f64));
    }

    #[test]
    fn f64_is_bit_stable() {
        // -0.0 and 0.0 are == but must encode differently (bit pattern).
        let mut w = SnapshotWriter::new();
        (-0.0f64).persist(&mut w);
        (0.0f64).persist(&mut w);
        let bytes = w.into_bytes();
        assert_ne!(bytes[..8], bytes[8..]);
    }

    #[test]
    fn fault_types_round_trip() {
        round_trip(&DelayModel::None);
        round_trip(&DelayModel::Fixed(4));
        round_trip(&DelayModel::Uniform { min: 1, max: 3 });
        round_trip(&ChurnEvent {
            round: 9,
            robot: 2,
            kind: ChurnKind::Crash,
        });
        let plan = FaultPlan::reliable(42)
            .with_loss(0.2)
            .with_link_loss(3, 4, 0.8)
            .with_delay(DelayModel::Uniform { min: 0, max: 2 })
            .with_duplication(0.05)
            .with_crash(10, 7)
            .with_recovery(25, 7);
        round_trip(&plan);
    }

    #[test]
    fn fault_rng_round_trip_preserves_stream() {
        let mut rng = FaultRng::new(99);
        for _ in 0..10 {
            rng.next_u64();
        }
        let mut w = SnapshotWriter::new();
        rng.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let mut restored = FaultRng::restore(&mut r).expect("restore");
        let mut original = rng;
        for _ in 0..20 {
            assert_eq!(original.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn truncated_input_is_typed_error() {
        let mut w = SnapshotWriter::new();
        FaultPlan::reliable(7).with_loss(0.1).persist(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapshotReader::new(&bytes[..cut]);
            let err = FaultPlan::restore(&mut r);
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bad_tags_are_typed_errors() {
        let mut r = SnapshotReader::new(&[9]);
        assert_eq!(
            bool::restore(&mut r),
            Err(PersistError::BadTag {
                tag: 9,
                context: "bool"
            })
        );
        let mut r = SnapshotReader::new(&[7]);
        assert!(matches!(
            DelayModel::restore(&mut r),
            Err(PersistError::BadTag {
                tag: 7,
                context: "DelayModel"
            })
        ));
        // A corrupt Vec length larger than the remaining bytes must not
        // trigger a huge allocation; it fails fast as Truncated.
        let mut w = SnapshotWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(
            Vec::<u64>::restore(&mut r),
            Err(PersistError::BadValue { .. }) | Err(PersistError::Truncated { .. })
        ));
    }
}
