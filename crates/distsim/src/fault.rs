//! Fault plans: the declarative description of how a network misbehaves.
//!
//! A [`FaultPlan`] is a seeded, deterministic recipe layered between a
//! node's [`Outbox`](crate::Outbox) and delivery by the
//! [`FaultySimulator`](crate::harness::FaultySimulator). It models the
//! failure regimes the paper motivates but the reliable
//! [`Simulator`](crate::Simulator) cannot express:
//!
//! * **per-link packet loss** — a global loss probability plus per-link
//!   overrides (e.g. one flaky robot pair);
//! * **per-link delay** — messages arrive `k` rounds late, so messages
//!   from different senders (or successive messages on one link) are
//!   reordered relative to the synchronous schedule;
//! * **duplication** — a delivery is occasionally cloned, as retransmit
//!   layers in real radios produce;
//! * **churn** — scheduled robot crashes and recoveries that mute a
//!   robot entirely, mutating the effective topology.
//!
//! Determinism guarantee: the same plan (including `seed`) over the same
//! protocol and topology produces a bit-identical trace — same drops,
//! same delays, same duplicates, same final node states. All
//! randomness is drawn from one splitmix64 stream in a fixed order.

use crate::SimError;

/// How much extra in-flight time a delivery suffers, in rounds.
///
/// `None` keeps the synchronous schedule (arrive next round);
/// `Fixed(k)` adds `k` rounds to every delivery; `Uniform { min, max }`
/// adds an independent uniform draw from `[min, max]` per delivery,
/// which also *reorders* messages (a later send can overtake an earlier
/// one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DelayModel {
    /// No extra delay: synchronous next-round delivery.
    #[default]
    None,
    /// Every delivery is late by exactly this many rounds.
    Fixed(usize),
    /// Each delivery is late by an independent uniform draw from
    /// `[min, max]` rounds.
    Uniform {
        /// Minimum extra rounds (inclusive).
        min: usize,
        /// Maximum extra rounds (inclusive).
        max: usize,
    },
}

impl DelayModel {
    /// Is this the zero-delay model (for any draw)?
    pub fn is_none(&self) -> bool {
        matches!(
            self,
            DelayModel::None | DelayModel::Fixed(0) | DelayModel::Uniform { min: 0, max: 0 }
        )
    }

    /// Largest delay this model can produce.
    pub fn max_delay(&self) -> usize {
        match *self {
            DelayModel::None => 0,
            DelayModel::Fixed(k) => k,
            DelayModel::Uniform { max, .. } => max,
        }
    }
}

/// What happens to a robot at a scheduled churn instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// The robot stops: it no longer receives, computes, or sends, and
    /// deliveries addressed to it are dropped.
    Crash,
    /// The robot resumes with the protocol state it crashed with.
    Recover,
}

/// One scheduled crash or recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Round at whose *beginning* the event takes effect. Round 0 means
    /// "before the protocol starts" — a robot crashed at round 0 never
    /// runs `on_start`.
    pub round: usize,
    /// The affected robot (simulator index).
    pub robot: usize,
    /// Crash or recovery.
    pub kind: ChurnKind,
}

/// Seeded, deterministic description of network misbehavior.
///
/// Build one with [`FaultPlan::reliable`] and layer knobs on with the
/// `with_*` methods:
///
/// ```
/// use anr_distsim::{DelayModel, FaultPlan};
///
/// let plan = FaultPlan::reliable(42)
///     .with_loss(0.2)
///     .with_link_loss(3, 4, 0.8)
///     .with_delay(DelayModel::Uniform { min: 0, max: 2 })
///     .with_duplication(0.05)
///     .with_crash(10, 7)
///     .with_recovery(25, 7);
/// assert!(!plan.is_reliable());
/// assert_eq!(FaultPlan::reliable(42).is_reliable(), true);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault stream (splitmix64).
    pub seed: u64,
    /// Global per-delivery loss probability in `[0, 1)`.
    pub loss: f64,
    /// Per-link loss overrides: `((u, v), p)` with `u < v`; the override
    /// replaces the global probability on that link (both directions).
    pub link_loss: Vec<((usize, usize), f64)>,
    /// Extra in-flight delay per delivery.
    pub delay: DelayModel,
    /// Probability in `[0, 1)` that a delivery is duplicated (the clone
    /// arrives independently, with its own delay draw).
    pub duplication: f64,
    /// Scheduled crashes and recoveries, in any order (the harness sorts
    /// by round, ties broken by list order).
    pub churn: Vec<ChurnEvent>,
}

impl FaultPlan {
    /// A plan with every fault knob at zero: the [`FaultySimulator`]
    /// under this plan is bit-identical to the reliable
    /// [`Simulator`](crate::Simulator).
    ///
    /// [`FaultySimulator`]: crate::harness::FaultySimulator
    pub fn reliable(seed: u64) -> Self {
        FaultPlan {
            seed,
            loss: 0.0,
            link_loss: Vec::new(),
            delay: DelayModel::None,
            duplication: 0.0,
            churn: Vec::new(),
        }
    }

    /// Sets the global per-delivery loss probability.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1)`.
    #[must_use]
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "loss probability must be in [0, 1)"
        );
        self.loss = p;
        self
    }

    /// Overrides the loss probability on the link `{u, v}` (applies to
    /// both directions).
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1)` or `u == v`.
    #[must_use]
    pub fn with_link_loss(mut self, u: usize, v: usize, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "loss probability must be in [0, 1)"
        );
        assert_ne!(u, v, "a link needs two distinct endpoints");
        let key = (u.min(v), u.max(v));
        if let Some(entry) = self.link_loss.iter_mut().find(|(k, _)| *k == key) {
            entry.1 = p;
        } else {
            self.link_loss.push((key, p));
        }
        self
    }

    /// Sets the delay model.
    #[must_use]
    pub fn with_delay(mut self, delay: DelayModel) -> Self {
        if let DelayModel::Uniform { min, max } = delay {
            assert!(min <= max, "delay range must satisfy min <= max");
        }
        self.delay = delay;
        self
    }

    /// Sets the per-delivery duplication probability.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1)`.
    #[must_use]
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "duplication probability must be in [0, 1)"
        );
        self.duplication = p;
        self
    }

    /// Schedules `robot` to crash at the beginning of `round`.
    #[must_use]
    pub fn with_crash(mut self, round: usize, robot: usize) -> Self {
        self.churn.push(ChurnEvent {
            round,
            robot,
            kind: ChurnKind::Crash,
        });
        self
    }

    /// Schedules `robot` to recover at the beginning of `round`.
    #[must_use]
    pub fn with_recovery(mut self, round: usize, robot: usize) -> Self {
        self.churn.push(ChurnEvent {
            round,
            robot,
            kind: ChurnKind::Recover,
        });
        self
    }

    /// True when every fault knob is at zero — the plan that must
    /// reproduce the reliable simulator exactly.
    pub fn is_reliable(&self) -> bool {
        self.loss == 0.0
            && self.link_loss.iter().all(|&(_, p)| p == 0.0)
            && self.delay.is_none()
            && self.duplication == 0.0
            && self.churn.is_empty()
    }

    /// Loss probability on the (directed) delivery `from → to`.
    pub fn loss_on(&self, from: usize, to: usize) -> f64 {
        let key = (from.min(to), from.max(to));
        self.link_loss
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(self.loss, |&(_, p)| p)
    }

    /// Checks the plan against a simulation of `n` nodes.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFaultPlan`] when a churn event or link
    /// override references a robot index `>= n`.
    pub fn validate(&self, n: usize) -> Result<(), SimError> {
        for ev in &self.churn {
            if ev.robot >= n {
                return Err(SimError::InvalidFaultPlan {
                    reason: format!(
                        "churn event at round {} references robot {} (only {n} robots)",
                        ev.round, ev.robot
                    ),
                });
            }
        }
        for &((u, v), _) in &self.link_loss {
            if u >= n || v >= n {
                return Err(SimError::InvalidFaultPlan {
                    reason: format!("link-loss override ({u}, {v}) out of range (only {n} robots)"),
                });
            }
        }
        Ok(())
    }
}

/// The deterministic splitmix64 stream feeding all fault decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates the stream from the plan's seed.
    pub fn new(seed: u64) -> Self {
        FaultRng {
            state: seed ^ 0x5DEECE66D,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[min, max]`.
    pub fn uniform_usize(&mut self, min: usize, max: usize) -> usize {
        debug_assert!(min <= max);
        min + (self.next_u64() % (max - min + 1) as u64) as usize
    }

    /// Current internal state word (for checkpointing).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds the stream from a previously captured [`state`].
    ///
    /// [`state`]: FaultRng::state
    pub fn from_state(state: u64) -> Self {
        FaultRng { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_plan_is_reliable() {
        assert!(FaultPlan::reliable(0).is_reliable());
        assert!(!FaultPlan::reliable(0).with_loss(0.1).is_reliable());
        assert!(!FaultPlan::reliable(0)
            .with_delay(DelayModel::Fixed(1))
            .is_reliable());
        assert!(!FaultPlan::reliable(0).with_duplication(0.1).is_reliable());
        assert!(!FaultPlan::reliable(0).with_crash(3, 0).is_reliable());
        // Zero-valued knobs still count as reliable.
        assert!(FaultPlan::reliable(0)
            .with_loss(0.0)
            .with_delay(DelayModel::Fixed(0))
            .with_link_loss(0, 1, 0.0)
            .is_reliable());
    }

    #[test]
    fn link_override_replaces_global_loss() {
        let plan = FaultPlan::reliable(0)
            .with_loss(0.2)
            .with_link_loss(4, 2, 0.9);
        assert_eq!(plan.loss_on(2, 4), 0.9);
        assert_eq!(plan.loss_on(4, 2), 0.9);
        assert_eq!(plan.loss_on(0, 1), 0.2);
        // Re-overriding the same (normalized) link updates in place.
        let plan = plan.with_link_loss(2, 4, 0.5);
        assert_eq!(plan.loss_on(4, 2), 0.5);
        assert_eq!(plan.link_loss.len(), 1);
    }

    #[test]
    fn validation_catches_bad_indices() {
        assert!(FaultPlan::reliable(0).with_crash(1, 9).validate(5).is_err());
        assert!(FaultPlan::reliable(0)
            .with_link_loss(0, 9, 0.5)
            .validate(5)
            .is_err());
        assert!(FaultPlan::reliable(0).with_crash(1, 4).validate(5).is_ok());
    }

    #[test]
    fn delay_model_classification() {
        assert!(DelayModel::None.is_none());
        assert!(DelayModel::Fixed(0).is_none());
        assert!(!DelayModel::Fixed(2).is_none());
        assert_eq!(DelayModel::Uniform { min: 1, max: 3 }.max_delay(), 3);
    }

    #[test]
    fn fault_rng_is_deterministic() {
        let mut a = FaultRng::new(99);
        let mut b = FaultRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = FaultRng::new(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_usize_hits_bounds() {
        let mut rng = FaultRng::new(5);
        let draws: Vec<usize> = (0..200).map(|_| rng.uniform_usize(1, 3)).collect();
        assert!(draws.contains(&1));
        assert!(draws.contains(&3));
        assert!(draws.iter().all(|&d| (1..=3).contains(&d)));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_full_loss() {
        let _ = FaultPlan::reliable(0).with_loss(1.0);
    }
}
