//! The lossy, delaying, duplicating channel between outboxes and
//! delivery.
//!
//! [`FaultChannel`] replaces the reliable simulator's single
//! next-round in-flight buffer with a queue of future delivery slots:
//! slot 0 is delivered next round, slot `k` in `k + 1` rounds. Every
//! offered message passes the [`FaultPlan`]'s per-link loss draw, an
//! optional duplication draw, and a delay draw; all three come from one
//! seeded splitmix64 stream, so a channel trace is a pure function of
//! `(plan, offer sequence)`.
//!
//! With a [`FaultPlan::is_reliable`] plan the channel makes **zero**
//! random draws and degenerates to exactly the reliable simulator's
//! buffer: one slot, same ordering — the property the equivalence tests
//! pin down.

use crate::fault::{DelayModel, FaultPlan, FaultRng};
use crate::Envelope;
use anr_trace::{TraceValue, Tracer};

/// Delivery accounting maintained by the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Messages accepted into a delivery slot (duplicates count).
    pub accepted: usize,
    /// Messages dropped by the loss model.
    pub dropped_loss: usize,
    /// Messages dropped at delivery because the recipient was crashed.
    pub dropped_crash: usize,
    /// Extra copies created by the duplication model.
    pub duplicated: usize,
    /// Deliveries that suffered a non-zero delay.
    pub delayed: usize,
}

/// Seeded fault-injecting message channel.
#[derive(Debug, Clone)]
pub struct FaultChannel<M> {
    plan: FaultPlan,
    rng: FaultRng,
    /// `slots[k][recipient]`: envelopes arriving `k + 1` rounds from now.
    /// Index 0 is the next delivery round (the reliable buffer).
    slots: std::collections::VecDeque<Vec<Vec<Envelope<M>>>>,
    n: usize,
    stats: ChannelStats,
    tracer: Tracer,
}

impl<M: Clone> FaultChannel<M> {
    /// Creates a channel for `n` recipients under `plan`.
    pub fn new(plan: FaultPlan, n: usize) -> Self {
        let rng = FaultRng::new(plan.seed);
        FaultChannel {
            plan,
            rng,
            slots: std::collections::VecDeque::new(),
            n,
            stats: ChannelStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer: every offered message then emits a `msg_send`
    /// (with its drawn delay), `msg_drop` (reason `loss` or `crash`), or
    /// `msg_deliver` event. Tracing is observation only — the random
    /// stream and delivery order are untouched.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// The plan driving this channel.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Accounting so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Offers one `from → to` delivery to the fault model. The message
    /// may be dropped, delayed, and/or duplicated; surviving copies are
    /// queued for future delivery.
    pub fn offer(&mut self, from: usize, to: usize, msg: M) {
        debug_assert!(to < self.n, "recipient out of range");
        let p = self.plan.loss_on(from, to);
        if p > 0.0 && self.rng.unit() < p {
            self.stats.dropped_loss += 1;
            if self.tracer.is_enabled() {
                self.tracer.event(
                    "msg_drop",
                    &[
                        ("from", TraceValue::U64(from as u64)),
                        ("to", TraceValue::U64(to as u64)),
                        ("reason", TraceValue::Str("loss".to_string())),
                    ],
                );
            }
            return;
        }
        let copies = if self.plan.duplication > 0.0 && self.rng.unit() < self.plan.duplication {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let delay = match self.plan.delay {
                DelayModel::None => 0,
                DelayModel::Fixed(k) => k,
                DelayModel::Uniform { min, max } => {
                    if min == max {
                        min
                    } else {
                        self.rng.uniform_usize(min, max)
                    }
                }
            };
            if delay > 0 {
                self.stats.delayed += 1;
            }
            while self.slots.len() <= delay {
                self.slots.push_back(vec![Vec::new(); self.n]);
            }
            self.slots[delay][to].push(Envelope {
                from,
                msg: msg.clone(),
            });
            self.stats.accepted += 1;
            if self.tracer.is_enabled() {
                self.tracer.event(
                    "msg_send",
                    &[
                        ("from", TraceValue::U64(from as u64)),
                        ("to", TraceValue::U64(to as u64)),
                        ("delay", TraceValue::U64(delay as u64)),
                    ],
                );
            }
        }
    }

    /// Pops the next round's inboxes. Envelopes addressed to a robot
    /// marked crashed are dropped (and counted).
    pub fn deliver_next(&mut self, crashed: &[bool]) -> Vec<Vec<Envelope<M>>> {
        let mut inboxes = match self.slots.pop_front() {
            Some(slot) => slot,
            None => vec![Vec::new(); self.n],
        };
        for (to, inbox) in inboxes.iter_mut().enumerate() {
            if crashed.get(to).copied().unwrap_or(false) && !inbox.is_empty() {
                self.stats.dropped_crash += inbox.len();
                if self.tracer.is_enabled() {
                    self.tracer.event(
                        "msg_drop",
                        &[
                            ("to", TraceValue::U64(to as u64)),
                            ("count", TraceValue::U64(inbox.len() as u64)),
                            ("reason", TraceValue::Str("crash".to_string())),
                        ],
                    );
                }
                inbox.clear();
            } else if !inbox.is_empty() && self.tracer.is_enabled() {
                self.tracer.event(
                    "msg_deliver",
                    &[
                        ("to", TraceValue::U64(to as u64)),
                        ("count", TraceValue::U64(inbox.len() as u64)),
                    ],
                );
            }
        }
        inboxes
    }

    /// Are any deliveries queued (for any future round)?
    pub fn has_pending(&self) -> bool {
        self.slots
            .iter()
            .any(|slot| slot.iter().any(|ib| !ib.is_empty()))
    }

    /// Robots with at least one delivery queued towards them, sorted.
    pub fn pending_recipients(&self) -> Vec<usize> {
        let mut pending: Vec<usize> = (0..self.n)
            .filter(|&to| self.slots.iter().any(|slot| !slot[to].is_empty()))
            .collect();
        pending.dedup();
        pending
    }

    /// Total queued deliveries across all future rounds.
    pub fn pending_count(&self) -> usize {
        self.slots
            .iter()
            .map(|slot| slot.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_channel_is_a_one_round_buffer() {
        let mut ch: FaultChannel<u32> = FaultChannel::new(FaultPlan::reliable(1), 3);
        ch.offer(0, 1, 10);
        ch.offer(2, 1, 20);
        ch.offer(1, 0, 30);
        assert!(ch.has_pending());
        assert_eq!(ch.pending_recipients(), vec![0, 1]);
        let inboxes = ch.deliver_next(&[false, false, false]);
        assert_eq!(inboxes[1].len(), 2);
        assert_eq!(inboxes[1][0].from, 0);
        assert_eq!(inboxes[1][1].from, 2);
        assert_eq!(inboxes[0][0].msg, 30);
        assert!(!ch.has_pending());
        assert_eq!(ch.stats().accepted, 3);
        assert_eq!(ch.stats().dropped_loss, 0);
    }

    #[test]
    fn fixed_delay_postpones_delivery() {
        let plan = FaultPlan::reliable(1).with_delay(DelayModel::Fixed(2));
        let mut ch: FaultChannel<u32> = FaultChannel::new(plan, 2);
        ch.offer(0, 1, 5);
        // Two rounds of nothing, then the message.
        assert!(ch.deliver_next(&[false, false])[1].is_empty());
        assert!(ch.deliver_next(&[false, false])[1].is_empty());
        assert_eq!(ch.deliver_next(&[false, false])[1].len(), 1);
        assert_eq!(ch.stats().delayed, 1);
    }

    #[test]
    fn crashed_recipient_drops_at_delivery() {
        let mut ch: FaultChannel<u32> = FaultChannel::new(FaultPlan::reliable(1), 2);
        ch.offer(0, 1, 5);
        let inboxes = ch.deliver_next(&[false, true]);
        assert!(inboxes[1].is_empty());
        assert_eq!(ch.stats().dropped_crash, 1);
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let plan = FaultPlan::reliable(seed).with_loss(0.5);
            let mut ch: FaultChannel<u32> = FaultChannel::new(plan, 2);
            for i in 0..100 {
                ch.offer(0, 1, i);
            }
            ch.stats()
        };
        assert_eq!(run(7), run(7));
        let s = run(7);
        assert!(s.dropped_loss > 20 && s.dropped_loss < 80);
        assert_eq!(s.accepted + s.dropped_loss, 100);
    }

    #[test]
    fn duplication_creates_extra_copies() {
        let plan = FaultPlan::reliable(3).with_duplication(0.5);
        let mut ch: FaultChannel<u32> = FaultChannel::new(plan, 2);
        for i in 0..100 {
            ch.offer(0, 1, i);
        }
        let s = ch.stats();
        assert!(s.duplicated > 20 && s.duplicated < 80);
        assert_eq!(s.accepted, 100 + s.duplicated);
    }

    #[test]
    fn uniform_delay_reorders() {
        let plan = FaultPlan::reliable(11).with_delay(DelayModel::Uniform { min: 0, max: 3 });
        let mut ch: FaultChannel<u32> = FaultChannel::new(plan, 2);
        for i in 0..20 {
            ch.offer(0, 1, i);
        }
        let crashed = [false, false];
        let mut arrival: Vec<u32> = Vec::new();
        for _ in 0..5 {
            arrival.extend(ch.deliver_next(&crashed)[1].iter().map(|e| e.msg));
        }
        assert_eq!(arrival.len(), 20, "all messages eventually arrive");
        let mut sorted = arrival.clone();
        sorted.sort_unstable();
        assert_ne!(arrival, sorted, "uniform delay should reorder (seed 11)");
    }

    #[test]
    fn per_link_override_applies() {
        // Global loss stays 0; only link {0, 1} is overridden to 95%.
        let plan = FaultPlan::reliable(5).with_link_loss(0, 1, 0.95);
        let mut ch: FaultChannel<u32> = FaultChannel::new(plan, 3);
        for i in 0..100 {
            ch.offer(0, 1, i); // lossy link
            ch.offer(0, 2, i); // clean link
        }
        let s = ch.stats();
        assert!(s.dropped_loss > 70, "95% loss link should drop most");
        // The clean link delivered everything: accepted >= 100.
        assert!(s.accepted >= 100);
    }
}
