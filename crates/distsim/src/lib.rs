//! # anr-distsim — synchronous round-based message-passing simulator
//!
//! The ICDCS 2016 optimal-marching paper specifies its algorithms at the
//! message level: boundary vertices pass a hop-counting token around the
//! boundary loop, robots flood their stable-link ratios, isolated
//! subgroups are discovered by packets initiated at boundary vertices
//! (Sec. III-B, III-D-1). This crate is the substrate those protocols run
//! on: a deterministic, synchronous, round-based network simulator.
//!
//! * Nodes implement the [`Node`] trait (`on_start` + `on_round`).
//! * Communication topology is a fixed undirected graph; a node may only
//!   send to its neighbors (enforced).
//! * Each round delivers all messages sent in the previous round.
//! * [`Simulator::run_until_quiet`] runs until no messages are in flight
//!   and reports round/message accounting.
//!
//! ## Example: min-ID flooding (leader election)
//!
//! ```
//! use anr_distsim::{Envelope, Node, Outbox, Simulator};
//!
//! struct MinId { id: usize, min_seen: usize }
//!
//! impl Node for MinId {
//!     type Msg = usize;
//!     fn on_start(&mut self, out: &mut Outbox<usize>) {
//!         out.broadcast(self.id);
//!     }
//!     fn on_round(&mut self, _round: usize, inbox: &[Envelope<usize>], out: &mut Outbox<usize>) {
//!         for env in inbox {
//!             if env.msg < self.min_seen {
//!                 self.min_seen = env.msg;
//!                 out.broadcast(env.msg);
//!             }
//!         }
//!     }
//! }
//!
//! // A path graph 0 - 1 - 2.
//! let nodes = (0..3).map(|id| MinId { id, min_seen: id }).collect();
//! let mut sim = Simulator::new(nodes, vec![vec![1], vec![0, 2], vec![1]])?;
//! let stats = sim.run_until_quiet(100)?;
//! assert!(stats.rounds <= 4);
//! assert!(sim.nodes().iter().all(|n| n.min_seen == 0));
//! # Ok::<(), anr_distsim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod channel;
pub mod fault;
pub mod harness;
pub mod snapshot;

pub use channel::FaultChannel;
pub use fault::{ChurnEvent, ChurnKind, DelayModel, FaultPlan};
pub use harness::{FaultStats, FaultySimulator};
pub use snapshot::{Persist, PersistError, SnapshotReader, SnapshotWriter};

use std::error::Error;
use std::fmt;

/// A received message together with its sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Index of the sending node.
    pub from: usize,
    /// The message payload.
    pub msg: M,
}

/// Outgoing-message buffer handed to a node during its turn.
///
/// Sends are addressed by node index and validated against the topology
/// when the round is committed.
#[derive(Debug)]
pub struct Outbox<M> {
    /// (to, msg) pairs; `usize::MAX` destination means broadcast.
    queued: Vec<(usize, M)>,
}

/// Destination marker for a broadcast to all neighbors.
///
/// Queued sends carrying this destination are expanded over the
/// sender's adjacency row (in neighbor order) when the outbox is
/// committed. Exposed so alternative execution engines (e.g. the
/// discrete-event engine in `anr-eventsim`) can expand outboxes with
/// semantics identical to [`Simulator`].
pub const BROADCAST: usize = usize::MAX;

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox::new()
    }
}

impl<M> Outbox<M> {
    /// An empty outbox. Public so alternative execution engines can
    /// drive [`Node`] implementations directly.
    pub fn new() -> Self {
        Outbox { queued: Vec::new() }
    }

    /// Queues a message to the neighbor with index `to`.
    ///
    /// Sending to a non-neighbor is detected when the round commits and
    /// fails the simulation with [`SimError::NotANeighbor`].
    pub fn send(&mut self, to: usize, msg: M) {
        self.queued.push((to, msg));
    }

    /// Queues a copy of `msg` to every neighbor.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        self.queued.push((BROADCAST, msg));
    }

    /// Number of queued sends (a broadcast counts once here).
    pub fn len(&self) -> usize {
        self.queued.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queued.is_empty()
    }

    /// Drains the queued sends.
    ///
    /// Destinations equal to [`BROADCAST`] denote a broadcast and must
    /// be expanded over the sender's neighbor list by the caller.
    /// Public so alternative execution engines can commit outboxes with
    /// the same expansion order as [`Simulator`].
    pub fn take_queued(&mut self) -> Vec<(usize, M)> {
        std::mem::take(&mut self.queued)
    }
}

/// A protocol participant.
///
/// Nodes are identified by their index in the simulator's node vector;
/// the topology's adjacency list uses the same indices.
pub trait Node {
    /// Message type exchanged by this protocol.
    type Msg: Clone;

    /// Called once before round 0; initial sends go to `out`.
    fn on_start(&mut self, out: &mut Outbox<Self::Msg>);

    /// Called every round with the messages delivered this round.
    ///
    /// `inbox` is empty for nodes that received nothing; such nodes are
    /// still stepped so timeouts can be modeled with the round counter.
    fn on_round(
        &mut self,
        round: usize,
        inbox: &[Envelope<Self::Msg>],
        out: &mut Outbox<Self::Msg>,
    );
}

/// Accounting for a finished simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Number of rounds executed (not counting `on_start`).
    pub rounds: usize,
    /// Total messages delivered (a broadcast to k neighbors counts k).
    pub messages: usize,
    /// Messages dropped by the loss model (see [`Simulator::with_loss`]).
    pub dropped: usize,
}

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Adjacency list length does not match the node count.
    TopologyMismatch {
        /// Number of nodes supplied.
        nodes: usize,
        /// Length of the adjacency list.
        adjacency: usize,
    },
    /// The adjacency list references a node that does not exist.
    BadNeighborIndex {
        /// Node whose adjacency row is invalid.
        node: usize,
        /// The out-of-range neighbor index.
        neighbor: usize,
    },
    /// The adjacency list is not symmetric (undirected graph required).
    AsymmetricTopology {
        /// Edge present as (from, to) but not (to, from).
        from: usize,
        /// See `from`.
        to: usize,
    },
    /// A node tried to send to a non-neighbor.
    NotANeighbor {
        /// The sending node.
        from: usize,
        /// The invalid destination.
        to: usize,
    },
    /// `run_until_quiet` hit its round limit with messages still flowing.
    NotQuiescent {
        /// The round limit that was exceeded.
        max_rounds: usize,
        /// Nodes that still had messages in flight towards them when the
        /// limit was hit — the first place to look when debugging a
        /// protocol that fails to terminate (especially under faults).
        pending: Vec<usize>,
    },
    /// A [`fault::FaultPlan`] is inconsistent with the simulation.
    InvalidFaultPlan {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TopologyMismatch { nodes, adjacency } => {
                write!(f, "adjacency list has {adjacency} rows for {nodes} nodes")
            }
            SimError::BadNeighborIndex { node, neighbor } => {
                write!(f, "node {node} lists non-existent neighbor {neighbor}")
            }
            SimError::AsymmetricTopology { from, to } => {
                write!(f, "edge ({from}, {to}) present but ({to}, {from}) missing")
            }
            SimError::NotANeighbor { from, to } => {
                write!(f, "node {from} sent to non-neighbor {to}")
            }
            SimError::NotQuiescent {
                max_rounds,
                pending,
            } => {
                write!(
                    f,
                    "protocol still active after {max_rounds} rounds \
                     ({} node(s) with messages in flight: {:?})",
                    pending.len(),
                    pending
                )
            }
            SimError::InvalidFaultPlan { reason } => {
                write!(f, "invalid fault plan: {reason}")
            }
        }
    }
}

impl Error for SimError {}

/// Deterministic synchronous network simulator.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct Simulator<N: Node> {
    nodes: Vec<N>,
    adjacency: Vec<Vec<usize>>,
    /// Messages in flight, to be delivered next round: per-recipient inboxes.
    in_flight: Vec<Vec<Envelope<N::Msg>>>,
    stats: SimStats,
    started: bool,
    /// Per-message drop probability in [0, 1); 0 = lossless.
    loss_probability: f64,
    /// Deterministic RNG state for the loss model (splitmix64).
    loss_state: u64,
}

impl<N: Node> Simulator<N> {
    /// Creates a simulator over `nodes` connected by `adjacency`.
    ///
    /// # Errors
    ///
    /// * [`SimError::TopologyMismatch`] — row count ≠ node count.
    /// * [`SimError::BadNeighborIndex`] — neighbor index out of range.
    /// * [`SimError::AsymmetricTopology`] — directed edge without reverse.
    pub fn new(nodes: Vec<N>, adjacency: Vec<Vec<usize>>) -> Result<Self, SimError> {
        if nodes.len() != adjacency.len() {
            return Err(SimError::TopologyMismatch {
                nodes: nodes.len(),
                adjacency: adjacency.len(),
            });
        }
        for (u, nbrs) in adjacency.iter().enumerate() {
            for &v in nbrs {
                if v >= nodes.len() {
                    return Err(SimError::BadNeighborIndex {
                        node: u,
                        neighbor: v,
                    });
                }
                if !adjacency[v].contains(&u) {
                    return Err(SimError::AsymmetricTopology { from: u, to: v });
                }
            }
        }
        let n = nodes.len();
        Ok(Simulator {
            nodes,
            adjacency,
            in_flight: vec![Vec::new(); n],
            stats: SimStats::default(),
            started: false,
            loss_probability: 0.0,
            loss_state: 0,
        })
    }

    /// Enables a deterministic message-loss model: every delivery is
    /// independently dropped with the given probability, driven by a
    /// seeded splitmix64 stream — the "unexpected event" failure
    /// injection used to stress the protocols.
    ///
    /// # Panics
    ///
    /// Panics when `probability` is not in `[0, 1)`.
    pub fn with_loss(mut self, probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&probability),
            "loss probability must be in [0, 1)"
        );
        self.loss_probability = probability;
        self.loss_state = seed ^ 0x5DEECE66D;
        self
    }

    /// Draws the next uniform sample from the loss stream.
    fn next_loss_sample(&mut self) -> f64 {
        self.loss_state = self.loss_state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.loss_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Should this delivery be dropped?
    fn drops(&mut self) -> bool {
        self.loss_probability > 0.0 && self.next_loss_sample() < self.loss_probability
    }

    /// Read access to the nodes (inspect protocol state after a run).
    #[inline]
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Mutable access to the nodes.
    #[inline]
    pub fn nodes_mut(&mut self) -> &mut [N] {
        &mut self.nodes
    }

    /// The communication topology.
    #[inline]
    pub fn adjacency(&self) -> &[Vec<usize>] {
        &self.adjacency
    }

    /// Accounting so far.
    #[inline]
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Are any messages waiting to be delivered?
    pub fn has_messages_in_flight(&self) -> bool {
        self.in_flight.iter().any(|ib| !ib.is_empty())
    }

    /// Nodes with at least one message in flight towards them.
    pub fn pending_recipients(&self) -> Vec<usize> {
        self.in_flight
            .iter()
            .enumerate()
            .filter(|(_, ib)| !ib.is_empty())
            .map(|(i, _)| i)
            .collect()
    }

    fn commit_outbox(&mut self, from: usize, out: Outbox<N::Msg>) -> Result<(), SimError> {
        for (to, msg) in out.queued {
            if to == BROADCAST {
                for k in 0..self.adjacency[from].len() {
                    let nbr = self.adjacency[from][k];
                    if self.drops() {
                        self.stats.dropped += 1;
                        continue;
                    }
                    self.in_flight[nbr].push(Envelope {
                        from,
                        msg: msg.clone(),
                    });
                    self.stats.messages += 1;
                }
            } else {
                if !self.adjacency[from].contains(&to) {
                    return Err(SimError::NotANeighbor { from, to });
                }
                if self.drops() {
                    self.stats.dropped += 1;
                    continue;
                }
                self.in_flight[to].push(Envelope { from, msg });
                self.stats.messages += 1;
            }
        }
        Ok(())
    }

    /// Runs `on_start` on every node (idempotent: only the first call
    /// has an effect).
    pub fn start(&mut self) -> Result<(), SimError> {
        if self.started {
            return Ok(());
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let mut out = Outbox::new();
            self.nodes[i].on_start(&mut out);
            self.commit_outbox(i, out)?;
        }
        Ok(())
    }

    /// Executes one synchronous round: delivers all in-flight messages
    /// and steps every node. Returns the number of messages delivered.
    pub fn step_round(&mut self) -> Result<usize, SimError> {
        self.start()?;
        let round = self.stats.rounds;
        let inboxes: Vec<Vec<Envelope<N::Msg>>> =
            self.in_flight.iter_mut().map(std::mem::take).collect();
        let delivered = inboxes.iter().map(Vec::len).sum();
        for (i, inbox) in inboxes.iter().enumerate() {
            let mut out = Outbox::new();
            self.nodes[i].on_round(round, inbox, &mut out);
            self.commit_outbox(i, out)?;
        }
        self.stats.rounds += 1;
        Ok(delivered)
    }

    /// Runs rounds until no messages are in flight.
    ///
    /// # Errors
    ///
    /// [`SimError::NotQuiescent`] when `max_rounds` is exceeded, plus any
    /// send-validation error.
    pub fn run_until_quiet(&mut self, max_rounds: usize) -> Result<SimStats, SimError> {
        self.start()?;
        let mut rounds_left = max_rounds;
        while self.has_messages_in_flight() {
            if rounds_left == 0 {
                return Err(SimError::NotQuiescent {
                    max_rounds,
                    pending: self.pending_recipients(),
                });
            }
            self.step_round()?;
            rounds_left -= 1;
        }
        Ok(self.stats)
    }

    /// Consumes the simulator, returning the nodes.
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every node floods a token once; counts received tokens.
    struct Counter {
        received: usize,
    }

    impl Node for Counter {
        type Msg = ();
        fn on_start(&mut self, out: &mut Outbox<()>) {
            out.broadcast(());
        }
        fn on_round(&mut self, _round: usize, inbox: &[Envelope<()>], _out: &mut Outbox<()>) {
            self.received += inbox.len();
        }
    }

    fn ring(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect()
    }

    #[test]
    fn broadcast_reaches_all_neighbors() {
        let nodes = (0..5).map(|_| Counter { received: 0 }).collect();
        let mut sim = Simulator::new(nodes, ring(5)).unwrap();
        let stats = sim.run_until_quiet(10).unwrap();
        assert_eq!(stats.messages, 10); // 5 broadcasts × 2 neighbors
        for n in sim.nodes() {
            assert_eq!(n.received, 2);
        }
    }

    #[test]
    fn rejects_topology_mismatch() {
        let nodes = vec![Counter { received: 0 }];
        assert!(matches!(
            Simulator::new(nodes, vec![vec![], vec![]]),
            Err(SimError::TopologyMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_neighbor() {
        let nodes = vec![Counter { received: 0 }, Counter { received: 0 }];
        assert!(matches!(
            Simulator::new(nodes, vec![vec![5], vec![0]]),
            Err(SimError::BadNeighborIndex {
                node: 0,
                neighbor: 5
            })
        ));
    }

    #[test]
    fn rejects_asymmetric_topology() {
        let nodes = vec![Counter { received: 0 }, Counter { received: 0 }];
        assert!(matches!(
            Simulator::new(nodes, vec![vec![1], vec![]]),
            Err(SimError::AsymmetricTopology { from: 0, to: 1 })
        ));
    }

    /// Sends a single message to an explicit non-neighbor.
    struct BadSender;
    impl Node for BadSender {
        type Msg = ();
        fn on_start(&mut self, out: &mut Outbox<()>) {
            out.send(2, ());
        }
        fn on_round(&mut self, _: usize, _: &[Envelope<()>], _: &mut Outbox<()>) {}
    }

    #[test]
    fn rejects_send_to_non_neighbor() {
        // Path 0-1-2: node 0 tries to skip to node 2.
        let nodes = vec![BadSender, BadSender, BadSender];
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        let mut sim = Simulator::new(nodes, adj).unwrap();
        assert!(matches!(
            sim.start(),
            Err(SimError::NotANeighbor { from: 0, to: 2 })
        ));
    }

    /// Ping-pong forever: never quiescent.
    struct PingPong;
    impl Node for PingPong {
        type Msg = u32;
        fn on_start(&mut self, out: &mut Outbox<u32>) {
            out.broadcast(0);
        }
        fn on_round(&mut self, _round: usize, inbox: &[Envelope<u32>], out: &mut Outbox<u32>) {
            for env in inbox {
                out.send(env.from, env.msg + 1);
            }
        }
    }

    #[test]
    fn non_quiescent_protocol_hits_limit() {
        let nodes = vec![PingPong, PingPong];
        let mut sim = Simulator::new(nodes, vec![vec![1], vec![0]]).unwrap();
        match sim.run_until_quiet(50) {
            Err(SimError::NotQuiescent {
                max_rounds,
                pending,
            }) => {
                assert_eq!(max_rounds, 50);
                // Both ping-pong nodes still have a message inbound.
                assert_eq!(pending, vec![0, 1]);
            }
            other => panic!("expected NotQuiescent, got {other:?}"),
        }
        assert_eq!(sim.stats().rounds, 50);
    }

    /// Hop counter: measures BFS distance from node 0.
    struct Hop {
        dist: Option<usize>,
    }
    impl Node for Hop {
        type Msg = usize;
        fn on_start(&mut self, out: &mut Outbox<usize>) {
            if self.dist == Some(0) {
                out.broadcast(1);
            }
        }
        fn on_round(&mut self, _round: usize, inbox: &[Envelope<usize>], out: &mut Outbox<usize>) {
            for env in inbox {
                if self.dist.is_none() || env.msg < self.dist.unwrap() {
                    self.dist = Some(env.msg);
                    out.broadcast(env.msg + 1);
                }
            }
        }
    }

    #[test]
    fn hop_count_field_matches_bfs() {
        // Path of 6 nodes.
        let n = 6;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i - 1);
                }
                if i + 1 < n {
                    v.push(i + 1);
                }
                v
            })
            .collect();
        let nodes = (0..n)
            .map(|i| Hop {
                dist: if i == 0 { Some(0) } else { None },
            })
            .collect();
        let mut sim = Simulator::new(nodes, adj).unwrap();
        let stats = sim.run_until_quiet(20).unwrap();
        for (i, node) in sim.nodes().iter().enumerate() {
            assert_eq!(node.dist, Some(i));
        }
        assert!(stats.rounds <= n + 1);
    }

    #[test]
    fn step_round_counts_delivered() {
        let nodes = (0..3).map(|_| Counter { received: 0 }).collect();
        let mut sim = Simulator::new(nodes, ring(3)).unwrap();
        sim.start().unwrap();
        let delivered = sim.step_round().unwrap();
        assert_eq!(delivered, 6);
        assert!(!sim.has_messages_in_flight());
    }

    #[test]
    fn start_is_idempotent() {
        let nodes = (0..3).map(|_| Counter { received: 0 }).collect();
        let mut sim = Simulator::new(nodes, ring(3)).unwrap();
        sim.start().unwrap();
        sim.start().unwrap();
        let stats = sim.run_until_quiet(10).unwrap();
        assert_eq!(stats.messages, 6); // not doubled
    }

    #[test]
    fn lossless_by_default() {
        let nodes = (0..4).map(|_| Counter { received: 0 }).collect();
        let mut sim = Simulator::new(nodes, ring(4)).unwrap();
        let stats = sim.run_until_quiet(10).unwrap();
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.messages, 8);
    }

    #[test]
    fn loss_model_drops_deterministically() {
        let run = |seed: u64| -> SimStats {
            let nodes = (0..8).map(|_| Counter { received: 0 }).collect();
            let mut sim = Simulator::new(nodes, ring(8)).unwrap().with_loss(0.5, seed);
            sim.run_until_quiet(10).unwrap()
        };
        let a = run(1);
        let b = run(1);
        assert_eq!(a, b, "same seed must reproduce the same drops");
        assert!(a.dropped > 0, "p=0.5 over 16 messages should drop some");
        assert_eq!(a.messages + a.dropped, 16);
        // A different seed gives a different (but valid) trace.
        let c = run(2);
        assert_eq!(c.messages + c.dropped, 16);
    }

    #[test]
    fn full_loss_probability_rejected() {
        let nodes: Vec<Counter> = vec![Counter { received: 0 }];
        let sim = Simulator::new(nodes, vec![vec![]]).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = sim.with_loss(1.0, 0);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn hop_field_degrades_gracefully_under_loss() {
        // BFS flooding over a line with loss: nodes may end up with a
        // larger (or no) distance, never a smaller one.
        let n = 8;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i - 1);
                }
                if i + 1 < n {
                    v.push(i + 1);
                }
                v
            })
            .collect();
        let nodes: Vec<Hop> = (0..n)
            .map(|i| Hop {
                dist: if i == 0 { Some(0) } else { None },
            })
            .collect();
        let mut sim = Simulator::new(nodes, adj).unwrap().with_loss(0.3, 99);
        sim.run_until_quiet(50).unwrap();
        for (i, node) in sim.nodes().iter().enumerate() {
            if let Some(d) = node.dist {
                assert!(d >= i, "node {i} learned impossible distance {d}");
            }
        }
    }

    #[test]
    fn into_nodes_returns_state() {
        let nodes = (0..2).map(|_| Counter { received: 0 }).collect();
        let mut sim = Simulator::new(nodes, vec![vec![1], vec![0]]).unwrap();
        sim.run_until_quiet(5).unwrap();
        let nodes = sim.into_nodes();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].received, 1);
    }
}
