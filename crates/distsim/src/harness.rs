//! The fault-injecting simulation harness.
//!
//! [`FaultySimulator`] runs the same [`Node`] protocols as the reliable
//! [`Simulator`](crate::Simulator), but routes every send through a
//! [`FaultChannel`] driven by a [`FaultPlan`]: messages may be lost,
//! delayed, duplicated, and robots may crash and recover on a schedule.
//!
//! Semantics per round `r`:
//!
//! 1. churn events scheduled for round `r` take effect (a robot crashed
//!    at round `r` neither receives nor steps in round `r`);
//! 2. deliveries queued for this round arrive (those addressed to
//!    crashed robots are dropped);
//! 3. every live robot's `on_round` runs; its sends enter the channel.
//!
//! Crashed robots keep their protocol state and resume at a scheduled
//! recovery; messages already in flight towards a robot are dropped
//! only if it is still crashed at arrival time.
//!
//! Under a [`FaultPlan::is_reliable`] plan this harness is
//! **bit-identical** to [`Simulator`](crate::Simulator): same rounds,
//! same message counts, same delivery order, same final node states
//! (pinned down by unit and property tests).

use crate::channel::FaultChannel;
use crate::fault::{ChurnEvent, ChurnKind, FaultPlan};
use crate::{Node, Outbox, SimError};
use anr_trace::{TraceValue, Tracer};

/// Accounting for a fault-injected run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Rounds executed (not counting `on_start`).
    pub rounds: usize,
    /// Messages accepted into the channel (after loss; duplicates count).
    pub sent: usize,
    /// Messages handed to a live robot's inbox.
    pub delivered: usize,
    /// Messages dropped by the loss model.
    pub dropped_loss: usize,
    /// Messages dropped because the recipient was crashed at arrival.
    pub dropped_crash: usize,
    /// Extra copies created by the duplication model.
    pub duplicated: usize,
    /// Deliveries that suffered a non-zero delay.
    pub delayed: usize,
    /// Crash events applied.
    pub crashes: usize,
    /// Recovery events applied.
    pub recoveries: usize,
}

/// Deterministic fault-injecting network simulator.
#[derive(Debug)]
pub struct FaultySimulator<N: Node> {
    nodes: Vec<N>,
    adjacency: Vec<Vec<usize>>,
    channel: FaultChannel<N::Msg>,
    crashed: Vec<bool>,
    /// Churn events sorted by round (stable, so plan order breaks ties).
    churn: Vec<ChurnEvent>,
    churn_cursor: usize,
    rounds: usize,
    delivered: usize,
    crashes: usize,
    recoveries: usize,
    started: bool,
    tracer: Tracer,
}

impl<N: Node> FaultySimulator<N> {
    /// Creates a fault-injecting simulator over `nodes` connected by
    /// `adjacency`, misbehaving per `plan`.
    ///
    /// # Errors
    ///
    /// The same topology errors as [`Simulator::new`](crate::Simulator::new),
    /// plus [`SimError::InvalidFaultPlan`] when the plan references
    /// robots outside the topology.
    pub fn new(
        nodes: Vec<N>,
        adjacency: Vec<Vec<usize>>,
        plan: FaultPlan,
    ) -> Result<Self, SimError> {
        if nodes.len() != adjacency.len() {
            return Err(SimError::TopologyMismatch {
                nodes: nodes.len(),
                adjacency: adjacency.len(),
            });
        }
        for (u, nbrs) in adjacency.iter().enumerate() {
            for &v in nbrs {
                if v >= nodes.len() {
                    return Err(SimError::BadNeighborIndex {
                        node: u,
                        neighbor: v,
                    });
                }
                if !adjacency[v].contains(&u) {
                    return Err(SimError::AsymmetricTopology { from: u, to: v });
                }
            }
        }
        plan.validate(nodes.len())?;
        let n = nodes.len();
        let mut churn = plan.churn.clone();
        churn.sort_by_key(|ev| ev.round);
        Ok(FaultySimulator {
            channel: FaultChannel::new(plan, n),
            nodes,
            adjacency,
            crashed: vec![false; n],
            churn,
            churn_cursor: 0,
            rounds: 0,
            delivered: 0,
            crashes: 0,
            recoveries: 0,
            started: false,
            tracer: Tracer::disabled(),
        })
    }

    /// Attaches a tracer: message `msg_send` / `msg_drop` /
    /// `msg_deliver` events flow from the channel, and churn applies
    /// emit `robot_crash` / `robot_recover` events. Tracing is
    /// observation only — the run is bit-identical with or without it.
    #[must_use]
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = tracer.clone();
        self.channel.set_tracer(tracer);
        self
    }

    /// Read access to the nodes.
    #[inline]
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Mutable access to the nodes.
    #[inline]
    pub fn nodes_mut(&mut self) -> &mut [N] {
        &mut self.nodes
    }

    /// Consumes the simulator, returning the nodes.
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }

    /// The static communication topology (crashes do not mutate it; see
    /// [`live_adjacency`](Self::live_adjacency)).
    #[inline]
    pub fn adjacency(&self) -> &[Vec<usize>] {
        &self.adjacency
    }

    /// The topology restricted to currently live robots: crashed robots
    /// lose all incident edges — the "mutated" connectivity graph the
    /// surviving swarm actually has.
    pub fn live_adjacency(&self) -> Vec<Vec<usize>> {
        self.adjacency
            .iter()
            .enumerate()
            .map(|(u, nbrs)| {
                if self.crashed[u] {
                    Vec::new()
                } else {
                    nbrs.iter().copied().filter(|&v| !self.crashed[v]).collect()
                }
            })
            .collect()
    }

    /// Is robot `i` currently crashed?
    pub fn is_crashed(&self, i: usize) -> bool {
        self.crashed[i]
    }

    /// Indices of currently crashed robots.
    pub fn crashed_robots(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.crashed[i]).collect()
    }

    /// Accounting so far.
    pub fn stats(&self) -> FaultStats {
        let ch = self.channel.stats();
        FaultStats {
            rounds: self.rounds,
            sent: ch.accepted,
            delivered: self.delivered,
            dropped_loss: ch.dropped_loss,
            dropped_crash: ch.dropped_crash,
            duplicated: ch.duplicated,
            delayed: ch.delayed,
            crashes: self.crashes,
            recoveries: self.recoveries,
        }
    }

    /// Are any deliveries queued for this or a future round?
    pub fn has_messages_in_flight(&self) -> bool {
        self.channel.has_pending()
    }

    /// Robots with deliveries queued towards them.
    pub fn pending_recipients(&self) -> Vec<usize> {
        self.channel.pending_recipients()
    }

    /// Applies churn events scheduled up to and including `round`.
    fn apply_churn(&mut self, round: usize) {
        while self.churn_cursor < self.churn.len() && self.churn[self.churn_cursor].round <= round {
            let ev = self.churn[self.churn_cursor];
            self.churn_cursor += 1;
            match ev.kind {
                ChurnKind::Crash => {
                    if !self.crashed[ev.robot] {
                        self.crashed[ev.robot] = true;
                        self.crashes += 1;
                        if self.tracer.is_enabled() {
                            self.tracer.event(
                                "robot_crash",
                                &[
                                    ("round", TraceValue::U64(round as u64)),
                                    ("robot", TraceValue::U64(ev.robot as u64)),
                                ],
                            );
                        }
                    }
                }
                ChurnKind::Recover => {
                    if self.crashed[ev.robot] {
                        self.crashed[ev.robot] = false;
                        self.recoveries += 1;
                        if self.tracer.is_enabled() {
                            self.tracer.event(
                                "robot_recover",
                                &[
                                    ("round", TraceValue::U64(round as u64)),
                                    ("robot", TraceValue::U64(ev.robot as u64)),
                                ],
                            );
                        }
                    }
                }
            }
        }
    }

    fn commit_outbox(&mut self, from: usize, mut out: Outbox<N::Msg>) -> Result<(), SimError> {
        for (to, msg) in out.take_queued() {
            if to == crate::BROADCAST {
                for k in 0..self.adjacency[from].len() {
                    let nbr = self.adjacency[from][k];
                    self.channel.offer(from, nbr, msg.clone());
                }
            } else {
                if !self.adjacency[from].contains(&to) {
                    return Err(SimError::NotANeighbor { from, to });
                }
                self.channel.offer(from, to, msg);
            }
        }
        Ok(())
    }

    /// Runs `on_start` on every robot live at round 0 (idempotent).
    /// Robots crashed by a round-0 churn event never start.
    pub fn start(&mut self) -> Result<(), SimError> {
        if self.started {
            return Ok(());
        }
        self.started = true;
        self.apply_churn(0);
        for i in 0..self.nodes.len() {
            if self.crashed[i] {
                continue;
            }
            let mut out = Outbox::new();
            self.nodes[i].on_start(&mut out);
            self.commit_outbox(i, out)?;
        }
        Ok(())
    }

    /// Executes one round under the fault model; returns the number of
    /// messages delivered to live robots.
    ///
    /// Unlike the reliable simulator, rounds are meaningful even with an
    /// empty network: protocols with timeouts act on the round counter.
    ///
    /// # Errors
    ///
    /// Send-validation errors ([`SimError::NotANeighbor`]).
    pub fn step_round(&mut self) -> Result<usize, SimError> {
        self.start()?;
        let round = self.rounds;
        if round > 0 {
            self.apply_churn(round);
        }
        let inboxes = self.channel.deliver_next(&self.crashed);
        let delivered: usize = inboxes.iter().map(Vec::len).sum();
        self.delivered += delivered;
        for (i, inbox) in inboxes.iter().enumerate() {
            if self.crashed[i] {
                debug_assert!(inbox.is_empty(), "crashed robots receive nothing");
                continue;
            }
            let mut out = Outbox::new();
            self.nodes[i].on_round(round, inbox, &mut out);
            self.commit_outbox(i, out)?;
        }
        self.rounds += 1;
        Ok(delivered)
    }

    /// Runs rounds until no deliveries are queued.
    ///
    /// Suitable for protocols that are quiescent-by-messages (flooding,
    /// tokens). Protocols with retransmission timers should use
    /// [`run_until`](Self::run_until) instead: a timer waiting to fire
    /// holds no message in flight, so this method would stop early.
    ///
    /// # Errors
    ///
    /// [`SimError::NotQuiescent`] (with the pending recipients) when
    /// `max_rounds` is exceeded, plus any send-validation error.
    pub fn run_until_quiet(&mut self, max_rounds: usize) -> Result<FaultStats, SimError> {
        self.start()?;
        let mut rounds_left = max_rounds;
        while self.channel.has_pending() {
            if rounds_left == 0 {
                return Err(SimError::NotQuiescent {
                    max_rounds,
                    pending: self.channel.pending_recipients(),
                });
            }
            self.step_round()?;
            rounds_left -= 1;
        }
        Ok(self.stats())
    }

    /// Runs rounds (delivering empty inboxes when the network is idle,
    /// so timeouts tick) until `done(nodes)` is true, for at most
    /// `max_rounds` total rounds.
    ///
    /// # Errors
    ///
    /// [`SimError::NotQuiescent`] (with the pending recipients) when
    /// the round cap is reached before convergence, plus any
    /// send-validation error.
    pub fn run_until<F>(&mut self, max_rounds: usize, done: F) -> Result<FaultStats, SimError>
    where
        F: Fn(&[N]) -> bool,
    {
        self.start()?;
        while !done(&self.nodes) {
            if self.rounds >= max_rounds {
                return Err(SimError::NotQuiescent {
                    max_rounds,
                    pending: self.channel.pending_recipients(),
                });
            }
            self.step_round()?;
        }
        Ok(self.stats())
    }

    /// Runs exactly `k` rounds.
    ///
    /// # Errors
    ///
    /// Propagates send-validation errors.
    pub fn run_rounds(&mut self, k: usize) -> Result<FaultStats, SimError> {
        self.start()?;
        for _ in 0..k {
            self.step_round()?;
        }
        Ok(self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::DelayModel;
    use crate::{Envelope, Simulator};

    /// Floods the minimum ID (leader election); counts received.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct MinId {
        id: usize,
        min_seen: usize,
        received: usize,
    }

    impl Node for MinId {
        type Msg = usize;
        fn on_start(&mut self, out: &mut Outbox<usize>) {
            out.broadcast(self.id);
        }
        fn on_round(&mut self, _round: usize, inbox: &[Envelope<usize>], out: &mut Outbox<usize>) {
            self.received += inbox.len();
            for env in inbox {
                if env.msg < self.min_seen {
                    self.min_seen = env.msg;
                    out.broadcast(env.msg);
                }
            }
        }
    }

    fn minid_nodes(n: usize) -> Vec<MinId> {
        (0..n)
            .map(|id| MinId {
                id,
                min_seen: id,
                received: 0,
            })
            .collect()
    }

    fn ring(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect()
    }

    #[test]
    fn reliable_plan_matches_simulator_exactly() {
        let n = 9;
        let mut reliable = Simulator::new(minid_nodes(n), ring(n)).unwrap();
        let rel_stats = reliable.run_until_quiet(50).unwrap();

        let mut faulty =
            FaultySimulator::new(minid_nodes(n), ring(n), FaultPlan::reliable(123)).unwrap();
        let f_stats = faulty.run_until_quiet(50).unwrap();

        assert_eq!(f_stats.rounds, rel_stats.rounds);
        assert_eq!(f_stats.sent, rel_stats.messages);
        assert_eq!(f_stats.delivered, rel_stats.messages);
        assert_eq!(f_stats.dropped_loss + f_stats.dropped_crash, 0);
        assert_eq!(faulty.into_nodes(), reliable.into_nodes());
    }

    #[test]
    fn loss_degrades_but_replays_identically() {
        let n = 12;
        let plan = FaultPlan::reliable(7).with_loss(0.4);
        let run = |plan: FaultPlan| {
            let mut sim = FaultySimulator::new(minid_nodes(n), ring(n), plan).unwrap();
            let stats = sim.run_until_quiet(100).unwrap();
            (stats, sim.into_nodes())
        };
        let (s1, n1) = run(plan.clone());
        let (s2, n2) = run(plan);
        assert_eq!(s1, s2);
        assert_eq!(n1, n2);
        assert!(s1.dropped_loss > 0);
    }

    #[test]
    fn crashed_robot_is_silent_and_recovers() {
        // Path 0-1-2; robot 1 crashes at round 0 and recovers at round 5:
        // the min-ID flood cannot cross until recovery.
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        let plan = FaultPlan::reliable(0).with_crash(0, 1).with_recovery(5, 1);
        let mut sim = FaultySimulator::new(minid_nodes(3), adj, plan).unwrap();
        sim.run_rounds(4).unwrap();
        assert!(sim.is_crashed(1));
        assert_eq!(sim.nodes()[2].min_seen, 2, "flood blocked by the crash");
        assert_eq!(sim.live_adjacency(), vec![vec![], vec![], vec![]]);

        // After recovery robot 1 still holds its pre-crash state but it
        // missed the original broadcasts; nothing new flows on its own.
        sim.run_rounds(4).unwrap();
        assert!(!sim.is_crashed(1));
        let stats = sim.stats();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.recoveries, 1);
        assert!(stats.dropped_crash > 0, "round-0 broadcasts to 1 dropped");
    }

    #[test]
    fn round_zero_crash_suppresses_on_start() {
        let plan = FaultPlan::reliable(0).with_crash(0, 0);
        let mut sim = FaultySimulator::new(minid_nodes(3), ring(3), plan).unwrap();
        let stats = sim.run_until_quiet(20).unwrap();
        // Robot 0 sent nothing; the others broadcast normally.
        assert!(stats.sent < 6 * 3);
        assert_eq!(sim.nodes()[0].received, 0);
    }

    #[test]
    fn fixed_delay_stretches_convergence() {
        let n = 8;
        let reliable_rounds = {
            let mut sim =
                FaultySimulator::new(minid_nodes(n), ring(n), FaultPlan::reliable(0)).unwrap();
            sim.run_until_quiet(100).unwrap().rounds
        };
        let delayed_rounds = {
            let plan = FaultPlan::reliable(0).with_delay(DelayModel::Fixed(2));
            let mut sim = FaultySimulator::new(minid_nodes(n), ring(n), plan).unwrap();
            sim.run_until_quiet(100).unwrap().rounds
        };
        assert!(
            delayed_rounds > reliable_rounds,
            "delay {delayed_rounds} vs reliable {reliable_rounds}"
        );
    }

    #[test]
    fn duplication_inflates_delivery_only() {
        let n = 8;
        let plan = FaultPlan::reliable(3).with_duplication(0.5);
        let mut sim = FaultySimulator::new(minid_nodes(n), ring(n), plan).unwrap();
        let stats = sim.run_until_quiet(100).unwrap();
        assert!(stats.duplicated > 0);
        assert_eq!(stats.delivered, stats.sent);
        // Duplicates never corrupt the outcome: still elects min ID 0.
        assert!(sim.nodes().iter().all(|nd| nd.min_seen == 0));
    }

    #[test]
    fn run_until_predicate_and_cap() {
        let n = 6;
        let mut sim =
            FaultySimulator::new(minid_nodes(n), ring(n), FaultPlan::reliable(0)).unwrap();
        let stats = sim
            .run_until(50, |nodes| nodes.iter().all(|nd| nd.min_seen == 0))
            .unwrap();
        assert!(stats.rounds <= n);

        // An impossible predicate reports the cap with pending info.
        let mut sim =
            FaultySimulator::new(minid_nodes(n), ring(n), FaultPlan::reliable(0)).unwrap();
        match sim.run_until(3, |_| false) {
            Err(SimError::NotQuiescent { max_rounds: 3, .. }) => {}
            other => panic!("expected NotQuiescent, got {other:?}"),
        }
    }

    #[test]
    fn traced_run_is_observation_only() {
        let n = 9;
        let plan = FaultPlan::reliable(7)
            .with_loss(0.3)
            .with_crash(1, 2)
            .with_recovery(4, 2);
        let run = |tracer: Option<&anr_trace::Tracer>| {
            let mut sim = FaultySimulator::new(minid_nodes(n), ring(n), plan.clone()).unwrap();
            if let Some(t) = tracer {
                sim = sim.with_tracer(t);
            }
            let stats = sim.run_rounds(10).unwrap();
            (stats, sim.into_nodes())
        };
        let (s_plain, n_plain) = run(None);
        let tracer = anr_trace::Tracer::ring(65_536);
        let (s_traced, n_traced) = run(Some(&tracer));
        assert_eq!(s_plain, s_traced, "tracing must not perturb the run");
        assert_eq!(n_plain, n_traced);

        let events = tracer.events();
        let count = |name: &str| events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("msg_send"), s_traced.sent);
        assert_eq!(count("robot_crash"), 1);
        assert_eq!(count("robot_recover"), 1);
        // Per-inbox delivery events carry counts summing to `delivered`.
        let delivered: u64 = events
            .iter()
            .filter(|e| e.name == "msg_deliver")
            .map(|e| match &e.fields[1] {
                ("count", anr_trace::TraceValue::U64(c)) => *c,
                f => panic!("unexpected field {f:?}"),
            })
            .sum();
        assert_eq!(delivered as usize, s_traced.delivered);
        let loss_drops = events
            .iter()
            .filter(|e| {
                e.name == "msg_drop"
                    && matches!(e.fields.last(),
                        Some(("reason", anr_trace::TraceValue::Str(s))) if s == "loss")
            })
            .count();
        assert_eq!(loss_drops, s_traced.dropped_loss);
    }

    #[test]
    fn invalid_plan_rejected() {
        let plan = FaultPlan::reliable(0).with_crash(0, 99);
        assert!(matches!(
            FaultySimulator::new(minid_nodes(3), ring(3), plan),
            Err(SimError::InvalidFaultPlan { .. })
        ));
    }

    #[test]
    fn not_a_neighbor_still_enforced() {
        struct Bad;
        impl Node for Bad {
            type Msg = ();
            fn on_start(&mut self, out: &mut Outbox<()>) {
                out.send(2, ());
            }
            fn on_round(&mut self, _: usize, _: &[Envelope<()>], _: &mut Outbox<()>) {}
        }
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        let mut sim =
            FaultySimulator::new(vec![Bad, Bad, Bad], adj, FaultPlan::reliable(0)).unwrap();
        assert!(matches!(
            sim.start(),
            Err(SimError::NotANeighbor { from: 0, to: 2 })
        ));
    }
}
