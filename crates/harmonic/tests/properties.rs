//! Property tests: the harmonic disk map is a valid embedding on random
//! triangulations, and the rotation search behaves.

use anr_geom::Point;
use anr_harmonic::{harmonic_map_to_disk, HarmonicConfig, RotationSearch};
use anr_mesh::delaunay;
use proptest::prelude::*;

/// Random separated point clouds that triangulate cleanly.
fn cloud() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..400.0f64, 0.0..400.0f64), 8..40).prop_map(|raw| {
        let mut pts: Vec<Point> = Vec::new();
        for (x, y) in raw {
            let p = Point::new(x, y);
            if pts.iter().all(|q| q.distance(p) > 15.0) {
                pts.push(p);
            }
        }
        pts
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn disk_map_is_an_embedding(pts in cloud()) {
        prop_assume!(pts.len() >= 6);
        let mesh = match delaunay(&pts) {
            Ok(m) => m,
            Err(_) => return Ok(()),
        };
        let disk = harmonic_map_to_disk(&mesh, &HarmonicConfig::default()).expect("disk mesh");
        // No flipped triangles (Tutte's theorem).
        let dmesh = disk.as_disk_mesh(&mesh);
        for t in 0..dmesh.num_triangles() {
            prop_assert!(dmesh.triangle(t).signed_area() > 0.0);
        }
        // All vertices in the closed disk; boundary exactly on the circle.
        for v in 0..dmesh.num_vertices() {
            prop_assert!(dmesh.vertex(v).to_vector().norm() <= 1.0 + 1e-9);
        }
        for &v in disk.boundary() {
            prop_assert!((disk.position(v).to_vector().norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn disk_map_is_injective(pts in cloud()) {
        prop_assume!(pts.len() >= 6);
        let mesh = match delaunay(&pts) {
            Ok(m) => m,
            Err(_) => return Ok(()),
        };
        let disk = harmonic_map_to_disk(&mesh, &HarmonicConfig::default()).expect("disk mesh");
        for a in 0..mesh.num_vertices() {
            for b in (a + 1)..mesh.num_vertices() {
                prop_assert!(disk.position(a).distance(disk.position(b)) > 1e-9,
                    "vertices {a}, {b} collapsed");
            }
        }
    }

    #[test]
    fn rotation_search_at_least_as_good_as_coarse(peak in 0.0..std::f64::consts::TAU) {
        // Refinement never loses to the best coarse sample on a smooth
        // objective.
        let f = |t: f64| (t - peak).cos();
        let coarse = RotationSearch::new(16, 0).maximize(f).1;
        let refined = RotationSearch::new(16, 5).maximize(f).1;
        prop_assert!(refined >= coarse - 1e-12);
        // And lands within the sector width of the true peak's value.
        prop_assert!(1.0 - refined < 0.08, "refined {refined}");
    }
}
