//! Rotation-angle search over the overlapped unit disks (Sec. III-B).
//!
//! The induced map `T → M2` depends on the relative rotation of the two
//! unit disks. The paper avoids solving the non-linear optimum by running
//! "a simple binary search method ... with a pre-defined search depth"
//! (set to 4 in its simulations). [`RotationSearch`] reproduces that:
//! a coarse sweep picks the best sector, then `depth` bisection steps
//! refine it. [`RotationSearch::exhaustive`] is the dense-sweep reference
//! used by the ablation benches.

use std::f64::consts::TAU;

/// Depth-limited rotation search.
///
/// ```
/// use anr_harmonic::RotationSearch;
///
/// // Maximize a smooth function of the angle with a peak at 2.0 rad.
/// let f = |theta: f64| -((theta - 2.0).cos() - 1.0).abs();
/// let search = RotationSearch::default();
/// let (best, _score, evals) = search.maximize(f);
/// assert!((best - 2.0).abs() < 0.2);
/// assert!(evals <= 16 + 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationSearch {
    /// Number of coarse samples around the circle (default 16).
    pub initial_samples: usize,
    /// Bisection refinement depth (default 4, as in the paper).
    pub depth: usize,
}

impl Default for RotationSearch {
    fn default() -> Self {
        RotationSearch {
            initial_samples: 16,
            depth: 4,
        }
    }
}

impl RotationSearch {
    /// Creates a search with the given coarse sampling and depth.
    ///
    /// # Panics
    ///
    /// Panics when `initial_samples == 0`.
    pub fn new(initial_samples: usize, depth: usize) -> Self {
        assert!(initial_samples > 0, "need at least one coarse sample");
        RotationSearch {
            initial_samples,
            depth,
        }
    }

    /// Finds the angle maximizing `objective`, returning
    /// `(angle, score, evaluations)`.
    ///
    /// The search evaluates `initial_samples` coarse angles, keeps the
    /// best, then runs `depth` bisection rounds on the surrounding
    /// sector: at each round the two half-sector midpoints are evaluated
    /// and the search recurses into the better half (the paper's
    /// "divides current search interval of angle into two and rotates
    /// ... with the midpoint angle of the interval").
    pub fn maximize<F: FnMut(f64) -> f64>(&self, mut objective: F) -> (f64, f64, usize) {
        let mut evals = 0usize;
        let mut eval = |theta: f64, evals: &mut usize| -> f64 {
            *evals += 1;
            objective(theta)
        };

        // Coarse sweep.
        let mut best_theta = 0.0;
        let mut best_score = f64::NEG_INFINITY;
        for k in 0..self.initial_samples {
            let theta = TAU * k as f64 / self.initial_samples as f64;
            let s = eval(theta, &mut evals);
            if s > best_score {
                best_score = s;
                best_theta = theta;
            }
        }

        // Bisection refinement around the best coarse sample.
        let mut half_width = TAU / self.initial_samples as f64 / 2.0;
        for _ in 0..self.depth {
            let left = best_theta - half_width / 2.0;
            let right = best_theta + half_width / 2.0;
            let sl = eval(left, &mut evals);
            let sr = eval(right, &mut evals);
            if sl > best_score && sl >= sr {
                best_score = sl;
                best_theta = left;
            } else if sr > best_score {
                best_score = sr;
                best_theta = right;
            }
            half_width /= 2.0;
        }

        (best_theta.rem_euclid(TAU), best_score, evals)
    }

    /// Finds the angle minimizing `objective` (used by method (b), the
    /// minimum-moving-distance variant, Sec. III-D-2).
    pub fn minimize<F: FnMut(f64) -> f64>(&self, mut objective: F) -> (f64, f64, usize) {
        let (theta, neg_score, evals) = self.maximize(|t| -objective(t));
        (theta, -neg_score, evals)
    }

    /// [`RotationSearch::maximize`] with a batched objective: each round's
    /// angles are handed to `batch` together (the coarse sweep as one
    /// batch, then each bisection round's two midpoints), so the caller
    /// can fan the evaluations out over worker threads.
    ///
    /// For any pure objective the result is **bit-identical** to
    /// [`RotationSearch::maximize`] at any worker count: batch results
    /// are scanned in the same ascending-angle order with the same strict
    /// comparisons (pinned by `batched_search_matches_serial`).
    ///
    /// # Panics
    ///
    /// Panics when `batch` returns a result count different from its
    /// input count.
    pub fn maximize_batch<F: FnMut(&[f64]) -> Vec<f64>>(&self, mut batch: F) -> (f64, f64, usize) {
        let mut evals = 0usize;
        let mut eval = |thetas: &[f64], evals: &mut usize| -> Vec<f64> {
            *evals += thetas.len();
            let scores = batch(thetas);
            assert_eq!(
                scores.len(),
                thetas.len(),
                "batch objective must score every angle"
            );
            scores
        };

        // Coarse sweep: one batch, scanned in ascending-angle order.
        let coarse: Vec<f64> = (0..self.initial_samples)
            .map(|k| TAU * k as f64 / self.initial_samples as f64)
            .collect();
        let scores = eval(&coarse, &mut evals);
        let mut best_theta = 0.0;
        let mut best_score = f64::NEG_INFINITY;
        for (&theta, &s) in coarse.iter().zip(&scores) {
            if s > best_score {
                best_score = s;
                best_theta = theta;
            }
        }

        // Bisection refinement, both half-sector midpoints per batch.
        let mut half_width = TAU / self.initial_samples as f64 / 2.0;
        for _ in 0..self.depth {
            let left = best_theta - half_width / 2.0;
            let right = best_theta + half_width / 2.0;
            let s = eval(&[left, right], &mut evals);
            let (sl, sr) = (s[0], s[1]);
            if sl > best_score && sl >= sr {
                best_score = sl;
                best_theta = left;
            } else if sr > best_score {
                best_score = sr;
                best_theta = right;
            }
            half_width /= 2.0;
        }

        (best_theta.rem_euclid(TAU), best_score, evals)
    }

    /// Batched form of [`RotationSearch::minimize`].
    ///
    /// # Panics
    ///
    /// Panics when `batch` returns a result count different from its
    /// input count.
    pub fn minimize_batch<F: FnMut(&[f64]) -> Vec<f64>>(&self, mut batch: F) -> (f64, f64, usize) {
        let (theta, neg, evals) =
            self.maximize_batch(|ts| batch(ts).into_iter().map(|s| -s).collect());
        (theta, -neg, evals)
    }

    /// Dense sweep over `samples` uniformly spaced angles — the
    /// validation reference for the depth-limited search.
    ///
    /// # Panics
    ///
    /// Panics when `samples == 0`.
    pub fn exhaustive<F: FnMut(f64) -> f64>(samples: usize, mut objective: F) -> (f64, f64) {
        assert!(samples > 0, "need at least one sample");
        let mut best_theta = 0.0;
        let mut best_score = f64::NEG_INFINITY;
        for k in 0..samples {
            let theta = TAU * k as f64 / samples as f64;
            let s = objective(theta);
            if s > best_score {
                best_score = s;
                best_theta = theta;
            }
        }
        (best_theta, best_score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_peak_of_cosine() {
        // f(θ) = cos(θ − 1), peak at θ = 1.
        let search = RotationSearch::default();
        let (theta, score, _) = search.maximize(|t| (t - 1.0).cos());
        assert!((theta - 1.0).abs() < 0.1, "found {theta}");
        assert!(score > 0.99);
    }

    #[test]
    fn minimize_finds_valley() {
        let search = RotationSearch::default();
        let (theta, score, _) = search.minimize(|t| (t - 4.0).cos());
        // Valley of cos(θ−4) is at θ = 4 − π ≈ 0.858... + 2πk; the
        // minimum value is −1.
        assert!(score < -0.99);
        assert!(((theta - 4.0).cos() - score).abs() < 1e-12);
    }

    #[test]
    fn evaluation_budget_is_respected() {
        let search = RotationSearch::new(8, 4);
        let mut count = 0usize;
        let (_, _, evals) = search.maximize(|t| {
            count += 1;
            t.sin()
        });
        assert_eq!(evals, count);
        assert_eq!(evals, 8 + 2 * 4);
    }

    #[test]
    fn deeper_search_is_no_worse() {
        let f = |t: f64| (3.0 * (t - 2.3)).cos() + 0.3 * (t - 2.3).cos();
        let shallow = RotationSearch::new(16, 1).maximize(f).1;
        let deep = RotationSearch::new(16, 6).maximize(f).1;
        assert!(deep >= shallow - 1e-12);
    }

    #[test]
    fn depth_four_close_to_exhaustive() {
        // The paper's claim: "the computed rotation angle has been very
        // close to the optimal one with the search depth value" (4).
        let f = |t: f64| (t - 5.1).cos();
        let (_, s4, _) = RotationSearch::new(16, 4).maximize(f);
        let (_, sx) = RotationSearch::exhaustive(3600, f);
        assert!(sx - s4 < 0.01, "depth-4 {s4} vs exhaustive {sx}");
    }

    #[test]
    fn exhaustive_hits_grid_peak() {
        let (theta, score) = RotationSearch::exhaustive(4, |t| -(t - std::f64::consts::PI).abs());
        assert!((theta - std::f64::consts::PI).abs() < 1e-12);
        assert!((score - 0.0).abs() < 1e-12);
    }

    #[test]
    fn batched_search_matches_serial() {
        // Awkward multi-modal objective with plateaus (exact ties).
        let f = |t: f64| ((3.0 * t).sin() * 10.0).floor() + 0.25 * (t - 1.7).cos();
        for (samples, depth) in [(16, 4), (7, 3), (1, 5), (16, 0)] {
            let search = RotationSearch::new(samples, depth);
            let serial = search.maximize(f);
            let batched = search.maximize_batch(|ts| ts.iter().map(|&t| f(t)).collect());
            assert_eq!(serial, batched, "samples {samples} depth {depth}");
            let serial_min = search.minimize(f);
            let batched_min = search.minimize_batch(|ts| ts.iter().map(|&t| f(t)).collect());
            assert_eq!(serial_min.0, batched_min.0);
            assert_eq!(serial_min.2, batched_min.2);
            assert!((serial_min.1 - batched_min.1).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn batch_with_wrong_arity_panics() {
        let _ = RotationSearch::default().maximize_batch(|_| Vec::new());
    }

    #[test]
    fn result_angle_is_normalized() {
        let search = RotationSearch::new(4, 6);
        let (theta, _, _) = search.maximize(|t| (t - 0.01).cos());
        assert!((0.0..TAU).contains(&theta));
    }
}
