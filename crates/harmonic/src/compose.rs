//! The overlapped-disks correspondence `T → M2` (paper Eqn. 1).
//!
//! With the robot triangulation `T` and the target FoI mesh both
//! harmonically mapped to unit disks, rotating one disk by θ overlays
//! them; a robot's disk position then falls inside a target-mesh triangle
//! whose barycentric coordinates interpolate the original geographic
//! coordinates of its grid points — that is the robot's destination.

use anr_geom::{barycentric_coords, NearestGrid, Point, Rotation, Triangle};
use anr_mesh::{PointLocator, TriMesh};

/// A robot's mapped destination in the target FoI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappedPoint {
    /// Geographic destination in `M2`.
    pub position: Point,
    /// True when the disk position landed in a virtual (hole-fill)
    /// triangle and the nearest-real-grid-point fallback was used
    /// (Sec. III-D-3).
    pub via_hole_fallback: bool,
    /// True when the disk position fell (numerically) outside the target
    /// disk mesh and the nearest triangle was used instead.
    pub outside_disk: bool,
}

/// Overlay of a target FoI mesh's disk embedding, ready to map robot
/// disk positions at any rotation angle.
///
/// Build once per target FoI; each [`DiskOverlay::map_point`] call is a
/// point location plus one barycentric interpolation, so evaluating the
/// rotation-search objective at many angles is cheap.
#[derive(Debug)]
pub struct DiskOverlay {
    /// Target mesh geographic positions, indexed like the disk mesh.
    geo_positions: Vec<Point>,
    /// Target mesh embedded in the unit disk.
    disk_mesh: TriMesh,
    /// Per-vertex: is this a virtual hole-center vertex?
    virtual_vertex: Vec<bool>,
    /// Disk positions of the real (non-virtual) vertices, with their
    /// original vertex indices, plus an exact nearest-point index — the
    /// hole-fallback lookup must not scan every vertex per robot.
    real_disk_positions: Vec<Point>,
    real_vertex_ids: Vec<usize>,
    real_grid: NearestGrid,
}

impl DiskOverlay {
    /// Creates an overlay from a target mesh's geographic coordinates,
    /// its unit-disk embedding and the list of virtual vertices (empty
    /// for a hole-free FoI).
    ///
    /// # Panics
    ///
    /// Panics when `geo.num_vertices() != disk_positions.len()`, when a
    /// virtual index is out of range, or when the mesh has no triangles.
    pub fn new(geo: &TriMesh, disk_positions: &[Point], virtual_vertices: &[usize]) -> Self {
        assert_eq!(
            geo.num_vertices(),
            disk_positions.len(),
            "disk embedding must cover every vertex"
        );
        assert!(geo.num_triangles() > 0, "target mesh has no triangles");
        let mut virtual_vertex = vec![false; geo.num_vertices()];
        for &v in virtual_vertices {
            assert!(v < geo.num_vertices(), "virtual vertex out of range");
            virtual_vertex[v] = true;
        }
        let disk_mesh = geo.with_positions(disk_positions.to_vec());
        let mut real_disk_positions = Vec::new();
        let mut real_vertex_ids = Vec::new();
        for (v, &is_virtual) in virtual_vertex.iter().enumerate() {
            if !is_virtual {
                real_disk_positions.push(disk_mesh.vertex(v));
                real_vertex_ids.push(v);
            }
        }
        let real_grid = NearestGrid::new(&real_disk_positions);
        DiskOverlay {
            geo_positions: geo.vertices().to_vec(),
            disk_mesh,
            virtual_vertex,
            real_disk_positions,
            real_vertex_ids,
            real_grid,
        }
    }

    /// The target mesh in disk coordinates.
    #[inline]
    pub fn disk_mesh(&self) -> &TriMesh {
        &self.disk_mesh
    }

    /// Maps one robot disk position through the overlay at rotation
    /// `theta` (the robot's disk is rotated by `theta` before lookup).
    ///
    /// Implements paper Eqn. 1 with two fallbacks from Sec. III-B/D-3:
    /// positions outside the (polygonal) disk boundary use the nearest
    /// triangle with clamped barycentric coordinates, and positions in a
    /// virtual hole-fill triangle snap to the nearest real grid point.
    pub fn map_point(&self, disk_position: Point, theta: f64) -> MappedPoint {
        let locator = PointLocator::new(&self.disk_mesh);
        self.map_point_with(&locator, disk_position, theta)
    }

    /// [`DiskOverlay::map_point`] with a caller-provided locator, so the
    /// locator is built once per rotation sweep instead of per point.
    pub fn map_point_with(
        &self,
        locator: &PointLocator<'_>,
        disk_position: Point,
        theta: f64,
    ) -> MappedPoint {
        let rotated = Rotation::about(Point::ORIGIN, theta).apply(disk_position);
        let (t, inside) = locator.locate_or_nearest(rotated);
        let [a, b, c] = self.disk_mesh.triangles()[t];

        // Virtual triangle: the robot would land in a hole. Paper rule:
        // "the robot can simply choose the nearest grid point in M2".
        if self.virtual_vertex[a] || self.virtual_vertex[b] || self.virtual_vertex[c] {
            let nearest = self.nearest_real_vertex(rotated);
            return MappedPoint {
                position: self.geo_positions[nearest],
                via_hole_fallback: true,
                outside_disk: !inside,
            };
        }

        let tri = Triangle::new(
            self.disk_mesh.vertex(a),
            self.disk_mesh.vertex(b),
            self.disk_mesh.vertex(c),
        );
        let (t1, t2, t3) =
            barycentric_coords(&tri, rotated).unwrap_or((1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0));
        // Clamp + renormalize: points just outside the disk polygon get
        // projected onto the nearest triangle instead of extrapolated.
        let (t1, t2, t3) = clamp_barycentric(t1, t2, t3);
        let (ga, gb, gc) = (
            self.geo_positions[a],
            self.geo_positions[b],
            self.geo_positions[c],
        );
        MappedPoint {
            position: Point::new(
                t1 * ga.x + t2 * gb.x + t3 * gc.x,
                t1 * ga.y + t2 * gb.y + t3 * gc.y,
            ),
            via_hole_fallback: false,
            outside_disk: !inside,
        }
    }

    /// Maps a whole set of robot disk positions at rotation `theta`.
    pub fn map_all(&self, disk_positions: &[Point], theta: f64) -> Vec<MappedPoint> {
        let locator = PointLocator::new(&self.disk_mesh);
        self.map_all_with(&locator, disk_positions, theta)
    }

    /// [`DiskOverlay::map_all`] with a caller-provided locator (built over
    /// [`DiskOverlay::disk_mesh`]), so a rotation sweep evaluating many
    /// angles builds the locator once instead of per angle.
    pub fn map_all_with(
        &self,
        locator: &PointLocator<'_>,
        disk_positions: &[Point],
        theta: f64,
    ) -> Vec<MappedPoint> {
        disk_positions
            .iter()
            .map(|&p| self.map_point_with(locator, p, theta))
            .collect()
    }

    /// Nearest non-virtual vertex to `p` in disk coordinates.
    ///
    /// Ring search over the real-vertex subset; ties resolve to the
    /// lowest vertex index (the subset preserves vertex order), exactly
    /// as the linear filtered scan did.
    fn nearest_real_vertex(&self, p: Point) -> usize {
        if self.real_disk_positions.is_empty() {
            return 0;
        }
        self.real_vertex_ids[self.real_grid.nearest(&self.real_disk_positions, p)]
    }
}

/// Clamps barycentric coordinates to the triangle and renormalizes.
fn clamp_barycentric(t1: f64, t2: f64, t3: f64) -> (f64, f64, f64) {
    let (c1, c2, c3) = (t1.max(0.0), t2.max(0.0), t3.max(0.0));
    let s = c1 + c2 + c3;
    if s <= 0.0 {
        (1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0)
    } else {
        (c1 / s, c2 / s, c3 / s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fill_holes, harmonic_map_to_disk, HarmonicConfig};
    use anr_geom::{Polygon, PolygonWithHoles};
    use anr_mesh::FoiMesher;

    /// Target: a meshed 100×100 square with its harmonic disk embedding.
    fn square_overlay() -> (DiskOverlay, TriMesh) {
        let foi = PolygonWithHoles::without_holes(Polygon::rectangle(Point::ORIGIN, 100.0, 100.0));
        let meshed = FoiMesher::new(10.0).mesh(&foi).unwrap();
        let mesh = meshed.mesh().clone();
        let disk = harmonic_map_to_disk(&mesh, &HarmonicConfig::default()).unwrap();
        (DiskOverlay::new(&mesh, disk.positions(), &[]), mesh)
    }

    #[test]
    fn disk_vertex_maps_to_its_geographic_position() {
        let (overlay, mesh) = square_overlay();
        // Mapping a disk vertex position with zero rotation must return
        // (approximately) that vertex's geographic position.
        for v in (0..mesh.num_vertices()).step_by(7) {
            let dp = overlay.disk_mesh().vertex(v);
            let m = overlay.map_point(dp, 0.0);
            assert!(
                m.position.distance(mesh.vertex(v)) < 1e-6,
                "vertex {v}: {} vs {}",
                m.position,
                mesh.vertex(v)
            );
        }
    }

    #[test]
    fn center_maps_inside_target() {
        let (overlay, _) = square_overlay();
        for theta in [0.0, 0.7, 2.0, 4.5] {
            let m = overlay.map_point(Point::ORIGIN, theta);
            assert!(!m.via_hole_fallback);
            assert!(m.position.x > 0.0 && m.position.x < 100.0);
            assert!(m.position.y > 0.0 && m.position.y < 100.0);
        }
    }

    #[test]
    fn rotation_moves_the_image() {
        let (overlay, _) = square_overlay();
        let p = Point::new(0.5, 0.0);
        let a = overlay.map_point(p, 0.0).position;
        let b = overlay.map_point(p, std::f64::consts::PI).position;
        assert!(a.distance(b) > 10.0, "rotation had no effect: {a} vs {b}");
    }

    #[test]
    fn outside_disk_is_flagged_and_clamped() {
        let (overlay, _) = square_overlay();
        let m = overlay.map_point(Point::new(1.5, 0.0), 0.0);
        assert!(m.outside_disk);
        // Still a sane position inside the target's bounding box.
        assert!(m.position.x >= -1.0 && m.position.x <= 101.0);
        assert!(m.position.y >= -1.0 && m.position.y <= 101.0);
    }

    #[test]
    fn hole_fallback_snaps_to_real_grid_point() {
        let outer = Polygon::rectangle(Point::ORIGIN, 100.0, 100.0);
        let hole = Polygon::regular(Point::new(50.0, 50.0), 20.0, 14);
        let foi = PolygonWithHoles::new(outer, vec![hole.clone()]).unwrap();
        let meshed = FoiMesher::new(8.0).mesh(&foi).unwrap();
        let filled = fill_holes(meshed.mesh()).unwrap();
        let disk = harmonic_map_to_disk(filled.mesh(), &HarmonicConfig::default()).unwrap();
        let overlay = DiskOverlay::new(filled.mesh(), disk.positions(), filled.virtual_vertices());

        // The virtual vertex's own disk position is surely in a virtual
        // triangle.
        let vc = filled.virtual_vertices()[0];
        let m = overlay.map_point(disk.position(vc), 0.0);
        assert!(m.via_hole_fallback);
        // The fallback destination is a real mesh vertex, outside the
        // hole.
        assert!(!foi.in_hole(m.position) || hole.distance_to_boundary(m.position) < 1.0);
    }

    #[test]
    fn map_all_matches_map_point() {
        let (overlay, _) = square_overlay();
        let pts = vec![Point::ORIGIN, Point::new(0.3, 0.2), Point::new(-0.5, 0.4)];
        let all = overlay.map_all(&pts, 1.0);
        for (i, &p) in pts.iter().enumerate() {
            assert_eq!(all[i], overlay.map_point(p, 1.0));
        }
    }

    #[test]
    fn clamp_barycentric_cases() {
        let (a, b, c) = clamp_barycentric(0.5, 0.25, 0.25);
        assert_eq!((a, b, c), (0.5, 0.25, 0.25));
        let (a, b, c) = clamp_barycentric(-0.5, 0.75, 0.75);
        assert_eq!(a, 0.0);
        assert!((b - 0.5).abs() < 1e-12 && (c - 0.5).abs() < 1e-12);
        let (a, b, c) = clamp_barycentric(-1.0, -1.0, -1.0);
        assert!((a + b + c - 1.0).abs() < 1e-12);
    }
}
