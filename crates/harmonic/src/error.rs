//! Error type for harmonic-map computation.

use anr_mesh::MeshError;
use std::error::Error;
use std::fmt;

/// Errors raised while computing harmonic maps.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HarmonicError {
    /// The mesh is not a topological disk: it has the wrong number of
    /// boundary loops. Fill holes first ([`crate::fill_holes`]).
    NotADisk {
        /// Number of boundary loops found.
        loops: usize,
    },
    /// The mesh has no boundary at all (closed surface).
    NoBoundary,
    /// Some interior vertex is not connected to the boundary, so the
    /// averaging iteration cannot place it.
    DisconnectedInterior {
        /// An example unreachable vertex.
        vertex: usize,
    },
    /// The iteration did not converge within the iteration budget.
    NotConverged {
        /// Iterations executed.
        iterations: usize,
        /// Largest vertex displacement in the final iteration.
        residual: f64,
    },
    /// The mesh has no interior — fewer than three boundary vertices or
    /// no triangles.
    TooSmall,
    /// Rebuilding the mesh with hole-filling fans produced an invalid
    /// triangle list (e.g. a hole loop referenced a missing vertex).
    InvalidFill(MeshError),
}

impl fmt::Display for HarmonicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarmonicError::NotADisk { loops } => {
                write!(f, "mesh has {loops} boundary loops, expected exactly 1")
            }
            HarmonicError::NoBoundary => write!(f, "mesh has no boundary loop"),
            HarmonicError::DisconnectedInterior { vertex } => {
                write!(f, "vertex {vertex} is not connected to the boundary")
            }
            HarmonicError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "harmonic iteration did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            HarmonicError::TooSmall => write!(f, "mesh too small for a harmonic map"),
            HarmonicError::InvalidFill(e) => write!(f, "hole filling built an invalid mesh: {e}"),
        }
    }
}

impl Error for HarmonicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_nonempty() {
        for e in [
            HarmonicError::NotADisk { loops: 2 },
            HarmonicError::NoBoundary,
            HarmonicError::DisconnectedInterior { vertex: 3 },
            HarmonicError::NotConverged {
                iterations: 10,
                residual: 0.5,
            },
            HarmonicError::TooSmall,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
