//! Discrete harmonic map of a triangulated disk onto the unit disk.

use crate::HarmonicError;
use anr_geom::Point;
use anr_mesh::TriMesh;
use anr_sparse::{pcg_jacobi2_traced, CsrMatrix, PcgConfig};
use anr_trace::{TraceValue, Tracer};
use std::collections::VecDeque;
use std::f64::consts::TAU;

/// How boundary vertices are distributed along the unit circle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundaryParam {
    /// Uniformly by hop count along the loop — the paper's distributed
    /// protocol ("uniformly and sequentially distributed along the
    /// boundary", Sec. III-B).
    #[default]
    HopUniform,
    /// Proportionally to boundary arc length (chord-length
    /// parametrization), an ablation alternative.
    ChordLength,
}

/// Interior averaging weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Weighting {
    /// Plain average of neighbors (Tutte / spring system with identical
    /// springs) — what the paper's robots compute.
    #[default]
    Uniform,
    /// Mean-value weights from the original embedding: better shape
    /// preservation for irregular meshes, used as an ablation.
    MeanValue,
}

/// Which numerical method computes the interior positions.
///
/// Both solve the **same** linear system — the interior sub-block of
/// the weighted graph Laplacian with the pinned boundary moved to the
/// right-hand side — so they agree to solver tolerance and both inherit
/// Tutte's embedding guarantee. They differ only in cost:
///
/// * [`Solver::Pcg`] factors nothing and converges in O(√n)-ish
///   iterations (Jacobi-preconditioned conjugate gradient);
/// * [`Solver::GaussSeidel`] is the seed's O(n)-iteration sweep — kept
///   as the reference implementation, as the ablation baseline, and as
///   the model of the paper's distributed averaging protocol.
///
/// CG needs a symmetric matrix; [`Weighting::MeanValue`] weights are
/// asymmetric (w(v,u) ≠ w(u,v)), so that combination silently runs
/// Gauss–Seidel regardless of the configured solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Solver {
    /// Sparse CG with a Jacobi preconditioner (the default).
    #[default]
    Pcg,
    /// The reference Gauss–Seidel averaging sweep.
    GaussSeidel,
}

/// Configuration for [`harmonic_map_to_disk`].
#[derive(Debug, Clone, Copy)]
pub struct HarmonicConfig {
    /// Boundary distribution (default: hop-uniform, as in the paper).
    pub boundary: BoundaryParam,
    /// Interior weights (default: uniform, as in the paper).
    pub weighting: Weighting,
    /// Convergence tolerance on the largest per-iteration vertex
    /// displacement, in unit-disk units (default `1e-9`). The PCG
    /// solver stops on the diagonally scaled residual — the same
    /// quantity in the same units — so one tolerance serves both.
    pub tolerance: f64,
    /// Iteration budget (default 100 000). Applies to whichever solver
    /// runs; PCG typically uses a few dozen iterations of it.
    pub max_iterations: usize,
    /// Interior solver (default: [`Solver::Pcg`]).
    pub solver: Solver,
}

impl Default for HarmonicConfig {
    fn default() -> Self {
        HarmonicConfig {
            boundary: BoundaryParam::HopUniform,
            weighting: Weighting::Uniform,
            tolerance: 1e-9,
            max_iterations: 100_000,
            solver: Solver::Pcg,
        }
    }
}

/// The result of a harmonic map: unit-disk positions per vertex.
#[derive(Debug, Clone)]
pub struct DiskMap {
    positions: Vec<Point>,
    boundary: Vec<usize>,
    iterations: usize,
}

impl DiskMap {
    /// Disk position of every vertex (same indexing as the input mesh).
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Disk position of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range.
    #[inline]
    pub fn position(&self, v: usize) -> Point {
        self.positions[v]
    }

    /// The boundary loop (vertex indices) that was pinned to the circle.
    #[inline]
    pub fn boundary(&self) -> &[usize] {
        &self.boundary
    }

    /// Iterations the interior solver ran for (Gauss–Seidel sweeps or
    /// PCG iterations, per [`HarmonicConfig::solver`]).
    #[inline]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The input mesh re-embedded at the disk positions.
    pub fn as_disk_mesh(&self, mesh: &TriMesh) -> TriMesh {
        mesh.with_positions(self.positions.clone())
    }

    /// Consumes the map, returning the disk positions.
    pub fn into_positions(self) -> Vec<Point> {
        self.positions
    }

    /// Assembles a map from raw parts (used by the distributed solver,
    /// which produces the same structure via messages).
    pub(crate) fn from_parts(
        positions: Vec<Point>,
        boundary: Vec<usize>,
        iterations: usize,
    ) -> DiskMap {
        DiskMap {
            positions,
            boundary,
            iterations,
        }
    }
}

/// Computes the discrete harmonic map of a triangulated disk onto the
/// unit disk.
///
/// Boundary vertices are fixed on the unit circle (starting at the
/// boundary vertex with the smallest index — the paper's smallest-ID
/// initiator — and running along the loop); interior vertices start at
/// the disk center and are repeatedly replaced by the weighted average of
/// their neighbors until no vertex moves more than `tolerance`
/// (Sec. III-B). With uniform weights and a convex (circle) boundary this
/// is Tutte's embedding: a guaranteed diffeomorphism.
///
/// # Errors
///
/// * [`HarmonicError::NotADisk`] / [`HarmonicError::NoBoundary`] — wrong
///   topology (fill holes first with [`crate::fill_holes`]).
/// * [`HarmonicError::DisconnectedInterior`] — a vertex has no path to
///   the boundary.
/// * [`HarmonicError::NotConverged`] — iteration budget exhausted.
/// * [`HarmonicError::TooSmall`] — no triangles.
pub fn harmonic_map_to_disk(
    mesh: &TriMesh,
    config: &HarmonicConfig,
) -> Result<DiskMap, HarmonicError> {
    harmonic_map_to_disk_traced(mesh, config, &Tracer::disabled())
}

/// [`harmonic_map_to_disk`] with solver observability: the interior
/// solve emits a per-iteration residual series on `tracer` — `pcg_iter`
/// events from the CG path, `gs_sweep` events from the Gauss–Seidel
/// path. Tracing is observation only: results are bit-identical to the
/// untraced entry point.
///
/// # Errors
///
/// Same as [`harmonic_map_to_disk`].
pub fn harmonic_map_to_disk_traced(
    mesh: &TriMesh,
    config: &HarmonicConfig,
    tracer: &Tracer,
) -> Result<DiskMap, HarmonicError> {
    harmonic_map_to_disk_inner(mesh, config, None, tracer)
}

/// [`harmonic_map_to_disk`] warm-started from a previous solution.
///
/// `initial` gives a starting disk position per vertex (same indexing as
/// `mesh`; typically the previous march step's [`DiskMap::positions`]).
/// Interior vertices start the solve there instead of at the disk
/// center; boundary vertices are pinned to the circle as usual, so the
/// seed's boundary entries are ignored.
///
/// Stop-rule interaction: both solvers stop on the same residual
/// measured at the *current* iterate, and the very first measurement is
/// of the seed itself — a seed already within tolerance returns after
/// zero iterations, unchanged. Warm and cold runs therefore agree only
/// to solver tolerance, not bitwise, which is why the march pipeline
/// keeps its cold solves (byte-determinism) and warm-starting is
/// measured in the bench solver duel instead.
///
/// # Errors
///
/// Same as [`harmonic_map_to_disk`], plus the length precondition below.
///
/// # Panics
///
/// Panics when `initial.len() != mesh.num_vertices()`.
pub fn harmonic_map_to_disk_warm(
    mesh: &TriMesh,
    config: &HarmonicConfig,
    initial: &[Point],
    tracer: &Tracer,
) -> Result<DiskMap, HarmonicError> {
    assert_eq!(
        initial.len(),
        mesh.num_vertices(),
        "warm-start seed must cover every vertex"
    );
    harmonic_map_to_disk_inner(mesh, config, Some(initial), tracer)
}

fn harmonic_map_to_disk_inner(
    mesh: &TriMesh,
    config: &HarmonicConfig,
    warm: Option<&[Point]>,
    tracer: &Tracer,
) -> Result<DiskMap, HarmonicError> {
    if mesh.num_triangles() == 0 {
        return Err(HarmonicError::TooSmall);
    }
    let loops = mesh.boundary_loops();
    if loops.is_empty() {
        return Err(HarmonicError::NoBoundary);
    }
    if loops.len() != 1 {
        return Err(HarmonicError::NotADisk { loops: loops.len() });
    }
    let Some(mut boundary) = loops.into_iter().next() else {
        return Err(HarmonicError::NoBoundary);
    };
    if boundary.len() < 3 {
        return Err(HarmonicError::TooSmall);
    }

    // Start the loop at the smallest vertex index (paper: smallest ID).
    let start = boundary
        .iter()
        .enumerate()
        .min_by_key(|&(_, &v)| v)
        .map(|(i, _)| i)
        .unwrap_or(0);
    boundary.rotate_left(start);

    let n = mesh.num_vertices();
    let mut is_boundary = vec![false; n];
    for &v in &boundary {
        is_boundary[v] = true;
    }

    // Interior vertices must reach the boundary through mesh edges.
    {
        let mut seen = vec![false; n];
        let mut queue: VecDeque<usize> = boundary.iter().copied().collect();
        for &v in &boundary {
            seen[v] = true;
        }
        while let Some(u) = queue.pop_front() {
            for &w in mesh.vertex_neighbors(u) {
                if !seen[w] {
                    seen[w] = true;
                    queue.push_back(w);
                }
            }
        }
        // Vertices with no incident edges at all are also unusable.
        if let Some(v) = (0..n).find(|&v| !seen[v]) {
            return Err(HarmonicError::DisconnectedInterior { vertex: v });
        }
    }

    // Pin the boundary onto the circle.
    let mut pos = vec![Point::ORIGIN; n];
    match config.boundary {
        BoundaryParam::HopUniform => {
            let len = boundary.len() as f64;
            for (k, &v) in boundary.iter().enumerate() {
                let theta = TAU * k as f64 / len;
                pos[v] = Point::new(theta.cos(), theta.sin());
            }
        }
        BoundaryParam::ChordLength => {
            let mut cumulative = vec![0.0f64; boundary.len()];
            let mut total = 0.0;
            for k in 0..boundary.len() {
                let a = mesh.vertex(boundary[k]);
                let b = mesh.vertex(boundary[(k + 1) % boundary.len()]);
                cumulative[k] = total;
                total += a.distance(b);
            }
            for (k, &v) in boundary.iter().enumerate() {
                let theta = TAU * cumulative[k] / total;
                pos[v] = Point::new(theta.cos(), theta.sin());
            }
        }
    }

    // Warm start: seed interior vertices from the supplied previous
    // solution (boundary stays pinned).
    if let Some(seed) = warm {
        for v in 0..n {
            if !is_boundary[v] {
                pos[v] = seed[v];
            }
        }
    }

    // Precompute neighbor weights from the *original* embedding.
    let weights: Vec<Vec<f64>> = match config.weighting {
        Weighting::Uniform => (0..n)
            .map(|v| vec![1.0; mesh.vertex_neighbors(v).len()])
            .collect(),
        Weighting::MeanValue => (0..n).map(|v| mean_value_weights(mesh, v)).collect(),
    };

    // Solve the interior (mean-value weights are asymmetric, so only
    // uniform weighting is CG-eligible).
    let interior: Vec<usize> = (0..n).filter(|&v| !is_boundary[v]).collect();
    let symmetric = config.weighting == Weighting::Uniform;
    let iterations = solve_interior(
        mesh,
        &interior,
        &is_boundary,
        &weights,
        &mut pos,
        config.tolerance,
        config.max_iterations,
        config.solver,
        symmetric,
        tracer,
    )?;

    Ok(DiskMap {
        positions: pos,
        boundary,
        iterations,
    })
}

/// Solves the pinned-boundary averaging fixed point for the interior
/// vertices of `pos` in place, returning the solver iteration count.
///
/// Every interior vertex `v` must satisfy
/// `pos[v] = Σ_u w(v,u)·pos[u] / Σ_u w(v,u)` — equivalently the sparse
/// linear system `Σ_u w(v,u)·(pos[v] − pos[u]) = 0` with boundary
/// positions moved to the right-hand side. [`Solver::GaussSeidel`]
/// relaxes it by sweeps; [`Solver::Pcg`] (when `symmetric`, which makes
/// the interior matrix SPD given the already-checked boundary
/// reachability) solves it directly, one CG run per coordinate.
#[allow(clippy::too_many_arguments)]
fn solve_interior(
    mesh: &TriMesh,
    interior: &[usize],
    is_boundary: &[bool],
    weights: &[Vec<f64>],
    pos: &mut [Point],
    tolerance: f64,
    max_iterations: usize,
    solver: Solver,
    symmetric: bool,
    tracer: &Tracer,
) -> Result<usize, HarmonicError> {
    if solver == Solver::Pcg && symmetric {
        return solve_interior_pcg(
            mesh,
            interior,
            is_boundary,
            weights,
            pos,
            tolerance,
            max_iterations,
            tracer,
        );
    }
    // Gauss–Seidel averaging sweeps (the reference path).
    let mut iterations = 0usize;
    let mut residual = f64::INFINITY;
    while iterations < max_iterations {
        iterations += 1;
        residual = 0.0;
        for &v in interior {
            let nbrs = mesh.vertex_neighbors(v);
            let ws = &weights[v];
            let mut sx = 0.0;
            let mut sy = 0.0;
            let mut sw = 0.0;
            for (k, &u) in nbrs.iter().enumerate() {
                sx += ws[k] * pos[u].x;
                sy += ws[k] * pos[u].y;
                sw += ws[k];
            }
            let np = Point::new(sx / sw, sy / sw);
            residual = residual.max(np.distance(pos[v]));
            pos[v] = np;
        }
        if tracer.is_enabled() {
            tracer.event(
                "gs_sweep",
                &[
                    ("iter", TraceValue::U64(iterations as u64)),
                    ("residual", TraceValue::F64(residual)),
                ],
            );
        }
        if residual < tolerance {
            break;
        }
    }
    if residual >= tolerance {
        return Err(HarmonicError::NotConverged {
            iterations,
            residual,
        });
    }
    Ok(iterations)
}

/// The [`Solver::Pcg`] path of [`solve_interior`]: assemble the interior
/// Laplacian once, then run one Jacobi-PCG solve per coordinate.
#[allow(clippy::too_many_arguments)]
fn solve_interior_pcg(
    mesh: &TriMesh,
    interior: &[usize],
    is_boundary: &[bool],
    weights: &[Vec<f64>],
    pos: &mut [Point],
    tolerance: f64,
    max_iterations: usize,
    tracer: &Tracer,
) -> Result<usize, HarmonicError> {
    let m = interior.len();
    if m == 0 {
        return Ok(0);
    }
    let mut interior_index = vec![usize::MAX; pos.len()];
    for (i, &v) in interior.iter().enumerate() {
        interior_index[v] = i;
    }

    // Row v: (Σ_u w)·x_v − Σ_{u interior} w·x_u = Σ_{u boundary} w·pos_u.
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
    let mut bx = vec![0.0; m];
    let mut by = vec![0.0; m];
    for (i, &v) in interior.iter().enumerate() {
        let nbrs = mesh.vertex_neighbors(v);
        let ws = &weights[v];
        let mut row: Vec<(usize, f64)> = Vec::with_capacity(nbrs.len() + 1);
        let mut degree = 0.0;
        for (k, &u) in nbrs.iter().enumerate() {
            let w = ws[k];
            degree += w;
            if is_boundary[u] {
                bx[i] += w * pos[u].x;
                by[i] += w * pos[u].y;
            } else {
                row.push((interior_index[u], -w));
            }
        }
        row.push((i, degree));
        rows.push(row);
    }
    let a = CsrMatrix::from_rows(m, &rows);

    let x0: Vec<f64> = interior.iter().map(|&v| pos[v].x).collect();
    let y0: Vec<f64> = interior.iter().map(|&v| pos[v].y).collect();
    let cfg = PcgConfig {
        tolerance,
        max_iterations,
    };
    // One paired solve: the x and y systems share the matrix, so the
    // lockstep recurrence reads every stored entry once per iteration
    // instead of once per coordinate.
    let s = pcg_jacobi2_traced(&a, &bx, &by, &x0, &y0, &cfg, tracer);
    if !s.converged {
        return Err(HarmonicError::NotConverged {
            iterations: s.iterations,
            residual: s.residual,
        });
    }
    for (i, &v) in interior.iter().enumerate() {
        pos[v] = Point::new(s.x[i], s.y[i]);
    }
    Ok(s.iterations)
}

/// Computes a harmonic (Tutte) map of `mesh` with an **arbitrary** fixed
/// boundary: `boundary_positions[k]` pins vertex `boundary[k]` of the
/// single boundary loop.
///
/// Unlike the unit-disk map, an arbitrary boundary is **not** guaranteed
/// to produce an embedding: Tutte's theorem requires a convex boundary.
/// This entry point exists exactly to measure that failure — the paper's
/// argument for the two-disk construction ("the requirement of convex
/// shape boundary is too restrictive on the shape of a FoI",
/// Sec. II-B). Callers should count flipped triangles in the result.
///
/// The boundary loop is the mesh's single loop, rotated to start at its
/// smallest vertex index (same convention as [`harmonic_map_to_disk`]).
///
/// # Errors
///
/// Same as [`harmonic_map_to_disk`].
///
/// # Panics
///
/// Panics when `boundary_positions.len()` does not match the boundary
/// loop length.
pub fn harmonic_map_with_boundary(
    mesh: &TriMesh,
    boundary_positions: &[Point],
    config: &HarmonicConfig,
) -> Result<DiskMap, HarmonicError> {
    if mesh.num_triangles() == 0 {
        return Err(HarmonicError::TooSmall);
    }
    let loops = mesh.boundary_loops();
    if loops.is_empty() {
        return Err(HarmonicError::NoBoundary);
    }
    if loops.len() != 1 {
        return Err(HarmonicError::NotADisk { loops: loops.len() });
    }
    let Some(mut boundary) = loops.into_iter().next() else {
        return Err(HarmonicError::NoBoundary);
    };
    let start = boundary
        .iter()
        .enumerate()
        .min_by_key(|&(_, &v)| v)
        .map(|(i, _)| i)
        .unwrap_or(0);
    boundary.rotate_left(start);
    assert_eq!(
        boundary.len(),
        boundary_positions.len(),
        "one pinned position per boundary vertex"
    );

    let n = mesh.num_vertices();
    let mut is_boundary = vec![false; n];
    let mut pos = vec![Point::ORIGIN; n];
    // Start interior vertices at the boundary centroid so they converge
    // into the pinned shape.
    let centroid = Point::centroid_of(boundary_positions.iter().copied()).unwrap_or(Point::ORIGIN);
    for p in pos.iter_mut() {
        *p = centroid;
    }
    for (k, &v) in boundary.iter().enumerate() {
        is_boundary[v] = true;
        pos[v] = boundary_positions[k];
    }

    let interior: Vec<usize> = (0..n).filter(|&v| !is_boundary[v]).collect();
    // Reject interior vertices with no neighbors (cannot be averaged).
    if let Some(&v) = interior
        .iter()
        .find(|&&v| mesh.vertex_neighbors(v).is_empty())
    {
        return Err(HarmonicError::DisconnectedInterior { vertex: v });
    }
    let scale = boundary_positions
        .iter()
        .map(|p| p.distance(centroid))
        .fold(0.0f64, f64::max)
        .max(1.0);
    let tol = config.tolerance * scale;
    // The pinned-boundary map always averages uniformly (the weights in
    // `config.weighting` describe the *disk* map); uniform weights are
    // symmetric, so the configured solver applies as-is.
    let weights: Vec<Vec<f64>> = (0..n)
        .map(|v| vec![1.0; mesh.vertex_neighbors(v).len()])
        .collect();
    let iterations = solve_interior(
        mesh,
        &interior,
        &is_boundary,
        &weights,
        &mut pos,
        tol,
        config.max_iterations,
        config.solver,
        true,
        &Tracer::disabled(),
    )?;
    Ok(DiskMap::from_parts(pos, boundary, iterations))
}

/// Mean-value weights of vertex `v`'s edges, computed from the mesh's
/// original embedding: `w(v, u) = (tan(α/2) + tan(β/2)) / ‖v − u‖` where
/// α, β are the angles at `v` in the two triangles flanking edge (v, u).
fn mean_value_weights(mesh: &TriMesh, v: usize) -> Vec<f64> {
    let nbrs = mesh.vertex_neighbors(v);
    let pv = mesh.vertex(v);
    nbrs.iter()
        .map(|&u| {
            let pu = mesh.vertex(u);
            let mut w = 0.0;
            for &t in mesh.edge_triangles(v, u) {
                // The third vertex of triangle t; a degenerate triangle
                // without one contributes no weight.
                let Some(third) = mesh.triangles()[t]
                    .iter()
                    .copied()
                    .find(|&x| x != v && x != u)
                else {
                    continue;
                };
                let pw = mesh.vertex(third);
                // Angle at v in triangle (v, u, w).
                let a = (pu - pv).normalized();
                let b = (pw - pv).normalized();
                let angle = a.dot(b).clamp(-1.0, 1.0).acos();
                w += (angle / 2.0).tan();
            }
            (w / pv.distance(pu)).max(1e-12)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anr_mesh::delaunay;

    #[test]
    fn warm_start_converges_faster_and_agrees() {
        // Cold solve of a jittered grid, then re-solve a slightly moved
        // copy warm-started from the cold solution: fewer iterations,
        // same map to solver tolerance.
        let mesh_a = grid(12, 5.0);
        let cfg = HarmonicConfig::default();
        let map_a = harmonic_map_to_disk(&mesh_a, &cfg).unwrap();

        let moved: Vec<Point> = mesh_a
            .vertices()
            .iter()
            .enumerate()
            .map(|(k, p)| {
                let dx = ((k * 31 + 7) % 13) as f64 / 13.0 - 0.5;
                let dy = ((k * 17 + 3) % 11) as f64 / 11.0 - 0.5;
                Point::new(p.x + 0.3 * dx, p.y + 0.3 * dy)
            })
            .collect();
        let mesh_b = delaunay(&moved).unwrap();

        let cold = harmonic_map_to_disk(&mesh_b, &cfg).unwrap();
        let warm = harmonic_map_to_disk_warm(&mesh_b, &cfg, map_a.positions(), &Tracer::disabled())
            .unwrap();
        assert!(
            warm.iterations() <= cold.iterations(),
            "warm {} vs cold {}",
            warm.iterations(),
            cold.iterations()
        );
        let max_diff = cold
            .positions()
            .iter()
            .zip(warm.positions())
            .map(|(a, b)| a.distance(*b))
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-6, "solutions diverge: {max_diff}");
    }

    #[test]
    fn warm_start_from_own_solution_is_instant() {
        let mesh = grid(10, 4.0);
        let cfg = HarmonicConfig::default();
        let cold = harmonic_map_to_disk(&mesh, &cfg).unwrap();
        let warm =
            harmonic_map_to_disk_warm(&mesh, &cfg, cold.positions(), &Tracer::disabled()).unwrap();
        // The seed is already within tolerance: the stop rule fires on
        // the 0th residual measurement and returns the seed unchanged.
        assert_eq!(warm.iterations(), 0);
        assert_eq!(warm.positions(), cold.positions());
    }

    #[test]
    #[should_panic(expected = "warm-start seed")]
    fn warm_start_wrong_len_panics() {
        let mesh = grid(4, 1.0);
        let _ = harmonic_map_to_disk_warm(
            &mesh,
            &HarmonicConfig::default(),
            &[Point::ORIGIN],
            &Tracer::disabled(),
        );
    }

    fn grid(n: usize, s: f64) -> TriMesh {
        let mut pts = Vec::new();
        for j in 0..n {
            for i in 0..n {
                pts.push(Point::new(i as f64 * s, j as f64 * s));
            }
        }
        delaunay(&pts).unwrap()
    }

    #[test]
    fn boundary_on_unit_circle() {
        let mesh = grid(5, 10.0);
        let disk = harmonic_map_to_disk(&mesh, &HarmonicConfig::default()).unwrap();
        for &v in disk.boundary() {
            assert!((disk.position(v).to_vector().norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn interior_strictly_inside() {
        let mesh = grid(6, 10.0);
        let disk = harmonic_map_to_disk(&mesh, &HarmonicConfig::default()).unwrap();
        let boundary: std::collections::HashSet<usize> = disk.boundary().iter().copied().collect();
        for v in 0..mesh.num_vertices() {
            if !boundary.contains(&v) {
                let r = disk.position(v).to_vector().norm();
                assert!(r < 1.0 - 1e-6, "interior vertex {v} at radius {r}");
            }
        }
    }

    #[test]
    fn map_is_injective_on_grid() {
        let mesh = grid(5, 10.0);
        let disk = harmonic_map_to_disk(&mesh, &HarmonicConfig::default()).unwrap();
        for a in 0..mesh.num_vertices() {
            for b in (a + 1)..mesh.num_vertices() {
                assert!(
                    disk.position(a).distance(disk.position(b)) > 1e-8,
                    "vertices {a} and {b} collapsed"
                );
            }
        }
    }

    #[test]
    fn triangles_stay_positively_oriented() {
        // Tutte's theorem: the disk embedding is a proper embedding, so
        // every (input-CCW) triangle keeps positive area.
        let mesh = grid(6, 10.0);
        let disk = harmonic_map_to_disk(&mesh, &HarmonicConfig::default()).unwrap();
        let dmesh = disk.as_disk_mesh(&mesh);
        for t in 0..dmesh.num_triangles() {
            assert!(
                dmesh.triangle(t).signed_area() > 0.0,
                "triangle {t} flipped in the disk"
            );
        }
    }

    #[test]
    fn hop_uniform_boundary_is_equally_spaced() {
        let mesh = grid(4, 10.0);
        let disk = harmonic_map_to_disk(&mesh, &HarmonicConfig::default()).unwrap();
        let b = disk.boundary();
        let step = TAU / b.len() as f64;
        for k in 0..b.len() {
            let a = disk.position(b[k]);
            let c = disk.position(b[(k + 1) % b.len()]);
            let chord = 2.0 * (step / 2.0).sin();
            assert!((a.distance(c) - chord).abs() < 1e-9);
        }
    }

    #[test]
    fn boundary_starts_at_smallest_index() {
        let mesh = grid(4, 10.0);
        let disk = harmonic_map_to_disk(&mesh, &HarmonicConfig::default()).unwrap();
        let first = disk.boundary()[0];
        assert_eq!(first, *disk.boundary().iter().min().unwrap());
        // The smallest-index boundary vertex sits at angle 0.
        assert!(disk.position(first).distance(Point::new(1.0, 0.0)) < 1e-12);
    }

    #[test]
    fn chord_length_param_converges_too() {
        let mesh = grid(5, 10.0);
        let cfg = HarmonicConfig {
            boundary: BoundaryParam::ChordLength,
            ..Default::default()
        };
        let disk = harmonic_map_to_disk(&mesh, &cfg).unwrap();
        for &v in disk.boundary() {
            assert!((disk.position(v).to_vector().norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_value_weights_converge_and_embed() {
        let mesh = grid(5, 10.0);
        let cfg = HarmonicConfig {
            weighting: Weighting::MeanValue,
            ..Default::default()
        };
        let disk = harmonic_map_to_disk(&mesh, &cfg).unwrap();
        let dmesh = disk.as_disk_mesh(&mesh);
        for t in 0..dmesh.num_triangles() {
            assert!(dmesh.triangle(t).signed_area() > 0.0);
        }
    }

    #[test]
    fn symmetric_grid_center_maps_to_center() {
        // 5×5 grid: the center vertex is fixed by symmetry.
        let mesh = grid(5, 10.0);
        let disk = harmonic_map_to_disk(&mesh, &HarmonicConfig::default()).unwrap();
        // Vertex 12 is the grid center; it may not map exactly to the
        // origin because the hop-uniform boundary breaks the symmetry
        // slightly (corners vs edge midpoints), but it must stay near.
        assert!(disk.position(12).to_vector().norm() < 0.2);
    }

    #[test]
    fn iteration_budget_is_enforced() {
        let mesh = grid(6, 10.0);
        let cfg = HarmonicConfig {
            max_iterations: 2,
            tolerance: 1e-15,
            ..Default::default()
        };
        assert!(matches!(
            harmonic_map_to_disk(&mesh, &cfg),
            Err(HarmonicError::NotConverged { iterations: 2, .. })
        ));
    }

    #[test]
    fn custom_convex_boundary_still_embeds() {
        // Pinning the boundary to a convex shape (a scaled circle)
        // keeps Tutte's guarantee: no flipped triangles.
        let mesh = grid(5, 10.0);
        let disk = harmonic_map_to_disk(&mesh, &HarmonicConfig::default()).unwrap();
        let boundary = disk.boundary().to_vec();
        let pinned: Vec<Point> = (0..boundary.len())
            .map(|k| {
                let theta = TAU * k as f64 / boundary.len() as f64;
                Point::new(30.0 + 7.0 * theta.cos(), -5.0 + 4.0 * theta.sin())
            })
            .collect();
        let map = harmonic_map_with_boundary(&mesh, &pinned, &HarmonicConfig::default()).unwrap();
        let emb = map.as_disk_mesh(&mesh);
        for t in 0..emb.num_triangles() {
            assert!(emb.triangle(t).signed_area() > 0.0, "triangle {t} flipped");
        }
    }

    #[test]
    fn concave_boundary_breaks_the_embedding() {
        // The paper's motivation for the two-disk construction: pin the
        // boundary to a deeply concave (star) shape and the direct
        // harmonic map flips triangles.
        let mesh = grid(7, 10.0);
        let disk = harmonic_map_to_disk(&mesh, &HarmonicConfig::default()).unwrap();
        let boundary = disk.boundary().to_vec();
        let pinned: Vec<Point> = (0..boundary.len())
            .map(|k| {
                let theta = TAU * k as f64 / boundary.len() as f64;
                let r = 10.0 * (1.0 + 0.85 * (5.0 * theta).cos()).max(0.05);
                Point::new(r * theta.cos(), r * theta.sin())
            })
            .collect();
        let map = harmonic_map_with_boundary(&mesh, &pinned, &HarmonicConfig::default()).unwrap();
        let emb = map.as_disk_mesh(&mesh);
        let flipped = (0..emb.num_triangles())
            .filter(|&t| emb.triangle(t).signed_area() <= 0.0)
            .count();
        assert!(
            flipped > 0,
            "expected flipped triangles on a concave boundary"
        );
    }

    #[test]
    fn custom_boundary_length_mismatch_panics() {
        let mesh = grid(4, 10.0);
        let r = std::panic::catch_unwind(|| {
            let _ =
                harmonic_map_with_boundary(&mesh, &[Point::ORIGIN; 3], &HarmonicConfig::default());
        });
        assert!(r.is_err());
    }

    #[test]
    fn pcg_matches_gauss_seidel_reference() {
        let mesh = grid(7, 10.0);
        let pcg = harmonic_map_to_disk(&mesh, &HarmonicConfig::default()).unwrap();
        let gs = harmonic_map_to_disk(
            &mesh,
            &HarmonicConfig {
                solver: Solver::GaussSeidel,
                ..Default::default()
            },
        )
        .unwrap();
        for v in 0..mesh.num_vertices() {
            let d = pcg.position(v).distance(gs.position(v));
            assert!(d < 1e-6, "vertex {v} differs by {d}");
        }
        // The point of the exercise: far fewer iterations.
        assert!(
            pcg.iterations() < gs.iterations(),
            "PCG {} vs GS {} iterations",
            pcg.iterations(),
            gs.iterations()
        );
    }

    #[test]
    fn pcg_matches_reference_on_custom_boundary() {
        let mesh = grid(6, 10.0);
        let disk = harmonic_map_to_disk(&mesh, &HarmonicConfig::default()).unwrap();
        let pinned: Vec<Point> = (0..disk.boundary().len())
            .map(|k| {
                let theta = TAU * k as f64 / disk.boundary().len() as f64;
                Point::new(12.0 + 9.0 * theta.cos(), -3.0 + 5.0 * theta.sin())
            })
            .collect();
        let pcg = harmonic_map_with_boundary(&mesh, &pinned, &HarmonicConfig::default()).unwrap();
        let gs = harmonic_map_with_boundary(
            &mesh,
            &pinned,
            &HarmonicConfig {
                solver: Solver::GaussSeidel,
                ..Default::default()
            },
        )
        .unwrap();
        for v in 0..mesh.num_vertices() {
            let d = pcg.position(v).distance(gs.position(v));
            assert!(d < 1e-6, "vertex {v} differs by {d}");
        }
    }

    #[test]
    fn mean_value_weights_use_the_reference_solver() {
        // Mean-value weights are asymmetric, so Solver::Pcg must fall
        // back to Gauss–Seidel: both solver settings give identical
        // results (bit-identical, same code path).
        let mesh = grid(5, 10.0);
        let pcg_cfg = HarmonicConfig {
            weighting: Weighting::MeanValue,
            ..Default::default()
        };
        let gs_cfg = HarmonicConfig {
            weighting: Weighting::MeanValue,
            solver: Solver::GaussSeidel,
            ..Default::default()
        };
        let a = harmonic_map_to_disk(&mesh, &pcg_cfg).unwrap();
        let b = harmonic_map_to_disk(&mesh, &gs_cfg).unwrap();
        assert_eq!(a.iterations(), b.iterations());
        for v in 0..mesh.num_vertices() {
            assert_eq!(a.position(v), b.position(v));
        }
    }

    #[test]
    fn traced_map_is_observation_only() {
        // Both solver paths: tracing emits a residual series without
        // changing a single output bit.
        let mesh = grid(6, 10.0);
        for solver in [Solver::Pcg, Solver::GaussSeidel] {
            let cfg = HarmonicConfig {
                solver,
                ..Default::default()
            };
            let plain = harmonic_map_to_disk(&mesh, &cfg).unwrap();
            let tracer = Tracer::ring(65_536);
            let traced = harmonic_map_to_disk_traced(&mesh, &cfg, &tracer).unwrap();
            assert_eq!(plain.positions(), traced.positions());
            assert_eq!(plain.iterations(), traced.iterations());
            let name = match solver {
                Solver::Pcg => "pcg_iter",
                Solver::GaussSeidel => "gs_sweep",
            };
            let count = tracer.events().iter().filter(|e| e.name == name).count();
            assert_eq!(count, traced.iterations(), "one {name} per iteration");
        }
    }

    #[test]
    fn mesh_with_hole_is_rejected() {
        // Square ring (8 vertices) — two boundary loops.
        let p = |x: f64, y: f64| Point::new(x, y);
        let verts = vec![
            p(0.0, 0.0),
            p(3.0, 0.0),
            p(3.0, 3.0),
            p(0.0, 3.0),
            p(1.0, 1.0),
            p(2.0, 1.0),
            p(2.0, 2.0),
            p(1.0, 2.0),
        ];
        let tris = vec![
            [0, 1, 5],
            [0, 5, 4],
            [1, 2, 6],
            [1, 6, 5],
            [2, 3, 7],
            [2, 7, 6],
            [3, 0, 4],
            [3, 4, 7],
        ];
        let mesh = TriMesh::new(verts, tris).unwrap();
        assert!(matches!(
            harmonic_map_to_disk(&mesh, &HarmonicConfig::default()),
            Err(HarmonicError::NotADisk { loops: 2 })
        ));
    }
}
