//! # anr-harmonic — discrete harmonic maps to the unit disk
//!
//! The modified harmonic map is the core of the optimal-marching paper
//! (Sec. II-B, III-B): instead of mapping the robot triangulation `T`
//! directly onto the target field of interest `M2` (which would require a
//! convex target), both `T` and `M2` are harmonically mapped onto the
//! unit disk; rotating one disk and overlaying them induces a map
//! `T → M2`, and the rotation angle is searched to maximize the stable
//! link ratio (method *a*) or minimize moving distance (method *b*).
//!
//! This crate implements each piece:
//!
//! * [`harmonic_map_to_disk`] — boundary vertices uniformly distributed
//!   along the unit circle (by hop count, as in the paper's distributed
//!   protocol, or by chord length), interior vertices iterated to the
//!   weighted average of their neighbors until fixed (Tutte/uniform or
//!   mean-value weights);
//! * [`fill_holes`] — one virtual vertex per inner hole, fan-connected to
//!   the hole's boundary loop, so multiply-connected FoIs become
//!   topological disks (Sec. III-D-3);
//! * [`DiskOverlay`] — the overlapped-disks correspondence: rotate,
//!   point-locate, barycentrically interpolate the original geographic
//!   coordinates (paper Eqn. 1), with the nearest-real-grid-point
//!   fallback for robots that land in a filled hole;
//! * [`RotationSearch`] — the depth-limited bisection the paper runs with
//!   search depth 4, plus an exhaustive sweep for validation.
//!
//! ## Example
//!
//! ```
//! use anr_geom::Point;
//! use anr_mesh::delaunay;
//! use anr_harmonic::{harmonic_map_to_disk, HarmonicConfig};
//!
//! // A 4×4 grid of robots.
//! let mut pts = Vec::new();
//! for j in 0..4 {
//!     for i in 0..4 {
//!         pts.push(Point::new(i as f64 * 60.0, j as f64 * 60.0));
//!     }
//! }
//! let mesh = delaunay(&pts)?;
//! let disk = harmonic_map_to_disk(&mesh, &HarmonicConfig::default())?;
//! // Every vertex ends up inside (or on) the unit circle.
//! assert!(disk.positions().iter().all(|p| p.to_vector().norm() <= 1.0 + 1e-9));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

mod compose;
mod disk;
mod distributed;
mod error;
mod holes;
mod rotation;

pub use compose::{DiskOverlay, MappedPoint};
pub use disk::{
    harmonic_map_to_disk, harmonic_map_to_disk_traced, harmonic_map_to_disk_warm,
    harmonic_map_with_boundary, BoundaryParam, DiskMap, HarmonicConfig, Solver, Weighting,
};
pub use distributed::{
    distributed_harmonic_map, DistributedHarmonicConfig, DistributedHarmonicOutcome,
};
pub use error::HarmonicError;
pub use holes::{fill_holes, FilledMesh};
pub use rotation::RotationSearch;
