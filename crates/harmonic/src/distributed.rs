//! Fully distributed harmonic map (paper Sec. III-B).
//!
//! The paper's robots compute the harmonic map themselves: the boundary
//! loop is sized by a hop-counting token, boundary robots place
//! themselves uniformly on the unit circle, and every inner robot
//! repeatedly moves its *virtual* disk position to the average of its
//! neighbors' positions — a Jacobi iteration realized purely with
//! one-hop messages. This module implements that protocol on the
//! synchronous simulator and is cross-checked against the centralized
//! Gauss–Seidel solver ([`crate::harmonic_map_to_disk`]) in tests.

use crate::{DiskMap, HarmonicError};
use anr_distsim::{Envelope, Node, Outbox, SimError, Simulator};
use anr_geom::Point;
use anr_mesh::TriMesh;
use std::f64::consts::TAU;

/// One robot's state in the distributed harmonic-map protocol.
#[derive(Debug, Clone)]
struct HarmonicNode {
    /// Current virtual disk position.
    position: Point,
    /// Fixed boundary vertex?
    fixed: bool,
    /// Latest known neighbor positions (by neighbor id).
    neighbor_positions: Vec<(usize, Point)>,
    /// Stop re-broadcasting once the local update is below this.
    tolerance: f64,
}

impl Node for HarmonicNode {
    type Msg = Point;

    fn on_start(&mut self, out: &mut Outbox<Point>) {
        out.broadcast(self.position);
    }

    fn on_round(&mut self, _round: usize, inbox: &[Envelope<Point>], out: &mut Outbox<Point>) {
        for env in inbox {
            match self
                .neighbor_positions
                .iter_mut()
                .find(|(id, _)| *id == env.from)
            {
                Some((_, p)) => *p = env.msg,
                None => self.neighbor_positions.push((env.from, env.msg)),
            }
        }
        if self.fixed || self.neighbor_positions.is_empty() {
            return;
        }
        let mut sx = 0.0;
        let mut sy = 0.0;
        for &(_, p) in &self.neighbor_positions {
            sx += p.x;
            sy += p.y;
        }
        let n = self.neighbor_positions.len() as f64;
        let next = Point::new(sx / n, sy / n);
        let moved = next.distance(self.position);
        self.position = next;
        // Quiescence by local convergence: keep gossiping while moving.
        if moved > self.tolerance {
            out.broadcast(self.position);
        }
    }
}

/// Configuration of the distributed harmonic protocol.
#[derive(Debug, Clone, Copy)]
pub struct DistributedHarmonicConfig {
    /// A node stops re-broadcasting when its per-round move drops below
    /// this (unit-disk units). Default `1e-7`.
    pub local_tolerance: f64,
    /// Round budget. Jacobi converges linearly; the default (200 000) is
    /// generous for meshes of a few hundred vertices.
    pub max_rounds: usize,
}

impl Default for DistributedHarmonicConfig {
    fn default() -> Self {
        DistributedHarmonicConfig {
            local_tolerance: 1e-7,
            max_rounds: 200_000,
        }
    }
}

/// Outcome of the distributed protocol: the disk map plus the message
/// accounting that a real deployment would pay.
#[derive(Debug, Clone)]
pub struct DistributedHarmonicOutcome {
    /// Disk position per vertex.
    pub map: DiskMap,
    /// Synchronous rounds executed.
    pub rounds: usize,
    /// Total point messages delivered.
    pub messages: usize,
}

/// Runs the distributed harmonic map of `mesh` (a topological disk) to
/// the unit circle, using only one-hop messages.
///
/// Boundary placement follows the paper's protocol: the smallest-index
/// boundary vertex is the loop origin and boundary vertices sit
/// uniformly by hop count. Inner vertices start at the disk center and
/// run the gossip-averaging protocol until every robot's update falls
/// under `config.local_tolerance`.
///
/// # Errors
///
/// * [`HarmonicError::NotADisk`] / [`HarmonicError::NoBoundary`] /
///   [`HarmonicError::TooSmall`] — wrong topology (fill holes first).
/// * [`HarmonicError::NotConverged`] — round budget exhausted (reported
///   with the executed round count).
pub fn distributed_harmonic_map(
    mesh: &TriMesh,
    config: &DistributedHarmonicConfig,
) -> Result<DistributedHarmonicOutcome, HarmonicError> {
    if mesh.num_triangles() == 0 {
        return Err(HarmonicError::TooSmall);
    }
    let loops = mesh.boundary_loops();
    if loops.is_empty() {
        return Err(HarmonicError::NoBoundary);
    }
    if loops.len() != 1 {
        return Err(HarmonicError::NotADisk { loops: loops.len() });
    }
    let Some(mut boundary) = loops.into_iter().next() else {
        return Err(HarmonicError::NoBoundary);
    };
    if boundary.len() < 3 {
        return Err(HarmonicError::TooSmall);
    }
    let start = boundary
        .iter()
        .enumerate()
        .min_by_key(|&(_, &v)| v)
        .map(|(i, _)| i)
        .unwrap_or(0);
    boundary.rotate_left(start);

    let n = mesh.num_vertices();
    let mut fixed = vec![false; n];
    let mut init = vec![Point::ORIGIN; n];
    let len = boundary.len() as f64;
    for (k, &v) in boundary.iter().enumerate() {
        let theta = TAU * k as f64 / len;
        fixed[v] = true;
        init[v] = Point::new(theta.cos(), theta.sin());
    }

    let nodes: Vec<HarmonicNode> = (0..n)
        .map(|v| HarmonicNode {
            position: init[v],
            fixed: fixed[v],
            neighbor_positions: Vec::new(),
            tolerance: config.local_tolerance,
        })
        .collect();
    let adjacency: Vec<Vec<usize>> = (0..n).map(|v| mesh.vertex_neighbors(v).to_vec()).collect();

    let mut sim =
        Simulator::new(nodes, adjacency).expect("mesh adjacency is symmetric and in range");
    let stats = match sim.run_until_quiet(config.max_rounds) {
        Ok(stats) => stats,
        Err(SimError::NotQuiescent { max_rounds, .. }) => {
            return Err(HarmonicError::NotConverged {
                iterations: max_rounds,
                residual: f64::NAN,
            })
        }
        Err(e) => unreachable!("validated topology cannot fail: {e}"),
    };

    let positions: Vec<Point> = sim.into_nodes().into_iter().map(|nd| nd.position).collect();
    Ok(DistributedHarmonicOutcome {
        map: DiskMap::from_parts(positions, boundary, stats.rounds),
        rounds: stats.rounds,
        messages: stats.messages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{harmonic_map_to_disk, HarmonicConfig};
    use anr_mesh::delaunay;

    fn grid(n: usize) -> TriMesh {
        let mut pts = Vec::new();
        for j in 0..n {
            for i in 0..n {
                pts.push(Point::new(i as f64 * 10.0, j as f64 * 10.0));
            }
        }
        delaunay(&pts).unwrap()
    }

    #[test]
    fn distributed_matches_centralized() {
        let mesh = grid(6);
        let central = harmonic_map_to_disk(&mesh, &HarmonicConfig::default()).unwrap();
        let dist = distributed_harmonic_map(&mesh, &DistributedHarmonicConfig::default()).unwrap();
        for v in 0..mesh.num_vertices() {
            let d = central.position(v).distance(dist.map.position(v));
            assert!(d < 1e-3, "vertex {v} differs by {d}");
        }
    }

    #[test]
    fn boundary_is_pinned_identically() {
        let mesh = grid(5);
        let central = harmonic_map_to_disk(&mesh, &HarmonicConfig::default()).unwrap();
        let dist = distributed_harmonic_map(&mesh, &DistributedHarmonicConfig::default()).unwrap();
        assert_eq!(central.boundary(), dist.map.boundary());
        for &v in dist.map.boundary() {
            assert!(dist.map.position(v).distance(central.position(v)) < 1e-12);
        }
    }

    #[test]
    fn message_accounting_is_reported() {
        let mesh = grid(4);
        let out = distributed_harmonic_map(&mesh, &DistributedHarmonicConfig::default()).unwrap();
        assert!(out.rounds > 1);
        assert!(out.messages >= mesh.num_vertices()); // at least the initial gossip
    }

    #[test]
    fn round_budget_enforced() {
        let mesh = grid(6);
        let cfg = DistributedHarmonicConfig {
            local_tolerance: 1e-14,
            max_rounds: 3,
        };
        assert!(matches!(
            distributed_harmonic_map(&mesh, &cfg),
            Err(HarmonicError::NotConverged { iterations: 3, .. })
        ));
    }

    #[test]
    fn embedding_is_valid() {
        let mesh = grid(5);
        let dist = distributed_harmonic_map(&mesh, &DistributedHarmonicConfig::default()).unwrap();
        let dmesh = dist.map.as_disk_mesh(&mesh);
        for t in 0..dmesh.num_triangles() {
            assert!(
                dmesh.triangle(t).signed_area() > 0.0,
                "triangle {t} flipped"
            );
        }
    }
}
