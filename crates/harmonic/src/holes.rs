//! Filling FoI holes with virtual vertices (paper Sec. III-D-3).
//!
//! Harmonic maps require a topological disk. For a FoI with holes the
//! paper adds "a virtual vertex for each hole", positioned at the average
//! of the hole's boundary vertices, and fills the hole with the fan of
//! virtual triangles connecting consecutive boundary vertices to the
//! virtual vertex.

use crate::HarmonicError;
use anr_geom::Point;
use anr_mesh::TriMesh;

/// A mesh whose holes were filled with virtual vertices and triangles.
#[derive(Debug, Clone)]
pub struct FilledMesh {
    /// The filled (topological-disk) mesh. Vertices `0..num_real` are the
    /// original vertices; vertices `num_real..` are virtual.
    mesh: TriMesh,
    /// Number of original (real) vertices.
    num_real: usize,
    /// Indices of the added virtual vertices (one per hole).
    virtual_vertices: Vec<usize>,
    /// Triangle indices that are virtual (contain a virtual vertex).
    virtual_triangles: Vec<bool>,
}

impl FilledMesh {
    /// The filled mesh (a topological disk).
    #[inline]
    pub fn mesh(&self) -> &TriMesh {
        &self.mesh
    }

    /// Number of original vertices; indices `>= num_real` are virtual.
    #[inline]
    pub fn num_real(&self) -> usize {
        self.num_real
    }

    /// Is vertex `v` a virtual hole-center?
    #[inline]
    pub fn is_virtual_vertex(&self, v: usize) -> bool {
        v >= self.num_real
    }

    /// The virtual vertex indices, one per filled hole.
    #[inline]
    pub fn virtual_vertices(&self) -> &[usize] {
        &self.virtual_vertices
    }

    /// Is triangle `t` one of the virtual fill triangles?
    ///
    /// # Panics
    ///
    /// Panics when `t` is out of range.
    #[inline]
    pub fn is_virtual_triangle(&self, t: usize) -> bool {
        self.virtual_triangles[t]
    }

    /// Number of holes that were filled.
    #[inline]
    pub fn num_holes(&self) -> usize {
        self.virtual_vertices.len()
    }
}

/// Fills every inner hole of `mesh` with a virtual vertex and a triangle
/// fan, returning a topological disk.
///
/// A mesh that is already a disk is returned unchanged (zero virtual
/// vertices).
///
/// # Errors
///
/// * [`HarmonicError::NoBoundary`] — the mesh has no boundary.
/// * [`HarmonicError::TooSmall`] — no triangles.
///
/// # Example
///
/// ```
/// use anr_geom::{Point, Polygon, PolygonWithHoles};
/// use anr_mesh::FoiMesher;
/// use anr_harmonic::fill_holes;
///
/// let outer = Polygon::rectangle(Point::ORIGIN, 100.0, 100.0);
/// let hole = Polygon::rectangle(Point::new(40.0, 40.0), 20.0, 20.0);
/// let foi = PolygonWithHoles::new(outer, vec![hole]).unwrap();
/// let meshed = FoiMesher::new(8.0).mesh(&foi)?;
/// let filled = fill_holes(meshed.mesh())?;
/// assert_eq!(filled.num_holes(), 1);
/// assert_eq!(filled.mesh().boundary_loops().len(), 1); // now a disk
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fill_holes(mesh: &TriMesh) -> Result<FilledMesh, HarmonicError> {
    if mesh.num_triangles() == 0 {
        return Err(HarmonicError::TooSmall);
    }
    let loops = mesh.boundary_loops();
    if loops.is_empty() {
        return Err(HarmonicError::NoBoundary);
    }
    let num_real = mesh.num_vertices();
    let real_triangles = mesh.num_triangles();

    let mut verts: Vec<Point> = mesh.vertices().to_vec();
    let mut tris: Vec<[usize; 3]> = mesh.triangles().to_vec();
    let mut virtual_vertices = Vec::new();

    // loops[0] is the outer boundary; the rest are holes.
    for hole in loops.iter().skip(1) {
        // Virtual vertex at the average of the hole's boundary vertices
        // (paper: "computed as average of the positions of boundary
        // vertices along the hole").
        let Some(center) = Point::centroid_of(hole.iter().map(|&v| mesh.vertex(v))) else {
            continue; // an empty loop has nothing to fill
        };
        let vc = verts.len();
        verts.push(center);
        virtual_vertices.push(vc);
        // Fan: each consecutive pair on the loop + the virtual vertex.
        for k in 0..hole.len() {
            let a = hole[k];
            let b = hole[(k + 1) % hole.len()];
            tris.push([a, b, vc]);
        }
    }

    let mesh = TriMesh::new(verts, tris).map_err(HarmonicError::InvalidFill)?;
    let virtual_triangles: Vec<bool> = (0..mesh.num_triangles())
        .map(|t| t >= real_triangles)
        .collect();

    Ok(FilledMesh {
        mesh,
        num_real,
        virtual_vertices,
        virtual_triangles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anr_geom::{Polygon, PolygonWithHoles};
    use anr_mesh::FoiMesher;

    fn ring_mesh() -> TriMesh {
        let p = |x: f64, y: f64| Point::new(x, y);
        let verts = vec![
            p(0.0, 0.0),
            p(3.0, 0.0),
            p(3.0, 3.0),
            p(0.0, 3.0),
            p(1.0, 1.0),
            p(2.0, 1.0),
            p(2.0, 2.0),
            p(1.0, 2.0),
        ];
        let tris = vec![
            [0, 1, 5],
            [0, 5, 4],
            [1, 2, 6],
            [1, 6, 5],
            [2, 3, 7],
            [2, 7, 6],
            [3, 0, 4],
            [3, 4, 7],
        ];
        TriMesh::new(verts, tris).unwrap()
    }

    #[test]
    fn fills_square_ring() {
        let filled = fill_holes(&ring_mesh()).unwrap();
        assert_eq!(filled.num_holes(), 1);
        assert_eq!(filled.num_real(), 8);
        assert_eq!(filled.mesh().num_vertices(), 9);
        assert_eq!(filled.mesh().num_triangles(), 12); // 8 + 4 fan
        assert_eq!(filled.mesh().boundary_loops().len(), 1);
        assert_eq!(filled.mesh().euler_characteristic(), 1);
    }

    #[test]
    fn virtual_vertex_at_hole_center() {
        let filled = fill_holes(&ring_mesh()).unwrap();
        let vc = filled.virtual_vertices()[0];
        assert!(filled.is_virtual_vertex(vc));
        assert!(filled.mesh().vertex(vc).distance(Point::new(1.5, 1.5)) < 1e-12);
    }

    #[test]
    fn virtual_triangle_flags() {
        let filled = fill_holes(&ring_mesh()).unwrap();
        let n_virtual = (0..filled.mesh().num_triangles())
            .filter(|&t| filled.is_virtual_triangle(t))
            .count();
        assert_eq!(n_virtual, 4);
        // All virtual triangles touch the virtual vertex.
        let vc = filled.virtual_vertices()[0];
        for t in 0..filled.mesh().num_triangles() {
            let has_vc = filled.mesh().triangles()[t].contains(&vc);
            assert_eq!(filled.is_virtual_triangle(t), has_vc);
        }
    }

    #[test]
    fn disk_mesh_unchanged() {
        let p = |x: f64, y: f64| Point::new(x, y);
        let mesh =
            TriMesh::new(vec![p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)], vec![[0, 1, 2]]).unwrap();
        let filled = fill_holes(&mesh).unwrap();
        assert_eq!(filled.num_holes(), 0);
        assert_eq!(filled.mesh().num_vertices(), 3);
        assert_eq!(filled.mesh().num_triangles(), 1);
    }

    #[test]
    fn filled_foi_mesh_maps_to_disk() {
        // End-to-end with the harmonic map: fill a real FoI with two
        // holes and verify the result is mappable.
        let outer = Polygon::rectangle(Point::ORIGIN, 120.0, 100.0);
        let h1 = Polygon::regular(Point::new(35.0, 50.0), 12.0, 10);
        let h2 = Polygon::regular(Point::new(85.0, 50.0), 14.0, 12);
        let foi = PolygonWithHoles::new(outer, vec![h1, h2]).unwrap();
        let meshed = FoiMesher::new(8.0).mesh(&foi).unwrap();
        let filled = fill_holes(meshed.mesh()).unwrap();
        assert_eq!(filled.num_holes(), 2);
        let disk = crate::harmonic_map_to_disk(filled.mesh(), &Default::default()).unwrap();
        // Virtual vertices are interior: strictly inside the disk.
        for &vc in filled.virtual_vertices() {
            assert!(disk.position(vc).to_vector().norm() < 1.0 - 1e-6);
        }
    }

    #[test]
    fn empty_mesh_rejected() {
        let p = |x: f64, y: f64| Point::new(x, y);
        let mesh = TriMesh::new(vec![p(0.0, 0.0)], vec![]).unwrap();
        assert!(matches!(fill_holes(&mesh), Err(HarmonicError::TooSmall)));
    }
}
