//! # anr-viz — dependency-free SVG rendering of deployments
//!
//! Regenerates the qualitative panels of the paper's figures: FoI
//! boundaries with holes, robot positions, connectivity edges (blue =
//! preserved from `M1`, red = new in `M2`) and trajectories.
//!
//! ## Example
//!
//! ```
//! use anr_geom::{Point, Polygon, PolygonWithHoles};
//! use anr_viz::SvgCanvas;
//!
//! let region = PolygonWithHoles::without_holes(
//!     Polygon::rectangle(Point::ORIGIN, 100.0, 100.0),
//! );
//! let mut svg = SvgCanvas::fitting([region.bbox()], 640.0);
//! svg.region(&region, "#f5f1e8", "#555");
//! svg.robot(Point::new(50.0, 50.0), 3.0, "#1a6baa");
//! let out = svg.finish();
//! assert!(out.starts_with("<svg"));
//! assert!(out.ends_with("</svg>\n"));
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

mod chart;

pub use chart::{BarChart, LineChart};

use anr_geom::{Aabb, Point, Polygon, PolygonWithHoles};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Paper figure palette.
pub mod palette {
    /// Preserved communication links ("blue color marked edges").
    pub const PRESERVED: &str = "#1f77b4";
    /// New communication links ("red color marked edges").
    pub const NEW: &str = "#d62728";
    /// Robot fill.
    pub const ROBOT: &str = "#2b2b2b";
    /// FoI fill.
    pub const FOI_FILL: &str = "#f2ede3";
    /// FoI boundary stroke.
    pub const FOI_STROKE: &str = "#6b6b6b";
    /// Hole fill.
    pub(crate) const HOLE_FILL: &str = "#cfd8dc";
    /// Trajectory stroke.
    pub const TRAJECTORY: &str = "#8888cc";
}

/// An SVG drawing surface with a world-coordinate viewport.
///
/// World y grows upward (standard geometry); the canvas flips it so the
/// rendered image matches the usual mathematical orientation.
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    body: String,
    view: Aabb,
    scale: f64,
    width_px: f64,
    height_px: f64,
}

impl SvgCanvas {
    /// Creates a canvas whose viewport fits all `boxes` with a 5%
    /// margin, rendered `width_px` pixels wide.
    ///
    /// # Panics
    ///
    /// Panics when `boxes` is empty or `width_px <= 0`.
    pub fn fitting<I: IntoIterator<Item = Aabb>>(boxes: I, width_px: f64) -> Self {
        assert!(width_px > 0.0, "width must be positive");
        let mut it = boxes.into_iter();
        let first = it.next().expect("need at least one box to fit");
        let mut view = first;
        for b in it {
            view.expand(b.min);
            view.expand(b.max);
        }
        let margin = view.diagonal() * 0.05;
        let view = view.inflated(margin.max(1.0));
        let scale = width_px / view.width();
        let height_px = view.height() * scale;
        SvgCanvas {
            body: String::new(),
            view,
            scale,
            width_px,
            height_px,
        }
    }

    fn tx(&self, p: Point) -> (f64, f64) {
        (
            (p.x - self.view.min.x) * self.scale,
            // Flip y: SVG y grows downward.
            (self.view.max.y - p.y) * self.scale,
        )
    }

    /// Draws a polygon outline.
    pub fn polygon(&mut self, poly: &Polygon, fill: &str, stroke: &str) {
        let pts: String = poly
            .vertices()
            .iter()
            .map(|&p| {
                let (x, y) = self.tx(p);
                format!("{x:.2},{y:.2} ")
            })
            .collect();
        let _ = writeln!(
            self.body,
            r#"<polygon points="{}" fill="{fill}" stroke="{stroke}" stroke-width="1"/>"#,
            pts.trim_end()
        );
    }

    /// Draws a FoI: outer boundary filled, holes overpainted.
    pub fn region(&mut self, region: &PolygonWithHoles, fill: &str, stroke: &str) {
        self.polygon(region.outer(), fill, stroke);
        for h in region.holes() {
            self.polygon(h, palette::HOLE_FILL, stroke);
        }
    }

    /// Draws a robot as a filled dot.
    pub fn robot(&mut self, p: Point, radius_px: f64, fill: &str) {
        let (x, y) = self.tx(p);
        let _ = writeln!(
            self.body,
            r#"<circle cx="{x:.2}" cy="{y:.2}" r="{radius_px:.2}" fill="{fill}"/>"#
        );
    }

    /// Draws a line segment between two world points.
    pub fn line(&mut self, a: Point, b: Point, stroke: &str, width_px: f64) {
        let (x1, y1) = self.tx(a);
        let (x2, y2) = self.tx(b);
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width_px:.2}"/>"#
        );
    }

    /// Draws an open polyline (e.g. a trajectory).
    pub fn polyline(&mut self, pts: &[Point], stroke: &str, width_px: f64) {
        if pts.len() < 2 {
            return;
        }
        let s: String = pts
            .iter()
            .map(|&p| {
                let (x, y) = self.tx(p);
                format!("{x:.2},{y:.2} ")
            })
            .collect();
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width_px:.2}"/>"#,
            s.trim_end()
        );
    }

    /// Draws text at a world position.
    pub fn text(&mut self, p: Point, size_px: f64, content: &str) {
        let (x, y) = self.tx(p);
        let escaped = content
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size_px:.1}" font-family="sans-serif">{escaped}</text>"#
        );
    }

    /// Renders a whole deployment: region + links + robots. Links are
    /// index pairs into `robots`; `preserved` selects the blue palette,
    /// others are red.
    pub fn deployment(
        &mut self,
        region: &PolygonWithHoles,
        robots: &[Point],
        links: &[(usize, usize)],
        preserved: impl Fn(usize, usize) -> bool,
    ) {
        self.region(region, palette::FOI_FILL, palette::FOI_STROKE);
        for &(i, j) in links {
            let color = if preserved(i, j) {
                palette::PRESERVED
            } else {
                palette::NEW
            };
            self.line(robots[i], robots[j], color, 1.0);
        }
        for &r in robots {
            self.robot(r, 2.5, palette::ROBOT);
        }
    }

    /// Finalizes the document and returns the SVG text.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n{}</svg>\n",
            self.width_px, self.height_px, self.width_px, self.height_px, self.body
        )
    }

    /// Finalizes and writes the SVG to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save<P: AsRef<Path>>(self, path: P) -> io::Result<()> {
        std::fs::write(path, self.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anr_geom::Polygon;

    fn region() -> PolygonWithHoles {
        let outer = Polygon::rectangle(Point::ORIGIN, 100.0, 50.0);
        let hole = Polygon::rectangle(Point::new(40.0, 20.0), 10.0, 10.0);
        PolygonWithHoles::new(outer, vec![hole]).unwrap()
    }

    #[test]
    fn produces_valid_svg_shell() {
        let svg = SvgCanvas::fitting([region().bbox()], 400.0).finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn canvas_aspect_matches_view() {
        let c = SvgCanvas::fitting([region().bbox()], 400.0);
        // 100×50 world + 5% margins → aspect ratio ≈ 2 kept.
        let ratio = c.width_px / c.height_px;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn elements_are_emitted() {
        let mut c = SvgCanvas::fitting([region().bbox()], 400.0);
        c.region(&region(), "#fff", "#000");
        c.robot(Point::new(10.0, 10.0), 2.0, "#f00");
        c.line(Point::ORIGIN, Point::new(100.0, 50.0), "#00f", 1.0);
        c.polyline(
            &[Point::ORIGIN, Point::new(5.0, 5.0), Point::new(9.0, 2.0)],
            "#0f0",
            1.0,
        );
        c.text(Point::new(1.0, 1.0), 12.0, "a < b");
        let svg = c.finish();
        assert_eq!(svg.matches("<polygon").count(), 2); // outer + hole
        assert_eq!(svg.matches("<circle").count(), 1);
        assert_eq!(svg.matches("<line").count(), 1);
        assert_eq!(svg.matches("<polyline").count(), 1);
        assert!(svg.contains("a &lt; b"));
    }

    #[test]
    fn y_axis_is_flipped() {
        let mut c = SvgCanvas::fitting([region().bbox()], 400.0);
        let (_, y_low) = c.tx(Point::new(0.0, 0.0));
        let (_, y_high) = c.tx(Point::new(0.0, 50.0));
        assert!(y_high < y_low, "world-up must render higher on screen");
        c.robot(Point::ORIGIN, 1.0, "#000");
    }

    #[test]
    fn deployment_renders_blue_and_red() {
        let mut c = SvgCanvas::fitting([region().bbox()], 400.0);
        let robots = vec![
            Point::new(10.0, 10.0),
            Point::new(20.0, 10.0),
            Point::new(30.0, 10.0),
        ];
        c.deployment(&region(), &robots, &[(0, 1), (1, 2)], |i, _| i == 0);
        let svg = c.finish();
        assert!(svg.contains(palette::PRESERVED));
        assert!(svg.contains(palette::NEW));
        assert_eq!(svg.matches("<circle").count(), 3);
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("anr_viz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.svg");
        let c = SvgCanvas::fitting([region().bbox()], 200.0);
        c.save(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("<svg"));
        std::fs::remove_file(path).ok();
    }
}
