//! Minimal SVG line charts — renders the data series of the paper's
//! Figs. 3–5 (distance and stable-link-ratio versus separation) without
//! external plotting dependencies.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Default series palette (colorblind-safe-ish).
const SERIES_COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
];

/// One plotted line.
#[derive(Debug, Clone)]
struct Series {
    name: String,
    points: Vec<(f64, f64)>,
    color: String,
}

/// A simple XY line chart with axes, ticks and a legend.
///
/// ```
/// use anr_viz::LineChart;
///
/// let mut chart = LineChart::new("L vs separation", "separation (× r_c)", "L");
/// chart.add_series("ours (a)", vec![(10.0, 0.95), (50.0, 0.96), (100.0, 0.96)]);
/// chart.add_series("hungarian", vec![(10.0, 0.27), (50.0, 0.2), (100.0, 0.18)]);
/// let svg = chart.render();
/// assert!(svg.contains("ours (a)"));
/// assert!(svg.starts_with("<svg"));
/// ```
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    width: f64,
    height: f64,
    y_from_zero: bool,
}

impl LineChart {
    /// Creates an empty chart.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        LineChart {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
            width: 640.0,
            height: 420.0,
            y_from_zero: false,
        }
    }

    /// Sets the rendered size in pixels (default 640×420).
    ///
    /// # Panics
    ///
    /// Panics for non-positive dimensions.
    pub fn size(&mut self, width: f64, height: f64) -> &mut Self {
        assert!(width > 0.0 && height > 0.0, "chart size must be positive");
        self.width = width;
        self.height = height;
        self
    }

    /// Forces the y axis to start at zero (default: fit data).
    pub fn y_from_zero(&mut self, yes: bool) -> &mut Self {
        self.y_from_zero = yes;
        self
    }

    /// Adds a named series; colors cycle automatically.
    pub fn add_series(&mut self, name: &str, points: Vec<(f64, f64)>) -> &mut Self {
        let color = SERIES_COLORS[self.series.len() % SERIES_COLORS.len()].to_string();
        self.series.push(Series {
            name: name.to_string(),
            points,
            color,
        });
        self
    }

    /// Renders the chart to an SVG string.
    ///
    /// An empty chart (no series or only empty series) renders the frame
    /// and labels without lines.
    pub fn render(&self) -> String {
        let (ml, mr, mt, mb) = (70.0, 20.0, 40.0, 55.0); // margins
        let pw = self.width - ml - mr; // plot width
        let ph = self.height - mt - mb;

        // Data bounds.
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                xs.push(x);
                ys.push(y);
            }
        }
        let (x0, x1) = bounds(&xs, false);
        let (y0, y1) = bounds(&ys, self.y_from_zero);

        let tx = |x: f64| ml + (x - x0) / (x1 - x0) * pw;
        let ty = |y: f64| mt + ph - (y - y0) / (y1 - y0) * ph;

        let mut b = String::new();
        // Frame.
        let _ = writeln!(
            b,
            r##"<rect x="{ml}" y="{mt}" width="{pw}" height="{ph}" fill="none" stroke="#444" stroke-width="1"/>"##
        );
        // Title + axis labels.
        let _ = writeln!(
            b,
            r#"<text x="{:.1}" y="24" font-size="15" text-anchor="middle" font-family="sans-serif">{}</text>"#,
            ml + pw / 2.0,
            escape(&self.title)
        );
        let _ = writeln!(
            b,
            r#"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle" font-family="sans-serif">{}</text>"#,
            ml + pw / 2.0,
            self.height - 12.0,
            escape(&self.x_label)
        );
        let _ = writeln!(
            b,
            r#"<text x="16" y="{:.1}" font-size="12" text-anchor="middle" font-family="sans-serif" transform="rotate(-90 16 {:.1})">{}</text>"#,
            mt + ph / 2.0,
            mt + ph / 2.0,
            escape(&self.y_label)
        );

        // Ticks: 5 per axis.
        for k in 0..=4 {
            let fx = x0 + (x1 - x0) * k as f64 / 4.0;
            let fy = y0 + (y1 - y0) * k as f64 / 4.0;
            let px = tx(fx);
            let py = ty(fy);
            let _ = writeln!(
                b,
                r##"<line x1="{px:.1}" y1="{:.1}" x2="{px:.1}" y2="{:.1}" stroke="#444"/>"##,
                mt + ph,
                mt + ph + 5.0
            );
            let _ = writeln!(
                b,
                r#"<text x="{px:.1}" y="{:.1}" font-size="10" text-anchor="middle" font-family="sans-serif">{}</text>"#,
                mt + ph + 18.0,
                fmt_tick(fx)
            );
            let _ = writeln!(
                b,
                r##"<line x1="{:.1}" y1="{py:.1}" x2="{ml:.1}" y2="{py:.1}" stroke="#444"/>"##,
                ml - 5.0
            );
            let _ = writeln!(
                b,
                r#"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end" font-family="sans-serif">{}</text>"#,
                ml - 8.0,
                py + 3.0,
                fmt_tick(fy)
            );
            // Light gridline.
            let _ = writeln!(
                b,
                r##"<line x1="{ml}" y1="{py:.1}" x2="{:.1}" y2="{py:.1}" stroke="#ddd" stroke-width="0.5"/>"##,
                ml + pw
            );
        }

        // Series.
        for s in &self.series {
            if s.points.is_empty() {
                continue;
            }
            let pts: String = s
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1} ", tx(x), ty(y)))
                .collect();
            let _ = writeln!(
                b,
                r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="1.8"/>"#,
                pts.trim_end(),
                s.color
            );
            for &(x, y) in &s.points {
                let _ = writeln!(
                    b,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="2.5" fill="{}"/>"#,
                    tx(x),
                    ty(y),
                    s.color
                );
            }
        }

        // Legend (top-right inside the plot).
        for (k, s) in self.series.iter().enumerate() {
            let ly = mt + 14.0 + 16.0 * k as f64;
            let lx = ml + pw - 150.0;
            let _ = writeln!(
                b,
                r#"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{}" stroke-width="2"/>"#,
                lx + 22.0,
                s.color
            );
            let _ = writeln!(
                b,
                r#"<text x="{:.1}" y="{:.1}" font-size="11" font-family="sans-serif">{}</text>"#,
                lx + 28.0,
                ly + 4.0,
                escape(&s.name)
            );
        }

        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, b
        )
    }

    /// Renders and writes the chart to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// A grouped bar chart: one group per category, one bar per series —
/// the shape of the paper's Fig. 6 density histogram.
///
/// ```
/// use anr_viz::BarChart;
///
/// let mut chart = BarChart::new("density by band", "band", "robots / area");
/// chart.add_series("uniform", vec![5.7, 6.0, 6.5]);
/// chart.add_series("weighted", vec![7.8, 6.1, 5.9]);
/// chart.set_categories(vec!["0-60".into(), "60-120".into(), "120-180".into()]);
/// let svg = chart.render();
/// assert!(svg.contains("<rect"));
/// assert!(svg.contains("uniform"));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    x_label: String,
    y_label: String,
    categories: Vec<String>,
    series: Vec<Series>,
    width: f64,
    height: f64,
}

impl BarChart {
    /// Creates an empty bar chart.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        BarChart {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            categories: Vec::new(),
            series: Vec::new(),
            width: 640.0,
            height: 420.0,
        }
    }

    /// Sets the per-group category labels.
    pub fn set_categories(&mut self, categories: Vec<String>) -> &mut Self {
        self.categories = categories;
        self
    }

    /// Adds a named series of bar heights (one per category).
    pub fn add_series(&mut self, name: &str, values: Vec<f64>) -> &mut Self {
        let color = SERIES_COLORS[self.series.len() % SERIES_COLORS.len()].to_string();
        self.series.push(Series {
            name: name.to_string(),
            points: values
                .into_iter()
                .enumerate()
                .map(|(i, v)| (i as f64, v))
                .collect(),
            color,
        });
        self
    }

    /// Renders the chart to an SVG string.
    pub fn render(&self) -> String {
        let (ml, mr, mt, mb) = (70.0, 20.0, 40.0, 55.0);
        let pw = self.width - ml - mr;
        let ph = self.height - mt - mb;

        let groups = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0)
            .max(self.categories.len());
        let ys: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(_, y)| y))
            .collect();
        let (_, y1) = bounds(&ys, true);
        let y0 = 0.0;

        let mut b = String::new();
        let _ = writeln!(
            b,
            r##"<rect x="{ml}" y="{mt}" width="{pw}" height="{ph}" fill="none" stroke="#444" stroke-width="1"/>"##
        );
        let _ = writeln!(
            b,
            r#"<text x="{:.1}" y="24" font-size="15" text-anchor="middle" font-family="sans-serif">{}</text>"#,
            ml + pw / 2.0,
            escape(&self.title)
        );
        let _ = writeln!(
            b,
            r#"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle" font-family="sans-serif">{}</text>"#,
            ml + pw / 2.0,
            self.height - 8.0,
            escape(&self.x_label)
        );
        let _ = writeln!(
            b,
            r#"<text x="16" y="{:.1}" font-size="12" text-anchor="middle" font-family="sans-serif" transform="rotate(-90 16 {:.1})">{}</text>"#,
            mt + ph / 2.0,
            mt + ph / 2.0,
            escape(&self.y_label)
        );

        if groups > 0 && !self.series.is_empty() {
            let group_w = pw / groups as f64;
            let bar_w = group_w * 0.8 / self.series.len() as f64;
            for (si, s) in self.series.iter().enumerate() {
                for &(gx, y) in &s.points {
                    let g = gx as usize;
                    if g >= groups {
                        continue;
                    }
                    let x = ml + g as f64 * group_w + group_w * 0.1 + si as f64 * bar_w;
                    let h = ((y - y0) / (y1 - y0) * ph).max(0.0);
                    let _ = writeln!(
                        b,
                        r#"<rect x="{x:.1}" y="{:.1}" width="{bar_w:.1}" height="{h:.1}" fill="{}"/>"#,
                        mt + ph - h,
                        s.color
                    );
                }
            }
            // Category labels.
            for (g, label) in self.categories.iter().enumerate().take(groups) {
                let _ = writeln!(
                    b,
                    r#"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="middle" font-family="sans-serif">{}</text>"#,
                    ml + (g as f64 + 0.5) * group_w,
                    mt + ph + 16.0,
                    escape(label)
                );
            }
            // Y ticks.
            for k in 0..=4 {
                let fy = y0 + (y1 - y0) * k as f64 / 4.0;
                let py = mt + ph - (fy - y0) / (y1 - y0) * ph;
                let _ = writeln!(
                    b,
                    r#"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end" font-family="sans-serif">{}</text>"#,
                    ml - 6.0,
                    py + 3.0,
                    fmt_tick(fy)
                );
            }
            // Legend.
            for (k, s) in self.series.iter().enumerate() {
                let ly = mt + 14.0 + 16.0 * k as f64;
                let lx = ml + pw - 140.0;
                let _ = writeln!(
                    b,
                    r#"<rect x="{lx:.1}" y="{:.1}" width="14" height="10" fill="{}"/>"#,
                    ly - 8.0,
                    s.color
                );
                let _ = writeln!(
                    b,
                    r#"<text x="{:.1}" y="{ly:.1}" font-size="11" font-family="sans-serif">{}</text>"#,
                    lx + 20.0,
                    escape(&s.name)
                );
            }
        }

        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, b
        )
    }

    /// Renders and writes the chart to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.render())
    }
}

fn bounds(values: &[f64], from_zero: bool) -> (f64, f64) {
    let mut lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let mut hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !lo.is_finite() || !hi.is_finite() {
        return (0.0, 1.0);
    }
    if from_zero {
        lo = lo.min(0.0);
    }
    if (hi - lo).abs() < 1e-12 {
        hi = lo + 1.0;
    }
    let pad = (hi - lo) * 0.05;
    (
        if from_zero && lo == 0.0 {
            0.0
        } else {
            lo - pad
        },
        hi + pad,
    )
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 10_000.0 {
        format!("{:.0}k", v / 1000.0)
    } else if v.abs() >= 10.0 || v == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_svg_shell() {
        let mut c = LineChart::new("t", "x", "y");
        c.add_series("s", vec![(0.0, 0.0), (1.0, 1.0)]);
        let svg = c.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("polyline"));
    }

    #[test]
    fn empty_chart_renders_frame_only() {
        let svg = LineChart::new("empty", "x", "y").render();
        assert!(svg.contains("<rect"));
        assert!(!svg.contains("polyline"));
    }

    #[test]
    fn series_colors_cycle() {
        let mut c = LineChart::new("t", "x", "y");
        for k in 0..8 {
            c.add_series(&format!("s{k}"), vec![(0.0, k as f64)]);
        }
        let svg = c.render();
        for color in SERIES_COLORS {
            assert!(svg.contains(color));
        }
    }

    #[test]
    fn labels_are_escaped() {
        let mut c = LineChart::new("a < b", "x & y", "z");
        c.add_series("s<1>", vec![(0.0, 1.0)]);
        let svg = c.render();
        assert!(svg.contains("a &lt; b"));
        assert!(svg.contains("x &amp; y"));
        assert!(svg.contains("s&lt;1&gt;"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut c = LineChart::new("t", "x", "y");
        c.add_series("flat", vec![(0.0, 5.0), (1.0, 5.0)]);
        let svg = c.render();
        assert!(svg.contains("polyline"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn y_from_zero_extends_axis() {
        let mut c = LineChart::new("t", "x", "y");
        c.y_from_zero(true);
        c.add_series("s", vec![(0.0, 100.0), (1.0, 120.0)]);
        let svg = c.render();
        // A zero tick label must appear.
        assert!(svg.contains(">0<"));
    }

    #[test]
    fn bar_chart_renders_groups() {
        let mut c = BarChart::new("t", "x", "y");
        c.add_series("a", vec![1.0, 2.0, 3.0]);
        c.add_series("b", vec![3.0, 2.0, 1.0]);
        c.set_categories(vec!["g1".into(), "g2".into(), "g3".into()]);
        let svg = c.render();
        // 6 bars + frame + 2 legend swatches + background.
        assert!(svg.matches("<rect").count() >= 9);
        assert!(svg.contains("g2"));
        assert!(svg.contains(">a<"));
    }

    #[test]
    fn empty_bar_chart_is_safe() {
        let svg = BarChart::new("t", "x", "y").render();
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(250_000.0), "250k");
        assert_eq!(fmt_tick(50.0), "50");
        assert_eq!(fmt_tick(0.25), "0.25");
        assert_eq!(fmt_tick(0.0), "0");
    }
}
