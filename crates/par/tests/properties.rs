//! Property tests: parallel maps are observationally identical to the
//! serial maps they replace, for arbitrary inputs and worker counts.

use anr_par::{par_chunks, par_map};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn par_map_equals_serial_map(
        items in prop::collection::vec(-1.0e6..1.0e6f64, 0..120),
        workers in 0usize..9,
    ) {
        // Includes workers = 0 (auto), 1 (inline), and counts larger
        // than the item count (short inputs with up to 8 workers).
        let f = |&x: &f64| (x * 1.5 - 3.0, x.to_bits().count_ones());
        let serial: Vec<_> = items.iter().map(f).collect();
        prop_assert_eq!(par_map(&items, workers, f), serial);
    }

    #[test]
    fn par_map_many_workers_few_items(
        items in prop::collection::vec(0u64..1000, 0..4),
    ) {
        let serial: Vec<u64> = items.iter().map(|&x| x + 7).collect();
        prop_assert_eq!(par_map(&items, 32, |&x| x + 7), serial);
    }

    #[test]
    fn par_chunks_equals_serial_chunks(
        items in prop::collection::vec(0u32..10_000, 0..200),
        chunk in 1usize..40,
        workers in 0usize..6,
    ) {
        let f = |c: &[u32]| c.iter().map(|&x| u64::from(x) * 3).sum::<u64>();
        let serial: Vec<u64> = items.chunks(chunk).map(f).collect();
        prop_assert_eq!(par_chunks(&items, chunk, workers, f), serial);
    }
}
