//! # anr-par — minimal fork/join parallelism on `std::thread::scope`
//!
//! The build environment is offline, so instead of `rayon` this crate
//! vendors the two primitives the workspace's hot paths actually need:
//!
//! * [`par_map`] — apply a function to every element of a slice on a
//!   fixed number of worker threads, returning results in **input
//!   order** (bit-identical to the serial map, whatever the worker
//!   count);
//! * [`par_chunks`] — the same, over contiguous chunks, for workloads
//!   whose per-element cost is too small to schedule individually.
//!
//! Scheduling is dynamic (an atomic next-index counter), so uneven
//! per-item costs — fault-sweep cells whose round counts differ by an
//! order of magnitude, say — still balance across workers. Workers
//! collect `(index, result)` pairs privately and the results are
//! scattered back into place after the join, which keeps the output
//! order deterministic without any `unsafe`.
//!
//! Worker panics propagate to the caller when the scope joins, like the
//! serial loop they replace.
//!
//! ## Choosing a worker count
//!
//! [`default_workers`] resolves, in order: the `ANR_WORKERS` environment
//! variable (clamped to [1, 256]), then
//! [`std::thread::available_parallelism`], then 1. Pass an explicit
//! count to pin behaviour in tests; `0` means "use the default" in every
//! entry point so configs can store "auto" without an `Option`.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Upper bound on the worker count accepted from the environment.
const MAX_WORKERS: usize = 256;

/// The worker count used when a caller passes `0`: the `ANR_WORKERS`
/// environment variable if set and valid, otherwise
/// [`std::thread::available_parallelism`], otherwise 1.
#[must_use]
pub fn default_workers() -> usize {
    if let Ok(raw) = std::env::var("ANR_WORKERS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_WORKERS);
            }
        }
    }
    thread::available_parallelism().map_or(1, usize::from)
}

/// Resolves a requested worker count: `0` means [`default_workers`],
/// and the count never exceeds the number of work items (no point
/// spawning idle threads).
fn resolve_workers(requested: usize, items: usize) -> usize {
    let w = if requested == 0 {
        default_workers()
    } else {
        requested.min(MAX_WORKERS)
    };
    w.max(1).min(items.max(1))
}

/// Maps `f` over `items` on `workers` threads (0 = auto), returning the
/// results in input order — byte-for-byte the serial `items.iter().map(f)`.
///
/// Items are scheduled dynamically, one at a time, so heterogeneous
/// per-item costs balance. With one worker (or one item) no thread is
/// spawned and the map runs inline.
///
/// # Panics
///
/// Re-raises the first worker panic when the scope joins.
pub fn par_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = resolve_workers(workers, items.len());
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut labelled: Vec<(usize, R)> = Vec::with_capacity(items.len());
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut mine: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    mine.push((i, f(&items[i])));
                }
                mine
            }));
        }
        for h in handles {
            // Re-raise a worker panic with its original payload instead
            // of masking it behind a fresh panic message.
            match h.join() {
                Ok(part) => labelled.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    // Scatter back into input order.
    labelled.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(labelled.len(), items.len());
    labelled.into_iter().map(|(_, r)| r).collect()
}

/// Maps `f` over contiguous chunks of `items` (each of length
/// `chunk_len`, the last possibly shorter) on `workers` threads
/// (0 = auto), returning one result per chunk in input order.
///
/// Use this instead of [`par_map`] when individual items are too cheap
/// to schedule — e.g. a nearest-site query per grid sample.
///
/// # Panics
///
/// Panics when `chunk_len == 0`; re-raises worker panics.
pub fn par_chunks<T, R, F>(items: &[T], chunk_len: usize, workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
    par_map(&chunks, workers, |c| f(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = par_map(&[] as &[i32], 4, |&x| x * 2);
        assert!(out.is_empty());
    }

    #[test]
    fn order_matches_serial_map() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for workers in [1, 2, 3, 7, 64] {
            assert_eq!(par_map(&items, workers, |&x| x * x + 1), serial);
        }
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = [10, 20];
        assert_eq!(par_map(&items, 16, |&x| x + 1), vec![11, 21]);
    }

    #[test]
    fn zero_workers_means_auto() {
        let items: Vec<i32> = (0..17).collect();
        let serial: Vec<i32> = items.iter().map(|&x| -x).collect();
        assert_eq!(par_map(&items, 0, |&x| -x), serial);
    }

    #[test]
    fn chunks_cover_everything_in_order() {
        let items: Vec<usize> = (0..103).collect();
        for chunk in [1, 7, 50, 103, 200] {
            let sums = par_chunks(&items, chunk, 4, |c| c.iter().sum::<usize>());
            assert_eq!(sums.len(), items.len().div_ceil(chunk));
            assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
            // First chunk is the leading items, deterministically.
            assert_eq!(sums[0], items[..chunk.min(items.len())].iter().sum());
        }
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn zero_chunk_len_panics() {
        let _ = par_chunks(&[1, 2, 3], 0, 2, |c| c.len());
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            let _ = par_map(&[1, 2, 3, 4], 2, |&x| {
                assert!(x < 3, "boom");
                x
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn heterogeneous_costs_still_ordered() {
        // Item i sleeps inversely to its index so completion order is
        // the reverse of input order; output must still be input order.
        let items: Vec<u64> = (0..16).collect();
        let out = par_map(&items, 4, |&x| {
            std::thread::sleep(std::time::Duration::from_millis(16 - x));
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn default_workers_is_at_least_one() {
        assert!(default_workers() >= 1);
    }
}
