//! Articulation points and k-connectivity estimates.
//!
//! The paper notes (Sec. II-A) that deployment patterns achieving both
//! coverage and *k*-connectivity are an open problem and restricts
//! itself to the `r_c ≥ √3·r_s` triangular lattice, which is
//! 6-connected in the interior. These helpers quantify how robust a
//! deployment's connectivity actually is: a network with an articulation
//! point loses global connectivity if that single robot fails, so
//! biconnectivity is the natural "one robot may fail" strengthening of
//! Definition 2.

use crate::UnitDiskGraph;

/// Articulation points (cut vertices) of the connectivity graph, by
/// Tarjan's low-link algorithm (iterative, O(V + E)).
///
/// A robot is an articulation point when removing it disconnects its
/// connected component.
///
/// # Example
///
/// ```
/// use anr_geom::Point;
/// use anr_netgraph::{articulation_points, UnitDiskGraph};
///
/// // A path of three robots: the middle one is an articulation point.
/// let g = UnitDiskGraph::new(
///     &[Point::new(0.0, 0.0), Point::new(60.0, 0.0), Point::new(120.0, 0.0)],
///     80.0,
/// );
/// assert_eq!(articulation_points(&g), vec![1]);
/// ```
pub fn articulation_points(graph: &UnitDiskGraph) -> Vec<usize> {
    let n = graph.len();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut parent = vec![usize::MAX; n];
    let mut is_ap = vec![false; n];
    let mut timer = 0usize;

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // Iterative DFS: (vertex, neighbor cursor).
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        let mut root_children = 0usize;

        while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
            let nbrs = graph.neighbors(u);
            if *cursor < nbrs.len() {
                let v = nbrs[*cursor];
                *cursor += 1;
                if disc[v] == usize::MAX {
                    parent[v] = u;
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    if u == root {
                        root_children += 1;
                    }
                    stack.push((v, 0));
                } else if v != parent[u] {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[u]);
                    if p != root && low[u] >= disc[p] {
                        is_ap[p] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_ap[root] = true;
        }
    }

    (0..n).filter(|&v| is_ap[v]).collect()
}

/// Is the network biconnected: connected, with at least 3 robots and no
/// articulation point?
///
/// A biconnected network survives the failure of any single robot — the
/// "reliability" property the paper's introduction motivates ("the
/// failure of an individual robot can be recovered by its peers").
pub fn is_biconnected(graph: &UnitDiskGraph) -> bool {
    graph.len() >= 3 && graph.is_connected() && articulation_points(graph).is_empty()
}

/// Lower-bound estimate of the vertex connectivity `k`: the network is
/// reported `0` when disconnected, `1` when connected with an
/// articulation point, `2` when biconnected but some vertex has degree
/// 2, otherwise `min degree` capped at the exact value for `k ≤ 2`.
///
/// Vertex connectivity is never larger than the minimum degree, and for
/// `k ∈ {0, 1, 2}` the classification above is exact; beyond that the
/// minimum degree is returned as the standard upper-bound proxy (exact
/// max-flow computation is overkill for lattice deployments whose
/// interior is 6-regular).
pub fn vertex_connectivity_estimate(graph: &UnitDiskGraph) -> usize {
    if graph.len() < 2 || !graph.is_connected() {
        return 0;
    }
    let min_degree = (0..graph.len()).map(|v| graph.degree(v)).min().unwrap_or(0);
    if !articulation_points(graph).is_empty() {
        return 1;
    }
    min_degree.max(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anr_geom::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn path_interior_vertices_are_cut() {
        let pts: Vec<Point> = (0..5).map(|i| p(i as f64 * 60.0, 0.0)).collect();
        let g = UnitDiskGraph::new(&pts, 80.0);
        assert_eq!(articulation_points(&g), vec![1, 2, 3]);
        assert!(!is_biconnected(&g));
        assert_eq!(vertex_connectivity_estimate(&g), 1);
    }

    #[test]
    fn cycle_has_no_articulation_points() {
        // Hexagon ring at 60 m spacing, range 80: each vertex links its
        // two ring neighbors.
        let pts: Vec<Point> = (0..6)
            .map(|k| {
                let theta = std::f64::consts::TAU * k as f64 / 6.0;
                p(60.0 * theta.cos(), 60.0 * theta.sin())
            })
            .collect();
        let g = UnitDiskGraph::new(&pts, 80.0);
        assert!(articulation_points(&g).is_empty());
        assert!(is_biconnected(&g));
        assert_eq!(vertex_connectivity_estimate(&g), 2);
    }

    #[test]
    fn bridge_vertex_between_two_blobs() {
        // Two triangles joined through a single middle robot.
        let pts = vec![
            p(0.0, 0.0),
            p(60.0, 0.0),
            p(30.0, 50.0),
            p(90.0, 25.0), // the bridge
            p(150.0, 0.0),
            p(150.0, 60.0),
            p(210.0, 30.0),
        ];
        let g = UnitDiskGraph::new(&pts, 80.0);
        assert!(g.is_connected());
        let aps = articulation_points(&g);
        assert!(aps.contains(&3), "bridge not detected: {aps:?}");
    }

    #[test]
    fn disconnected_graph_connectivity_zero() {
        let g = UnitDiskGraph::new(&[p(0.0, 0.0), p(500.0, 0.0)], 80.0);
        assert_eq!(vertex_connectivity_estimate(&g), 0);
        assert!(!is_biconnected(&g));
    }

    #[test]
    fn triangular_lattice_interior_is_well_connected() {
        let mut pts = Vec::new();
        for r in 0..5 {
            for c in 0..6 {
                let x = c as f64 * 60.0 + if r % 2 == 1 { 30.0 } else { 0.0 };
                let y = r as f64 * 52.0;
                pts.push(p(x, y));
            }
        }
        let g = UnitDiskGraph::new(&pts, 80.0);
        assert!(is_biconnected(&g));
        assert!(vertex_connectivity_estimate(&g) >= 2);
    }

    #[test]
    fn tiny_graphs() {
        let g = UnitDiskGraph::new(&[p(0.0, 0.0)], 80.0);
        assert!(!is_biconnected(&g));
        assert_eq!(vertex_connectivity_estimate(&g), 0);
        let g = UnitDiskGraph::new(&[p(0.0, 0.0), p(10.0, 0.0)], 80.0);
        assert!(!is_biconnected(&g)); // needs 3+ vertices
    }
}
