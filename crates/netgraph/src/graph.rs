//! The unit-disk connectivity graph of a robot deployment.

use crate::UnionFind;
use anr_geom::Point;
use std::collections::VecDeque;

/// Connectivity graph of robots with identical communication range:
/// robots `i` and `j` share a link iff `‖pᵢ − pⱼ‖ ≤ r_c`.
///
/// The graph snapshot stores positions, the range, and a sorted adjacency
/// list. It is the `e_ij(t)` of the paper evaluated at one instant.
///
/// ```
/// use anr_geom::Point;
/// use anr_netgraph::UnitDiskGraph;
///
/// let g = UnitDiskGraph::new(
///     &[Point::new(0.0, 0.0), Point::new(60.0, 0.0), Point::new(120.0, 0.0)],
///     80.0,
/// );
/// assert_eq!(g.degree(1), 2);
/// assert!(g.is_connected());
/// assert_eq!(g.bfs_hops(0)[2], Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct UnitDiskGraph {
    positions: Vec<Point>,
    range: f64,
    adjacency: Vec<Vec<usize>>,
    num_links: usize,
}

impl UnitDiskGraph {
    /// Builds the connectivity graph of `positions` with communication
    /// range `range`.
    ///
    /// # Panics
    ///
    /// Panics when `range <= 0` or a position is non-finite.
    pub fn new(positions: &[Point], range: f64) -> Self {
        assert!(range > 0.0, "communication range must be positive");
        assert!(
            positions.iter().all(|p| p.is_finite()),
            "positions must be finite"
        );
        let n = positions.len();
        let mut adjacency = vec![Vec::new(); n];
        let mut num_links = 0;
        let r2 = range * range;

        // Spatial hash for O(n) expected construction at lattice density.
        let cell = range;
        let key =
            |p: Point| -> (i64, i64) { ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64) };
        let mut buckets: std::collections::BTreeMap<(i64, i64), Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, &p) in positions.iter().enumerate() {
            buckets.entry(key(p)).or_default().push(i);
        }
        for (i, &p) in positions.iter().enumerate() {
            let (kx, ky) = key(p);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    if let Some(cands) = buckets.get(&(kx + dx, ky + dy)) {
                        for &j in cands {
                            if j > i && positions[j].distance_sq(p) <= r2 {
                                adjacency[i].push(j);
                                adjacency[j].push(i);
                                num_links += 1;
                            }
                        }
                    }
                }
            }
        }
        for a in adjacency.iter_mut() {
            a.sort_unstable();
        }

        UnitDiskGraph {
            positions: positions.to_vec(),
            range,
            adjacency,
            num_links,
        }
    }

    /// Number of robots.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True for an empty deployment.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Robot positions.
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The communication range used to build the graph.
    #[inline]
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Sorted neighbor list of robot `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adjacency[i]
    }

    /// Number of links incident to robot `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        self.adjacency[i].len()
    }

    /// The full adjacency list (e.g. to drive an
    /// [`anr_distsim::Simulator`]).
    #[inline]
    pub fn adjacency(&self) -> &[Vec<usize>] {
        &self.adjacency
    }

    /// Consumes the graph, returning the adjacency list.
    pub fn into_adjacency(self) -> Vec<Vec<usize>> {
        self.adjacency
    }

    /// Total number of undirected links.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// All undirected links as `(i, j)` with `i < j`.
    pub fn links(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.num_links);
        for (i, nbrs) in self.adjacency.iter().enumerate() {
            for &j in nbrs {
                if j > i {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Do robots `i` and `j` share a link?
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn has_link(&self, i: usize, j: usize) -> bool {
        self.adjacency[i].binary_search(&j).is_ok()
    }

    /// BFS hop distance from `source` to every robot (`None` =
    /// unreachable).
    ///
    /// # Panics
    ///
    /// Panics when `source` is out of range.
    pub fn bfs_hops(&self, source: usize) -> Vec<Option<usize>> {
        self.multi_source_hops(&[source])
    }

    /// BFS hop distance from the nearest of several `sources`.
    ///
    /// Used by the isolated-subgroup detection (Sec. III-D-1), where
    /// every boundary vertex is a source.
    ///
    /// # Panics
    ///
    /// Panics when any source is out of range.
    pub fn multi_source_hops(&self, sources: &[usize]) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.len()];
        let mut queue = VecDeque::new();
        for &s in sources {
            assert!(s < self.len(), "source out of range");
            if dist[s].is_none() {
                dist[s] = Some(0);
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            let Some(d) = dist[u] else { continue };
            for &v in &self.adjacency[u] {
                if dist[v].is_none() {
                    dist[v] = Some(d + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Is the whole network one connected component?
    ///
    /// An empty graph counts as connected.
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        self.bfs_hops(0).iter().all(Option::is_some)
    }

    /// Connected components as sorted vertex lists, largest first.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let mut uf = UnionFind::new(self.len());
        for (i, j) in self.links() {
            uf.union(i, j);
        }
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for v in 0..self.len() {
            by_root.entry(uf.find(v)).or_default().push(v);
        }
        let mut comps: Vec<Vec<usize>> = by_root.into_values().collect();
        for c in comps.iter_mut() {
            c.sort_unstable();
        }
        comps.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
        comps
    }

    /// Robots with no links at all.
    pub fn isolated_robots(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.degree(i) == 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn line(n: usize, spacing: f64) -> Vec<Point> {
        (0..n).map(|i| p(i as f64 * spacing, 0.0)).collect()
    }

    #[test]
    fn line_graph_structure() {
        let g = UnitDiskGraph::new(&line(5, 60.0), 80.0);
        assert_eq!(g.num_links(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn range_boundary_is_inclusive() {
        let g = UnitDiskGraph::new(&[p(0.0, 0.0), p(80.0, 0.0)], 80.0);
        assert!(g.has_link(0, 1));
        let g = UnitDiskGraph::new(&[p(0.0, 0.0), p(80.01, 0.0)], 80.0);
        assert!(!g.has_link(0, 1));
    }

    #[test]
    fn disconnected_components() {
        let mut pts = line(3, 50.0);
        pts.extend([p(1000.0, 0.0), p(1050.0, 0.0)]);
        let g = UnitDiskGraph::new(&pts, 80.0);
        assert!(!g.is_connected());
        let comps = g.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]); // largest first
        assert_eq!(comps[1], vec![3, 4]);
    }

    #[test]
    fn bfs_hops_on_line() {
        let g = UnitDiskGraph::new(&line(6, 70.0), 80.0);
        let hops = g.bfs_hops(0);
        for (i, h) in hops.iter().enumerate() {
            assert_eq!(*h, Some(i));
        }
    }

    #[test]
    fn multi_source_hops_take_nearest() {
        let g = UnitDiskGraph::new(&line(7, 70.0), 80.0);
        let hops = g.multi_source_hops(&[0, 6]);
        assert_eq!(hops[3], Some(3));
        assert_eq!(hops[5], Some(1));
        assert_eq!(hops[0], Some(0));
    }

    #[test]
    fn unreachable_is_none() {
        let g = UnitDiskGraph::new(&[p(0.0, 0.0), p(500.0, 0.0)], 80.0);
        assert_eq!(g.bfs_hops(0)[1], None);
    }

    #[test]
    fn isolated_robots_listed() {
        let g = UnitDiskGraph::new(&[p(0.0, 0.0), p(50.0, 0.0), p(900.0, 0.0)], 80.0);
        assert_eq!(g.isolated_robots(), vec![2]);
    }

    #[test]
    fn links_are_canonical_pairs() {
        let g = UnitDiskGraph::new(&line(4, 60.0), 80.0);
        for (i, j) in g.links() {
            assert!(i < j);
            assert!(g.has_link(i, j));
            assert!(g.has_link(j, i));
        }
    }

    #[test]
    fn spatial_hash_matches_bruteforce() {
        // Pseudo-random cloud; compare against O(n²) construction.
        let mut seed: u64 = 99;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        let pts: Vec<Point> = (0..80).map(|_| p(next() * 500.0, next() * 500.0)).collect();
        let g = UnitDiskGraph::new(&pts, 90.0);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let expect = pts[i].distance(pts[j]) <= 90.0;
                assert_eq!(g.has_link(i, j), expect, "link ({i}, {j})");
            }
        }
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = UnitDiskGraph::new(&[], 10.0);
        assert!(g.is_connected());
        assert!(g.connected_components().is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_range_panics() {
        let _ = UnitDiskGraph::new(&[p(0.0, 0.0)], 0.0);
    }
}
