//! # anr-netgraph — connectivity graphs of networked robots
//!
//! Robots within communication range `r_c` of one another share a
//! wireless link; the resulting **unit-disk graph** is the paper's
//! connectivity graph (Sec. II-B). This crate provides:
//!
//! * [`UnitDiskGraph`] — build the connectivity graph from positions,
//!   query neighbors / degrees / links;
//! * connectivity queries — BFS hop fields, connected components (both
//!   BFS and [`UnionFind`]), global-connectivity checks;
//! * [`extract_triangulation`] — the triangulation `T` of the robots'
//!   connectivity graph used by the harmonic map (Sec. III-A, following
//!   the distributed-triangulation idea of the paper's ref.\[18\]:
//!   communication-range-constrained Delaunay);
//! * distributed protocols on [`anr_distsim`]: boundary-loop sizing
//!   ([`protocols::BoundaryLoopNode`]), value flooding
//!   ([`protocols::FloodNode`]) and multi-source hop fields
//!   ([`protocols::HopFieldNode`]), each cross-checked against its
//!   centralized reference.
//!
//! ## Example
//!
//! ```
//! use anr_geom::Point;
//! use anr_netgraph::UnitDiskGraph;
//!
//! let positions = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(50.0, 0.0),
//!     Point::new(200.0, 0.0), // out of range of the others
//! ];
//! let g = UnitDiskGraph::new(&positions, 80.0);
//! assert!(g.has_link(0, 1));
//! assert!(!g.has_link(1, 2));
//! assert!(!g.is_connected());
//! assert_eq!(g.connected_components().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

mod biconnectivity;
mod graph;
pub mod protocols;
pub mod robust;
mod triangulation;
mod unionfind;

pub use biconnectivity::{articulation_points, is_biconnected, vertex_connectivity_estimate};
pub use graph::UnitDiskGraph;
pub use triangulation::{extract_triangulation, extract_triangulation_distributed};
pub use unionfind::{RollbackUnionFind, UnionFind};
