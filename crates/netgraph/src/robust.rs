//! Loss-tolerant variants of the paper's distributed protocols.
//!
//! The protocols in [`crate::protocols`] assume the idealized
//! synchronous network of Sec. III: every message sent is delivered one
//! round later. This module wraps each of them in the standard
//! end-to-end machinery real swarms use — **per-link acknowledgements
//! with timeout retransmission**, plus an initiator-level **timeout
//! restart** for the boundary token — so they survive the lossy,
//! delaying, duplicating, churning networks modeled by
//! [`anr_distsim::FaultPlan`]:
//!
//! * [`RobustFloodNode`] — ack/retransmit value flooding; converges to
//!   the same per-robot sums as [`crate::protocols::FloodNode`] on the
//!   reliable network.
//! * [`RobustHopFieldNode`] — ack/retransmit multi-source BFS; converges
//!   to the same hop field as [`crate::protocols::HopFieldNode`].
//! * [`RobustBoundaryLoopNode`] — the boundary-sizing token with per-hop
//!   acks and an initiator restart timer; converges to the same
//!   (index, loop size) labels as [`crate::protocols::BoundaryLoopNode`].
//!
//! All three are *idempotent at the receiver* (duplicates are re-acked
//! but change no state), which is what makes retransmission and
//! duplication safe.
//!
//! Because a pending retransmission holds no message in flight, these
//! protocols are **not** quiescent-by-messages: run them with
//! [`FaultySimulator::run_until`] and the convergence predicates
//! provided by the runner functions, not `run_until_quiet`.

use anr_distsim::snapshot::{Persist, PersistError, SnapshotReader, SnapshotWriter};
use anr_distsim::{Envelope, FaultPlan, FaultStats, FaultySimulator, Node, Outbox, SimError};

/// Retransmission policy shared by the robust protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitConfig {
    /// Rounds to wait for an ack before resending.
    pub interval: usize,
    /// Resends per message before giving up on that neighbor.
    pub max_retries: usize,
}

impl Default for RetransmitConfig {
    fn default() -> Self {
        RetransmitConfig {
            interval: 4,
            max_retries: 12,
        }
    }
}

/// One un-acknowledged send awaiting retransmission.
#[derive(Debug, Clone, PartialEq)]
struct PendingSend<M> {
    to: usize,
    msg: M,
    resend_at: usize,
    retries: usize,
}

/// Drives the shared retransmit loop: resends due entries, drops
/// entries that exhausted their retries. Returns sends to make.
fn tick_retransmits<M: Clone>(
    pending: &mut Vec<PendingSend<M>>,
    round: usize,
    cfg: &RetransmitConfig,
    out: &mut Outbox<M>,
) {
    pending.retain_mut(|entry| {
        if round >= entry.resend_at {
            if entry.retries >= cfg.max_retries {
                return false; // give up on this neighbor
            }
            entry.retries += 1;
            entry.resend_at = round + cfg.interval;
            out.send(entry.to, entry.msg.clone());
        }
        true
    });
}

// ---------------------------------------------------------------------
// Ack/retransmit value flooding
// ---------------------------------------------------------------------

/// Message of the robust flooding protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum RFloodMsg {
    /// A `(robot id, value)` record being disseminated.
    Data {
        /// Robot the record originates from.
        origin: usize,
        /// That robot's value.
        value: f64,
    },
    /// Acknowledges receipt of the record originating at `origin`.
    Ack {
        /// Origin of the acknowledged record.
        origin: usize,
    },
}

/// Loss-tolerant [`FloodNode`](crate::protocols::FloodNode): every
/// record is sent per-neighbor and retransmitted until acknowledged (or
/// retries are exhausted).
#[derive(Debug, Clone, PartialEq)]
pub struct RobustFloodNode {
    /// This node's ID.
    pub id: usize,
    /// All values learned so far, indexed by robot ID.
    pub known: Vec<Option<f64>>,
    cfg: RetransmitConfig,
    pending: Vec<PendingSend<RFloodMsg>>,
    neighbors: Vec<usize>,
}

impl RobustFloodNode {
    /// Creates a participant for a network of `n` robots; `neighbors`
    /// are this node's topology neighbors (acks are per-link).
    pub fn new(
        id: usize,
        value: f64,
        n: usize,
        neighbors: Vec<usize>,
        cfg: RetransmitConfig,
    ) -> Self {
        let mut known = vec![None; n];
        known[id] = Some(value);
        RobustFloodNode {
            id,
            known,
            cfg,
            pending: Vec::new(),
            neighbors,
        }
    }

    /// Sum of all known values.
    pub fn sum(&self) -> f64 {
        self.known.iter().flatten().sum()
    }

    /// Does this node know every robot's value?
    pub fn is_complete(&self) -> bool {
        self.known.iter().all(Option::is_some)
    }

    /// No more retransmissions outstanding?
    pub fn is_settled(&self) -> bool {
        self.pending.is_empty()
    }

    /// Dormancy predicate for event-driven engines: with no pending
    /// retransmissions, a round with an empty inbox changes no state
    /// and sends nothing, so the node need not be woken until a
    /// message arrives.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
    }

    fn queue_record(
        &mut self,
        origin: usize,
        value: f64,
        except: Option<usize>,
        out: &mut Outbox<RFloodMsg>,
    ) {
        for k in 0..self.neighbors.len() {
            let nbr = self.neighbors[k];
            if Some(nbr) == except {
                continue;
            }
            let msg = RFloodMsg::Data { origin, value };
            out.send(nbr, msg.clone());
            self.pending.push(PendingSend {
                to: nbr,
                msg,
                resend_at: self.cfg.interval,
                retries: 0,
            });
        }
    }
}

impl Node for RobustFloodNode {
    type Msg = RFloodMsg;

    fn on_start(&mut self, out: &mut Outbox<RFloodMsg>) {
        // The constructor seeds `known[id]`; a node somehow without an
        // own value has nothing to flood.
        let Some(value) = self.known[self.id] else {
            return;
        };
        let origin = self.id;
        self.queue_record(origin, value, None, out);
    }

    fn on_round(
        &mut self,
        round: usize,
        inbox: &[Envelope<RFloodMsg>],
        out: &mut Outbox<RFloodMsg>,
    ) {
        for env in inbox {
            match env.msg {
                RFloodMsg::Data { origin, value } => {
                    // Always ack — duplicates mean a lost ack.
                    out.send(env.from, RFloodMsg::Ack { origin });
                    if self.known[origin].is_none() {
                        self.known[origin] = Some(value);
                        self.queue_record(origin, value, Some(env.from), out);
                        // Fix up resend times queued during on_round:
                        // they count from the current round.
                        for entry in &mut self.pending {
                            if entry.resend_at < round + self.cfg.interval {
                                entry.resend_at = round + self.cfg.interval;
                            }
                        }
                    }
                }
                RFloodMsg::Ack { origin } => {
                    self.pending.retain(|e| {
                        !(e.to == env.from
                            && matches!(e.msg, RFloodMsg::Data { origin: o, .. } if o == origin))
                    });
                }
            }
        }
        tick_retransmits(&mut self.pending, round, &self.cfg, out);
    }
}

/// Outcome of a robust protocol run.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustRunOutcome<T> {
    /// The per-robot protocol results.
    pub results: T,
    /// Fault-harness accounting (rounds, messages, drops, churn).
    pub stats: FaultStats,
}

/// Runs ack/retransmit flooding of `values` over `adjacency` under
/// `plan`; returns each robot's learned sum.
///
/// Convergence means every *live* robot learned every value it can
/// reach and no retransmissions remain outstanding. Robots crashed at
/// the end are reported with whatever they knew when they crashed.
///
/// # Errors
///
/// Propagates harness errors; [`SimError::NotQuiescent`] when the
/// protocol does not converge within `max_rounds` (e.g. loss so heavy
/// that retries are exhausted).
pub fn run_robust_flood_sum(
    values: &[f64],
    adjacency: &[Vec<usize>],
    plan: FaultPlan,
    cfg: RetransmitConfig,
    max_rounds: usize,
) -> Result<RobustRunOutcome<Vec<f64>>, SimError> {
    let n = values.len();
    let nodes: Vec<RobustFloodNode> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| RobustFloodNode::new(i, v, n, adjacency[i].clone(), cfg))
        .collect();
    let mut sim = FaultySimulator::new(nodes, adjacency.to_vec(), plan)?;
    let stats = sim.run_until(max_rounds, |nodes| {
        nodes.iter().all(RobustFloodNode::is_settled)
    })?;
    // Drain the tail: in-flight acks/dups may still be delivered.
    let stats = sim.run_until_quiet(max_rounds.saturating_sub(stats.rounds))?;
    Ok(RobustRunOutcome {
        results: sim.into_nodes().iter().map(RobustFloodNode::sum).collect(),
        stats,
    })
}

// ---------------------------------------------------------------------
// Ack/retransmit multi-source hop field
// ---------------------------------------------------------------------

/// Message of the robust hop-field protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RHopMsg {
    /// "Your distance to a source is at most this."
    Dist(usize),
    /// Acknowledges a [`RHopMsg::Dist`] carrying this value.
    DistAck(usize),
}

/// Loss-tolerant [`HopFieldNode`](crate::protocols::HopFieldNode):
/// distance improvements are sent per-neighbor with ack/retransmit.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustHopFieldNode {
    /// Whether this node is a source (hop 0).
    pub is_source: bool,
    /// Learned hop distance to the nearest source.
    pub hops: Option<usize>,
    cfg: RetransmitConfig,
    pending: Vec<PendingSend<RHopMsg>>,
    neighbors: Vec<usize>,
}

impl RobustHopFieldNode {
    /// Creates a participant with the given topology neighbors.
    pub fn new(is_source: bool, neighbors: Vec<usize>, cfg: RetransmitConfig) -> Self {
        RobustHopFieldNode {
            is_source,
            hops: None,
            cfg,
            pending: Vec::new(),
            neighbors,
        }
    }

    /// No more retransmissions outstanding?
    pub fn is_settled(&self) -> bool {
        self.pending.is_empty()
    }

    /// Dormancy predicate for event-driven engines: see
    /// [`RobustFloodNode::is_idle`].
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
    }

    fn propagate(&mut self, base_round: usize, except: Option<usize>, out: &mut Outbox<RHopMsg>) {
        // Callers set `hops` before propagating; with no distance yet
        // there is nothing to announce.
        let Some(hops) = self.hops else {
            return;
        };
        let d = hops + 1;
        for k in 0..self.neighbors.len() {
            let nbr = self.neighbors[k];
            if Some(nbr) == except {
                continue;
            }
            // Replace any stale pending towards this neighbor: only the
            // newest (smallest) distance matters.
            self.pending.retain(|e| e.to != nbr);
            out.send(nbr, RHopMsg::Dist(d));
            self.pending.push(PendingSend {
                to: nbr,
                msg: RHopMsg::Dist(d),
                resend_at: base_round + self.cfg.interval,
                retries: 0,
            });
        }
    }
}

impl Node for RobustHopFieldNode {
    type Msg = RHopMsg;

    fn on_start(&mut self, out: &mut Outbox<RHopMsg>) {
        if self.is_source {
            self.hops = Some(0);
            self.propagate(0, None, out);
        }
    }

    fn on_round(&mut self, round: usize, inbox: &[Envelope<RHopMsg>], out: &mut Outbox<RHopMsg>) {
        for env in inbox {
            match env.msg {
                RHopMsg::Dist(d) => {
                    out.send(env.from, RHopMsg::DistAck(d));
                    if self.hops.is_none_or(|h| d < h) {
                        self.hops = Some(d);
                        self.propagate(round, Some(env.from), out);
                    }
                }
                RHopMsg::DistAck(d) => {
                    self.pending
                        .retain(|e| !(e.to == env.from && e.msg == RHopMsg::Dist(d)));
                }
            }
        }
        tick_retransmits(&mut self.pending, round, &self.cfg, out);
    }
}

/// Runs the ack/retransmit hop field; `None` entries mark robots that
/// never heard from any source (isolated, or cut off by churn).
///
/// # Errors
///
/// Propagates harness errors; [`SimError::NotQuiescent`] when the
/// protocol does not settle within `max_rounds`.
pub fn run_robust_hop_field(
    sources: &[bool],
    adjacency: &[Vec<usize>],
    plan: FaultPlan,
    cfg: RetransmitConfig,
    max_rounds: usize,
) -> Result<RobustRunOutcome<Vec<Option<usize>>>, SimError> {
    let nodes: Vec<RobustHopFieldNode> = sources
        .iter()
        .enumerate()
        .map(|(i, &is_source)| RobustHopFieldNode::new(is_source, adjacency[i].clone(), cfg))
        .collect();
    let mut sim = FaultySimulator::new(nodes, adjacency.to_vec(), plan)?;
    let stats = sim.run_until(max_rounds, |nodes| {
        nodes.iter().all(RobustHopFieldNode::is_settled)
    })?;
    let stats = sim.run_until_quiet(max_rounds.saturating_sub(stats.rounds))?;
    Ok(RobustRunOutcome {
        results: sim.into_nodes().into_iter().map(|nd| nd.hops).collect(),
        stats,
    })
}

// ---------------------------------------------------------------------
// Boundary token with per-hop acks and initiator restart
// ---------------------------------------------------------------------

/// Message of the robust boundary-loop protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RLoopMsg {
    /// Hop-counting token: (initiator, hops so far, launch attempt).
    Token {
        /// Initiating boundary vertex.
        initiator: usize,
        /// Hops travelled when this message was sent.
        hops: usize,
        /// Restart attempt this token belongs to.
        attempt: usize,
    },
    /// Per-hop ack of a token with this (hops, attempt).
    TokenAck {
        /// Acknowledged hop count.
        hops: usize,
        /// Acknowledged attempt.
        attempt: usize,
    },
    /// Loop-size announcement travelling the loop once more.
    Size {
        /// The loop length.
        size: usize,
        /// Attempt the size flood belongs to.
        attempt: usize,
    },
    /// Per-hop ack of a size announcement.
    SizeAck {
        /// Acknowledged attempt.
        attempt: usize,
    },
}

/// Loss-tolerant [`BoundaryLoopNode`](crate::protocols::BoundaryLoopNode):
/// the hop-counting token is acknowledged hop-by-hop and retransmitted;
/// the initiator additionally restarts the whole token (with a fresh
/// attempt number) if it does not return within `restart_after` rounds
/// — the backstop for a token that died when a hop exhausted its
/// retries or a robot crashed mid-loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustBoundaryLoopNode {
    /// This node's ID (simulator index).
    pub id: usize,
    /// Whether this node launches the token.
    pub is_initiator: bool,
    /// Successor on the boundary loop.
    pub next: usize,
    /// Learned position along the loop (initiator = 0).
    pub index: Option<usize>,
    /// Learned loop size.
    pub loop_size: Option<usize>,
    cfg: RetransmitConfig,
    /// Rounds the initiator waits for its token before restarting.
    restart_after: usize,
    /// Restart attempts the initiator may make.
    max_attempts: usize,
    attempt: usize,
    /// Attempt for which this node already forwarded the token.
    token_done_attempt: Option<usize>,
    /// Attempt for which this node already forwarded the size.
    size_done_attempt: Option<usize>,
    /// True on the initiator once its own token returned.
    token_returned: bool,
    /// True on the initiator once the size announcement returned.
    size_returned: bool,
    launched_at: usize,
    pending: Vec<PendingSend<RLoopMsg>>,
}

impl RobustBoundaryLoopNode {
    /// Creates a participant.
    ///
    /// `restart_after` is the initiator's token timeout in rounds (a
    /// generous bound is `(loop length + 2) × (interval + 1)`);
    /// `max_attempts` bounds restarts.
    pub fn new(
        id: usize,
        is_initiator: bool,
        next: usize,
        cfg: RetransmitConfig,
        restart_after: usize,
        max_attempts: usize,
    ) -> Self {
        RobustBoundaryLoopNode {
            id,
            is_initiator,
            next,
            index: None,
            loop_size: None,
            cfg,
            restart_after,
            max_attempts,
            attempt: 0,
            token_done_attempt: None,
            size_done_attempt: None,
            token_returned: false,
            size_returned: false,
            launched_at: 0,
            pending: Vec::new(),
        }
    }

    /// Has this node learned everything and stopped transmitting?
    pub fn is_settled(&self) -> bool {
        self.index.is_some() && self.loop_size.is_some() && self.pending.is_empty()
    }

    /// Dormancy predicate for event-driven engines. Beyond an empty
    /// retransmit queue, the initiator is only idle once its restart
    /// timer can never fire again: the token came home, or every
    /// restart attempt has been spent.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
            && (!self.is_initiator || self.token_returned || self.attempt + 1 >= self.max_attempts)
    }

    fn send_tracked(
        &mut self,
        to: usize,
        msg: RLoopMsg,
        base_round: usize,
        out: &mut Outbox<RLoopMsg>,
    ) {
        out.send(to, msg);
        self.pending.push(PendingSend {
            to,
            msg,
            resend_at: base_round + self.cfg.interval,
            retries: 0,
        });
    }

    fn launch_token(&mut self, round: usize, out: &mut Outbox<RLoopMsg>) {
        self.launched_at = round;
        // Drop any stale token pending from the previous attempt.
        let next = self.next;
        self.pending
            .retain(|e| !matches!(e.msg, RLoopMsg::Token { .. }) || e.to != next);
        self.send_tracked(
            self.next,
            RLoopMsg::Token {
                initiator: self.id,
                hops: 1,
                attempt: self.attempt,
            },
            round,
            out,
        );
    }
}

impl Node for RobustBoundaryLoopNode {
    type Msg = RLoopMsg;

    fn on_start(&mut self, out: &mut Outbox<RLoopMsg>) {
        if self.is_initiator {
            self.index = Some(0);
            self.launch_token(0, out);
        }
    }

    fn on_round(&mut self, round: usize, inbox: &[Envelope<RLoopMsg>], out: &mut Outbox<RLoopMsg>) {
        for env in inbox {
            match env.msg {
                RLoopMsg::Token {
                    initiator,
                    hops,
                    attempt,
                } => {
                    // Ack every token copy — a duplicate means the ack
                    // was lost or the predecessor retransmitted.
                    out.send(env.from, RLoopMsg::TokenAck { hops, attempt });
                    if initiator == self.id {
                        // Our token came home: the loop has `hops` nodes.
                        if attempt == self.attempt && !self.token_returned {
                            self.token_returned = true;
                            self.loop_size = Some(hops);
                            self.size_done_attempt = Some(attempt);
                            self.send_tracked(
                                self.next,
                                RLoopMsg::Size {
                                    size: hops,
                                    attempt,
                                },
                                round,
                                out,
                            );
                        }
                    } else if self.token_done_attempt.is_none_or(|done| attempt > done) {
                        self.attempt = attempt;
                        self.token_done_attempt = Some(attempt);
                        self.index = Some(hops);
                        self.send_tracked(
                            self.next,
                            RLoopMsg::Token {
                                initiator,
                                hops: hops + 1,
                                attempt,
                            },
                            round,
                            out,
                        );
                    }
                }
                RLoopMsg::TokenAck { hops, attempt } => {
                    self.pending.retain(|e| {
                        !(e.to == env.from
                            && matches!(
                                e.msg,
                                RLoopMsg::Token { hops: h, attempt: a, .. }
                                    if h == hops && a == attempt
                            ))
                    });
                }
                RLoopMsg::Size { size, attempt } => {
                    out.send(env.from, RLoopMsg::SizeAck { attempt });
                    if self.is_initiator {
                        // The announcement survived the whole loop.
                        self.size_returned = true;
                        self.pending
                            .retain(|e| !matches!(e.msg, RLoopMsg::Size { .. }));
                    } else {
                        self.loop_size = Some(size);
                        // Forward (again, if need be): a re-flooded size
                        // must pass through nodes that already know it.
                        if self.size_done_attempt.is_none_or(|done| attempt > done)
                            || !self
                                .pending
                                .iter()
                                .any(|e| matches!(e.msg, RLoopMsg::Size { .. }))
                        {
                            self.size_done_attempt = Some(attempt);
                            self.pending
                                .retain(|e| !matches!(e.msg, RLoopMsg::Size { .. }));
                            self.send_tracked(
                                self.next,
                                RLoopMsg::Size { size, attempt },
                                round,
                                out,
                            );
                        }
                    }
                }
                RLoopMsg::SizeAck { attempt } => {
                    self.pending.retain(|e| {
                        !(e.to == env.from
                            && matches!(e.msg, RLoopMsg::Size { attempt: a, .. } if a == attempt))
                    });
                }
            }
        }
        // Initiator restart timer: the token vanished somewhere.
        if self.is_initiator
            && !self.token_returned
            && round >= self.launched_at + self.restart_after
            && self.attempt + 1 < self.max_attempts
        {
            self.attempt += 1;
            self.launch_token(round, out);
        }
        tick_retransmits(&mut self.pending, round, &self.cfg, out);
    }
}

/// Runs the robust boundary-loop protocol over a cyclic order of
/// boundary-vertex IDs (the smallest ID initiates, as in the paper).
/// Returns `(index, loop size)` per vertex in `ids` order.
///
/// # Errors
///
/// Propagates harness errors; [`SimError::NotQuiescent`] when the loop
/// is not labeled within `max_rounds`.
///
/// # Panics
///
/// Panics when `ids.len() < 3`.
pub fn run_robust_boundary_loop(
    ids: &[usize],
    plan: FaultPlan,
    cfg: RetransmitConfig,
    max_rounds: usize,
) -> Result<RobustRunOutcome<Vec<(usize, usize)>>, SimError> {
    let n = ids.len();
    assert!(n >= 3, "a boundary loop needs at least 3 vertices");
    let initiator_pos = ids
        .iter()
        .enumerate()
        .min_by_key(|&(_, &id)| id)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let restart_after = (n + 2) * (cfg.interval + 1);
    let nodes: Vec<RobustBoundaryLoopNode> = (0..n)
        .map(|i| {
            RobustBoundaryLoopNode::new(i, i == initiator_pos, (i + 1) % n, cfg, restart_after, 16)
        })
        .collect();
    let adjacency: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect();
    let mut sim = FaultySimulator::new(nodes, adjacency, plan)?;
    let stats = sim.run_until(max_rounds, |nodes| {
        nodes.iter().all(RobustBoundaryLoopNode::is_settled)
    })?;
    let stats = sim.run_until_quiet(max_rounds.saturating_sub(stats.rounds))?;
    let nodes = sim.into_nodes();
    // A vertex the token never reached (round cap under heavy faults)
    // has no index/size to harvest — typed error, not a panic.
    let unfinished: Vec<usize> = nodes
        .iter()
        .enumerate()
        .filter(|(_, nd)| nd.index.is_none() || nd.loop_size.is_none())
        .map(|(i, _)| i)
        .collect();
    if !unfinished.is_empty() {
        return Err(SimError::NotQuiescent {
            max_rounds,
            pending: unfinished,
        });
    }
    Ok(RobustRunOutcome {
        results: nodes
            .into_iter()
            .map(|nd| (nd.index.unwrap_or(0), nd.loop_size.unwrap_or(0)))
            .collect(),
        stats,
    })
}

// ---------------------------------------------------------------------
// Checkpoint support: byte-stable Persist impls
// ---------------------------------------------------------------------
//
// The discrete-event engine snapshots node state mid-run. The robust
// nodes keep their retransmit queues private, so the codecs live here.
// Encodings follow the snapshot module's rules: fields in declaration
// order, enum tags in declaration order.

impl Persist for RetransmitConfig {
    fn persist(&self, w: &mut SnapshotWriter) {
        self.interval.persist(w);
        self.max_retries.persist(w);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(RetransmitConfig {
            interval: usize::restore(r)?,
            max_retries: usize::restore(r)?,
        })
    }
}

impl<M: Persist> Persist for PendingSend<M> {
    fn persist(&self, w: &mut SnapshotWriter) {
        self.to.persist(w);
        self.msg.persist(w);
        self.resend_at.persist(w);
        self.retries.persist(w);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(PendingSend {
            to: usize::restore(r)?,
            msg: M::restore(r)?,
            resend_at: usize::restore(r)?,
            retries: usize::restore(r)?,
        })
    }
}

impl Persist for RFloodMsg {
    fn persist(&self, w: &mut SnapshotWriter) {
        match *self {
            RFloodMsg::Data { origin, value } => {
                w.put_u8(0);
                origin.persist(w);
                value.persist(w);
            }
            RFloodMsg::Ack { origin } => {
                w.put_u8(1);
                origin.persist(w);
            }
        }
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(RFloodMsg::Data {
                origin: usize::restore(r)?,
                value: f64::restore(r)?,
            }),
            1 => Ok(RFloodMsg::Ack {
                origin: usize::restore(r)?,
            }),
            tag => Err(PersistError::BadTag {
                tag,
                context: "RFloodMsg",
            }),
        }
    }
}

impl Persist for RHopMsg {
    fn persist(&self, w: &mut SnapshotWriter) {
        match *self {
            RHopMsg::Dist(d) => {
                w.put_u8(0);
                d.persist(w);
            }
            RHopMsg::DistAck(d) => {
                w.put_u8(1);
                d.persist(w);
            }
        }
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(RHopMsg::Dist(usize::restore(r)?)),
            1 => Ok(RHopMsg::DistAck(usize::restore(r)?)),
            tag => Err(PersistError::BadTag {
                tag,
                context: "RHopMsg",
            }),
        }
    }
}

impl Persist for RLoopMsg {
    fn persist(&self, w: &mut SnapshotWriter) {
        match *self {
            RLoopMsg::Token {
                initiator,
                hops,
                attempt,
            } => {
                w.put_u8(0);
                initiator.persist(w);
                hops.persist(w);
                attempt.persist(w);
            }
            RLoopMsg::TokenAck { hops, attempt } => {
                w.put_u8(1);
                hops.persist(w);
                attempt.persist(w);
            }
            RLoopMsg::Size { size, attempt } => {
                w.put_u8(2);
                size.persist(w);
                attempt.persist(w);
            }
            RLoopMsg::SizeAck { attempt } => {
                w.put_u8(3);
                attempt.persist(w);
            }
        }
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(RLoopMsg::Token {
                initiator: usize::restore(r)?,
                hops: usize::restore(r)?,
                attempt: usize::restore(r)?,
            }),
            1 => Ok(RLoopMsg::TokenAck {
                hops: usize::restore(r)?,
                attempt: usize::restore(r)?,
            }),
            2 => Ok(RLoopMsg::Size {
                size: usize::restore(r)?,
                attempt: usize::restore(r)?,
            }),
            3 => Ok(RLoopMsg::SizeAck {
                attempt: usize::restore(r)?,
            }),
            tag => Err(PersistError::BadTag {
                tag,
                context: "RLoopMsg",
            }),
        }
    }
}

impl Persist for RobustFloodNode {
    fn persist(&self, w: &mut SnapshotWriter) {
        self.id.persist(w);
        self.known.persist(w);
        self.cfg.persist(w);
        self.pending.persist(w);
        self.neighbors.persist(w);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(RobustFloodNode {
            id: usize::restore(r)?,
            known: Vec::restore(r)?,
            cfg: RetransmitConfig::restore(r)?,
            pending: Vec::restore(r)?,
            neighbors: Vec::restore(r)?,
        })
    }
}

impl Persist for RobustHopFieldNode {
    fn persist(&self, w: &mut SnapshotWriter) {
        self.is_source.persist(w);
        self.hops.persist(w);
        self.cfg.persist(w);
        self.pending.persist(w);
        self.neighbors.persist(w);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(RobustHopFieldNode {
            is_source: bool::restore(r)?,
            hops: Option::restore(r)?,
            cfg: RetransmitConfig::restore(r)?,
            pending: Vec::restore(r)?,
            neighbors: Vec::restore(r)?,
        })
    }
}

impl Persist for RobustBoundaryLoopNode {
    fn persist(&self, w: &mut SnapshotWriter) {
        self.id.persist(w);
        self.is_initiator.persist(w);
        self.next.persist(w);
        self.index.persist(w);
        self.loop_size.persist(w);
        self.cfg.persist(w);
        self.restart_after.persist(w);
        self.max_attempts.persist(w);
        self.attempt.persist(w);
        self.token_done_attempt.persist(w);
        self.size_done_attempt.persist(w);
        self.token_returned.persist(w);
        self.size_returned.persist(w);
        self.launched_at.persist(w);
        self.pending.persist(w);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, PersistError> {
        Ok(RobustBoundaryLoopNode {
            id: usize::restore(r)?,
            is_initiator: bool::restore(r)?,
            next: usize::restore(r)?,
            index: Option::restore(r)?,
            loop_size: Option::restore(r)?,
            cfg: RetransmitConfig::restore(r)?,
            restart_after: usize::restore(r)?,
            max_attempts: usize::restore(r)?,
            attempt: usize::restore(r)?,
            token_done_attempt: Option::restore(r)?,
            size_done_attempt: Option::restore(r)?,
            token_returned: bool::restore(r)?,
            size_returned: bool::restore(r)?,
            launched_at: usize::restore(r)?,
            pending: Vec::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{run_boundary_loop, run_flood_sum, run_hop_field};
    use crate::UnitDiskGraph;
    use anr_distsim::DelayModel;
    use anr_geom::Point;

    fn grid_graph(cols: usize, rows: usize) -> UnitDiskGraph {
        let pts: Vec<Point> = (0..cols * rows)
            .map(|i| Point::new((i % cols) as f64 * 60.0, (i / cols) as f64 * 60.0))
            .collect();
        UnitDiskGraph::new(&pts, 80.0)
    }

    fn nasty_plan(seed: u64) -> FaultPlan {
        FaultPlan::reliable(seed)
            .with_loss(0.3)
            .with_delay(DelayModel::Uniform { min: 0, max: 2 })
            .with_duplication(0.1)
    }

    #[test]
    fn robust_flood_matches_reference_on_reliable_network() {
        let g = grid_graph(4, 3);
        let values: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let reference = run_flood_sum(&values, g.adjacency()).unwrap();
        let robust = run_robust_flood_sum(
            &values,
            g.adjacency(),
            FaultPlan::reliable(0),
            RetransmitConfig::default(),
            400,
        )
        .unwrap();
        assert_eq!(robust.results, reference);
    }

    #[test]
    fn robust_flood_survives_loss_delay_duplication() {
        let g = grid_graph(4, 3);
        let values: Vec<f64> = (0..12).map(|i| (i * i) as f64).collect();
        let reference = run_flood_sum(&values, g.adjacency()).unwrap();
        for seed in [1, 2, 3] {
            let robust = run_robust_flood_sum(
                &values,
                g.adjacency(),
                nasty_plan(seed),
                RetransmitConfig::default(),
                2000,
            )
            .unwrap();
            assert_eq!(robust.results, reference, "seed {seed}");
            assert!(robust.stats.dropped_loss > 0, "plan actually dropped");
        }
    }

    #[test]
    fn robust_flood_overhead_is_positive_under_loss() {
        let g = grid_graph(4, 3);
        let values = vec![1.0; 12];
        let reliable = run_robust_flood_sum(
            &values,
            g.adjacency(),
            FaultPlan::reliable(0),
            RetransmitConfig::default(),
            400,
        )
        .unwrap();
        let lossy = run_robust_flood_sum(
            &values,
            g.adjacency(),
            nasty_plan(7),
            RetransmitConfig::default(),
            2000,
        )
        .unwrap();
        assert!(
            lossy.stats.sent > reliable.stats.sent,
            "retransmissions cost messages: {} vs {}",
            lossy.stats.sent,
            reliable.stats.sent
        );
        assert!(lossy.stats.rounds >= reliable.stats.rounds);
    }

    #[test]
    fn robust_hop_field_matches_centralized_bfs_under_faults() {
        let g = grid_graph(4, 4);
        let sources: Vec<bool> = (0..16).map(|i| i == 0 || i == 15).collect();
        let expect = g.multi_source_hops(&[0, 15]);
        let reference = run_hop_field(&sources, g.adjacency()).unwrap();
        assert_eq!(reference, expect);
        for seed in [4, 5, 6] {
            let robust = run_robust_hop_field(
                &sources,
                g.adjacency(),
                nasty_plan(seed),
                RetransmitConfig::default(),
                2000,
            )
            .unwrap();
            assert_eq!(robust.results, expect, "seed {seed}");
        }
    }

    #[test]
    fn robust_hop_field_sees_crash_as_isolation() {
        // Path 0-1-2-3; source at 0; robot 1 crashes immediately: 2 and
        // 3 can never hear from the source.
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let sources = vec![true, false, false, false];
        let plan = FaultPlan::reliable(0).with_crash(0, 1);
        let robust =
            run_robust_hop_field(&sources, &adj, plan, RetransmitConfig::default(), 500).unwrap();
        assert_eq!(robust.results[0], Some(0));
        assert_eq!(robust.results[2], None, "cut off by the crash");
        assert_eq!(robust.results[3], None);
    }

    #[test]
    fn robust_boundary_loop_matches_reference() {
        let ids = vec![12, 5, 40, 3, 9, 77, 21];
        let reference = run_boundary_loop(&ids).unwrap();
        let robust = run_robust_boundary_loop(
            &ids,
            FaultPlan::reliable(0),
            RetransmitConfig::default(),
            800,
        )
        .unwrap();
        assert_eq!(robust.results, reference);
    }

    #[test]
    fn robust_boundary_loop_survives_loss() {
        let ids: Vec<usize> = (0..10).map(|i| (i * 7 + 3) % 101).collect();
        let reference = run_boundary_loop(&ids).unwrap();
        for seed in [8, 9] {
            let robust = run_robust_boundary_loop(
                &ids,
                FaultPlan::reliable(seed).with_loss(0.25),
                RetransmitConfig::default(),
                4000,
            )
            .unwrap();
            assert_eq!(robust.results, reference, "seed {seed}");
            assert!(robust.stats.dropped_loss > 0);
        }
    }

    #[test]
    fn node_persist_round_trips_mid_run() {
        use anr_distsim::Simulator;
        // Freeze a flooding run mid-protocol and check the codec
        // reproduces the exact in-flight node state (retransmit queues
        // included).
        let g = grid_graph(3, 3);
        let values: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let nodes: Vec<RobustFloodNode> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                RobustFloodNode::new(
                    i,
                    v,
                    9,
                    g.adjacency()[i].clone(),
                    RetransmitConfig::default(),
                )
            })
            .collect();
        let mut sim = Simulator::new(nodes, g.adjacency().to_vec()).unwrap();
        sim.start().unwrap();
        sim.step_round().unwrap();
        for node in sim.nodes() {
            let mut w = SnapshotWriter::new();
            node.persist(&mut w);
            let bytes = w.into_bytes();
            let mut r = SnapshotReader::new(&bytes);
            let back = RobustFloodNode::restore(&mut r).unwrap();
            assert_eq!(&back, node);
            assert_eq!(r.remaining(), 0);
        }
        // Boundary-loop node with a live retransmit queue.
        let mut bl = RobustBoundaryLoopNode::new(0, true, 1, RetransmitConfig::default(), 30, 4);
        let mut out = Outbox::default();
        bl.on_start(&mut out);
        let mut w = SnapshotWriter::new();
        bl.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(RobustBoundaryLoopNode::restore(&mut r).unwrap(), bl);
    }

    #[test]
    fn idle_predicates_match_settledness() {
        // A fresh non-initiator loop node is idle (nothing pending, no
        // timer); a fresh initiator is not (its restart timer is armed
        // after launch).
        let cfg = RetransmitConfig::default();
        let follower = RobustBoundaryLoopNode::new(1, false, 2, cfg, 30, 4);
        assert!(follower.is_idle());
        let mut initiator = RobustBoundaryLoopNode::new(0, true, 1, cfg, 30, 4);
        let mut out = Outbox::default();
        initiator.on_start(&mut out);
        assert!(!initiator.is_idle());
        // Flood/hop nodes: idle exactly when the retransmit queue is
        // empty.
        let flood = RobustFloodNode::new(0, 1.0, 3, vec![1], cfg);
        assert!(!flood.is_settled() || flood.is_idle());
        let hop = RobustHopFieldNode::new(false, vec![1], cfg);
        assert!(hop.is_idle());
    }

    #[test]
    fn robust_runs_are_deterministic() {
        let g = grid_graph(3, 3);
        let values: Vec<f64> = (0..9).map(|i| i as f64 * 0.5).collect();
        let run = || {
            run_robust_flood_sum(
                &values,
                g.adjacency(),
                nasty_plan(42),
                RetransmitConfig::default(),
                2000,
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.results, b.results);
    }
}
