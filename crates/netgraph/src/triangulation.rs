//! Extracting the triangulation `T` from a connectivity graph
//! (paper Sec. III-A, following the idea of its ref. [18]).
//!
//! With position information available at every robot, the triangulation
//! of the deployment is the Delaunay triangulation restricted to
//! communication-range edges: every triangulation edge must be an actual
//! wireless link. [`extract_triangulation`] is the centralized reference;
//! [`extract_triangulation_distributed`] runs a localized protocol on the
//! message-passing simulator in which every robot learns only its one-hop
//! neighborhood and decides which incident links belong to `T`.

use crate::UnitDiskGraph;
use anr_distsim::{Envelope, Node, Outbox, Simulator};
use anr_geom::{in_circle, orient2d, Point};
use anr_mesh::{delaunay, MeshError, TriMesh};

/// Extracts the triangulation `T` of a deployment: Delaunay triangles
/// whose three edges are all communication links (length ≤ `range`),
/// restricted to the largest edge-connected triangle component.
///
/// The returned mesh indexes the same robots as `positions`; robots that
/// end up in no triangle (stragglers out of range) are still present as
/// vertices but have no incident edges — callers that require a spanning
/// disk should check [`TriMesh::vertex_neighbors`] is non-empty for all.
///
/// # Errors
///
/// Propagates [`MeshError`] from the underlying Delaunay triangulation,
/// and returns [`MeshError::EmptyMesh`] when no triangle survives the
/// range filter.
///
/// # Example
///
/// ```
/// use anr_geom::Point;
/// use anr_netgraph::extract_triangulation;
///
/// // A 2×2 block of robots 50 m apart, comm range 80 m.
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(50.0, 0.0),
///     Point::new(0.0, 50.0),
///     Point::new(50.0, 50.0),
/// ];
/// let t = extract_triangulation(&pts, 80.0)?;
/// assert_eq!(t.num_triangles(), 2);
/// # Ok::<(), anr_mesh::MeshError>(())
/// ```
pub fn extract_triangulation(positions: &[Point], range: f64) -> Result<TriMesh, MeshError> {
    assert!(range > 0.0, "communication range must be positive");
    let dt = delaunay(positions)?;

    // Keep triangles whose edges are all links.
    let kept: Vec<usize> = (0..dt.num_triangles())
        .filter(|&t| {
            let tri = dt.triangle(t);
            tri.a.distance(tri.b) <= range
                && tri.b.distance(tri.c) <= range
                && tri.c.distance(tri.a) <= range
        })
        .collect();
    if kept.is_empty() {
        return Err(MeshError::EmptyMesh);
    }

    // Largest edge-connected component of the kept triangles.
    let mut uf = crate::UnionFind::new(dt.num_triangles());
    let kept_set: std::collections::BTreeSet<usize> = kept.iter().copied().collect();
    for &t in &kept {
        let [a, b, c] = dt.triangles()[t];
        for (u, v) in [(a, b), (b, c), (c, a)] {
            for &other in dt.edge_triangles(u, v) {
                if other != t && kept_set.contains(&other) {
                    uf.union(t, other);
                }
            }
        }
    }
    let mut best_root = uf.find(kept[0]);
    let mut best_count = 0usize;
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for &t in &kept {
        let r = uf.find(t);
        let c = counts.entry(r).or_insert(0);
        *c += 1;
        if *c > best_count {
            best_count = *c;
            best_root = r;
        }
    }

    let tris: Vec<[usize; 3]> = kept
        .iter()
        .filter(|&&t| uf.find(t) == best_root)
        .map(|&t| dt.triangles()[t])
        .collect();

    // The range filter can leave *pinch* vertices — two triangle fans
    // meeting only at a vertex — whose boundary is ill-defined (two
    // loops sharing the vertex). Clean them by keeping only the largest
    // fan at every pinched vertex, then re-select the largest
    // edge-connected component, iterating until stable.
    let tris = remove_pinches(positions.len(), tris);

    TriMesh::new(positions.to_vec(), tris)
}

/// Removes pinch vertices: at every vertex whose incident triangles form
/// more than one edge-connected fan, only the largest fan survives.
/// Repeats (removals can create new pinches or disconnect the mesh)
/// until the triangle set is stable, keeping the largest edge-connected
/// component at each round.
fn remove_pinches(num_vertices: usize, mut tris: Vec<[usize; 3]>) -> Vec<[usize; 3]> {
    loop {
        let mut changed = false;

        // Vertex → incident triangle indices.
        let mut incident: Vec<Vec<usize>> = vec![Vec::new(); num_vertices];
        for (ti, t) in tris.iter().enumerate() {
            for &v in t {
                incident[v].push(ti);
            }
        }

        let mut drop = vec![false; tris.len()];
        #[allow(clippy::needless_range_loop)] // v indexes two parallel arrays
        for v in 0..num_vertices {
            let inc = &incident[v];
            if inc.len() < 2 {
                continue;
            }
            // Cluster incident triangles via shared edges containing v.
            let mut cluster = vec![usize::MAX; inc.len()];
            let mut next_cluster = 0usize;
            for i in 0..inc.len() {
                if cluster[i] != usize::MAX {
                    continue;
                }
                cluster[i] = next_cluster;
                let mut stack = vec![i];
                while let Some(a) = stack.pop() {
                    for b in 0..inc.len() {
                        if cluster[b] != usize::MAX {
                            continue;
                        }
                        // Triangles share an edge through v when they
                        // share a second vertex besides v.
                        let ta = tris[inc[a]];
                        let tb = tris[inc[b]];
                        let shared = ta.iter().filter(|&&x| x != v && tb.contains(&x)).count();
                        if shared >= 1 {
                            cluster[b] = next_cluster;
                            stack.push(b);
                        }
                    }
                }
                next_cluster += 1;
            }
            if next_cluster <= 1 {
                continue;
            }
            // Keep the largest cluster (ties: lowest cluster id).
            let mut sizes = vec![0usize; next_cluster];
            for &c in &cluster {
                sizes[c] += 1;
            }
            let keep = sizes
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .map(|(c, _)| c)
                .unwrap_or(0);
            for (i, &c) in cluster.iter().enumerate() {
                if c != keep && !drop[inc[i]] {
                    drop[inc[i]] = true;
                    changed = true;
                }
            }
        }

        if changed {
            tris = tris
                .into_iter()
                .zip(drop)
                .filter(|(_, d)| !d)
                .map(|(t, _)| t)
                .collect();
        }

        // Largest edge-connected component of what remains.
        if !tris.is_empty() {
            let mut uf = crate::UnionFind::new(tris.len());
            let mut by_edge: std::collections::BTreeMap<(usize, usize), usize> =
                std::collections::BTreeMap::new();
            for (ti, t) in tris.iter().enumerate() {
                for k in 0..3 {
                    let a = t[k];
                    let b = t[(k + 1) % 3];
                    let key = (a.min(b), a.max(b));
                    if let Some(&other) = by_edge.get(&key) {
                        uf.union(ti, other);
                    } else {
                        by_edge.insert(key, ti);
                    }
                }
            }
            if uf.num_sets() > 1 {
                let mut counts: std::collections::BTreeMap<usize, usize> =
                    std::collections::BTreeMap::new();
                #[allow(clippy::needless_range_loop)] // union-find needs the index
                for ti in 0..tris.len() {
                    *counts.entry(uf.find(ti)).or_insert(0) += 1;
                }
                let best = counts
                    .iter()
                    .max_by_key(|&(_, &c)| c)
                    .map(|(&r, _)| r)
                    .unwrap_or(0);
                let before = tris.len();
                let mut filtered = Vec::with_capacity(before);
                #[allow(clippy::needless_range_loop)] // union-find needs the index
                for ti in 0..tris.len() {
                    if uf.find(ti) == best {
                        filtered.push(tris[ti]);
                    }
                }
                if filtered.len() != before {
                    changed = true;
                }
                tris = filtered;
            }
        }

        if !changed {
            return tris;
        }
    }
}

/// One robot's state in the distributed triangulation-extraction protocol.
#[derive(Debug, Clone)]
struct TriExtractNode {
    id: usize,
    position: Point,
    range: f64,
    /// Learned one-hop neighbor positions: (id, position).
    neighbor_positions: Vec<(usize, Point)>,
    /// Incident links this robot decided to keep in `T`.
    kept: Vec<usize>,
    decided: bool,
}

impl Node for TriExtractNode {
    type Msg = (usize, Point);

    fn on_start(&mut self, out: &mut Outbox<(usize, Point)>) {
        out.broadcast((self.id, self.position));
    }

    fn on_round(
        &mut self,
        _round: usize,
        inbox: &[Envelope<(usize, Point)>],
        _out: &mut Outbox<(usize, Point)>,
    ) {
        for env in inbox {
            self.neighbor_positions.push(env.msg);
        }
        if !inbox.is_empty() || self.decided {
            // All broadcasts arrive in round 0; decide immediately after.
        }
        if !self.decided {
            self.decide();
            self.decided = true;
        }
    }
}

impl TriExtractNode {
    /// Local edge-keeping rule, computable from one-hop information:
    /// keep link (self, v) iff no *common* neighbor `w` lies strictly
    /// inside the circle through `self` and `v` with `w` on the other
    /// side violating the empty-circumcircle test — concretely, the link
    /// survives iff for each side of the edge, the common neighbor `w`
    /// minimizing the circumradius has an empty circumcircle w.r.t. the
    /// other common neighbors (a localized Delaunay test).
    fn decide(&mut self) {
        let me = self.position;
        for &(vid, vpos) in &self.neighbor_positions {
            if me.distance(vpos) > self.range {
                continue;
            }
            // Common neighbors = my neighbors within range of v.
            let common: Vec<Point> = self
                .neighbor_positions
                .iter()
                .filter(|&&(wid, wpos)| wid != vid && wpos.distance(vpos) <= self.range)
                .map(|&(_, wpos)| wpos)
                .collect();

            if is_edge_locally_delaunay(me, vpos, &common) {
                self.kept.push(vid);
            }
        }
        self.kept.sort_unstable();
    }
}

/// Localized Delaunay test for edge (u, v) against witness points `w`:
/// the edge is kept iff on each side that has witnesses, the circumcircle
/// through (u, v, best witness) is empty of the remaining witnesses, or
/// the Gabriel circle (diameter uv) is empty of all witnesses.
fn is_edge_locally_delaunay(u: Point, v: Point, witnesses: &[Point]) -> bool {
    // Gabriel test: circle with diameter uv empty of witnesses.
    let mid = u.midpoint(v);
    let r2 = u.distance_sq(v) / 4.0;
    if witnesses.iter().all(|&w| mid.distance_sq(w) > r2) {
        return true;
    }
    // Otherwise require a witness triangle with an empty circumcircle on
    // at least one side of the edge.
    for side in [1.0f64, -1.0] {
        let on_side: Vec<Point> = witnesses
            .iter()
            .copied()
            .filter(|&w| side * orient2d(u, v, w) > 0.0)
            .collect();
        if on_side.is_empty() {
            continue;
        }
        for &w in &on_side {
            // CCW order for in_circle.
            let (a, b, c) = if orient2d(u, v, w) > 0.0 {
                (u, v, w)
            } else {
                (v, u, w)
            };
            let empty = witnesses
                .iter()
                .all(|&x| x == w || in_circle(a, b, c, x) <= 0.0);
            if empty {
                return true;
            }
        }
    }
    false
}

/// Runs the distributed triangulation-extraction protocol and returns the
/// kept links `(i, j)` with `i < j` — a link is kept when **both**
/// endpoints decide to keep it.
///
/// On lattice-like deployments this matches the edge set of
/// [`extract_triangulation`]; the protocol uses one broadcast round and
/// only one-hop information per robot (fully distributed, linear in the
/// number of links, as the paper's ref.\[18\] requires).
///
/// # Errors
///
/// Propagates simulator errors (e.g. topology validation).
pub fn extract_triangulation_distributed(
    positions: &[Point],
    range: f64,
) -> Result<Vec<(usize, usize)>, anr_distsim::SimError> {
    let udg = UnitDiskGraph::new(positions, range);
    let nodes: Vec<TriExtractNode> = positions
        .iter()
        .enumerate()
        .map(|(id, &p)| TriExtractNode {
            id,
            position: p,
            range,
            neighbor_positions: Vec::new(),
            kept: Vec::new(),
            decided: false,
        })
        .collect();
    let mut sim = Simulator::new(nodes, udg.adjacency().to_vec())?;
    sim.run_until_quiet(4)?;

    let nodes = sim.into_nodes();
    let mut edges = Vec::new();
    for node in &nodes {
        for &v in &node.kept {
            if v > node.id && nodes[v].kept.binary_search(&node.id).is_ok() {
                edges.push((node.id, v));
            }
        }
    }
    Ok(edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    /// Triangular lattice of `rows × cols` robots with given spacing.
    fn lattice(rows: usize, cols: usize, s: f64) -> Vec<Point> {
        let mut pts = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let x = c as f64 * s + if r % 2 == 1 { s / 2.0 } else { 0.0 };
                let y = r as f64 * s * 3f64.sqrt() / 2.0;
                pts.push(p(x, y));
            }
        }
        pts
    }

    #[test]
    fn lattice_triangulation_spans_all_robots() {
        let pts = lattice(6, 8, 60.0);
        let t = extract_triangulation(&pts, 80.0).unwrap();
        assert_eq!(t.num_vertices(), pts.len());
        for v in 0..t.num_vertices() {
            assert!(
                !t.vertex_neighbors(v).is_empty(),
                "robot {v} not in the triangulation"
            );
        }
        assert_eq!(t.euler_characteristic(), 1);
    }

    #[test]
    fn all_triangulation_edges_are_links() {
        let pts = lattice(5, 5, 65.0);
        let t = extract_triangulation(&pts, 80.0).unwrap();
        for (a, b) in t.edges() {
            assert!(t.vertex(a).distance(t.vertex(b)) <= 80.0);
        }
    }

    #[test]
    fn long_edges_are_dropped() {
        // Two clusters with a gap larger than the range: only the bigger
        // cluster's triangles survive.
        let mut pts = lattice(3, 3, 60.0);
        let offset = 1000.0;
        pts.extend(lattice(2, 2, 60.0).iter().map(|q| p(q.x + offset, q.y)));
        let t = extract_triangulation(&pts, 80.0).unwrap();
        // Triangles only in the 3×3 cluster (largest component).
        for tri in 0..t.num_triangles() {
            let c = t.triangle(tri).centroid();
            assert!(c.x < 500.0);
        }
    }

    #[test]
    fn no_triangles_in_sparse_deployment_errors() {
        let pts = vec![p(0.0, 0.0), p(500.0, 0.0), p(0.0, 500.0)];
        assert!(matches!(
            extract_triangulation(&pts, 80.0),
            Err(MeshError::EmptyMesh)
        ));
    }

    #[test]
    fn pinched_deployment_is_cleaned_to_a_disk() {
        // Two triangle fans joined only at a single robot: the extracted
        // triangulation must drop the smaller fan so the mesh is a clean
        // topological disk (well-defined boundary loop).
        let mut pts = lattice(3, 3, 60.0); // 9 robots, fan A
                                           // Fan B: a small triangle attached only through robot 8 (the
                                           // lattice corner at (120+30, 103.9...)).
        let corner = pts[8];
        pts.push(p(corner.x + 70.0, corner.y + 20.0));
        pts.push(p(corner.x + 40.0, corner.y + 70.0));
        let t = extract_triangulation(&pts, 80.0).unwrap();
        let loops = t.boundary_loops();
        assert_eq!(loops.len(), 1, "pinch not cleaned: {} loops", loops.len());
        // The two appended robots are outside the kept component.
        assert!(t.vertex_neighbors(9).is_empty());
        assert!(t.vertex_neighbors(10).is_empty());
        // χ of the disk is 1; the two dropped robots remain as isolated
        // vertices and each adds +1 to V − E + F.
        assert_eq!(t.euler_characteristic(), 3);
    }

    #[test]
    fn distributed_matches_centralized_on_lattice() {
        let pts = lattice(5, 6, 62.0);
        let t = extract_triangulation(&pts, 80.0).unwrap();
        let mut central: Vec<(usize, usize)> = t.edges().collect();
        central.sort_unstable();
        let mut dist = extract_triangulation_distributed(&pts, 80.0).unwrap();
        dist.sort_unstable();
        // The localized rule keeps every centralized Delaunay link.
        for e in &central {
            assert!(dist.binary_search(e).is_ok(), "missing link {e:?}");
        }
        // And does not keep more than ~10% extra (one-hop information can
        // keep a few edges a global view would flip).
        assert!(
            dist.len() <= central.len() + central.len() / 10 + 2,
            "distributed kept {} vs centralized {}",
            dist.len(),
            central.len()
        );
    }

    #[test]
    fn distributed_edges_are_symmetric_links() {
        let pts = lattice(4, 4, 70.0);
        let edges = extract_triangulation_distributed(&pts, 80.0).unwrap();
        for (i, j) in edges {
            assert!(i < j);
            assert!(pts[i].distance(pts[j]) <= 80.0);
        }
    }
}
