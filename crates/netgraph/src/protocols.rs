//! Distributed protocols used by the marching pipeline, implemented on
//! the round-based simulator and each cross-checked against a
//! centralized reference in tests.
//!
//! * [`BoundaryLoopNode`] — the paper's boundary-sizing token
//!   (Sec. III-B): the boundary vertex with the smallest ID starts a
//!   hop-counting message around the boundary loop; when it returns, the
//!   initiator floods the loop size so every boundary vertex knows both
//!   its position index and the loop length.
//! * [`FloodNode`] — network-wide value dissemination ("the mobile robot
//!   then floods the information to other mobile robots"): at
//!   quiescence every robot knows every robot's value, from which global
//!   aggregates (total stable link ratio, total distance) are computed.
//! * [`HopFieldNode`] — multi-source BFS hop field (Sec. III-D-1): every
//!   boundary vertex initiates a packet with a zero counter; interior
//!   vertices learn their distance to the nearest boundary vertex, and
//!   vertices that never receive a packet are in an isolated subgroup.

use anr_distsim::{Envelope, Node, Outbox, SimError, Simulator};

// ---------------------------------------------------------------------
// Boundary loop sizing
// ---------------------------------------------------------------------

/// Message for the boundary-loop protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum LoopMsg {
    /// Hop-counting token: (initiator id, hops travelled so far).
    Token {
        /// ID of the initiating boundary vertex.
        initiator: usize,
        /// Hops travelled when this message was sent.
        hops: usize,
    },
    /// Loop size announcement from the initiator.
    Size(usize),
}

/// A vertex on the (directed) boundary loop.
///
/// Construct one node per boundary vertex with its successor in the
/// loop's cyclic order; the topology must contain at least the loop
/// edges. After the run, `index` holds the vertex's position along the
/// loop (initiator = 0) and `loop_size` the total loop length.
#[derive(Debug, Clone)]
pub(crate) struct BoundaryLoopNode {
    /// This node's ID (its index in the simulator).
    pub(crate) id: usize,
    /// Whether this node starts the token (smallest boundary ID).
    pub(crate) is_initiator: bool,
    /// Successor on the boundary loop.
    pub(crate) next: usize,
    /// Learned position along the loop.
    pub(crate) index: Option<usize>,
    /// Learned loop size.
    pub(crate) loop_size: Option<usize>,
}

impl BoundaryLoopNode {
    /// Creates a protocol participant.
    pub(crate) fn new(id: usize, is_initiator: bool, next: usize) -> Self {
        BoundaryLoopNode {
            id,
            is_initiator,
            next,
            index: None,
            loop_size: None,
        }
    }
}

impl Node for BoundaryLoopNode {
    type Msg = LoopMsg;

    fn on_start(&mut self, out: &mut Outbox<LoopMsg>) {
        if self.is_initiator {
            self.index = Some(0);
            out.send(
                self.next,
                LoopMsg::Token {
                    initiator: self.id,
                    hops: 1,
                },
            );
        }
    }

    fn on_round(&mut self, _round: usize, inbox: &[Envelope<LoopMsg>], out: &mut Outbox<LoopMsg>) {
        for env in inbox {
            match env.msg {
                LoopMsg::Token { initiator, hops } => {
                    if initiator == self.id {
                        // Token returned: the loop has `hops` vertices.
                        self.loop_size = Some(hops);
                        out.send(self.next, LoopMsg::Size(hops));
                    } else {
                        self.index = Some(hops);
                        out.send(
                            self.next,
                            LoopMsg::Token {
                                initiator,
                                hops: hops + 1,
                            },
                        );
                    }
                }
                LoopMsg::Size(size) => {
                    if self.loop_size.is_none() {
                        self.loop_size = Some(size);
                        out.send(self.next, LoopMsg::Size(size));
                    }
                }
            }
        }
    }
}

/// Runs the boundary-loop protocol over a cyclic vertex order.
///
/// `loop_order` lists the boundary vertices in cyclic order using
/// *simulator-local* indices `0..loop_order.len()`; entry `i` is the ID
/// used for initiator selection (the smallest ID initiates, matching the
/// paper). Returns `(index_along_loop, loop_size)` per vertex, in
/// `loop_order` order.
///
/// # Errors
///
/// Propagates simulator errors; returns [`SimError::NotQuiescent`] if the
/// token does not return within `4 × loop` rounds (malformed loop).
pub fn run_boundary_loop(ids: &[usize]) -> Result<Vec<(usize, usize)>, SimError> {
    let n = ids.len();
    assert!(n >= 3, "a boundary loop needs at least 3 vertices");
    let initiator_pos = ids
        .iter()
        .enumerate()
        .min_by_key(|&(_, &id)| id)
        .map(|(i, _)| i)
        .unwrap_or(0);

    let nodes: Vec<BoundaryLoopNode> = (0..n)
        .map(|i| BoundaryLoopNode::new(i, i == initiator_pos, (i + 1) % n))
        .collect();
    // Ring topology (undirected so the Size message could also go either
    // way; the protocol only uses `next`).
    let adjacency: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect();
    let mut sim = Simulator::new(nodes, adjacency)?;
    let max_rounds = 4 * n + 8;
    sim.run_until_quiet(max_rounds)?;
    let nodes = sim.into_nodes();
    // Quiescence without every vertex visited means the token died on
    // the ring — surface it as a typed error, not a panic.
    let unvisited: Vec<usize> = nodes
        .iter()
        .enumerate()
        .filter(|(_, nd)| nd.index.is_none() || nd.loop_size.is_none())
        .map(|(i, _)| i)
        .collect();
    if !unvisited.is_empty() {
        return Err(SimError::NotQuiescent {
            max_rounds,
            pending: unvisited,
        });
    }
    Ok(nodes
        .into_iter()
        .map(|nd| (nd.index.unwrap_or(0), nd.loop_size.unwrap_or(0)))
        .collect())
}

// ---------------------------------------------------------------------
// Value flooding
// ---------------------------------------------------------------------

/// Floods `(robot id, value)` pairs until every robot knows every value.
///
/// The paper uses this to aggregate per-robot stable-link ratios and
/// moving distances during the rotation search (Sec. III-B, III-D-2).
#[derive(Debug, Clone)]
pub(crate) struct FloodNode {
    /// This node's ID.
    pub(crate) id: usize,
    /// This node's own value.
    pub(crate) value: f64,
    /// All values learned so far, indexed by robot ID.
    pub(crate) known: Vec<Option<f64>>,
}

impl FloodNode {
    /// Creates a flooding participant for a network of `n` robots.
    pub(crate) fn new(id: usize, value: f64, n: usize) -> Self {
        let mut known = vec![None; n];
        known[id] = Some(value);
        FloodNode { id, value, known }
    }

    /// Sum of all known values (the global aggregate after quiescence).
    pub(crate) fn sum(&self) -> f64 {
        self.known.iter().flatten().sum()
    }
}

impl Node for FloodNode {
    type Msg = (usize, f64);

    fn on_start(&mut self, out: &mut Outbox<(usize, f64)>) {
        out.broadcast((self.id, self.value));
    }

    fn on_round(
        &mut self,
        _round: usize,
        inbox: &[Envelope<(usize, f64)>],
        out: &mut Outbox<(usize, f64)>,
    ) {
        for env in inbox {
            let (id, value) = env.msg;
            if self.known[id].is_none() {
                self.known[id] = Some(value);
                out.broadcast((id, value));
            }
        }
    }
}

/// Floods every robot's value over `adjacency`; returns each robot's
/// learned total sum (identical across robots iff the graph is
/// connected).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_flood_sum(values: &[f64], adjacency: &[Vec<usize>]) -> Result<Vec<f64>, SimError> {
    let n = values.len();
    let nodes: Vec<FloodNode> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| FloodNode::new(i, v, n))
        .collect();
    let mut sim = Simulator::new(nodes, adjacency.to_vec())?;
    sim.run_until_quiet(2 * n + 8)?;
    Ok(sim.into_nodes().iter().map(FloodNode::sum).collect())
}

// ---------------------------------------------------------------------
// Multi-source hop field
// ---------------------------------------------------------------------

/// Multi-source BFS participant: sources start with hop 0 and everyone
/// learns the hop distance to the nearest source.
#[derive(Debug, Clone)]
pub(crate) struct HopFieldNode {
    /// Whether this node is a source (e.g. a boundary vertex).
    pub(crate) is_source: bool,
    /// Learned hop distance to the nearest source.
    pub(crate) hops: Option<usize>,
}

impl Node for HopFieldNode {
    type Msg = usize;

    fn on_start(&mut self, out: &mut Outbox<usize>) {
        if self.is_source {
            self.hops = Some(0);
            out.broadcast(1);
        }
    }

    fn on_round(&mut self, _round: usize, inbox: &[Envelope<usize>], out: &mut Outbox<usize>) {
        for env in inbox {
            if self.hops.is_none_or(|h| env.msg < h) {
                self.hops = Some(env.msg);
                out.broadcast(env.msg + 1);
            }
        }
    }
}

/// Runs the hop-field protocol; `None` entries mark robots unreachable
/// from every source — exactly the isolated subgroups of Sec. III-D-1.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_hop_field(
    sources: &[bool],
    adjacency: &[Vec<usize>],
) -> Result<Vec<Option<usize>>, SimError> {
    let nodes: Vec<HopFieldNode> = sources
        .iter()
        .map(|&is_source| HopFieldNode {
            is_source,
            hops: None,
        })
        .collect();
    let mut sim = Simulator::new(nodes, adjacency.to_vec())?;
    sim.run_until_quiet(2 * sources.len() + 8)?;
    Ok(sim.into_nodes().into_iter().map(|n| n.hops).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnitDiskGraph;
    use anr_geom::Point;

    #[test]
    fn boundary_loop_indices_and_size() {
        // Loop of 7 vertices with shuffled IDs; initiator is smallest ID.
        let ids = vec![12, 5, 40, 3, 9, 77, 21];
        let res = run_boundary_loop(&ids).unwrap();
        // All vertices learn the same size.
        for &(_, size) in &res {
            assert_eq!(size, 7);
        }
        // The initiator (ID 3, position 3) has index 0; indices follow
        // the cyclic order.
        assert_eq!(res[3].0, 0);
        assert_eq!(res[4].0, 1);
        assert_eq!(res[5].0, 2);
        assert_eq!(res[6].0, 3);
        assert_eq!(res[0].0, 4);
        assert_eq!(res[1].0, 5);
        assert_eq!(res[2].0, 6);
    }

    #[test]
    fn boundary_loop_all_indices_distinct() {
        let ids: Vec<usize> = (0..20).map(|i| (i * 7 + 3) % 101).collect();
        let res = run_boundary_loop(&ids).unwrap();
        let mut idx: Vec<usize> = res.iter().map(|&(i, _)| i).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn flood_sum_on_connected_graph() {
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i as f64 * 50.0, 0.0)).collect();
        let g = UnitDiskGraph::new(&pts, 80.0);
        let values: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let sums = run_flood_sum(&values, g.adjacency()).unwrap();
        for s in sums {
            assert!((s - 45.0).abs() < 1e-12);
        }
    }

    #[test]
    fn flood_on_disconnected_graph_partial_sums() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(1000.0, 0.0),
        ];
        let g = UnitDiskGraph::new(&pts, 80.0);
        let sums = run_flood_sum(&[1.0, 2.0, 4.0], g.adjacency()).unwrap();
        assert_eq!(sums[0], 3.0);
        assert_eq!(sums[1], 3.0);
        assert_eq!(sums[2], 4.0);
    }

    #[test]
    fn hop_field_matches_centralized_bfs() {
        let pts: Vec<Point> = (0..12)
            .map(|i| Point::new((i % 4) as f64 * 60.0, (i / 4) as f64 * 60.0))
            .collect();
        let g = UnitDiskGraph::new(&pts, 80.0);
        let sources: Vec<bool> = (0..12).map(|i| i == 0 || i == 11).collect();
        let dist = run_hop_field(&sources, g.adjacency()).unwrap();
        let expect = g.multi_source_hops(&[0, 11]);
        assert_eq!(dist, expect);
    }

    #[test]
    fn hop_field_flags_unreachable() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(1000.0, 0.0),
        ];
        let g = UnitDiskGraph::new(&pts, 80.0);
        let dist = run_hop_field(&[true, false, false], g.adjacency()).unwrap();
        assert_eq!(dist[0], Some(0));
        assert_eq!(dist[1], Some(1));
        assert_eq!(dist[2], None); // isolated subgroup
    }

    #[test]
    fn hop_field_no_sources_all_none() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(50.0, 0.0)];
        let g = UnitDiskGraph::new(&pts, 80.0);
        let dist = run_hop_field(&[false, false], g.adjacency()).unwrap();
        assert!(dist.iter().all(Option::is_none));
    }
}
