//! Disjoint-set forest (union–find) with path compression and union by rank.

/// Disjoint-set forest over `0..n`.
///
/// ```
/// use anr_netgraph::UnionFind;
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.num_sets(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path compression).
    ///
    /// # Panics
    ///
    /// Panics when `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` when they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics when `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0)); // already merged
        assert!(uf.union(1, 2));
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn transitive_chains() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn len_and_empty() {
        assert!(UnionFind::new(0).is_empty());
        assert_eq!(UnionFind::new(3).len(), 3);
    }
}
