//! Disjoint-set forest (union–find) with path compression and union by rank.

/// Disjoint-set forest over `0..n`.
///
/// ```
/// use anr_netgraph::UnionFind;
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.num_sets(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path compression).
    ///
    /// # Panics
    ///
    /// Panics when `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` when they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics when `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }
}

/// Union–find supporting **rollback** to an earlier state, for offline
/// dynamic-connectivity algorithms (divide-and-conquer over a time
/// axis, where unions applied on entering a recursion node must be
/// undone on leaving it).
///
/// Uses union by rank **without** path compression — compression moves
/// pointers irreversibly, which would make undo incorrect — so `find`
/// is `O(log n)` instead of near-constant. Every successful union is
/// recorded on an internal op stack; [`RollbackUnionFind::checkpoint`]
/// marks a stack depth and [`RollbackUnionFind::rollback`] undoes every
/// union recorded since the mark, in reverse order.
#[derive(Debug, Clone)]
pub struct RollbackUnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
    /// `(absorbed_root, absorbing_root, rank_bumped)` per union.
    ops: Vec<(u32, u32, bool)>,
}

impl RollbackUnionFind {
    /// Creates `n` singleton sets.
    ///
    /// # Panics
    ///
    /// Panics when `n` exceeds `u32::MAX` elements.
    pub fn new(n: usize) -> Self {
        assert!(u32::try_from(n).is_ok(), "RollbackUnionFind: n too large");
        RollbackUnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
            ops: Vec::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (no path compression).
    ///
    /// # Panics
    ///
    /// Panics when `x` is out of range.
    pub fn find(&self, x: usize) -> usize {
        let mut root = x as u32;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        root as usize
    }

    /// Merges the sets of `a` and `b`; returns `true` when they were
    /// previously disjoint. Records the union for rollback.
    ///
    /// # Panics
    ///
    /// Panics when `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        let bumped = self.rank[hi] == self.rank[lo];
        if bumped {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        self.ops.push((lo as u32, hi as u32, bumped));
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn connected(&self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Marks the current state; pass the returned depth to
    /// [`RollbackUnionFind::rollback`].
    pub fn checkpoint(&self) -> usize {
        self.ops.len()
    }

    /// Undoes every union recorded after `checkpoint`, restoring the
    /// state exactly as it was at the mark.
    ///
    /// # Panics
    ///
    /// Panics when `checkpoint` is deeper than the current op stack.
    pub fn rollback(&mut self, checkpoint: usize) {
        assert!(checkpoint <= self.ops.len(), "rollback past the op stack");
        while self.ops.len() > checkpoint {
            let Some((lo, hi, bumped)) = self.ops.pop() else {
                break;
            };
            self.parent[lo as usize] = lo;
            if bumped {
                self.rank[hi as usize] -= 1;
            }
            self.sets += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0)); // already merged
        assert!(uf.union(1, 2));
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn transitive_chains() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn len_and_empty() {
        assert!(UnionFind::new(0).is_empty());
        assert_eq!(UnionFind::new(3).len(), 3);
    }

    #[test]
    fn rollback_restores_previous_state() {
        let mut uf = RollbackUnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        let mark = uf.checkpoint();
        uf.union(1, 2);
        uf.union(4, 5);
        assert_eq!(uf.num_sets(), 2);
        assert!(uf.connected(0, 3));
        uf.rollback(mark);
        assert_eq!(uf.num_sets(), 4);
        assert!(uf.connected(0, 1));
        assert!(uf.connected(2, 3));
        assert!(!uf.connected(0, 3));
        assert!(!uf.connected(4, 5));
        // The structure is reusable after a rollback.
        uf.union(0, 5);
        assert!(uf.connected(1, 5));
    }

    #[test]
    fn nested_rollbacks_unwind_in_order() {
        let mut uf = RollbackUnionFind::new(8);
        let outer = uf.checkpoint();
        for i in 0..4 {
            uf.union(i, i + 1);
        }
        let inner = uf.checkpoint();
        uf.union(5, 6);
        uf.union(6, 7);
        assert_eq!(uf.num_sets(), 2);
        uf.rollback(inner);
        assert_eq!(uf.num_sets(), 4);
        assert!(uf.connected(0, 4));
        assert!(!uf.connected(5, 6));
        uf.rollback(outer);
        assert_eq!(uf.num_sets(), 8);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn rollback_matches_plain_union_find_on_random_ops() {
        // Deterministic pseudo-random union sequence: after any prefix,
        // rolling back to its checkpoint must match a plain UnionFind
        // fed only that prefix.
        let n = 40;
        let mut seed = 0x9e37_79b9_u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            (seed >> 33) as usize
        };
        let pairs: Vec<(usize, usize)> = (0..120).map(|_| (next() % n, next() % n)).collect();
        for split in [0, 17, 60, 120] {
            let mut rb = RollbackUnionFind::new(n);
            for &(a, b) in &pairs[..split] {
                rb.union(a, b);
            }
            let mark = rb.checkpoint();
            for &(a, b) in &pairs[split..] {
                rb.union(a, b);
            }
            rb.rollback(mark);
            let mut plain = UnionFind::new(n);
            for &(a, b) in &pairs[..split] {
                plain.union(a, b);
            }
            assert_eq!(rb.num_sets(), plain.num_sets(), "split {split}");
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(
                        rb.connected(i, j),
                        plain.connected(i, j),
                        "split {split}: ({i}, {j})"
                    );
                }
            }
        }
    }
}
