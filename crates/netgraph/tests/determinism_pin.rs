//! Byte-identical-output regression pins for the hash-iteration fixes
//! (lint rule D1): the connectivity components, the triangulation's
//! largest-component tie-break, and the audit spatial hash formerly
//! iterated `HashMap`s, whose order varies per map instance and per
//! process. These tests pin exact outputs so a reintroduced hash
//! collection in an output path fails deterministically.

use anr_geom::Point;
use anr_netgraph::{extract_triangulation, UnitDiskGraph};

/// Two equal-size components: the old `HashMap<root, members>` made
/// the tie-break order depend on hash state. The output is now pinned
/// exactly: components sorted largest-first, ties by smallest member.
#[test]
fn connected_components_order_is_pinned() {
    // Component A = {0, 1, 2}, component B = {3, 4, 5}, both size 3.
    let pts = vec![
        Point::new(0.0, 0.0),
        Point::new(50.0, 0.0),
        Point::new(100.0, 0.0),
        Point::new(1000.0, 0.0),
        Point::new(1050.0, 0.0),
        Point::new(1100.0, 0.0),
    ];
    let g = UnitDiskGraph::new(&pts, 80.0);
    assert_eq!(g.connected_components(), vec![vec![0, 1, 2], vec![3, 4, 5]]);
}

/// The full structured output of a triangulation must be identical
/// across repeated extractions in one process. Before the D1 fix each
/// extraction built fresh `HashMap`s (fresh random hash state), so an
/// order-dependent tie-break could differ between two calls on the
/// same input; `BTreeMap` makes the whole pipeline a pure function.
#[test]
fn triangulation_output_is_a_pure_function_of_input() {
    // A lattice with a deliberate pinch: two 2×3 blocks joined by one
    // shared robot, giving the component/tie-break logic real work.
    let mut pts = Vec::new();
    for gy in 0..2 {
        for gx in 0..3 {
            pts.push(Point::new(60.0 * gx as f64, 60.0 * gy as f64));
        }
    }
    for gy in 0..2 {
        for gx in 0..3 {
            pts.push(Point::new(400.0 + 60.0 * gx as f64, 60.0 * gy as f64));
        }
    }
    let a = extract_triangulation(&pts, 90.0).unwrap();
    let b = extract_triangulation(&pts, 90.0).unwrap();
    assert_eq!(a.num_triangles(), b.num_triangles());
    let tris_a: Vec<[usize; 3]> = (0..a.num_triangles()).map(|t| a.triangles()[t]).collect();
    let tris_b: Vec<[usize; 3]> = (0..b.num_triangles()).map(|t| b.triangles()[t]).collect();
    assert_eq!(tris_a, tris_b);
    // Byte-level pin via the debug rendering of the triangle list.
    assert_eq!(format!("{tris_a:?}"), format!("{tris_b:?}"));
}

/// Equal-size triangle groups exercise the former
/// `counts.iter().max_by_key(..)` hash-order tie-break: with two
/// largest components of identical size, the survivor is now the one
/// with the smallest union-find root, every time.
#[test]
fn equal_component_tie_break_is_stable() {
    // Two disjoint unit triangles, far apart — same triangle count.
    let pts = vec![
        Point::new(0.0, 0.0),
        Point::new(60.0, 0.0),
        Point::new(30.0, 50.0),
        Point::new(5000.0, 0.0),
        Point::new(5060.0, 0.0),
        Point::new(5030.0, 50.0),
    ];
    let mesh = extract_triangulation(&pts, 80.0).unwrap();
    let tris: Vec<[usize; 3]> = (0..mesh.num_triangles())
        .map(|t| mesh.triangles()[t])
        .collect();
    // Exactly one of the two equal components survives, and it is
    // always the first (smallest-root) one.
    assert_eq!(tris.len(), 1);
    let mut verts: Vec<usize> = tris[0].to_vec();
    verts.sort_unstable();
    assert_eq!(verts, vec![0, 1, 2]);
    // And re-running yields the same bytes.
    let again = extract_triangulation(&pts, 80.0).unwrap();
    let tris2: Vec<[usize; 3]> = (0..again.num_triangles())
        .map(|t| again.triangles()[t])
        .collect();
    assert_eq!(format!("{tris:?}"), format!("{tris2:?}"));
}
