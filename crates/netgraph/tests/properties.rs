//! Property tests: unit-disk graph structure, hop fields, components
//! and articulation consistency.

use anr_geom::Point;
use anr_netgraph::{articulation_points, UnionFind, UnitDiskGraph};
use proptest::prelude::*;

fn cloud() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..600.0f64, 0.0..600.0f64), 2..40)
        .prop_map(|raw| raw.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #[test]
    fn adjacency_is_symmetric_and_range_correct(pts in cloud(), range in 20.0..200.0f64) {
        let g = UnitDiskGraph::new(&pts, range);
        for i in 0..pts.len() {
            for &j in g.neighbors(i) {
                prop_assert!(g.has_link(j, i), "asymmetric link ({i}, {j})");
                prop_assert!(pts[i].distance(pts[j]) <= range);
            }
            for j in 0..pts.len() {
                if i != j && pts[i].distance(pts[j]) <= range {
                    prop_assert!(g.has_link(i, j), "missing link ({i}, {j})");
                }
            }
        }
    }

    #[test]
    fn components_partition_vertices(pts in cloud(), range in 20.0..200.0f64) {
        let g = UnitDiskGraph::new(&pts, range);
        let comps = g.connected_components();
        let mut seen = vec![false; pts.len()];
        for c in &comps {
            for &v in c {
                prop_assert!(!seen[v], "vertex {v} in two components");
                seen[v] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Largest first.
        for w in comps.windows(2) {
            prop_assert!(w[0].len() >= w[1].len());
        }
        // Union-find agrees with BFS reachability.
        let mut uf = UnionFind::new(pts.len());
        for (i, j) in g.links() {
            uf.union(i, j);
        }
        prop_assert_eq!(uf.num_sets(), comps.len());
    }

    #[test]
    fn hop_field_satisfies_triangle_inequality(pts in cloud(), range in 40.0..250.0f64) {
        prop_assume!(pts.len() >= 2);
        let g = UnitDiskGraph::new(&pts, range);
        let hops = g.bfs_hops(0);
        for u in 0..pts.len() {
            if let Some(du) = hops[u] {
                for &v in g.neighbors(u) {
                    // Neighbors differ by at most one hop.
                    let dv = hops[v].expect("neighbor of reached vertex is reached");
                    prop_assert!(dv <= du + 1 && du <= dv + 1);
                }
            }
        }
    }

    #[test]
    fn articulation_points_match_failure_injection(pts in cloud(), range in 60.0..300.0f64) {
        let g = UnitDiskGraph::new(&pts, range);
        prop_assume!(g.is_connected() && pts.len() >= 3);
        let aps: std::collections::HashSet<usize> =
            articulation_points(&g).into_iter().collect();
        for v in 0..pts.len() {
            let survivors: Vec<Point> = pts
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != v)
                .map(|(_, &p)| p)
                .collect();
            let still_connected = UnitDiskGraph::new(&survivors, range).is_connected();
            prop_assert_eq!(
                !still_connected,
                aps.contains(&v),
                "vertex {} articulation mismatch", v
            );
        }
    }

    #[test]
    fn multi_source_is_pointwise_min(pts in cloud(), range in 40.0..250.0f64) {
        prop_assume!(pts.len() >= 3);
        let g = UnitDiskGraph::new(&pts, range);
        let sources = [0usize, pts.len() - 1];
        let multi = g.multi_source_hops(&sources);
        let a = g.bfs_hops(sources[0]);
        let b = g.bfs_hops(sources[1]);
        for v in 0..pts.len() {
            let expect = match (a[v], b[v]) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (Some(x), None) => Some(x),
                (None, Some(y)) => Some(y),
                (None, None) => None,
            };
            prop_assert_eq!(multi[v], expect, "vertex {}", v);
        }
    }
}
