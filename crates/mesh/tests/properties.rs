//! Property-based tests for triangulation invariants.

use anr_geom::{in_circle, Point, Polygon, PolygonWithHoles};
use anr_mesh::{delaunay, FoiMesher, MeshQuality, PointLocator};
use proptest::prelude::*;

/// Random point clouds with minimum pairwise separation (Delaunay input).
fn separated_cloud() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 4..40).prop_map(|raw| {
        let mut pts: Vec<Point> = Vec::new();
        for (x, y) in raw {
            let p = Point::new(x, y);
            if pts.iter().all(|q| q.distance(p) > 1.0) {
                pts.push(p);
            }
        }
        pts
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn delaunay_empty_circle_property(pts in separated_cloud()) {
        prop_assume!(pts.len() >= 4);
        let m = match delaunay(&pts) {
            Ok(m) => m,
            Err(_) => return Ok(()), // collinear clouds are legal inputs
        };
        for t in 0..m.num_triangles() {
            let [a, b, c] = m.triangles()[t];
            let (pa, pb, pc) = (m.vertex(a), m.vertex(b), m.vertex(c));
            for v in 0..m.num_vertices() {
                if v == a || v == b || v == c {
                    continue;
                }
                let val = in_circle(pa, pb, pc, m.vertex(v));
                let scale = (pa.distance(pb) * pb.distance(pc) * pc.distance(pa)).powi(2).max(1.0);
                prop_assert!(val <= 1e-6 * scale);
            }
        }
    }

    #[test]
    fn delaunay_is_a_disk(pts in separated_cloud()) {
        prop_assume!(pts.len() >= 4);
        if let Ok(m) = delaunay(&pts) {
            // Triangulation of a point cloud fills its convex hull: one
            // boundary loop, Euler characteristic 1.
            prop_assert_eq!(m.euler_characteristic(), 1);
            prop_assert_eq!(m.boundary_loops().len(), 1);
            prop_assert_eq!(m.num_vertices(), pts.len());
        }
    }

    #[test]
    fn delaunay_triangles_are_ccw(pts in separated_cloud()) {
        prop_assume!(pts.len() >= 4);
        if let Ok(m) = delaunay(&pts) {
            for t in 0..m.num_triangles() {
                prop_assert!(m.triangle(t).signed_area() > 0.0);
            }
        }
    }

    #[test]
    fn locator_agrees_with_containment(pts in separated_cloud(), qx in 0.0..100.0f64, qy in 0.0..100.0f64) {
        prop_assume!(pts.len() >= 4);
        if let Ok(m) = delaunay(&pts) {
            let loc = PointLocator::new(&m);
            let q = Point::new(qx, qy);
            if let Some(t) = loc.locate(q) {
                prop_assert!(m.triangle(t).contains(q));
            }
            let (t, inside) = loc.locate_or_nearest(q);
            prop_assert!(t < m.num_triangles());
            if inside {
                prop_assert!(m.triangle(t).contains(q));
            }
        }
    }

    #[test]
    fn foi_mesher_covers_rectangles(w in 20.0..120.0f64, h in 20.0..120.0f64, s in 4.0..10.0f64) {
        let foi = PolygonWithHoles::without_holes(
            Polygon::rectangle(Point::ORIGIN, w, h),
        );
        let m = FoiMesher::new(s).mesh(&foi).unwrap();
        let err = (m.mesh().total_area() - foi.area()).abs() / foi.area();
        prop_assert!(err < 0.1, "area error {}", err);
        prop_assert_eq!(m.mesh().euler_characteristic(), 1);
        let q = MeshQuality::of(m.mesh());
        prop_assert!(q.min_area > 0.0);
    }

    #[test]
    fn foi_mesher_respects_holes(cx in 40.0..60.0f64, cy in 40.0..60.0f64, r in 8.0..20.0f64) {
        let outer = Polygon::rectangle(Point::ORIGIN, 100.0, 100.0);
        let hole = Polygon::regular(Point::new(cx, cy), r, 12);
        let foi = PolygonWithHoles::new(outer, vec![hole.clone()]).unwrap();
        let m = FoiMesher::new(6.0).mesh(&foi).unwrap();
        prop_assert_eq!(m.hole_loops().len(), 1);
        prop_assert_eq!(m.mesh().euler_characteristic(), 0);
        // No triangle centroid inside the hole.
        for t in 0..m.mesh().num_triangles() {
            let c = m.mesh().triangle(t).centroid();
            prop_assert!(!foi.in_hole(c));
        }
    }
}
