//! Point location in a triangle mesh.
//!
//! The harmonic-map composition (Sec. III-B) must find, for every robot's
//! disk position, the target-mesh triangle containing it in the overlapped
//! unit disks. [`PointLocator`] provides a bucket-grid accelerated lookup
//! with a nearest-triangle fallback for points that fall just outside the
//! mesh (numerical noise near the disk boundary).

use crate::TriMesh;
use anr_geom::{Aabb, NearestGrid, Point};

/// Index of the vertex of `mesh` nearest to `p` (linear scan).
///
/// Returns `None` for a mesh with no vertices.
pub fn nearest_vertex(mesh: &TriMesh, p: Point) -> Option<usize> {
    mesh.nearest_vertex_index(p)
}

/// Bucket-grid point locator over a fixed mesh.
///
/// Build once, query many times. Queries return the containing triangle,
/// or with [`PointLocator::locate_or_nearest`] the nearest triangle when
/// the point is slightly outside the mesh.
///
/// ```
/// use anr_geom::Point;
/// use anr_mesh::{delaunay, PointLocator};
///
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(10.0, 0.0),
///     Point::new(10.0, 10.0),
///     Point::new(0.0, 10.0),
/// ];
/// let mesh = delaunay(&pts)?;
/// let locator = PointLocator::new(&mesh);
/// assert!(locator.locate(Point::new(5.0, 5.0)).is_some());
/// assert!(locator.locate(Point::new(50.0, 50.0)).is_none());
/// # Ok::<(), anr_mesh::MeshError>(())
/// ```
#[derive(Debug)]
pub struct PointLocator<'m> {
    mesh: &'m TriMesh,
    bbox: Aabb,
    nx: usize,
    ny: usize,
    cell: f64,
    /// For each grid cell, the triangles whose bbox overlaps it.
    buckets: Vec<Vec<usize>>,
    /// Triangle centroids plus an exact nearest-centroid index, for the
    /// outside-mesh fallback of [`PointLocator::locate_or_nearest`].
    centroids: Vec<Point>,
    centroid_grid: NearestGrid,
}

impl<'m> PointLocator<'m> {
    /// Builds a locator for `mesh`.
    ///
    /// # Panics
    ///
    /// Panics for a mesh with zero triangles.
    pub fn new(mesh: &'m TriMesh) -> Self {
        assert!(mesh.num_triangles() > 0, "cannot locate in an empty mesh");
        // The assert above guarantees vertices exist; the degenerate
        // fallback keeps this panic-free all the same.
        let bbox = Aabb::from_points(mesh.vertices().iter().copied())
            .unwrap_or(Aabb::new(Point::ORIGIN, Point::ORIGIN));
        // Aim for ~2 triangles per cell.
        let target_cells = (mesh.num_triangles() / 2).max(1);
        let aspect = (bbox.width() / bbox.height().max(1e-12)).max(1e-6);
        let ny = ((target_cells as f64 / aspect).sqrt().ceil() as usize).max(1);
        let nx = target_cells.div_ceil(ny).max(1);
        let cell = (bbox.width() / nx as f64)
            .max(bbox.height() / ny as f64)
            .max(1e-12);

        let mut buckets = vec![Vec::new(); nx * ny];
        for t in 0..mesh.num_triangles() {
            let tri = mesh.triangle(t);
            let mut tb = Aabb::new(tri.a, tri.b);
            tb.expand(tri.c);
            let (i0, j0) = Self::cell_of(&bbox, cell, nx, ny, tb.min);
            let (i1, j1) = Self::cell_of(&bbox, cell, nx, ny, tb.max);
            for j in j0..=j1 {
                for i in i0..=i1 {
                    buckets[j * nx + i].push(t);
                }
            }
        }

        let centroids: Vec<Point> = (0..mesh.num_triangles())
            .map(|t| mesh.triangle(t).centroid())
            .collect();
        let centroid_grid = NearestGrid::new(&centroids);

        PointLocator {
            mesh,
            bbox,
            nx,
            ny,
            cell,
            buckets,
            centroids,
            centroid_grid,
        }
    }

    fn cell_of(bbox: &Aabb, cell: f64, nx: usize, ny: usize, p: Point) -> (usize, usize) {
        let i = (((p.x - bbox.min.x) / cell).floor() as isize).clamp(0, nx as isize - 1) as usize;
        let j = (((p.y - bbox.min.y) / cell).floor() as isize).clamp(0, ny as isize - 1) as usize;
        (i, j)
    }

    /// The mesh this locator indexes.
    #[inline]
    pub fn mesh(&self) -> &TriMesh {
        self.mesh
    }

    /// Triangle index containing `p`, if any (boundary inclusive).
    pub fn locate(&self, p: Point) -> Option<usize> {
        if !self.bbox.inflated(self.cell).contains(p) {
            return None;
        }
        let (i, j) = Self::cell_of(&self.bbox, self.cell, self.nx, self.ny, p);
        for &t in &self.buckets[j * self.nx + i] {
            if self.mesh.triangle(t).contains(p) {
                return Some(t);
            }
        }
        // The point may sit exactly on a cell border; check the 8
        // surrounding cells before giving up.
        for dj in -1i64..=1 {
            for di in -1i64..=1 {
                if di == 0 && dj == 0 {
                    continue;
                }
                let ii = i as i64 + di;
                let jj = j as i64 + dj;
                if ii < 0 || jj < 0 || ii >= self.nx as i64 || jj >= self.ny as i64 {
                    continue;
                }
                for &t in &self.buckets[jj as usize * self.nx + ii as usize] {
                    if self.mesh.triangle(t).contains(p) {
                        return Some(t);
                    }
                }
            }
        }
        None
    }

    /// Containing triangle, or the triangle whose centroid is nearest
    /// when `p` is outside the mesh.
    ///
    /// The boolean is `true` when the point was genuinely contained. The
    /// fallback is an exact ring search over cached centroids (ties to
    /// the lowest triangle index, identical to a linear scan) — it runs
    /// for every boundary robot of a rotated disk, so it must not cost
    /// `O(triangles)`.
    pub fn locate_or_nearest(&self, p: Point) -> (usize, bool) {
        if let Some(t) = self.locate(p) {
            return (t, true);
        }
        (self.centroid_grid.nearest(&self.centroids, p), false)
    }
}

/// Point location by *walking*: starting from `start` (a triangle
/// index), repeatedly step to the neighbor across the edge that the
/// target lies beyond, until the containing triangle is reached.
///
/// Expected O(√n) per query when `start` is near the target — the
/// classic companion to a bucket grid for coherent query sequences
/// (e.g. relocating a whole swarm whose disk positions move slowly with
/// the rotation angle).
///
/// Returns `None` when the walk exits the mesh through a boundary edge
/// (the point is outside) or when the step budget (`4 × num_triangles`)
/// is exhausted (possible only on non-convex meshes, where the caller
/// should fall back to [`PointLocator::locate`]).
///
/// # Panics
///
/// Panics when `start` is out of range.
pub fn locate_walk(mesh: &TriMesh, start: usize, p: Point) -> Option<usize> {
    assert!(start < mesh.num_triangles(), "start triangle out of range");
    let mut current = start;
    let mut steps = 0usize;
    let budget = 4 * mesh.num_triangles();
    loop {
        steps += 1;
        if steps > budget {
            return None;
        }
        let [a, b, c] = mesh.triangles()[current];
        let (pa, pb, pc) = (mesh.vertex(a), mesh.vertex(b), mesh.vertex(c));
        // Find an edge with the target strictly on its outside.
        let mut moved = false;
        for (u, v) in [(a, b), (b, c), (c, a)] {
            let (pu, pv) = (mesh.vertex(u), mesh.vertex(v));
            if anr_geom::orient2d(pu, pv, p) < -1e-12 {
                // Step across (u, v) if there is a neighbor.
                let neighbors = mesh.edge_triangles(u, v);
                match neighbors.iter().find(|&&t| t != current) {
                    Some(&next) => {
                        current = next;
                        moved = true;
                        break;
                    }
                    None => return None, // walked out through the boundary
                }
            }
        }
        if !moved {
            // No separating edge: the triangle contains p.
            let tri = anr_geom::Triangle::new(pa, pb, pc);
            return if tri.contains(p) { Some(current) } else { None };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delaunay;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn grid_mesh(n: usize) -> TriMesh {
        let mut pts = Vec::new();
        for j in 0..n {
            for i in 0..n {
                pts.push(p(i as f64, j as f64));
            }
        }
        delaunay(&pts).unwrap()
    }

    #[test]
    fn locate_interior_points() {
        let m = grid_mesh(5);
        let loc = PointLocator::new(&m);
        for &q in &[p(0.5, 0.5), p(3.3, 2.7), p(0.0, 0.0), p(4.0, 4.0)] {
            let t = loc.locate(q).expect("point should be inside");
            assert!(m.triangle(t).contains(q));
        }
    }

    #[test]
    fn locate_outside_returns_none() {
        let m = grid_mesh(4);
        let loc = PointLocator::new(&m);
        assert!(loc.locate(p(100.0, 100.0)).is_none());
        assert!(loc.locate(p(-1.0, -1.0)).is_none());
    }

    #[test]
    fn locate_or_nearest_fallback() {
        let m = grid_mesh(4);
        let loc = PointLocator::new(&m);
        let (t, inside) = loc.locate_or_nearest(p(10.0, 1.5));
        assert!(!inside);
        // Nearest triangle should hug the right edge (x near 3).
        assert!(m.triangle(t).centroid().x > 2.0);
        let (_, inside) = loc.locate_or_nearest(p(1.5, 1.5));
        assert!(inside);
    }

    #[test]
    fn locate_matches_brute_force() {
        let m = grid_mesh(6);
        let loc = PointLocator::new(&m);
        let mut seed: u64 = 7;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..200 {
            let q = p(next() * 5.0, next() * 5.0);
            let fast = loc.locate(q);
            let brute = (0..m.num_triangles()).find(|&t| m.triangle(t).contains(q));
            match (fast, brute) {
                (Some(a), Some(b)) => {
                    // Both must actually contain the point (ties on shared
                    // edges can differ in index).
                    assert!(m.triangle(a).contains(q));
                    assert!(m.triangle(b).contains(q));
                }
                (None, None) => {}
                other => panic!("mismatch at {q}: {other:?}"),
            }
        }
    }

    #[test]
    fn walk_finds_interior_points() {
        let m = grid_mesh(6);
        for &q in &[p(0.5, 0.5), p(3.3, 2.7), p(4.9, 0.1), p(2.5, 4.9)] {
            for start in [0, m.num_triangles() / 2, m.num_triangles() - 1] {
                let t = locate_walk(&m, start, q).expect("inside");
                assert!(m.triangle(t).contains(q), "from start {start}");
            }
        }
    }

    #[test]
    fn walk_detects_outside_points() {
        let m = grid_mesh(4);
        assert!(locate_walk(&m, 0, p(100.0, 100.0)).is_none());
        assert!(locate_walk(&m, m.num_triangles() - 1, p(-5.0, 1.0)).is_none());
    }

    #[test]
    fn walk_agrees_with_bucket_locator() {
        let m = grid_mesh(7);
        let loc = PointLocator::new(&m);
        let mut seed: u64 = 3;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut start = 0usize;
        for _ in 0..300 {
            let q = p(next() * 6.0, next() * 6.0);
            let walked = locate_walk(&m, start, q);
            let bucketed = loc.locate(q);
            match (walked, bucketed) {
                (Some(a), Some(b)) => {
                    assert!(m.triangle(a).contains(q));
                    assert!(m.triangle(b).contains(q));
                    start = a; // coherent query sequence
                }
                (None, None) => {}
                other => panic!("disagreement at {q}: {other:?}"),
            }
        }
    }

    #[test]
    fn nearest_vertex_scan() {
        let m = grid_mesh(3);
        assert_eq!(nearest_vertex(&m, p(1.9, 2.1)), Some(8));
    }
}
