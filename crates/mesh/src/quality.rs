//! Mesh quality statistics.

use crate::TriMesh;
use std::fmt;

/// Aggregate quality statistics of a triangle mesh.
///
/// ```
/// use anr_geom::Point;
/// use anr_mesh::{delaunay, MeshQuality};
///
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(0.5, 0.866),
/// ];
/// let q = MeshQuality::of(&delaunay(&pts)?);
/// assert!(q.min_angle_deg > 59.0 && q.max_angle_deg < 61.0);
/// # Ok::<(), anr_mesh::MeshError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshQuality {
    /// Smallest interior angle across all triangles, in degrees.
    pub min_angle_deg: f64,
    /// Largest interior angle across all triangles, in degrees.
    pub max_angle_deg: f64,
    /// Mean interior angle (always 60 for a triangulation), in degrees.
    pub mean_angle_deg: f64,
    /// Shortest edge length in the mesh.
    pub min_edge: f64,
    /// Longest edge length in the mesh.
    pub max_edge: f64,
    /// Mean edge length.
    pub mean_edge: f64,
    /// Smallest triangle area.
    pub min_area: f64,
    /// Number of triangles measured.
    pub triangles: usize,
}

impl MeshQuality {
    /// Measures `mesh`.
    ///
    /// # Panics
    ///
    /// Panics for a mesh with zero triangles.
    pub fn of(mesh: &TriMesh) -> MeshQuality {
        assert!(mesh.num_triangles() > 0, "cannot measure an empty mesh");
        let mut min_angle = f64::INFINITY;
        let mut max_angle = 0.0f64;
        let mut angle_sum = 0.0;
        let mut min_area = f64::INFINITY;

        for t in 0..mesh.num_triangles() {
            let tri = mesh.triangle(t);
            min_area = min_area.min(tri.area());
            let corners = [tri.a, tri.b, tri.c];
            for k in 0..3 {
                let a = corners[k];
                let b = corners[(k + 1) % 3];
                let c = corners[(k + 2) % 3];
                let u = b - a;
                let v = c - a;
                let cos = (u.dot(v) / (u.norm() * v.norm())).clamp(-1.0, 1.0);
                let ang = cos.acos().to_degrees();
                min_angle = min_angle.min(ang);
                max_angle = max_angle.max(ang);
                angle_sum += ang;
            }
        }

        let mut min_edge = f64::INFINITY;
        let mut max_edge = 0.0f64;
        let mut edge_sum = 0.0;
        let mut edge_count = 0usize;
        for (a, b) in mesh.edges() {
            let len = mesh.vertex(a).distance(mesh.vertex(b));
            min_edge = min_edge.min(len);
            max_edge = max_edge.max(len);
            edge_sum += len;
            edge_count += 1;
        }

        MeshQuality {
            min_angle_deg: min_angle,
            max_angle_deg: max_angle,
            mean_angle_deg: angle_sum / (3 * mesh.num_triangles()) as f64,
            min_edge,
            max_edge,
            mean_edge: edge_sum / edge_count as f64,
            min_area,
            triangles: mesh.num_triangles(),
        }
    }
}

impl fmt::Display for MeshQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} triangles, angles [{:.1}°, {:.1}°], edges [{:.3}, {:.3}] (mean {:.3})",
            self.triangles,
            self.min_angle_deg,
            self.max_angle_deg,
            self.min_edge,
            self.max_edge,
            self.mean_edge
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delaunay;
    use anr_geom::Point;

    #[test]
    fn equilateral_triangle_quality() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 3f64.sqrt() / 2.0),
        ];
        let q = MeshQuality::of(&delaunay(&pts).unwrap());
        assert!((q.min_angle_deg - 60.0).abs() < 1e-6);
        assert!((q.max_angle_deg - 60.0).abs() < 1e-6);
        assert!((q.mean_angle_deg - 60.0).abs() < 1e-6);
        assert!((q.min_edge - 1.0).abs() < 1e-9);
        assert_eq!(q.triangles, 1);
    }

    #[test]
    fn mean_angle_is_always_sixty() {
        let mut pts = Vec::new();
        for j in 0..4 {
            for i in 0..4 {
                pts.push(Point::new(i as f64, j as f64 + 0.01 * i as f64));
            }
        }
        let q = MeshQuality::of(&delaunay(&pts).unwrap());
        assert!((q.mean_angle_deg - 60.0).abs() < 1e-9);
        assert!(q.min_angle_deg > 0.0);
        assert!(q.max_angle_deg < 180.0);
        assert!(q.min_edge <= q.mean_edge && q.mean_edge <= q.max_edge);
    }

    #[test]
    fn display_nonempty() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let q = MeshQuality::of(&delaunay(&pts).unwrap());
        assert!(!q.to_string().is_empty());
    }
}
