//! Error type for mesh construction.

use std::error::Error;
use std::fmt;

/// Errors raised while building or validating a triangle mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MeshError {
    /// Fewer than three input points were supplied to the triangulator.
    TooFewPoints {
        /// Number of points supplied.
        got: usize,
    },
    /// All input points were (numerically) collinear.
    AllCollinear,
    /// A triangle references a vertex index that does not exist.
    IndexOutOfRange {
        /// Offending triangle index.
        triangle: usize,
        /// Offending vertex index.
        vertex: usize,
    },
    /// A triangle repeats a vertex.
    DegenerateTriangle {
        /// Offending triangle index.
        triangle: usize,
    },
    /// An interior edge is shared by more than two triangles — the mesh
    /// is not a 2-manifold.
    NonManifoldEdge {
        /// Endpoints (vertex indices) of the offending edge.
        edge: (usize, usize),
    },
    /// The meshed region produced no triangles (spacing too large or
    /// region too thin).
    EmptyMesh,
    /// The mesher produced a mesh whose boundary does not match the
    /// requested topology (e.g. hole count mismatch).
    TopologyMismatch {
        /// Expected number of boundary loops.
        expected_loops: usize,
        /// Number of loops produced.
        got_loops: usize,
    },
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::TooFewPoints { got } => {
                write!(f, "triangulation needs at least 3 points, got {got}")
            }
            MeshError::AllCollinear => write!(f, "all input points are collinear"),
            MeshError::IndexOutOfRange { triangle, vertex } => {
                write!(f, "triangle {triangle} references missing vertex {vertex}")
            }
            MeshError::DegenerateTriangle { triangle } => {
                write!(f, "triangle {triangle} repeats a vertex")
            }
            MeshError::NonManifoldEdge { edge } => {
                write!(
                    f,
                    "edge ({}, {}) is shared by more than two triangles",
                    edge.0, edge.1
                )
            }
            MeshError::EmptyMesh => write!(f, "meshing produced no triangles"),
            MeshError::TopologyMismatch {
                expected_loops,
                got_loops,
            } => write!(
                f,
                "expected {expected_loops} boundary loops, mesh has {got_loops}"
            ),
        }
    }
}

impl Error for MeshError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_nonempty() {
        let errs: Vec<MeshError> = vec![
            MeshError::TooFewPoints { got: 1 },
            MeshError::AllCollinear,
            MeshError::IndexOutOfRange {
                triangle: 0,
                vertex: 9,
            },
            MeshError::DegenerateTriangle { triangle: 3 },
            MeshError::NonManifoldEdge { edge: (1, 2) },
            MeshError::EmptyMesh,
            MeshError::TopologyMismatch {
                expected_loops: 2,
                got_loops: 1,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
