//! # anr-mesh — triangle meshes, Delaunay triangulation, FoI meshing
//!
//! The optimal-marching pipeline (ICDCS 2016) manipulates two kinds of
//! triangulations:
//!
//! 1. the triangulation `T` extracted from the robots' connectivity graph
//!    in the current field of interest `M1` (Sec. III-A), and
//! 2. a gridded triangulation of the target field of interest `M2`
//!    (Sec. III-B: "we can add grid points and triangulate the surface
//!    data of FoI M2").
//!
//! This crate provides the shared substrate for both: an index-based
//! [`TriMesh`] with adjacency and boundary-loop extraction, a
//! Bowyer–Watson [`delaunay`] triangulator, a [`FoiMesher`] that turns a
//! [`PolygonWithHoles`](anr_geom::PolygonWithHoles) into a well-shaped
//! mesh, point location and mesh-quality statistics.
//!
//! ## Example
//!
//! ```
//! use anr_geom::{Point, Polygon, PolygonWithHoles};
//! use anr_mesh::FoiMesher;
//!
//! let outer = Polygon::rectangle(Point::ORIGIN, 100.0, 60.0);
//! let foi = PolygonWithHoles::without_holes(outer);
//! let mesh = FoiMesher::new(10.0).mesh(&foi)?;
//! assert!(mesh.mesh().num_triangles() > 0);
//! assert_eq!(mesh.mesh().boundary_loops().len(), 1); // a topological disk
//! # Ok::<(), anr_mesh::MeshError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

mod delaunay;
mod error;
mod foi;
mod locate;
mod quality;
mod trimesh;

pub use delaunay::delaunay;
pub use error::MeshError;
pub use foi::{FoiMesh, FoiMesher};
pub use locate::{locate_walk, nearest_vertex, PointLocator};
pub use quality::MeshQuality;
pub use trimesh::TriMesh;
