//! Index-based triangle mesh with adjacency and boundary extraction.

use crate::MeshError;
use anr_geom::{Point, Triangle};
use std::collections::BTreeMap;

/// An indexed triangle mesh embedded in the plane.
///
/// Vertices are points; triangles are triples of vertex indices stored
/// counter-clockwise. The structure maintains derived adjacency: edge →
/// incident triangles, vertex → incident triangles, vertex neighbors.
///
/// Boundary edges are exactly the edges incident to one triangle — the
/// rule the paper uses to identify FoI and hole boundaries
/// (Sec. III-B, III-D-3).
///
/// ```
/// use anr_geom::Point;
/// use anr_mesh::TriMesh;
///
/// // Two triangles sharing the diagonal of a unit square.
/// let mesh = TriMesh::new(
///     vec![
///         Point::new(0.0, 0.0),
///         Point::new(1.0, 0.0),
///         Point::new(1.0, 1.0),
///         Point::new(0.0, 1.0),
///     ],
///     vec![[0, 1, 2], [0, 2, 3]],
/// )?;
/// assert_eq!(mesh.num_triangles(), 2);
/// assert_eq!(mesh.boundary_loops().len(), 1);
/// assert!(mesh.is_boundary_vertex(0));
/// # Ok::<(), anr_mesh::MeshError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TriMesh {
    vertices: Vec<Point>,
    triangles: Vec<[usize; 3]>,
    /// Undirected edge (min, max) → incident triangle indices (1 or 2).
    edge_tris: BTreeMap<(usize, usize), Vec<usize>>,
    /// Vertex → incident triangle indices.
    vertex_tris: Vec<Vec<usize>>,
    /// Vertex → neighboring vertex indices (sorted).
    neighbors: Vec<Vec<usize>>,
}

impl TriMesh {
    /// Builds a mesh from vertices and CCW triangles, validating indices,
    /// degeneracy and manifoldness.
    ///
    /// Triangles with clockwise orientation are flipped to CCW.
    ///
    /// # Errors
    ///
    /// * [`MeshError::IndexOutOfRange`] — triangle references a missing vertex.
    /// * [`MeshError::DegenerateTriangle`] — triangle repeats a vertex.
    /// * [`MeshError::NonManifoldEdge`] — edge shared by 3+ triangles.
    pub fn new(vertices: Vec<Point>, triangles: Vec<[usize; 3]>) -> Result<Self, MeshError> {
        let n = vertices.len();
        let mut tris = Vec::with_capacity(triangles.len());
        for (ti, t) in triangles.into_iter().enumerate() {
            for &v in &t {
                if v >= n {
                    return Err(MeshError::IndexOutOfRange {
                        triangle: ti,
                        vertex: v,
                    });
                }
            }
            if t[0] == t[1] || t[1] == t[2] || t[0] == t[2] {
                return Err(MeshError::DegenerateTriangle { triangle: ti });
            }
            // Normalize to CCW.
            let tri = Triangle::new(vertices[t[0]], vertices[t[1]], vertices[t[2]]);
            if tri.signed_area() < 0.0 {
                tris.push([t[0], t[2], t[1]]);
            } else {
                tris.push(t);
            }
        }

        let mut edge_tris: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        let mut vertex_tris: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ti, t) in tris.iter().enumerate() {
            for k in 0..3 {
                let a = t[k];
                let b = t[(k + 1) % 3];
                let key = (a.min(b), a.max(b));
                let entry = edge_tris.entry(key).or_default();
                entry.push(ti);
                if entry.len() > 2 {
                    return Err(MeshError::NonManifoldEdge { edge: key });
                }
                vertex_tris[a].push(ti);
            }
        }
        for v in vertex_tris.iter_mut() {
            v.sort_unstable();
            v.dedup();
        }

        let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in edge_tris.keys() {
            neighbors[a].push(b);
            neighbors[b].push(a);
        }
        for nb in neighbors.iter_mut() {
            nb.sort_unstable();
            nb.dedup();
        }

        Ok(TriMesh {
            vertices,
            triangles: tris,
            edge_tris,
            vertex_tris,
            neighbors,
        })
    }

    /// Vertex positions.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Position of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range.
    #[inline]
    pub fn vertex(&self, v: usize) -> Point {
        self.vertices[v]
    }

    /// Triangles as CCW vertex-index triples.
    #[inline]
    pub fn triangles(&self) -> &[[usize; 3]] {
        &self.triangles
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of triangles.
    #[inline]
    pub fn num_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edge_tris.len()
    }

    /// The geometric triangle of triangle index `t`.
    ///
    /// # Panics
    ///
    /// Panics when `t` is out of range.
    pub fn triangle(&self, t: usize) -> Triangle {
        let [a, b, c] = self.triangles[t];
        Triangle::new(self.vertices[a], self.vertices[b], self.vertices[c])
    }

    /// Neighboring vertex indices of `v` (sorted, deduplicated).
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range.
    #[inline]
    pub fn vertex_neighbors(&self, v: usize) -> &[usize] {
        &self.neighbors[v]
    }

    /// Triangle indices incident to vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range.
    #[inline]
    pub fn vertex_triangles(&self, v: usize) -> &[usize] {
        &self.vertex_tris[v]
    }

    /// Triangle indices incident to the undirected edge `(a, b)`.
    ///
    /// Returns an empty slice when the edge is not in the mesh.
    pub fn edge_triangles(&self, a: usize, b: usize) -> &[usize] {
        self.edge_tris
            .get(&(a.min(b), a.max(b)))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// All undirected edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edge_tris.keys().copied()
    }

    /// Is `(a, b)` a boundary edge (incident to exactly one triangle)?
    pub fn is_boundary_edge(&self, a: usize, b: usize) -> bool {
        self.edge_triangles(a, b).len() == 1
    }

    /// Is `v` on the mesh boundary (incident to a boundary edge)?
    pub fn is_boundary_vertex(&self, v: usize) -> bool {
        self.neighbors[v]
            .iter()
            .any(|&u| self.is_boundary_edge(v, u))
    }

    /// Ordered boundary loops, each a cyclic list of vertex indices.
    ///
    /// With all triangles CCW, the **outer** loop runs counter-clockwise
    /// and every hole loop runs clockwise. Loops are returned with the
    /// outer loop first (the loop whose polygonal signed area is largest).
    pub fn boundary_loops(&self) -> Vec<Vec<usize>> {
        // Directed boundary half-edges: (a, b) from a CCW triangle whose
        // opposite (b, a) is missing. A vertex may have several outgoing
        // boundary half-edges (pinch vertices), so traversal marks
        // *edges* visited, not vertices.
        let mut outgoing: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for t in &self.triangles {
            for k in 0..3 {
                let a = t[k];
                let b = t[(k + 1) % 3];
                if self.is_boundary_edge(a, b) {
                    outgoing.entry(a).or_default().push(b);
                }
            }
        }
        for v in outgoing.values_mut() {
            v.sort_unstable();
        }

        let mut visited: std::collections::BTreeSet<(usize, usize)> =
            std::collections::BTreeSet::new();
        let mut loops: Vec<Vec<usize>> = Vec::new();
        let mut starts: Vec<usize> = outgoing.keys().copied().collect();
        starts.sort_unstable();
        for start in starts {
            let nexts = outgoing[&start].clone();
            for &first in &nexts {
                if visited.contains(&(start, first)) {
                    continue;
                }
                let mut cycle = vec![start];
                let mut edge = (start, first);
                loop {
                    visited.insert(edge);
                    let cur = edge.1;
                    if cur == start {
                        break;
                    }
                    cycle.push(cur);
                    // Pick the first unvisited outgoing half-edge.
                    let Some(cands) = outgoing.get(&cur) else {
                        break; // dangling boundary (non-manifold input)
                    };
                    match cands.iter().find(|&&b| !visited.contains(&(cur, b))) {
                        Some(&b) => edge = (cur, b),
                        None => break,
                    }
                }
                if cycle.len() >= 3 {
                    loops.push(cycle);
                }
            }
        }

        // Outer loop first: largest absolute signed area.
        loops.sort_by(|a, b| {
            let area = |l: &Vec<usize>| -> f64 {
                let mut s = 0.0;
                for i in 0..l.len() {
                    let p = self.vertices[l[i]];
                    let q = self.vertices[l[(i + 1) % l.len()]];
                    s += p.x * q.y - q.x * p.y;
                }
                (0.5 * s).abs()
            };
            area(b).total_cmp(&area(a))
        });
        loops
    }

    /// Euler characteristic `V - E + F` (counting only triangles as faces).
    ///
    /// A triangulated disk has χ = 1; a disk with `k` holes has χ = 1 − k.
    pub fn euler_characteristic(&self) -> isize {
        self.num_vertices() as isize - self.num_edges() as isize + self.num_triangles() as isize
    }

    /// Sum of all triangle areas.
    pub fn total_area(&self) -> f64 {
        (0..self.num_triangles())
            .map(|t| self.triangle(t).area())
            .sum()
    }

    /// Replaces all vertex positions, keeping connectivity.
    ///
    /// Used by harmonic mapping, which re-embeds the same mesh in the
    /// unit disk.
    ///
    /// # Panics
    ///
    /// Panics when `positions.len() != self.num_vertices()`.
    pub fn with_positions(&self, positions: Vec<Point>) -> TriMesh {
        assert_eq!(
            positions.len(),
            self.num_vertices(),
            "position count must match vertex count"
        );
        TriMesh {
            vertices: positions,
            triangles: self.triangles.clone(),
            edge_tris: self.edge_tris.clone(),
            vertex_tris: self.vertex_tris.clone(),
            neighbors: self.neighbors.clone(),
        }
    }

    /// Index of the vertex nearest to `p` (linear scan).
    ///
    /// Returns `None` for an empty mesh.
    pub fn nearest_vertex_index(&self, p: Point) -> Option<usize> {
        (0..self.num_vertices()).min_by(|&a, &b| {
            self.vertices[a]
                .distance_sq(p)
                .total_cmp(&self.vertices[b].distance_sq(p))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    /// 3x3 vertex grid, 8 triangles, one boundary loop.
    fn grid_mesh() -> TriMesh {
        let mut verts = Vec::new();
        for j in 0..3 {
            for i in 0..3 {
                verts.push(p(i as f64, j as f64));
            }
        }
        let mut tris = Vec::new();
        for j in 0..2 {
            for i in 0..2 {
                let v = j * 3 + i;
                tris.push([v, v + 1, v + 4]);
                tris.push([v, v + 4, v + 3]);
            }
        }
        TriMesh::new(verts, tris).unwrap()
    }

    #[test]
    fn construction_counts() {
        let m = grid_mesh();
        assert_eq!(m.num_vertices(), 9);
        assert_eq!(m.num_triangles(), 8);
        assert_eq!(m.num_edges(), 16);
        assert_eq!(m.euler_characteristic(), 1); // disk
    }

    #[test]
    fn rejects_bad_index() {
        let r = TriMesh::new(vec![p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)], vec![[0, 1, 5]]);
        assert!(matches!(r, Err(MeshError::IndexOutOfRange { .. })));
    }

    #[test]
    fn rejects_repeated_vertex() {
        let r = TriMesh::new(vec![p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)], vec![[0, 1, 1]]);
        assert!(matches!(r, Err(MeshError::DegenerateTriangle { .. })));
    }

    #[test]
    fn rejects_nonmanifold_edge() {
        let verts = vec![
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(0.5, 1.0),
            p(0.5, -1.0),
            p(2.0, 0.5),
        ];
        // Three triangles all sharing edge (0, 1).
        let r = TriMesh::new(verts, vec![[0, 1, 2], [0, 1, 3], [0, 1, 4]]);
        assert!(matches!(
            r,
            Err(MeshError::NonManifoldEdge { edge: (0, 1) })
        ));
    }

    #[test]
    fn cw_triangles_are_flipped() {
        let m = TriMesh::new(
            vec![p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)],
            vec![[0, 2, 1]], // clockwise
        )
        .unwrap();
        assert!(m.triangle(0).signed_area() > 0.0);
    }

    #[test]
    fn boundary_detection() {
        let m = grid_mesh();
        // Center vertex (index 4) is interior; corners are boundary.
        assert!(!m.is_boundary_vertex(4));
        for v in [0, 2, 6, 8] {
            assert!(m.is_boundary_vertex(v));
        }
        assert!(m.is_boundary_edge(0, 1));
        assert!(!m.is_boundary_edge(0, 4));
    }

    #[test]
    fn single_boundary_loop_covers_perimeter() {
        let m = grid_mesh();
        let loops = m.boundary_loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].len(), 8); // all non-center vertices
        assert!(!loops[0].contains(&4));
    }

    #[test]
    fn boundary_loop_is_ccw_outer() {
        let m = grid_mesh();
        let l = &m.boundary_loops()[0];
        let mut s = 0.0;
        for i in 0..l.len() {
            let a = m.vertex(l[i]);
            let b = m.vertex(l[(i + 1) % l.len()]);
            s += a.x * b.y - b.x * a.y;
        }
        assert!(s > 0.0, "outer loop must be CCW");
    }

    #[test]
    fn mesh_with_hole_has_two_loops_and_euler_zero() {
        // Square ring: 8 vertices, outer square 4 + inner square 4.
        let verts = vec![
            p(0.0, 0.0),
            p(3.0, 0.0),
            p(3.0, 3.0),
            p(0.0, 3.0),
            p(1.0, 1.0),
            p(2.0, 1.0),
            p(2.0, 2.0),
            p(1.0, 2.0),
        ];
        let tris = vec![
            [0, 1, 5],
            [0, 5, 4],
            [1, 2, 6],
            [1, 6, 5],
            [2, 3, 7],
            [2, 7, 6],
            [3, 0, 4],
            [3, 4, 7],
        ];
        let m = TriMesh::new(verts, tris).unwrap();
        assert_eq!(m.euler_characteristic(), 0); // disk with one hole
        let loops = m.boundary_loops();
        assert_eq!(loops.len(), 2);
        // Outer loop (larger area) must come first.
        assert_eq!(loops[0].len(), 4);
        assert!(loops[0].contains(&0));
        assert!(loops[1].contains(&4));
    }

    #[test]
    fn bowtie_pinch_yields_two_loops() {
        // Two triangles sharing only vertex 2 (a pinch): the boundary
        // traversal must report two separate 3-loops, not merge them.
        let m = TriMesh::new(
            vec![
                p(0.0, 0.0),
                p(2.0, 0.0),
                p(1.0, 1.0), // shared pinch vertex
                p(0.0, 2.0),
                p(2.0, 2.0),
            ],
            vec![[0, 1, 2], [2, 4, 3]],
        )
        .unwrap();
        let loops = m.boundary_loops();
        assert_eq!(loops.len(), 2, "loops: {loops:?}");
        for l in &loops {
            assert_eq!(l.len(), 3);
            assert!(l.contains(&2), "each loop passes the pinch vertex");
        }
    }

    #[test]
    fn neighbors_and_incidence() {
        let m = grid_mesh();
        assert_eq!(m.vertex_neighbors(4).len(), 6);
        assert_eq!(m.vertex_triangles(4).len(), 6);
        assert_eq!(m.edge_triangles(0, 4).len(), 2);
        assert_eq!(m.edge_triangles(0, 8).len(), 0);
    }

    #[test]
    fn total_area_of_grid() {
        assert!((grid_mesh().total_area() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn with_positions_keeps_connectivity() {
        let m = grid_mesh();
        let doubled: Vec<Point> = m
            .vertices()
            .iter()
            .map(|q| p(q.x * 2.0, q.y * 2.0))
            .collect();
        let m2 = m.with_positions(doubled);
        assert_eq!(m2.num_triangles(), m.num_triangles());
        assert!((m2.total_area() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_vertex_index_finds_closest() {
        let m = grid_mesh();
        assert_eq!(m.nearest_vertex_index(p(2.1, 1.9)), Some(8));
        assert_eq!(m.nearest_vertex_index(p(-5.0, -5.0)), Some(0));
    }
}
