//! Bowyer–Watson Delaunay triangulation.

use crate::{MeshError, TriMesh};
use anr_geom::{in_circle, orient2d, Aabb, Point};

/// Computes the Delaunay triangulation of a point set.
///
/// Incremental Bowyer–Watson with a super-triangle: each point is
/// inserted by removing every triangle whose circumcircle contains it and
/// re-triangulating the resulting cavity.
///
/// The output indices match the input point order. Near-duplicate points
/// (closer than `1e-9` times the bounding-box diagonal) are rejected via
/// [`MeshError::DegenerateTriangle`]-free construction — they simply
/// produce slivers that are filtered; callers should deduplicate inputs.
///
/// # Errors
///
/// * [`MeshError::TooFewPoints`] for fewer than 3 points.
/// * [`MeshError::AllCollinear`] when no triangle can be formed.
///
/// # Example
///
/// ```
/// use anr_geom::Point;
/// use anr_mesh::delaunay;
///
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(0.0, 1.0),
///     Point::new(1.0, 1.0),
/// ];
/// let mesh = delaunay(&pts)?;
/// assert_eq!(mesh.num_triangles(), 2);
/// # Ok::<(), anr_mesh::MeshError>(())
/// ```
pub fn delaunay(points: &[Point]) -> Result<TriMesh, MeshError> {
    if points.len() < 3 {
        return Err(MeshError::TooFewPoints { got: points.len() });
    }

    let Some(bb) = Aabb::from_points(points.iter().copied()) else {
        return Err(MeshError::TooFewPoints { got: 0 });
    };
    let span = bb.diagonal().max(1.0);
    let center = bb.center();

    // Super-triangle large enough to strictly contain every point.
    let m = 20.0 * span;
    let s0 = Point::new(center.x - 2.0 * m, center.y - m);
    let s1 = Point::new(center.x + 2.0 * m, center.y - m);
    let s2 = Point::new(center.x, center.y + 2.0 * m);

    let n = points.len();
    let mut verts: Vec<Point> = points.to_vec();
    verts.push(s0); // index n
    verts.push(s1); // index n + 1
    verts.push(s2); // index n + 2

    // Active triangle list, with each triangle's circumcircle cached in
    // struct-of-arrays form. The cached circle is only a *prefilter*: a
    // triangle whose circle (with a generous relative slack) excludes the
    // query point cannot pass the exact guarded in_circle test below, so
    // skipping it never changes the bad set — the expensive determinant
    // runs only for the handful of candidates near the cavity.
    let mut tris: Vec<[usize; 3]> = vec![[n, n + 1, n + 2]];
    let mut alive: Vec<bool> = vec![true];
    let (c0x, c0y, c0r) = circumcircle(s0, s1, s2);
    let mut ccx: Vec<f64> = vec![c0x];
    let mut ccy: Vec<f64> = vec![c0y];
    let mut cr2: Vec<f64> = vec![c0r];
    let mut dead = 0usize;

    for pi in 0..n {
        let p = verts[pi];

        // Find all "bad" triangles whose circumcircle contains p.
        let mut bad: Vec<usize> = Vec::new();
        for ti in 0..tris.len() {
            if !alive[ti] {
                continue;
            }
            let dx = p.x - ccx[ti];
            let dy = p.y - ccy[ti];
            let d2 = dx * dx + dy * dy;
            let r2 = cr2[ti];
            // Conservative reject: slack is ~1e10× the worst rounding
            // error of the cached center (degenerate triangles cache an
            // infinite radius and always fall through to the exact test).
            if d2 > r2 + 1e-6 * (d2 + r2) {
                continue;
            }
            let t = tris[ti];
            let (a, b, c) = (verts[t[0]], verts[t[1]], verts[t[2]]);
            // Triangles are maintained CCW, required by in_circle's sign.
            // The guard is relative to the determinant's length⁴ scale so
            // cocircular quadruples classify consistently as "not inside"
            // instead of flipping sign with rounding noise.
            let scale = {
                let s = (a.distance_sq(p) + b.distance_sq(p) + c.distance_sq(p)) / 3.0;
                s * s
            };
            if in_circle(a, b, c, p) > 1e-12 * scale {
                bad.push(ti);
            }
        }

        // Boundary of the cavity: edges of bad triangles not shared by
        // two bad triangles.
        let mut edge_count: std::collections::BTreeMap<(usize, usize), (usize, usize, i32)> =
            std::collections::BTreeMap::new();
        for &ti in &bad {
            let t = tris[ti];
            for k in 0..3 {
                let a = t[k];
                let b = t[(k + 1) % 3];
                let key = (a.min(b), a.max(b));
                edge_count
                    .entry(key)
                    .and_modify(|e| e.2 += 1)
                    .or_insert((a, b, 1));
            }
        }

        for &ti in &bad {
            alive[ti] = false;
        }

        let mut hull: Vec<(usize, usize)> = edge_count
            .values()
            .filter(|&&(_, _, cnt)| cnt == 1)
            .map(|&(a, b, _)| (a, b))
            .collect();
        // Deterministic insertion order.
        hull.sort_unstable();

        for (a, b) in hull {
            // Orient the new triangle CCW.
            let (va, vb) = (verts[a], verts[b]);
            let t = if orient2d(va, vb, p) > 0.0 {
                [a, b, pi]
            } else {
                [b, a, pi]
            };
            // Skip degenerate (collinear) triangles.
            if orient2d(verts[t[0]], verts[t[1]], verts[t[2]]) <= 0.0 {
                continue;
            }
            let (cx, cy, r2) = circumcircle(verts[t[0]], verts[t[1]], verts[t[2]]);
            tris.push(t);
            alive.push(true);
            ccx.push(cx);
            ccy.push(cy);
            cr2.push(r2);
        }

        // Compact dead slots once they dominate, preserving relative
        // order so the final triangle list (and thus the output mesh) is
        // identical to the never-compacted scan.
        dead += bad.len();
        if dead * 2 > tris.len() && tris.len() > 64 {
            let mut w = 0usize;
            for r in 0..tris.len() {
                if alive[r] {
                    tris[w] = tris[r];
                    ccx[w] = ccx[r];
                    ccy[w] = ccy[r];
                    cr2[w] = cr2[r];
                    w += 1;
                }
            }
            tris.truncate(w);
            ccx.truncate(w);
            ccy.truncate(w);
            cr2.truncate(w);
            alive.truncate(w);
            alive.fill(true);
            dead = 0;
        }
    }

    // Drop triangles touching the super-triangle.
    let final_tris: Vec<[usize; 3]> = tris
        .into_iter()
        .zip(alive)
        .filter(|(t, a)| *a && t.iter().all(|&v| v < n))
        .map(|(t, _)| t)
        .collect();

    if final_tris.is_empty() {
        return Err(MeshError::AllCollinear);
    }

    verts.truncate(n);
    TriMesh::new(verts, final_tris)
}

/// Circumcircle of triangle `abc` as `(center_x, center_y, radius²)`.
///
/// Near-collinear triangles (twice-area below `1e-8` of the longest
/// squared edge, where the division would amplify rounding into the
/// cached center) return an infinite radius, which makes the caller's
/// prefilter pass-through — the exact in_circle test then decides.
fn circumcircle(a: Point, b: Point, c: Point) -> (f64, f64, f64) {
    let bx = b.x - a.x;
    let by = b.y - a.y;
    let cx = c.x - a.x;
    let cy = c.y - a.y;
    let d = 2.0 * (bx * cy - by * cx);
    let b2 = bx * bx + by * by;
    let c2 = cx * cx + cy * cy;
    let ex = bx - cx;
    let ey = by - cy;
    let l2max = b2.max(c2).max(ex * ex + ey * ey);
    if d.abs() <= 1e-8 * l2max {
        return (a.x, a.y, f64::INFINITY);
    }
    let ux = (cy * b2 - by * c2) / d;
    let uy = (bx * c2 - cx * b2) / d;
    (a.x + ux, a.y + uy, ux * ux + uy * uy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn too_few_points() {
        assert!(matches!(
            delaunay(&[p(0.0, 0.0), p(1.0, 0.0)]),
            Err(MeshError::TooFewPoints { got: 2 })
        ));
    }

    #[test]
    fn collinear_points_error() {
        let pts: Vec<Point> = (0..5).map(|i| p(i as f64, 2.0 * i as f64)).collect();
        assert!(matches!(delaunay(&pts), Err(MeshError::AllCollinear)));
    }

    #[test]
    fn triangle_of_three_points() {
        let m = delaunay(&[p(0.0, 0.0), p(4.0, 0.0), p(0.0, 3.0)]).unwrap();
        assert_eq!(m.num_triangles(), 1);
        assert_eq!(m.num_vertices(), 3);
        assert!((m.total_area() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn square_has_two_triangles() {
        let m = delaunay(&[p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)]).unwrap();
        assert_eq!(m.num_triangles(), 2);
        assert!((m.total_area() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn delaunay_prefers_short_diagonal() {
        // Quadrilateral where one diagonal choice violates the empty-
        // circle property: the Delaunay result must use the short one.
        let pts = vec![p(0.0, 0.0), p(10.0, 0.0), p(10.0, 1.0), p(0.0, 1.0)];
        let m = delaunay(&pts).unwrap();
        // The shared edge must be a diagonal (0-2 or 1-3), both have the
        // same length here; check total area is exact instead and that
        // the empty-circle property holds.
        assert!((m.total_area() - 10.0).abs() < 1e-9);
        assert_empty_circle(&m);
    }

    fn assert_empty_circle(m: &TriMesh) {
        for t in 0..m.num_triangles() {
            let [a, b, c] = m.triangles()[t];
            let (pa, pb, pc) = (m.vertex(a), m.vertex(b), m.vertex(c));
            for v in 0..m.num_vertices() {
                if v == a || v == b || v == c {
                    continue;
                }
                let val = in_circle(pa, pb, pc, m.vertex(v));
                // Allow tiny positive values from floating-point noise on
                // cocircular configurations.
                let scale = (pa.distance(pb) * pb.distance(pc) * pc.distance(pa))
                    .powi(2)
                    .max(1.0);
                assert!(
                    val <= 1e-6 * scale,
                    "vertex {v} inside circumcircle of triangle {t} (val {val})"
                );
            }
        }
    }

    #[test]
    fn empty_circle_property_random_cloud() {
        // Deterministic pseudo-random points via an LCG.
        let mut seed: u64 = 42;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        let pts: Vec<Point> = (0..60).map(|_| p(next() * 100.0, next() * 100.0)).collect();
        let m = delaunay(&pts).unwrap();
        assert_eq!(m.num_vertices(), 60);
        assert_empty_circle(&m);
        // Convex-hull area check: triangulation covers the hull.
        assert!(m.total_area() > 0.0);
        assert_eq!(m.boundary_loops().len(), 1);
        assert_eq!(m.euler_characteristic(), 1);
    }

    #[test]
    fn grid_points_triangulate_fully() {
        // Structured grids are the worst case for cocircular quadruples;
        // the triangulation must still tile the full square.
        let mut pts = Vec::new();
        for j in 0..6 {
            for i in 0..6 {
                pts.push(p(i as f64, j as f64));
            }
        }
        let m = delaunay(&pts).unwrap();
        assert!((m.total_area() - 25.0).abs() < 1e-6);
        assert_eq!(m.num_triangles(), 50);
        assert_eq!(m.euler_characteristic(), 1);
    }

    #[test]
    fn output_indices_match_input_order() {
        let pts = vec![p(0.0, 0.0), p(2.0, 0.0), p(1.0, 2.0), p(1.0, 0.7)];
        let m = delaunay(&pts).unwrap();
        for (i, q) in pts.iter().enumerate() {
            assert_eq!(m.vertex(i), *q);
        }
    }
}
