//! Meshing a field of interest (FoI).
//!
//! Implements the paper's "grid and triangulate the surface data of M2"
//! step (Sec. III-B): resample the outer boundary and hole boundaries,
//! sprinkle interior grid points, Delaunay-triangulate, and keep the
//! triangles inside the region.

use crate::{delaunay, MeshError, TriMesh};
use anr_geom::{Point, PolygonWithHoles};

/// A meshed field of interest: the triangulation plus its boundary
/// structure and the region it discretizes.
#[derive(Debug, Clone)]
pub struct FoiMesh {
    mesh: TriMesh,
    region: PolygonWithHoles,
    outer_loop: Vec<usize>,
    hole_loops: Vec<Vec<usize>>,
}

impl FoiMesh {
    /// The triangle mesh.
    #[inline]
    pub fn mesh(&self) -> &TriMesh {
        &self.mesh
    }

    /// The region this mesh discretizes.
    #[inline]
    pub fn region(&self) -> &PolygonWithHoles {
        &self.region
    }

    /// Vertex indices of the outer boundary loop, in cyclic order.
    #[inline]
    pub fn outer_loop(&self) -> &[usize] {
        &self.outer_loop
    }

    /// Vertex indices of each hole boundary loop.
    #[inline]
    pub fn hole_loops(&self) -> &[Vec<usize>] {
        &self.hole_loops
    }

    /// Consumes the FoI mesh, returning the raw triangle mesh.
    pub fn into_mesh(self) -> TriMesh {
        self.mesh
    }
}

/// Configurable FoI mesher.
///
/// `spacing` controls both the boundary resampling step and the interior
/// grid pitch; the resulting triangles have edges of roughly that length.
///
/// ```
/// use anr_geom::{Point, Polygon, PolygonWithHoles};
/// use anr_mesh::FoiMesher;
///
/// let outer = Polygon::rectangle(Point::ORIGIN, 100.0, 100.0);
/// let hole = Polygon::rectangle(Point::new(40.0, 40.0), 20.0, 20.0);
/// let foi = PolygonWithHoles::new(outer, vec![hole]).unwrap();
/// let meshed = FoiMesher::new(8.0).mesh(&foi)?;
/// assert_eq!(meshed.hole_loops().len(), 1);
/// # Ok::<(), anr_mesh::MeshError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FoiMesher {
    spacing: f64,
    min_boundary_points: usize,
    jitter: f64,
    check_topology: bool,
}

impl FoiMesher {
    /// Creates a mesher with the given grid spacing.
    ///
    /// # Panics
    ///
    /// Panics when `spacing <= 0`.
    pub fn new(spacing: f64) -> Self {
        assert!(spacing > 0.0, "spacing must be positive");
        FoiMesher {
            spacing,
            min_boundary_points: 16,
            jitter: 1e-3,
            check_topology: true,
        }
    }

    /// Minimum number of points on the outer boundary (default 16).
    pub fn min_boundary_points(&mut self, n: usize) -> &mut Self {
        self.min_boundary_points = n.max(3);
        self
    }

    /// Relative jitter applied to interior grid points to break
    /// cocircular degeneracies (default `1e-3`, as a fraction of the
    /// spacing). Set to 0 to disable.
    pub fn jitter(&mut self, j: f64) -> &mut Self {
        self.jitter = j.max(0.0);
        self
    }

    /// Whether to verify that the mesh boundary-loop count matches the
    /// region's hole count (default true).
    pub fn check_topology(&mut self, check: bool) -> &mut Self {
        self.check_topology = check;
        self
    }

    /// Meshes the region.
    ///
    /// # Errors
    ///
    /// * [`MeshError::EmptyMesh`] — spacing too coarse for the region.
    /// * [`MeshError::TopologyMismatch`] — the triangulation's boundary
    ///   structure does not match the region (usually the spacing is too
    ///   coarse to resolve a hole or a neck).
    /// * Any error from the underlying Delaunay step.
    pub fn mesh(&self, region: &PolygonWithHoles) -> Result<FoiMesh, MeshError> {
        let mut points: Vec<Point> = Vec::new();

        // Boundary samples are jittered tangentially-agnostically by the
        // same magnitude as grid points: exactly collinear runs along
        // polygon edges are a worst case for the incremental Delaunay
        // cavity and the offset is far below the mesh resolution.
        let bjit = self.jitter * self.spacing * 0.1;
        let mut bk = 0xB0D5u64;

        // Outer boundary samples.
        for p in region
            .outer()
            .resample_boundary(self.spacing, self.min_boundary_points)
        {
            bk += 1;
            points.push(if bjit > 0.0 { jittered(p, bk, bjit) } else { p });
        }

        // Hole boundary samples.
        for h in region.holes() {
            for p in h.resample_boundary(self.spacing, 8.max(self.min_boundary_points / 2)) {
                bk += 1;
                points.push(if bjit > 0.0 { jittered(p, bk, bjit) } else { p });
            }
        }

        let n_boundary = points.len();

        // Interior grid, inset from all boundaries to avoid slivers.
        let inset = 0.45 * self.spacing;
        let mut k = 0u64;
        for p in region.grid_points(self.spacing) {
            k += 1;
            if region.distance_to_boundary(p) <= inset {
                continue;
            }
            let q = if self.jitter > 0.0 {
                jittered(p, k, self.jitter * self.spacing)
            } else {
                p
            };
            points.push(q);
        }

        if points.len() < 3 {
            return Err(MeshError::EmptyMesh);
        }

        let dt = delaunay(&points)?;

        // Keep triangles whose centroid lies in the region. Because the
        // boundary is sampled at the same pitch as the interior grid,
        // centroid-inside is a faithful inside test at this resolution.
        let mut keep: Vec<[usize; 3]> = Vec::new();
        for (ti, t) in dt.triangles().iter().enumerate() {
            let tri = dt.triangle(ti);
            let c = tri.centroid();
            if !region.contains(c) || region.in_hole(c) {
                continue;
            }
            // Reject slivers spanning a concave notch of the *outer*
            // boundary: probe points between the centroid and each
            // corner. Probes are strictly interior to the triangle, so
            // chords that legitimately cut hole-polygon corners by a
            // sagitta of O(spacing²) are not rejected.
            let probes = [c.midpoint(tri.a), c.midpoint(tri.b), c.midpoint(tri.c)];
            if probes.iter().any(|&m| !region.outer().contains(m)) {
                continue;
            }
            keep.push(*t);
        }

        if keep.is_empty() {
            return Err(MeshError::EmptyMesh);
        }

        // Compact vertex indices: drop unused points.
        let mut remap: Vec<Option<usize>> = vec![None; points.len()];
        let mut verts: Vec<Point> = Vec::new();
        let mut tris: Vec<[usize; 3]> = Vec::with_capacity(keep.len());
        for t in keep {
            let mut nt = [0usize; 3];
            for (k, &v) in t.iter().enumerate() {
                nt[k] = *remap[v].get_or_insert_with(|| {
                    verts.push(points[v]);
                    verts.len() - 1
                });
            }
            tris.push(nt);
        }
        let _ = n_boundary;

        let mesh = TriMesh::new(verts, tris)?;
        let loops = mesh.boundary_loops();

        if self.check_topology {
            let expected = 1 + region.holes().len();
            if loops.len() != expected {
                return Err(MeshError::TopologyMismatch {
                    expected_loops: expected,
                    got_loops: loops.len(),
                });
            }
        }

        let mut it = loops.into_iter();
        let outer_loop = it.next().ok_or(MeshError::EmptyMesh)?;
        let hole_loops: Vec<Vec<usize>> = it.collect();

        Ok(FoiMesh {
            mesh,
            region: region.clone(),
            outer_loop,
            hole_loops,
        })
    }
}

/// Deterministic per-index jitter in `[-mag, mag]²` (splitmix64 hash).
fn jittered(p: Point, index: u64, mag: f64) -> Point {
    let h = |x: u64| -> u64 {
        let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let ux = (h(index) >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    let uy = (h(index.wrapping_add(0x1234_5678)) >> 11) as f64 / (1u64 << 53) as f64;
    Point::new(p.x + (2.0 * ux - 1.0) * mag, p.y + (2.0 * uy - 1.0) * mag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anr_geom::Polygon;

    fn square_region(side: f64) -> PolygonWithHoles {
        PolygonWithHoles::without_holes(Polygon::rectangle(Point::ORIGIN, side, side))
    }

    #[test]
    fn meshes_a_square() {
        let foi = square_region(100.0);
        let m = FoiMesher::new(10.0).mesh(&foi).unwrap();
        assert!(m.mesh().num_triangles() > 50);
        assert_eq!(m.hole_loops().len(), 0);
        assert_eq!(m.mesh().euler_characteristic(), 1);
        // Mesh area approximates region area.
        let err = (m.mesh().total_area() - foi.area()).abs() / foi.area();
        assert!(err < 0.05, "area error {err}");
    }

    #[test]
    fn meshes_a_square_with_hole() {
        let outer = Polygon::rectangle(Point::ORIGIN, 100.0, 100.0);
        let hole = Polygon::rectangle(Point::new(35.0, 35.0), 30.0, 30.0);
        let foi = PolygonWithHoles::new(outer, vec![hole]).unwrap();
        let m = FoiMesher::new(8.0).mesh(&foi).unwrap();
        assert_eq!(m.hole_loops().len(), 1);
        assert_eq!(m.mesh().euler_characteristic(), 0);
        let err = (m.mesh().total_area() - foi.area()).abs() / foi.area();
        assert!(err < 0.08, "area error {err}");
    }

    #[test]
    fn meshes_multiple_holes() {
        let outer = Polygon::rectangle(Point::ORIGIN, 120.0, 120.0);
        let h1 = Polygon::regular(Point::new(30.0, 30.0), 12.0, 12);
        let h2 = Polygon::regular(Point::new(85.0, 80.0), 15.0, 12);
        let foi = PolygonWithHoles::new(outer, vec![h1, h2]).unwrap();
        let m = FoiMesher::new(7.0).mesh(&foi).unwrap();
        assert_eq!(m.hole_loops().len(), 2);
        assert_eq!(m.mesh().euler_characteristic(), -1);
    }

    #[test]
    fn meshes_concave_region() {
        // L-shaped region.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 40.0),
            Point::new(40.0, 40.0),
            Point::new(40.0, 100.0),
            Point::new(0.0, 100.0),
        ])
        .unwrap();
        let foi = PolygonWithHoles::without_holes(l);
        let m = FoiMesher::new(6.0).mesh(&foi).unwrap();
        assert_eq!(m.hole_loops().len(), 0);
        // No triangle centroid in the notch.
        for t in 0..m.mesh().num_triangles() {
            let c = m.mesh().triangle(t).centroid();
            assert!(foi.contains(c));
        }
    }

    #[test]
    fn too_coarse_spacing_errors() {
        let foi = square_region(1.0);
        // spacing way larger than the region but boundary sampling still
        // produces a ring of points; the mesher should either succeed
        // with a tiny mesh or report a topology/empty error, never panic.
        let r = FoiMesher::new(50.0).mesh(&foi);
        match r {
            Ok(m) => assert!(m.mesh().num_triangles() > 0),
            Err(MeshError::EmptyMesh) | Err(MeshError::TopologyMismatch { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn outer_loop_vertices_are_on_outer_boundary() {
        let foi = square_region(50.0);
        let m = FoiMesher::new(5.0).mesh(&foi).unwrap();
        for &v in m.outer_loop() {
            let d = foi.outer().distance_to_boundary(m.mesh().vertex(v));
            assert!(d < 1.0, "outer-loop vertex {v} is {d} from boundary");
        }
    }

    #[test]
    fn hole_loop_vertices_are_on_hole_boundary() {
        let outer = Polygon::rectangle(Point::ORIGIN, 100.0, 100.0);
        let hole = Polygon::regular(Point::new(50.0, 50.0), 18.0, 16);
        let foi = PolygonWithHoles::new(outer, vec![hole.clone()]).unwrap();
        let m = FoiMesher::new(7.0).mesh(&foi).unwrap();
        assert_eq!(m.hole_loops().len(), 1);
        for &v in &m.hole_loops()[0] {
            let d = hole.distance_to_boundary(m.mesh().vertex(v));
            assert!(d < 1.5, "hole-loop vertex {v} is {d} from hole boundary");
        }
    }

    #[test]
    fn jitter_zero_still_meshes_grid() {
        let foi = square_region(40.0);
        let m = FoiMesher::new(5.0).jitter(0.0).mesh(&foi).unwrap();
        assert!(m.mesh().num_triangles() > 0);
    }

    #[test]
    fn mesh_vertices_inside_region() {
        let outer = Polygon::rectangle(Point::ORIGIN, 80.0, 60.0);
        let hole = Polygon::rectangle(Point::new(30.0, 20.0), 20.0, 20.0);
        let foi = PolygonWithHoles::new(outer, vec![hole]).unwrap();
        let m = FoiMesher::new(6.0).mesh(&foi).unwrap();
        for v in m.mesh().vertices() {
            assert!(
                foi.contains(*v) || foi.distance_to_boundary(*v) < 0.1,
                "vertex {v} outside region"
            );
        }
    }
}
