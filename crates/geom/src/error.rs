//! Error type for geometry construction.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or validating geometric objects.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeomError {
    /// A polygon needs at least three vertices.
    TooFewVertices {
        /// Number of vertices supplied.
        got: usize,
    },
    /// The polygon's signed area is numerically zero.
    DegeneratePolygon,
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate,
    /// A hole is not strictly inside the outer boundary.
    HoleOutsideBoundary {
        /// Index of the offending hole.
        hole: usize,
    },
    /// Two holes (or a hole and the outer boundary) overlap.
    OverlappingHoles {
        /// Indices of the offending holes (`usize::MAX` = outer boundary).
        first: usize,
        /// See `first`.
        second: usize,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::TooFewVertices { got } => {
                write!(f, "polygon needs at least 3 vertices, got {got}")
            }
            GeomError::DegeneratePolygon => write!(f, "polygon has (near) zero area"),
            GeomError::NonFiniteCoordinate => write!(f, "coordinate is NaN or infinite"),
            GeomError::HoleOutsideBoundary { hole } => {
                write!(f, "hole {hole} is not inside the outer boundary")
            }
            GeomError::OverlappingHoles { first, second } => {
                write!(f, "holes {first} and {second} overlap")
            }
        }
    }
}

impl Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errs = [
            GeomError::TooFewVertices { got: 2 },
            GeomError::DegeneratePolygon,
            GeomError::NonFiniteCoordinate,
            GeomError::HoleOutsideBoundary { hole: 0 },
            GeomError::OverlappingHoles {
                first: 0,
                second: 1,
            },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeomError>();
    }
}
