//! Angles and rotations about a center point.
//!
//! The modified harmonic map (Sec. III-B) overlays two unit disks and
//! searches for the rotation angle of one disk that maximises the stable
//! link ratio; [`Rotation`] is that disk rotation.

use crate::Point;
use std::f64::consts::TAU;

/// Normalizes an angle to `[0, 2π)`.
///
/// ```
/// use anr_geom::normalize_angle;
/// use std::f64::consts::{PI, TAU};
/// assert!((normalize_angle(-PI) - PI).abs() < 1e-12);
/// assert!(normalize_angle(TAU) < 1e-12);
/// ```
pub fn normalize_angle(theta: f64) -> f64 {
    let r = theta.rem_euclid(TAU);
    if r == TAU {
        0.0
    } else {
        r
    }
}

/// Rotates point `p` by `theta` radians (counter-clockwise) about `center`.
pub fn rotate_point(p: Point, center: Point, theta: f64) -> Point {
    let (s, c) = theta.sin_cos();
    let v = p - center;
    Point::new(center.x + c * v.x - s * v.y, center.y + s * v.x + c * v.y)
}

/// A rotation about a fixed center, precomputing `sin`/`cos`.
///
/// ```
/// use anr_geom::{Point, Rotation};
/// use std::f64::consts::FRAC_PI_2;
/// let r = Rotation::about(Point::ORIGIN, FRAC_PI_2);
/// let q = r.apply(Point::new(1.0, 0.0));
/// assert!(q.distance(Point::new(0.0, 1.0)) < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rotation {
    center: Point,
    angle: f64,
    sin: f64,
    cos: f64,
}

impl Rotation {
    /// Creates a rotation by `angle` radians about `center`.
    pub fn about(center: Point, angle: f64) -> Self {
        let (sin, cos) = angle.sin_cos();
        Rotation {
            center,
            angle,
            sin,
            cos,
        }
    }

    /// The identity rotation about the origin.
    pub fn identity() -> Self {
        Rotation::about(Point::ORIGIN, 0.0)
    }

    /// The rotation angle in radians.
    #[inline]
    pub fn angle(&self) -> f64 {
        self.angle
    }

    /// The rotation center.
    #[inline]
    pub fn center(&self) -> Point {
        self.center
    }

    /// Applies the rotation to a point.
    #[inline]
    pub fn apply(&self, p: Point) -> Point {
        let v = p - self.center;
        Point::new(
            self.center.x + self.cos * v.x - self.sin * v.y,
            self.center.y + self.sin * v.x + self.cos * v.y,
        )
    }

    /// The inverse rotation (same center, negated angle).
    pub fn inverse(&self) -> Rotation {
        Rotation::about(self.center, -self.angle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    #[test]
    fn normalize_into_range() {
        for theta in [-10.0, -PI, 0.0, 1.0, PI, TAU, 17.5] {
            let n = normalize_angle(theta);
            assert!((0.0..TAU).contains(&n), "{theta} -> {n}");
        }
    }

    #[test]
    fn normalize_preserves_direction() {
        let a = normalize_angle(-FRAC_PI_2);
        assert!((a - 3.0 * FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn rotate_quarter_turn() {
        let q = rotate_point(Point::new(1.0, 0.0), Point::ORIGIN, FRAC_PI_2);
        assert!(q.distance(Point::new(0.0, 1.0)) < 1e-12);
    }

    #[test]
    fn rotate_about_noncentral_point() {
        let q = rotate_point(Point::new(2.0, 1.0), Point::new(1.0, 1.0), PI);
        assert!(q.distance(Point::new(0.0, 1.0)) < 1e-12);
    }

    #[test]
    fn rotation_struct_matches_free_function() {
        let r = Rotation::about(Point::new(0.5, -0.5), 1.234);
        let p = Point::new(3.0, 4.0);
        assert!(r.apply(p).distance(rotate_point(p, r.center(), r.angle())) < 1e-12);
    }

    #[test]
    fn rotation_inverse_roundtrips() {
        let r = Rotation::about(Point::new(1.0, 2.0), 0.7);
        let p = Point::new(-3.0, 5.0);
        assert!(r.inverse().apply(r.apply(p)).distance(p) < 1e-12);
    }

    #[test]
    fn identity_rotation_fixes_points() {
        let p = Point::new(9.0, -9.0);
        assert_eq!(Rotation::identity().apply(p), p);
    }

    #[test]
    fn rotation_preserves_distance_to_center() {
        let c = Point::new(2.0, 2.0);
        let r = Rotation::about(c, 2.1);
        let p = Point::new(5.0, 6.0);
        assert!((r.apply(p).distance(c) - p.distance(c)).abs() < 1e-12);
    }
}
