//! # anr-geom — planar geometry substrate
//!
//! Geometry primitives used throughout the optimal-marching reproduction
//! (ICDCS 2016): points and vectors, orientation / in-circle predicates,
//! segments, simple polygons and polygons with holes, barycentric
//! coordinates, axis-aligned boxes and angles.
//!
//! Everything is `f64`-based, dependency-free and deterministic. The
//! predicates are not exact-arithmetic predicates; they use a relative
//! epsilon that is far below the coordinate noise of the simulated
//! deployments (metres-scale fields, robots tens of metres apart), which
//! is the regime this library targets.
//!
//! ## Example
//!
//! ```
//! use anr_geom::{Point, Polygon};
//!
//! let square = Polygon::new(vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(10.0, 0.0),
//!     Point::new(10.0, 10.0),
//!     Point::new(0.0, 10.0),
//! ]).unwrap();
//! assert!(square.contains(Point::new(5.0, 5.0)));
//! assert_eq!(square.area(), 100.0);
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

mod angle;
mod barycentric;
mod bbox;
mod error;
mod hull;
mod nearest;
mod point;
mod polygon;
mod polygon_holes;
mod predicates;
mod segment;

pub use angle::{normalize_angle, rotate_point, Rotation};
pub use barycentric::{barycentric_coords, barycentric_interpolate, Triangle};
pub use bbox::Aabb;
pub use error::GeomError;
pub use hull::convex_hull;
pub use nearest::NearestGrid;
pub use point::{Point, Vector};
pub use polygon::Polygon;
pub use polygon_holes::PolygonWithHoles;
pub use predicates::{circumcenter, in_circle, orient2d, orientation, Orientation};
pub use segment::Segment;

/// Relative epsilon used by the non-exact predicates.
///
/// Chosen so that fields spanning ~1000 m with robots tens of metres apart
/// are handled robustly while still flagging genuinely degenerate input.
pub(crate) const EPS: f64 = 1e-9;
