//! Triangles and barycentric coordinates (paper Appendix A).
//!
//! The harmonic-map composition step (Sec. III-B, Eqn. 1) interpolates a
//! robot's target position from the three grid points surrounding it in
//! the overlapped unit disks; that interpolation is exactly
//! [`barycentric_interpolate`].

use crate::{orient2d, Point, EPS};

/// A triangle given by its three corner points.
///
/// ```
/// use anr_geom::{Point, Triangle};
/// let t = Triangle::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(0.0, 2.0));
/// assert_eq!(t.area(), 2.0);
/// assert!(t.contains(Point::new(0.5, 0.5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First corner.
    pub a: Point,
    /// Second corner.
    pub b: Point,
    /// Third corner.
    pub c: Point,
}

impl Triangle {
    /// Creates a triangle from its corners.
    #[inline]
    pub const fn new(a: Point, b: Point, c: Point) -> Self {
        Triangle { a, b, c }
    }

    /// Signed area: positive for counter-clockwise corners.
    #[inline]
    pub fn signed_area(&self) -> f64 {
        0.5 * orient2d(self.a, self.b, self.c)
    }

    /// Absolute area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Centroid (mean of the corners).
    #[inline]
    pub fn centroid(&self) -> Point {
        Point::new(
            (self.a.x + self.b.x + self.c.x) / 3.0,
            (self.a.y + self.b.y + self.c.y) / 3.0,
        )
    }

    /// Is the triangle numerically degenerate (near-zero area)?
    pub fn is_degenerate(&self) -> bool {
        let scale = (self.b - self.a).norm() * (self.c - self.a).norm();
        self.area() * 2.0 <= EPS * scale.max(f64::MIN_POSITIVE)
    }

    /// Does the triangle contain `p` (boundary inclusive)?
    ///
    /// Works for either corner orientation.
    pub fn contains(&self, p: Point) -> bool {
        match barycentric_coords(self, p) {
            Some((t1, t2, t3)) => {
                let lo = -1e-9;
                t1 >= lo && t2 >= lo && t3 >= lo
            }
            None => false,
        }
    }

    /// Longest edge length.
    pub fn longest_edge(&self) -> f64 {
        self.a
            .distance(self.b)
            .max(self.b.distance(self.c))
            .max(self.c.distance(self.a))
    }

    /// Shortest edge length.
    pub fn shortest_edge(&self) -> f64 {
        self.a
            .distance(self.b)
            .min(self.b.distance(self.c))
            .min(self.c.distance(self.a))
    }
}

/// Barycentric coordinates `(t1, t2, t3)` of `p` with respect to `tri`.
///
/// `t1` weights corner `a`, `t2` corner `b`, `t3` corner `c`; they always
/// satisfy `t1 + t2 + t3 = 1`. All three are in `[0, 1]` exactly when `p`
/// lies inside the triangle.
///
/// Returns `None` when the triangle is degenerate.
///
/// ```
/// use anr_geom::{barycentric_coords, Point, Triangle};
/// let t = Triangle::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(0.0, 1.0));
/// let (t1, t2, t3) = barycentric_coords(&t, t.centroid()).unwrap();
/// assert!((t1 - 1.0 / 3.0).abs() < 1e-12);
/// assert!((t1 + t2 + t3 - 1.0).abs() < 1e-12);
/// # let _ = (t2, t3);
/// ```
pub fn barycentric_coords(tri: &Triangle, p: Point) -> Option<(f64, f64, f64)> {
    let denom = orient2d(tri.a, tri.b, tri.c);
    let scale = (tri.b - tri.a).norm() * (tri.c - tri.a).norm();
    if denom.abs() <= EPS * scale.max(f64::MIN_POSITIVE) {
        return None;
    }
    let t1 = orient2d(p, tri.b, tri.c) / denom;
    let t2 = orient2d(tri.a, p, tri.c) / denom;
    let t3 = 1.0 - t1 - t2;
    Some((t1, t2, t3))
}

/// Interpolates values attached to the triangle corners at point `p`
/// (paper Eqn. 1): `f(p) = t1·f(a) + t2·f(b) + t3·f(c)`.
///
/// The values interpolated here are themselves [`Point`]s — the original
/// geographic coordinates of grid points in the target field of interest.
///
/// Returns `None` when the triangle is degenerate.
pub fn barycentric_interpolate(
    tri: &Triangle,
    p: Point,
    fa: Point,
    fb: Point,
    fc: Point,
) -> Option<Point> {
    let (t1, t2, t3) = barycentric_coords(tri, p)?;
    Some(Point::new(
        t1 * fa.x + t2 * fb.x + t3 * fc.x,
        t1 * fa.y + t2 * fb.y + t3 * fc.y,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn tri() -> Triangle {
        Triangle::new(p(0.0, 0.0), p(4.0, 0.0), p(0.0, 4.0))
    }

    #[test]
    fn corner_coordinates_are_unit_vectors() {
        let t = tri();
        let (t1, t2, t3) = barycentric_coords(&t, t.a).unwrap();
        assert!((t1 - 1.0).abs() < 1e-12 && t2.abs() < 1e-12 && t3.abs() < 1e-12);
        let (t1, t2, _) = barycentric_coords(&t, t.b).unwrap();
        assert!(t1.abs() < 1e-12 && (t2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coords_sum_to_one_everywhere() {
        let t = tri();
        for q in [p(1.0, 1.0), p(-3.0, 7.0), p(10.0, 10.0)] {
            let (t1, t2, t3) = barycentric_coords(&t, q).unwrap();
            assert!((t1 + t2 + t3 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn outside_point_has_negative_coordinate() {
        let (t1, t2, t3) = barycentric_coords(&tri(), p(-1.0, -1.0)).unwrap();
        assert!(t1 < 0.0 || t2 < 0.0 || t3 < 0.0);
    }

    #[test]
    fn contains_matches_coords() {
        let t = tri();
        assert!(t.contains(p(1.0, 1.0)));
        assert!(t.contains(p(0.0, 0.0))); // corner
        assert!(t.contains(p(2.0, 0.0))); // edge
        assert!(!t.contains(p(3.0, 3.0)));
    }

    #[test]
    fn contains_works_for_clockwise_triangles() {
        let t = Triangle::new(p(0.0, 0.0), p(0.0, 4.0), p(4.0, 0.0)); // CW
        assert!(t.contains(p(1.0, 1.0)));
        assert!(!t.contains(p(5.0, 5.0)));
    }

    #[test]
    fn interpolation_reproduces_identity() {
        // Interpolating the corner positions themselves must return p.
        let t = tri();
        let q = p(1.0, 0.5);
        let r = barycentric_interpolate(&t, q, t.a, t.b, t.c).unwrap();
        assert!(r.distance(q) < 1e-12);
    }

    #[test]
    fn interpolation_is_affine() {
        // Interpolating an affine map's corner values equals applying the map.
        let t = tri();
        let f = |q: Point| p(2.0 * q.x - q.y + 1.0, 0.5 * q.x + 3.0 * q.y - 2.0);
        let q = p(1.3, 0.7);
        let r = barycentric_interpolate(&t, q, f(t.a), f(t.b), f(t.c)).unwrap();
        assert!(r.distance(f(q)) < 1e-9);
    }

    #[test]
    fn degenerate_triangle_returns_none() {
        let t = Triangle::new(p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0));
        assert!(t.is_degenerate());
        assert!(barycentric_coords(&t, p(0.5, 0.5)).is_none());
    }

    #[test]
    fn area_and_centroid() {
        let t = tri();
        assert_eq!(t.area(), 8.0);
        assert_eq!(t.signed_area(), 8.0);
        let c = t.centroid();
        assert!((c.x - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn edge_extremes() {
        let t = tri();
        assert!((t.longest_edge() - 32f64.sqrt()).abs() < 1e-12);
        assert_eq!(t.shortest_edge(), 4.0);
    }
}
