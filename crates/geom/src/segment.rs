//! Line segments: intersection tests and point–segment distance.

use crate::{orient2d, Point, Vector, EPS};

/// A closed line segment between two points.
///
/// ```
/// use anr_geom::{Point, Segment};
/// let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
/// assert_eq!(s.length(), 10.0);
/// assert_eq!(s.distance_to_point(Point::new(5.0, 3.0)), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from its endpoints.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Direction vector `b - a` (not normalized).
    #[inline]
    pub fn direction(self) -> Vector {
        self.b - self.a
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    #[inline]
    pub fn at(self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// The parameter `t` of the point on the (infinite) support line
    /// closest to `p`, clamped to `[0, 1]`.
    pub fn closest_param(self, p: Point) -> f64 {
        let d = self.direction();
        let len2 = d.norm_sq();
        if len2 <= f64::MIN_POSITIVE {
            return 0.0;
        }
        ((p - self.a).dot(d) / len2).clamp(0.0, 1.0)
    }

    /// The point on the segment closest to `p`.
    pub fn closest_point(self, p: Point) -> Point {
        self.at(self.closest_param(p))
    }

    /// Euclidean distance from `p` to the segment.
    pub fn distance_to_point(self, p: Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// Proper-or-touching intersection test between two segments.
    ///
    /// Returns `true` when the segments share at least one point,
    /// including endpoint touches and collinear overlap.
    pub fn intersects(self, other: Segment) -> bool {
        segments_intersect(self.a, self.b, other.a, other.b)
    }

    /// Intersection point of two segments if they cross at a single point.
    ///
    /// Returns `None` for disjoint segments and for collinear overlaps
    /// (which have no unique intersection point).
    pub fn intersection(self, other: Segment) -> Option<Point> {
        let r = self.direction();
        let s = other.direction();
        let denom = r.cross(s);
        let scale = r.norm() * s.norm();
        if denom.abs() <= EPS * scale.max(f64::MIN_POSITIVE) {
            return None; // parallel or collinear
        }
        let qp = other.a - self.a;
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        if (-EPS..=1.0 + EPS).contains(&t) && (-EPS..=1.0 + EPS).contains(&u) {
            Some(self.at(t.clamp(0.0, 1.0)))
        } else {
            None
        }
    }

    /// Does the *open* interior of this segment cross the other segment?
    ///
    /// Endpoint touches are not counted. Useful for planarity checks where
    /// shared vertices are legal.
    pub fn crosses_interior(self, other: Segment) -> bool {
        match self.intersection(other) {
            None => false,
            Some(x) => {
                let is_endpoint =
                    |p: Point| x.distance(p) <= EPS * (1.0 + self.length().max(other.length()));
                !(is_endpoint(self.a)
                    || is_endpoint(self.b)
                    || is_endpoint(other.a)
                    || is_endpoint(other.b))
            }
        }
    }
}

/// Returns `true` when segments `(p1, p2)` and `(p3, p4)` share a point.
pub(crate) fn segments_intersect(p1: Point, p2: Point, p3: Point, p4: Point) -> bool {
    let d1 = orient2d(p3, p4, p1);
    let d2 = orient2d(p3, p4, p2);
    let d3 = orient2d(p1, p2, p3);
    let d4 = orient2d(p1, p2, p4);

    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }

    let on_segment = |a: Point, b: Point, c: Point, d: f64| -> bool {
        d.abs() <= EPS * (b - a).norm().max(f64::MIN_POSITIVE) * (c - a).norm().max(1.0)
            && c.x >= a.x.min(b.x) - EPS
            && c.x <= a.x.max(b.x) + EPS
            && c.y >= a.y.min(b.y) - EPS
            && c.y <= a.y.max(b.y) + EPS
    };

    on_segment(p3, p4, p1, d1)
        || on_segment(p3, p4, p2, d2)
        || on_segment(p1, p2, p3, d3)
        || on_segment(p1, p2, p4, d4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn length_and_midpoint() {
        let s = Segment::new(p(0.0, 0.0), p(6.0, 8.0));
        assert_eq!(s.length(), 10.0);
        assert_eq!(s.midpoint(), p(3.0, 4.0));
    }

    #[test]
    fn closest_point_interior() {
        let s = Segment::new(p(0.0, 0.0), p(10.0, 0.0));
        assert_eq!(s.closest_point(p(4.0, 7.0)), p(4.0, 0.0));
    }

    #[test]
    fn closest_point_clamps_to_endpoints() {
        let s = Segment::new(p(0.0, 0.0), p(10.0, 0.0));
        assert_eq!(s.closest_point(p(-5.0, 2.0)), p(0.0, 0.0));
        assert_eq!(s.closest_point(p(15.0, 2.0)), p(10.0, 0.0));
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = Segment::new(p(0.0, 0.0), p(10.0, 10.0));
        let s2 = Segment::new(p(0.0, 10.0), p(10.0, 0.0));
        assert!(s1.intersects(s2));
        let x = s1.intersection(s2).unwrap();
        assert!((x.x - 5.0).abs() < 1e-9 && (x.y - 5.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_segments_do_not_intersect() {
        let s1 = Segment::new(p(0.0, 0.0), p(1.0, 0.0));
        let s2 = Segment::new(p(0.0, 1.0), p(1.0, 1.0));
        assert!(!s1.intersects(s2));
        assert!(s1.intersection(s2).is_none());
    }

    #[test]
    fn endpoint_touch_counts_as_intersection_but_not_interior_cross() {
        let s1 = Segment::new(p(0.0, 0.0), p(1.0, 0.0));
        let s2 = Segment::new(p(1.0, 0.0), p(2.0, 5.0));
        assert!(s1.intersects(s2));
        assert!(!s1.crosses_interior(s2));
    }

    #[test]
    fn interior_cross_detected() {
        let s1 = Segment::new(p(0.0, -1.0), p(0.0, 1.0));
        let s2 = Segment::new(p(-1.0, 0.0), p(1.0, 0.0));
        assert!(s1.crosses_interior(s2));
    }

    #[test]
    fn parallel_segments_have_no_unique_intersection() {
        let s1 = Segment::new(p(0.0, 0.0), p(10.0, 0.0));
        let s2 = Segment::new(p(0.0, 1.0), p(10.0, 1.0));
        assert!(s1.intersection(s2).is_none());
    }

    #[test]
    fn collinear_overlap_intersects() {
        let s1 = Segment::new(p(0.0, 0.0), p(5.0, 0.0));
        let s2 = Segment::new(p(3.0, 0.0), p(8.0, 0.0));
        assert!(s1.intersects(s2));
        // ... but there is no unique intersection point.
        assert!(s1.intersection(s2).is_none());
    }

    #[test]
    fn at_parameterization() {
        let s = Segment::new(p(0.0, 0.0), p(4.0, 0.0));
        assert_eq!(s.at(0.25), p(1.0, 0.0));
    }
}
