//! Exact nearest-point queries over a fixed point set.
//!
//! [`NearestGrid`] is a uniform bucket grid with an expanding Chebyshev
//! ring search. It answers the *same* query as the ascending brute-force
//! scan — index of the closest point, ties to the lowest index — and is
//! pinned bit-identical to that scan by tests here and at every call
//! site (Lloyd's sample assignment, the point-locator outside-mesh
//! fallback). Build cost is `O(n)`; queries are `O(1)` expected at
//! roughly uniform density.

use crate::Point;

/// Uniform bucket grid over a point set answering exact nearest-point
/// queries by expanding ring search.
///
/// Cell size is chosen so cells hold ~1 point on average; a query visits
/// Chebyshev rings around the query's (clamped) cell and stops as soon
/// as a ring's distance lower bound exceeds the best distance found. The
/// bound is non-strict-compared (a ring at exactly the best distance is
/// still visited), so an equidistant lower-index point can never be
/// missed and the result is bit-identical to the ascending brute-force
/// scan.
///
/// The grid stores only indices; callers pass the same slice the grid
/// was built over to each query.
///
/// ```
/// use anr_geom::{NearestGrid, Point};
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
/// let grid = NearestGrid::new(&pts);
/// assert_eq!(grid.nearest(&pts, Point::new(2.0, 1.0)), 0);
/// assert_eq!(grid.nearest(&pts, Point::new(9.0, -3.0)), 1);
/// // Exact tie: lowest index wins, as in a brute-force scan.
/// assert_eq!(grid.nearest(&pts, Point::new(5.0, 7.0)), 0);
/// ```
#[derive(Debug, Clone)]
pub struct NearestGrid {
    x0: f64,
    y0: f64,
    h: f64,
    nx: usize,
    ny: usize,
    /// CSR offsets into `order`, `nx * ny + 1` entries.
    starts: Vec<u32>,
    /// Point indices bucketed by cell, ascending within each cell.
    order: Vec<u32>,
}

impl NearestGrid {
    /// Builds the grid over `points`.
    ///
    /// An empty or fully coincident point set degenerates to a single
    /// cell; queries stay correct (and trivially cheap).
    pub fn new(points: &[Point]) -> Self {
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let w = (max_x - min_x).max(0.0);
        let ht = (max_y - min_y).max(0.0);
        // ~1 point per cell on average; degenerate (coincident) sets get
        // a single cell.
        let mut h = w.max(ht) / (points.len() as f64).sqrt();
        if !h.is_finite() || h <= 0.0 {
            h = 1.0;
        }
        let nx = ((w / h).ceil() as usize + 1).max(1);
        let ny = ((ht / h).ceil() as usize + 1).max(1);
        let cell_of = |p: &Point| -> usize {
            let cx = (((p.x - min_x) / h) as usize).min(nx - 1);
            let cy = (((p.y - min_y) / h) as usize).min(ny - 1);
            cy * nx + cx
        };
        let mut starts = vec![0u32; nx * ny + 1];
        for p in points {
            starts[cell_of(p) + 1] += 1;
        }
        for c in 1..starts.len() {
            starts[c] += starts[c - 1];
        }
        let mut cursor = starts.clone();
        let mut order = vec![0u32; points.len()];
        // Ascending point order keeps each bucket's list ascending.
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            order[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        NearestGrid {
            x0: min_x,
            y0: min_y,
            h,
            nx,
            ny,
            starts,
            order,
        }
    }

    /// Index of the point nearest to `q`; ties resolve to the lowest
    /// index, exactly as the ascending brute-force scan does.
    ///
    /// `points` must be the slice the grid was built over. Returns 0 for
    /// an empty set.
    pub fn nearest(&self, points: &[Point], q: Point) -> usize {
        let (nx, ny) = (self.nx as i64, self.ny as i64);
        // Grid cell nearest to the query (clamped: queries may fall
        // outside the point bounding box).
        let cx = (((q.x - self.x0) / self.h).floor() as i64).clamp(0, nx - 1);
        let cy = (((q.y - self.y0) / self.h).floor() as i64).clamp(0, ny - 1);
        // Distance from the query to its clamped cell's box: every grid
        // cell is at least this far (clamping picks the nearest boundary
        // cell), so it joins the per-ring lower bound below.
        let bx0 = self.x0 + cx as f64 * self.h;
        let by0 = self.y0 + cy as f64 * self.h;
        let dx = (bx0 - q.x).max(q.x - (bx0 + self.h)).max(0.0);
        let dy = (by0 - q.y).max(q.y - (by0 + self.h)).max(0.0);
        let d0_sq = dx * dx + dy * dy;
        // Rings past this cover no grid cell at all.
        let kmax = cx.max(nx - 1 - cx).max(cy).max(ny - 1 - cy);
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for k in 0..=kmax {
            // A ring-k cell is separated from the clamped cell by k-1
            // whole cells, and no cell is nearer than the clamped box.
            let ring = ((k - 1).max(0) as f64) * self.h;
            let lb = (ring * ring).max(d0_sq);
            if lb > best_d {
                break;
            }
            let mut visit = |a: i64, b: i64| {
                let c = b as usize * self.nx + a as usize;
                for &j in &self.order[self.starts[c] as usize..self.starts[c + 1] as usize] {
                    let j = j as usize;
                    let d = points[j].distance_sq(q);
                    if d < best_d || (d == best_d && j < best) {
                        best_d = d;
                        best = j;
                    }
                }
            };
            if k == 0 {
                visit(cx, cy);
                continue;
            }
            // Ring edges clipped to the grid, so empty space costs nothing.
            let a_lo = (cx - k).max(0);
            let a_hi = (cx + k).min(nx - 1);
            if cy - k >= 0 {
                for a in a_lo..=a_hi {
                    visit(a, cy - k);
                }
            }
            if cy + k < ny {
                for a in a_lo..=a_hi {
                    visit(a, cy + k);
                }
            }
            let b_lo = (cy - k + 1).max(0);
            let b_hi = (cy + k - 1).min(ny - 1);
            if cx - k >= 0 {
                for b in b_lo..=b_hi {
                    visit(cx - k, b);
                }
            }
            if cx + k < nx {
                for b in b_lo..=b_hi {
                    visit(cx + k, b);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(points: &[Point], q: Point) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, p) in points.iter().enumerate() {
            let d = p.distance_sq(q);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_random_sets() {
        // LCG point cloud with an exact duplicate and a far outlier, so
        // ties and empty-ring regions are both exercised.
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut pts: Vec<Point> = (0..300)
            .map(|_| Point::new(next() * 100.0, next() * 80.0))
            .collect();
        pts.push(pts[17]); // duplicate → exact tie
        pts.push(Point::new(5000.0, -5000.0)); // outlier → empty rings

        let grid = NearestGrid::new(&pts);
        for _ in 0..500 {
            let q = Point::new(next() * 140.0 - 20.0, next() * 120.0 - 20.0);
            assert_eq!(grid.nearest(&pts, q), brute(&pts, q), "query {q}");
        }
        // Queries at the points themselves (distance 0, tie on the
        // duplicate pair).
        for &q in &pts {
            assert_eq!(grid.nearest(&pts, q), brute(&pts, q));
        }
    }

    #[test]
    fn exact_tie_takes_lowest_index() {
        let pts = vec![Point::new(-3.0, 0.0), Point::new(3.0, 0.0)];
        let grid = NearestGrid::new(&pts);
        assert_eq!(grid.nearest(&pts, Point::new(0.0, 4.0)), 0);
    }

    #[test]
    fn coincident_points_degenerate_grid() {
        let pts = vec![Point::new(2.0, 2.0); 5];
        let grid = NearestGrid::new(&pts);
        assert_eq!(grid.nearest(&pts, Point::new(7.0, -1.0)), 0);
        assert_eq!(grid.nearest(&pts, Point::new(2.0, 2.0)), 0);
    }

    #[test]
    fn single_point() {
        let pts = vec![Point::new(1.0, 1.0)];
        let grid = NearestGrid::new(&pts);
        assert_eq!(grid.nearest(&pts, Point::new(-50.0, 9.0)), 0);
    }
}
