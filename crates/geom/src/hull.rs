//! Convex hulls (Andrew's monotone chain).

use crate::{orient2d, GeomError, Point, Polygon};

/// Computes the convex hull of a point set as a counter-clockwise
/// [`Polygon`] (Andrew's monotone chain, O(n log n)).
///
/// Collinear points on hull edges are dropped; the result's vertices are
/// the extreme points only.
///
/// # Errors
///
/// [`GeomError::TooFewVertices`] for fewer than 3 distinct points and
/// [`GeomError::DegeneratePolygon`] when all points are collinear.
///
/// # Example
///
/// ```
/// use anr_geom::{convex_hull, Point};
///
/// let hull = convex_hull(&[
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(4.0, 4.0),
///     Point::new(0.0, 4.0),
///     Point::new(2.0, 2.0), // interior: not a hull vertex
/// ])?;
/// assert_eq!(hull.len(), 4);
/// assert!(hull.contains(Point::new(2.0, 2.0)));
/// # Ok::<(), anr_geom::GeomError>(())
/// ```
pub fn convex_hull(points: &[Point]) -> Result<Polygon, GeomError> {
    let mut pts: Vec<Point> = points.to_vec();
    if pts.iter().any(|p| !p.is_finite()) {
        return Err(GeomError::NonFiniteCoordinate);
    }
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    pts.dedup_by(|a, b| a.distance(*b) < f64::MIN_POSITIVE);
    if pts.len() < 3 {
        return Err(GeomError::TooFewVertices { got: pts.len() });
    }

    let mut lower: Vec<Point> = Vec::with_capacity(pts.len());
    for &p in &pts {
        while lower.len() >= 2 && orient2d(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0.0
        {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<Point> = Vec::with_capacity(pts.len());
    for &p in pts.iter().rev() {
        while upper.len() >= 2 && orient2d(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0.0
        {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    Polygon::new(lower)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn square_with_interior_points() {
        let hull = convex_hull(&[
            p(0.0, 0.0),
            p(10.0, 0.0),
            p(10.0, 10.0),
            p(0.0, 10.0),
            p(5.0, 5.0),
            p(2.0, 7.0),
        ])
        .unwrap();
        assert_eq!(hull.len(), 4);
        assert!(hull.is_ccw());
        assert_eq!(hull.area(), 100.0);
    }

    #[test]
    fn collinear_points_rejected() {
        let r = convex_hull(&[p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0), p(3.0, 3.0)]);
        assert!(r.is_err());
    }

    #[test]
    fn duplicates_are_ignored() {
        let hull = convex_hull(&[
            p(0.0, 0.0),
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 0.0),
            p(2.0, 3.0),
        ])
        .unwrap();
        assert_eq!(hull.len(), 3);
    }

    #[test]
    fn collinear_edge_points_dropped() {
        let hull = convex_hull(&[
            p(0.0, 0.0),
            p(2.0, 0.0), // on the bottom edge
            p(4.0, 0.0),
            p(4.0, 4.0),
            p(0.0, 4.0),
        ])
        .unwrap();
        assert_eq!(hull.len(), 4);
    }

    #[test]
    fn hull_contains_all_inputs() {
        // Deterministic pseudo-random cloud.
        let mut seed: u64 = 11;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        let pts: Vec<Point> = (0..100).map(|_| p(next() * 50.0, next() * 50.0)).collect();
        let hull = convex_hull(&pts).unwrap();
        for q in &pts {
            assert!(hull.contains(*q), "{q} outside hull");
        }
        // Hull vertices are input points.
        for v in hull.vertices() {
            assert!(pts.iter().any(|q| q.distance(*v) < 1e-12));
        }
    }

    #[test]
    fn triangle_is_its_own_hull() {
        let hull = convex_hull(&[p(0.0, 0.0), p(3.0, 0.0), p(0.0, 3.0)]).unwrap();
        assert_eq!(hull.len(), 3);
        assert_eq!(hull.area(), 4.5);
    }
}
