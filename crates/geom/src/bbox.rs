//! Axis-aligned bounding boxes.

use crate::Point;

/// An axis-aligned bounding box.
///
/// ```
/// use anr_geom::{Aabb, Point};
/// let b = Aabb::from_points([Point::new(0.0, 1.0), Point::new(4.0, -2.0)]).unwrap();
/// assert_eq!(b.width(), 4.0);
/// assert_eq!(b.height(), 3.0);
/// assert!(b.contains(Point::new(2.0, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Aabb {
    /// Creates a box from two opposite corners (in any order).
    pub fn new(a: Point, b: Point) -> Self {
        Aabb {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Smallest box containing all `points`; `None` when empty.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = Aabb {
            min: first,
            max: first,
        };
        for p in it {
            bb.expand(p);
        }
        Some(bb)
    }

    /// Grows the box (in place) to include `p`.
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Box width (x extent).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Box height (y extent).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Center of the box.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Length of the box diagonal.
    #[inline]
    pub fn diagonal(&self) -> f64 {
        self.min.distance(self.max)
    }

    /// Is `p` inside (inclusive of the boundary)?
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Box grown by `margin` on every side.
    pub fn inflated(&self, margin: f64) -> Aabb {
        Aabb {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Does this box overlap `other` (inclusive)?
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let b = Aabb::new(Point::new(4.0, -2.0), Point::new(0.0, 1.0));
        assert_eq!(b.min, Point::new(0.0, -2.0));
        assert_eq!(b.max, Point::new(4.0, 1.0));
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(Aabb::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn expand_grows() {
        let mut b = Aabb::new(Point::ORIGIN, Point::ORIGIN);
        b.expand(Point::new(-1.0, 5.0));
        assert_eq!(b.min, Point::new(-1.0, 0.0));
        assert_eq!(b.max, Point::new(0.0, 5.0));
    }

    #[test]
    fn contains_boundary() {
        let b = Aabb::new(Point::ORIGIN, Point::new(1.0, 1.0));
        assert!(b.contains(Point::new(1.0, 1.0)));
        assert!(b.contains(Point::new(0.0, 0.5)));
        assert!(!b.contains(Point::new(1.1, 0.5)));
    }

    #[test]
    fn inflated_adds_margin() {
        let b = Aabb::new(Point::ORIGIN, Point::new(1.0, 1.0)).inflated(0.5);
        assert_eq!(b.min, Point::new(-0.5, -0.5));
        assert_eq!(b.max, Point::new(1.5, 1.5));
    }

    #[test]
    fn intersects_overlap_and_touch() {
        let a = Aabb::new(Point::ORIGIN, Point::new(1.0, 1.0));
        let b = Aabb::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0));
        let c = Aabb::new(Point::new(1.5, 1.5), Point::new(2.0, 2.0));
        assert!(a.intersects(&b)); // touching counts
        assert!(!a.intersects(&c));
    }

    #[test]
    fn center_and_diagonal() {
        let b = Aabb::new(Point::ORIGIN, Point::new(3.0, 4.0));
        assert_eq!(b.center(), Point::new(1.5, 2.0));
        assert_eq!(b.diagonal(), 5.0);
    }
}
