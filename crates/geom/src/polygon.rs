//! Simple polygons: containment, measures, boundary operations.

use crate::{orient2d, Aabb, GeomError, Point, Segment, Vector, EPS};

/// A simple (non-self-intersecting) polygon given by its vertex loop.
///
/// Vertices may be listed clockwise or counter-clockwise; queries are
/// orientation-agnostic and [`Polygon::to_ccw`] normalizes when needed.
/// The last vertex is implicitly connected back to the first.
///
/// ```
/// use anr_geom::{Point, Polygon};
/// let tri = Polygon::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(0.0, 4.0),
/// ])?;
/// assert_eq!(tri.area(), 8.0);
/// assert!(tri.contains(Point::new(1.0, 1.0)));
/// # Ok::<(), anr_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from a vertex loop.
    ///
    /// # Errors
    ///
    /// * [`GeomError::TooFewVertices`] for fewer than 3 vertices.
    /// * [`GeomError::NonFiniteCoordinate`] for NaN/∞ coordinates.
    /// * [`GeomError::DegeneratePolygon`] when the area is (near) zero.
    pub fn new(vertices: Vec<Point>) -> Result<Self, GeomError> {
        if vertices.len() < 3 {
            return Err(GeomError::TooFewVertices {
                got: vertices.len(),
            });
        }
        if vertices.iter().any(|p| !p.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        let poly = Polygon { vertices };
        let scale = poly.bbox().diagonal();
        if poly.area() <= EPS * scale * scale {
            return Err(GeomError::DegeneratePolygon);
        }
        Ok(poly)
    }

    /// A regular `n`-gon of circumradius `radius` centered at `center`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `radius <= 0`.
    pub fn regular(center: Point, radius: f64, n: usize) -> Self {
        assert!(n >= 3, "regular polygon needs n >= 3");
        assert!(radius > 0.0, "regular polygon needs positive radius");
        let verts = (0..n)
            .map(|i| {
                let theta = std::f64::consts::TAU * i as f64 / n as f64;
                Point::new(
                    center.x + radius * theta.cos(),
                    center.y + radius * theta.sin(),
                )
            })
            .collect();
        Polygon { vertices: verts }
    }

    /// An axis-aligned rectangle.
    ///
    /// # Panics
    ///
    /// Panics when width or height is not positive.
    pub fn rectangle(min: Point, width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "rectangle extents must be positive"
        );
        Polygon {
            vertices: vec![
                min,
                Point::new(min.x + width, min.y),
                Point::new(min.x + width, min.y + height),
                Point::new(min.x, min.y + height),
            ],
        }
    }

    /// The vertex loop.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always false: construction rejects empty polygons.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Iterator over boundary edges, in vertex order.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area via the shoelace formula (positive = counter-clockwise).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut sum = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            sum += p.x * q.y - q.x * p.y;
        }
        0.5 * sum
    }

    /// Absolute area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Boundary length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Is the vertex loop counter-clockwise?
    #[inline]
    pub fn is_ccw(&self) -> bool {
        self.signed_area() > 0.0
    }

    /// Returns the polygon with a counter-clockwise vertex loop.
    pub fn to_ccw(&self) -> Polygon {
        if self.is_ccw() {
            self.clone()
        } else {
            let mut v = self.vertices.clone();
            v.reverse();
            Polygon { vertices: v }
        }
    }

    /// Area centroid (first moment / area), not the vertex average.
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
            a += w;
        }
        // a = 2 * signed area; construction guarantees |a| > 0.
        Point::new(cx / (3.0 * a), cy / (3.0 * a))
    }

    /// Bounding box of the vertex loop.
    pub fn bbox(&self) -> Aabb {
        // Construction guarantees at least three vertices; the fallback
        // keeps this panic-free all the same.
        Aabb::from_points(self.vertices.iter().copied())
            .unwrap_or(Aabb::new(Point::ORIGIN, Point::ORIGIN))
    }

    /// Point-in-polygon test (boundary counts as inside).
    ///
    /// Crossing-number algorithm, orientation-agnostic. Points within a
    /// small tolerance of the boundary are reported as contained.
    pub fn contains(&self, p: Point) -> bool {
        let scale = self.bbox().diagonal().max(1.0);
        if self.distance_to_boundary(p) <= EPS * scale * 10.0 {
            return true;
        }
        self.contains_strict(p)
    }

    /// Point-in-polygon by crossing number, with no boundary tolerance.
    ///
    /// Boundary points may report either way up to floating-point noise;
    /// use [`Polygon::contains`] for a boundary-inclusive test.
    pub fn contains_strict(&self, p: Point) -> bool {
        let n = self.vertices.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if ((vi.y > p.y) != (vj.y > p.y))
                && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Distance from `p` to the nearest boundary point (0 on the boundary).
    pub fn distance_to_boundary(&self, p: Point) -> f64 {
        self.edges()
            .map(|e| e.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// The boundary point nearest to `p`.
    pub fn closest_boundary_point(&self, p: Point) -> Point {
        let mut best = self.vertices[0];
        let mut best_d = f64::INFINITY;
        for e in self.edges() {
            let q = e.closest_point(p);
            let d = q.distance(p);
            if d < best_d {
                best_d = d;
                best = q;
            }
        }
        best
    }

    /// Does the open segment `(a, b)` cross the polygon boundary?
    ///
    /// Endpoint touches on the boundary are not counted as crossings.
    pub fn segment_crosses_boundary(&self, seg: Segment) -> bool {
        self.edges().any(|e| seg.crosses_interior(e))
    }

    /// Resamples the boundary at (approximately) uniform arclength
    /// spacing, returning at least `min_points` points.
    ///
    /// Original vertices are not necessarily kept; the result is a new
    /// closed loop suitable for meshing.
    ///
    /// # Panics
    ///
    /// Panics when `spacing <= 0`.
    pub fn resample_boundary(&self, spacing: f64, min_points: usize) -> Vec<Point> {
        assert!(spacing > 0.0, "spacing must be positive");
        let perimeter = self.perimeter();
        let count = ((perimeter / spacing).ceil() as usize).max(min_points.max(3));
        let step = perimeter / count as f64;

        let mut result = Vec::with_capacity(count);
        let mut remaining = 0.0; // distance until next sample
        for e in self.edges() {
            let len = e.length();
            let mut along = remaining;
            while along < len {
                result.push(e.at(along / len));
                along += step;
            }
            remaining = along - len;
        }
        // Guard against accumulation error producing one extra point.
        result.truncate(count);
        result
    }

    /// Returns the polygon translated by `v`.
    pub fn translated(&self, v: Vector) -> Polygon {
        Polygon {
            vertices: self.vertices.iter().map(|&p| p + v).collect(),
        }
    }

    /// Returns the polygon uniformly scaled about `center` by `factor`.
    ///
    /// # Panics
    ///
    /// Panics when `factor <= 0`.
    pub fn scaled_about(&self, center: Point, factor: f64) -> Polygon {
        assert!(factor > 0.0, "scale factor must be positive");
        Polygon {
            vertices: self
                .vertices
                .iter()
                .map(|&p| center + (p - center) * factor)
                .collect(),
        }
    }

    /// Returns the polygon scaled (about its centroid) to have exactly
    /// `target_area`.
    ///
    /// # Panics
    ///
    /// Panics when `target_area <= 0`.
    pub fn scaled_to_area(&self, target_area: f64) -> Polygon {
        assert!(target_area > 0.0, "target area must be positive");
        let factor = (target_area / self.area()).sqrt();
        self.scaled_about(self.centroid(), factor)
    }

    /// Returns the polygon rotated by `theta` about `center`.
    pub fn rotated_about(&self, center: Point, theta: f64) -> Polygon {
        let rot = crate::Rotation::about(center, theta);
        Polygon {
            vertices: self.vertices.iter().map(|&p| rot.apply(p)).collect(),
        }
    }

    /// Clips the polygon against the half-plane on the **left** of the
    /// directed line `a → b` (Sutherland–Hodgman step).
    ///
    /// Returns `None` when the intersection is empty or degenerate.
    /// Clipping a convex polygon stays convex; clipping a non-convex
    /// polygon is correct whenever the result is a single piece (the
    /// case for Voronoi-cell construction, where the clip regions are
    /// convex intersections).
    pub fn clip_half_plane(&self, a: Point, b: Point) -> Option<Polygon> {
        let inside = |p: Point| orient2d(a, b, p) >= 0.0;
        let n = self.vertices.len();
        let mut out: Vec<Point> = Vec::with_capacity(n + 4);
        for i in 0..n {
            let cur = self.vertices[i];
            let next = self.vertices[(i + 1) % n];
            let cur_in = inside(cur);
            let next_in = inside(next);
            if cur_in {
                out.push(cur);
            }
            if cur_in != next_in {
                // Edge crosses the clip line: add the intersection.
                let d = b - a;
                let e = next - cur;
                let denom = d.cross(e);
                if denom.abs() > f64::MIN_POSITIVE {
                    // Solve cross(d, cur + t*e - a) = 0.
                    let t = -d.cross(cur - a) / denom;
                    out.push(cur.lerp(next, t.clamp(0.0, 1.0)));
                }
            }
        }
        // Drop consecutive duplicates created by vertices on the line.
        out.dedup_by(|x, y| x.distance(*y) < EPS * (1.0 + x.to_vector().norm()));
        if out.len() >= 2 {
            let first = out[0];
            let last = out[out.len() - 1];
            if first.distance(last) < EPS * (1.0 + first.to_vector().norm()) {
                out.pop();
            }
        }
        Polygon::new(out).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn unit_square() -> Polygon {
        Polygon::rectangle(Point::ORIGIN, 1.0, 1.0)
    }

    #[test]
    fn rejects_too_few_vertices() {
        assert!(matches!(
            Polygon::new(vec![p(0.0, 0.0), p(1.0, 0.0)]),
            Err(GeomError::TooFewVertices { got: 2 })
        ));
    }

    #[test]
    fn rejects_nonfinite() {
        assert!(matches!(
            Polygon::new(vec![p(0.0, 0.0), p(1.0, f64::NAN), p(0.0, 1.0)]),
            Err(GeomError::NonFiniteCoordinate)
        ));
    }

    #[test]
    fn rejects_degenerate() {
        assert!(matches!(
            Polygon::new(vec![p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)]),
            Err(GeomError::DegeneratePolygon)
        ));
    }

    #[test]
    fn square_measures() {
        let sq = unit_square();
        assert_eq!(sq.area(), 1.0);
        assert_eq!(sq.perimeter(), 4.0);
        assert!(sq.is_ccw());
        assert_eq!(sq.centroid(), p(0.5, 0.5));
    }

    #[test]
    fn clockwise_polygon_negative_signed_area() {
        let mut verts = unit_square().vertices().to_vec();
        verts.reverse();
        let cw = Polygon::new(verts).unwrap();
        assert!(cw.signed_area() < 0.0);
        assert!(cw.to_ccw().is_ccw());
        // containment unaffected by orientation
        assert!(cw.contains(p(0.5, 0.5)));
    }

    #[test]
    fn contains_interior_exterior_boundary() {
        let sq = unit_square();
        assert!(sq.contains(p(0.5, 0.5)));
        assert!(!sq.contains(p(1.5, 0.5)));
        assert!(sq.contains(p(1.0, 0.5))); // boundary inclusive
        assert!(sq.contains(p(0.0, 0.0))); // corner
    }

    #[test]
    fn contains_concave() {
        // L-shape
        let l = Polygon::new(vec![
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(2.0, 1.0),
            p(1.0, 1.0),
            p(1.0, 2.0),
            p(0.0, 2.0),
        ])
        .unwrap();
        assert!(l.contains(p(0.5, 1.5)));
        assert!(l.contains(p(1.5, 0.5)));
        assert!(!l.contains(p(1.5, 1.5))); // the notch
    }

    #[test]
    fn distance_and_closest_point() {
        let sq = unit_square();
        assert_eq!(sq.distance_to_boundary(p(0.5, 0.5)), 0.5);
        assert_eq!(sq.distance_to_boundary(p(2.0, 0.5)), 1.0);
        assert_eq!(sq.closest_boundary_point(p(0.5, -3.0)), p(0.5, 0.0));
    }

    #[test]
    fn segment_crossing_boundary() {
        let sq = unit_square();
        let crossing = Segment::new(p(-1.0, 0.5), p(2.0, 0.5));
        let inside = Segment::new(p(0.25, 0.25), p(0.75, 0.75));
        assert!(sq.segment_crosses_boundary(crossing));
        assert!(!sq.segment_crosses_boundary(inside));
    }

    #[test]
    fn resample_boundary_spacing() {
        let sq = unit_square();
        let pts = sq.resample_boundary(0.25, 3);
        assert_eq!(pts.len(), 16);
        // All resampled points lie on the boundary.
        for q in &pts {
            assert!(sq.distance_to_boundary(*q) < 1e-9);
        }
        // Consecutive spacing close to requested.
        for w in pts.windows(2) {
            assert!((w[0].distance(w[1]) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn resample_respects_min_points() {
        let sq = unit_square();
        let pts = sq.resample_boundary(10.0, 12);
        assert_eq!(pts.len(), 12);
    }

    #[test]
    fn translation_and_scaling() {
        let sq = unit_square();
        let moved = sq.translated(Vector::new(5.0, 5.0));
        assert_eq!(moved.centroid(), p(5.5, 5.5));
        assert_eq!(moved.area(), 1.0);

        let scaled = sq.scaled_to_area(25.0);
        assert!((scaled.area() - 25.0).abs() < 1e-9);
        assert!(scaled.centroid().distance(sq.centroid()) < 1e-9);
    }

    #[test]
    fn rotation_preserves_area() {
        let sq = unit_square();
        let rot = sq.rotated_about(sq.centroid(), 0.7);
        assert!((rot.area() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regular_polygon_approaches_circle_area() {
        let c = Polygon::regular(p(3.0, 3.0), 2.0, 256);
        let circle_area = std::f64::consts::PI * 4.0;
        assert!((c.area() - circle_area).abs() / circle_area < 1e-3);
    }

    #[test]
    fn centroid_matches_vertex_mean_for_regular() {
        let c = Polygon::regular(p(1.0, -2.0), 3.0, 7);
        assert!(c.centroid().distance(p(1.0, -2.0)) < 1e-9);
    }

    #[test]
    fn clip_half_plane_basic() {
        let sq = unit_square();
        // Keep the left half: clip line x = 0.5 pointing up (left side
        // of the upward line is x < 0.5... the left of a→b with a=(0.5,0),
        // b=(0.5,1) is the half-plane x <= 0.5).
        let half = sq.clip_half_plane(p(0.5, 0.0), p(0.5, 1.0)).unwrap();
        assert!((half.area() - 0.5).abs() < 1e-9);
        assert!(half.contains(p(0.25, 0.5)));
        assert!(!half.contains(p(0.75, 0.5)));
    }

    #[test]
    fn clip_half_plane_no_intersection() {
        let sq = unit_square();
        // Clip line far to the left, keeping only x <= -1: empty.
        assert!(sq.clip_half_plane(p(-1.0, 0.0), p(-1.0, 1.0)).is_none());
    }

    #[test]
    fn clip_half_plane_whole_polygon() {
        let sq = unit_square();
        // Keep x <= 5: the whole square survives.
        let c = sq.clip_half_plane(p(5.0, 0.0), p(5.0, 1.0)).unwrap();
        assert!((c.area() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clip_through_vertex() {
        // Diagonal clip through two corners halves the square.
        let sq = unit_square();
        let c = sq.clip_half_plane(p(0.0, 0.0), p(1.0, 1.0)).unwrap();
        assert!((c.area() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn successive_clips_build_a_cell() {
        // Clip a big square by two perpendicular bisectors: quadrant.
        let sq = Polygon::rectangle(Point::ORIGIN, 10.0, 10.0);
        let c = sq
            .clip_half_plane(p(5.0, 10.0), p(5.0, 0.0)) // keep x >= 5
            .and_then(|c| c.clip_half_plane(p(0.0, 5.0), p(10.0, 5.0))) // keep y >= 5... left of →x is +y
            .unwrap();
        assert!((c.area() - 25.0).abs() < 1e-9);
        assert!(c.contains(p(7.5, 7.5)));
    }

    #[test]
    #[should_panic]
    fn regular_panics_on_small_n() {
        let _ = Polygon::regular(Point::ORIGIN, 1.0, 2);
    }
}
