//! Polygons with holes — the Field-of-Interest (FoI) model.
//!
//! The paper's FoIs may contain "obstacles or landscape features that
//! forbid mobile robot placement" (Sec. III-D-3). A
//! [`PolygonWithHoles`] is an outer simple polygon minus a set of
//! disjoint hole polygons strictly inside it.

use crate::{Aabb, GeomError, Point, Polygon, Segment, Vector, EPS};

/// An outer boundary polygon minus zero or more disjoint holes.
///
/// ```
/// use anr_geom::{Point, Polygon, PolygonWithHoles};
/// let outer = Polygon::rectangle(Point::ORIGIN, 10.0, 10.0);
/// let hole = Polygon::rectangle(Point::new(4.0, 4.0), 2.0, 2.0);
/// let foi = PolygonWithHoles::new(outer, vec![hole])?;
/// assert!(foi.contains(Point::new(1.0, 1.0)));
/// assert!(!foi.contains(Point::new(5.0, 5.0))); // inside the hole
/// assert_eq!(foi.area(), 96.0);
/// # Ok::<(), anr_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PolygonWithHoles {
    outer: Polygon,
    holes: Vec<Polygon>,
}

impl PolygonWithHoles {
    /// Creates a region from an outer boundary and holes.
    ///
    /// # Errors
    ///
    /// * [`GeomError::HoleOutsideBoundary`] when a hole vertex falls
    ///   outside the outer polygon.
    /// * [`GeomError::OverlappingHoles`] when two holes' boundaries
    ///   intersect or one contains the other.
    pub fn new(outer: Polygon, holes: Vec<Polygon>) -> Result<Self, GeomError> {
        for (i, h) in holes.iter().enumerate() {
            if !h.vertices().iter().all(|&v| outer.contains(v)) {
                return Err(GeomError::HoleOutsideBoundary { hole: i });
            }
        }
        for i in 0..holes.len() {
            for j in (i + 1)..holes.len() {
                if holes_overlap(&holes[i], &holes[j]) {
                    return Err(GeomError::OverlappingHoles {
                        first: i,
                        second: j,
                    });
                }
            }
        }
        Ok(PolygonWithHoles { outer, holes })
    }

    /// A region with no holes.
    pub fn without_holes(outer: Polygon) -> Self {
        PolygonWithHoles {
            outer,
            holes: Vec::new(),
        }
    }

    /// The outer boundary.
    #[inline]
    pub fn outer(&self) -> &Polygon {
        &self.outer
    }

    /// The holes.
    #[inline]
    pub fn holes(&self) -> &[Polygon] {
        &self.holes
    }

    /// Does the region have holes?
    #[inline]
    pub fn has_holes(&self) -> bool {
        !self.holes.is_empty()
    }

    /// Region area: outer area minus hole areas.
    pub fn area(&self) -> f64 {
        self.outer.area() - self.holes.iter().map(Polygon::area).sum::<f64>()
    }

    /// Area centroid of the region (holes subtracted).
    pub fn centroid(&self) -> Point {
        let ao = self.outer.area();
        let co = self.outer.centroid();
        let mut wx = ao * co.x;
        let mut wy = ao * co.y;
        let mut w = ao;
        for h in &self.holes {
            let a = h.area();
            let c = h.centroid();
            wx -= a * c.x;
            wy -= a * c.y;
            w -= a;
        }
        Point::new(wx / w, wy / w)
    }

    /// Bounding box of the outer boundary.
    #[inline]
    pub fn bbox(&self) -> Aabb {
        self.outer.bbox()
    }

    /// Is `p` inside the region (inside outer, not strictly inside any
    /// hole; both boundaries count as inside)?
    pub fn contains(&self, p: Point) -> bool {
        if !self.outer.contains(p) {
            return false;
        }
        !self.holes.iter().any(|h| {
            h.contains_strict(p) && {
                let scale = h.bbox().diagonal().max(1.0);
                h.distance_to_boundary(p) > EPS * scale * 10.0
            }
        })
    }

    /// Is `p` strictly inside a hole (hole boundary excluded)?
    pub fn in_hole(&self, p: Point) -> bool {
        self.outer.contains(p) && !self.contains(p)
    }

    /// Index of the hole strictly containing `p`, if any.
    pub fn hole_containing(&self, p: Point) -> Option<usize> {
        self.holes.iter().position(|h| {
            h.contains_strict(p) && {
                let scale = h.bbox().diagonal().max(1.0);
                h.distance_to_boundary(p) > EPS * scale * 10.0
            }
        })
    }

    /// Distance from `p` to the nearest boundary (outer or any hole).
    pub fn distance_to_boundary(&self, p: Point) -> f64 {
        let mut d = self.outer.distance_to_boundary(p);
        for h in &self.holes {
            d = d.min(h.distance_to_boundary(p));
        }
        d
    }

    /// Distance from `p` to the nearest *hole* boundary.
    ///
    /// Returns `f64::INFINITY` when the region has no holes. Used by
    /// density functions such as "more robots near the fire" (Sec. IV-E).
    pub fn distance_to_holes(&self, p: Point) -> f64 {
        self.holes
            .iter()
            .map(|h| h.distance_to_boundary(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// The region point nearest to `p`.
    ///
    /// If `p` is already inside the region, `p` itself; if `p` is in a
    /// hole, the nearest point on that hole's boundary; if outside the
    /// outer polygon, the nearest point on the outer boundary.
    pub fn clamp_inside(&self, p: Point) -> Point {
        if self.contains(p) {
            return p;
        }
        if let Some(i) = self.hole_containing(p) {
            return self.holes[i].closest_boundary_point(p);
        }
        self.outer.closest_boundary_point(p)
    }

    /// Does the open segment cross into forbidden space (outside the
    /// outer boundary or through a hole)?
    ///
    /// Endpoint touches on boundaries do not count. The test is
    /// conservative for robot motion: it also flags segments whose
    /// midpoint is in forbidden space (fully-contained crossings).
    pub fn segment_blocked(&self, seg: Segment) -> bool {
        if self.outer.segment_crosses_boundary(seg) {
            return true;
        }
        for h in &self.holes {
            if h.edges().any(|e| seg.crosses_interior(e)) {
                return true;
            }
        }
        // Segment entirely in forbidden space (or hole) without crossing
        // an edge: check the midpoint.
        !self.contains(seg.midpoint())
    }

    /// Interior sample points on a square grid of the given `spacing`.
    ///
    /// Only points inside the region (outside holes) are returned; the
    /// grid is aligned to the bounding box with a half-spacing inset.
    ///
    /// # Panics
    ///
    /// Panics when `spacing <= 0`.
    pub fn grid_points(&self, spacing: f64) -> Vec<Point> {
        assert!(spacing > 0.0, "spacing must be positive");
        let bb = self.bbox();
        let mut pts = Vec::new();
        let mut y = bb.min.y + spacing / 2.0;
        while y < bb.max.y {
            let mut x = bb.min.x + spacing / 2.0;
            while x < bb.max.x {
                let p = Point::new(x, y);
                if self.contains(p) {
                    pts.push(p);
                }
                x += spacing;
            }
            y += spacing;
        }
        pts
    }

    /// Returns the region translated by `v`.
    pub fn translated(&self, v: Vector) -> PolygonWithHoles {
        PolygonWithHoles {
            outer: self.outer.translated(v),
            holes: self.holes.iter().map(|h| h.translated(v)).collect(),
        }
    }
}

/// Overlap test used during validation: vertices of one hole inside the
/// other, or boundary edges intersecting.
fn holes_overlap(a: &Polygon, b: &Polygon) -> bool {
    if !a.bbox().intersects(&b.bbox()) {
        return false;
    }
    if b.vertices().iter().any(|&v| a.contains_strict(v))
        || a.vertices().iter().any(|&v| b.contains_strict(v))
    {
        return true;
    }
    a.edges()
        .any(|ea| b.edges().any(|eb| ea.crosses_interior(eb)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn region() -> PolygonWithHoles {
        let outer = Polygon::rectangle(Point::ORIGIN, 10.0, 10.0);
        let hole = Polygon::rectangle(p(4.0, 4.0), 2.0, 2.0);
        PolygonWithHoles::new(outer, vec![hole]).unwrap()
    }

    #[test]
    fn area_subtracts_holes() {
        assert_eq!(region().area(), 96.0);
    }

    #[test]
    fn centroid_of_symmetric_region_is_center() {
        assert!(region().centroid().distance(p(5.0, 5.0)) < 1e-9);
    }

    #[test]
    fn centroid_shifts_away_from_offset_hole() {
        let outer = Polygon::rectangle(Point::ORIGIN, 10.0, 10.0);
        let hole = Polygon::rectangle(p(7.0, 4.0), 2.0, 2.0);
        let r = PolygonWithHoles::new(outer, vec![hole]).unwrap();
        assert!(r.centroid().x < 5.0);
    }

    #[test]
    fn contains_respects_holes() {
        let r = region();
        assert!(r.contains(p(1.0, 1.0)));
        assert!(!r.contains(p(5.0, 5.0)));
        assert!(r.contains(p(4.0, 5.0))); // hole boundary counts as region
        assert!(!r.contains(p(11.0, 5.0)));
    }

    #[test]
    fn in_hole_and_hole_containing() {
        let r = region();
        assert!(r.in_hole(p(5.0, 5.0)));
        assert_eq!(r.hole_containing(p(5.0, 5.0)), Some(0));
        assert_eq!(r.hole_containing(p(1.0, 1.0)), None);
        assert!(!r.in_hole(p(20.0, 20.0))); // outside entirely is not "in hole"
    }

    #[test]
    fn rejects_hole_outside() {
        let outer = Polygon::rectangle(Point::ORIGIN, 10.0, 10.0);
        let hole = Polygon::rectangle(p(9.0, 9.0), 5.0, 5.0);
        assert!(matches!(
            PolygonWithHoles::new(outer, vec![hole]),
            Err(GeomError::HoleOutsideBoundary { hole: 0 })
        ));
    }

    #[test]
    fn rejects_overlapping_holes() {
        let outer = Polygon::rectangle(Point::ORIGIN, 10.0, 10.0);
        let h1 = Polygon::rectangle(p(2.0, 2.0), 3.0, 3.0);
        let h2 = Polygon::rectangle(p(4.0, 4.0), 3.0, 3.0);
        assert!(matches!(
            PolygonWithHoles::new(outer, vec![h1, h2]),
            Err(GeomError::OverlappingHoles { .. })
        ));
    }

    #[test]
    fn accepts_disjoint_holes() {
        let outer = Polygon::rectangle(Point::ORIGIN, 10.0, 10.0);
        let h1 = Polygon::rectangle(p(1.0, 1.0), 2.0, 2.0);
        let h2 = Polygon::rectangle(p(6.0, 6.0), 2.0, 2.0);
        let r = PolygonWithHoles::new(outer, vec![h1, h2]).unwrap();
        assert_eq!(r.holes().len(), 2);
        assert_eq!(r.area(), 92.0);
    }

    #[test]
    fn distance_to_holes() {
        let r = region();
        assert_eq!(r.distance_to_holes(p(1.0, 5.0)), 3.0);
        let no_holes = PolygonWithHoles::without_holes(Polygon::rectangle(Point::ORIGIN, 1.0, 1.0));
        assert_eq!(no_holes.distance_to_holes(p(0.5, 0.5)), f64::INFINITY);
    }

    #[test]
    fn clamp_inside_cases() {
        let r = region();
        // already inside
        assert_eq!(r.clamp_inside(p(1.0, 1.0)), p(1.0, 1.0));
        // in hole -> hole boundary
        let c = r.clamp_inside(p(5.0, 5.0));
        assert!(r.holes()[0].distance_to_boundary(c) < 1e-9);
        // outside -> outer boundary
        let c = r.clamp_inside(p(15.0, 5.0));
        assert!(c.distance(p(10.0, 5.0)) < 1e-9);
    }

    #[test]
    fn segment_blocked_by_hole() {
        let r = region();
        assert!(r.segment_blocked(Segment::new(p(1.0, 5.0), p(9.0, 5.0))));
        assert!(!r.segment_blocked(Segment::new(p(1.0, 1.0), p(9.0, 1.0))));
        assert!(r.segment_blocked(Segment::new(p(5.0, -1.0), p(5.0, 1.0)))); // enters from outside
    }

    #[test]
    fn segment_fully_inside_hole_is_blocked() {
        let r = region();
        assert!(r.segment_blocked(Segment::new(p(4.5, 5.0), p(5.5, 5.0))));
    }

    #[test]
    fn grid_points_avoid_holes() {
        let r = region();
        let pts = r.grid_points(1.0);
        assert!(!pts.is_empty());
        for q in &pts {
            assert!(r.contains(*q));
            assert!(!r.in_hole(*q));
        }
        // Roughly area / spacing^2 points.
        assert!((pts.len() as f64 - r.area()).abs() / r.area() < 0.15);
    }

    #[test]
    fn translated_moves_everything() {
        let r = region().translated(Vector::new(100.0, 0.0));
        assert!(r.contains(p(101.0, 1.0)));
        assert!(!r.contains(p(105.0, 5.0)));
        assert_eq!(r.area(), 96.0);
    }
}
