//! Points and vectors in the plane.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in the Euclidean plane, in metres.
///
/// `Point` is the position of a robot, a mesh vertex or a polygon corner.
/// Displacements between points are [`Vector`]s: `Point - Point = Vector`,
/// `Point + Vector = Point`.
///
/// ```
/// use anr_geom::{Point, Vector};
/// let p = Point::new(1.0, 2.0);
/// let q = p + Vector::new(3.0, 4.0);
/// assert_eq!(p.distance(q), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement (or direction) in the plane.
///
/// ```
/// use anr_geom::Vector;
/// let v = Vector::new(3.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// assert!((v.normalized().norm() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vector {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other` (no square root).
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// The midpoint of `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    ///
    /// `t` outside `[0, 1]` extrapolates.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Displacement vector from the origin to this point.
    #[inline]
    pub fn to_vector(self) -> Vector {
        Vector::new(self.x, self.y)
    }

    /// Returns true when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Arithmetic mean of a non-empty set of points.
    ///
    /// Returns `None` when the iterator is empty.
    pub fn centroid_of<I: IntoIterator<Item = Point>>(points: I) -> Option<Point> {
        let mut sum = Vector::ZERO;
        let mut n = 0usize;
        for p in points {
            sum += p.to_vector();
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(Point::new(sum.x / n as f64, sum.y / n as f64))
        }
    }
}

impl Vector {
    /// The zero vector.
    pub(crate) const ZERO: Vector = Vector { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vector { x, y }
    }

    /// Euclidean norm (length).
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vector) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z-component of the 3D cross product).
    #[inline]
    pub fn cross(self, other: Vector) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The vector rotated by 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Vector {
        Vector::new(-self.y, self.x)
    }

    /// Unit vector in the same direction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the vector is (near) zero; in release
    /// builds a zero vector yields non-finite components.
    #[inline]
    pub fn normalized(self) -> Vector {
        let n = self.norm();
        debug_assert!(n > 0.0, "cannot normalize a zero vector");
        Vector::new(self.x / n, self.y / n)
    }

    /// Angle of the vector in radians, in `(-π, π]`, measured from +x.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Point at the head of the vector when anchored at the origin.
    #[inline]
    pub fn to_point(self) -> Point {
        Point::new(self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.6}, {:.6}>", self.x, self.y)
    }
}

impl Sub for Point {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vector) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl AddAssign<Vector> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Add for Vector {
    type Output = Vector;
    #[inline]
    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vector {
    #[inline]
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vector {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Vector) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vector {
    #[inline]
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn mul(self, rhs: f64) -> Vector {
        Vector::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vector> for f64 {
    type Output = Vector;
    #[inline]
    fn mul(self, rhs: Vector) -> Vector {
        rhs * self
    }
}

impl Div<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn div(self, rhs: f64) -> Vector {
        Vector::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vector {
    type Output = Vector;
    #[inline]
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl From<(f64, f64)> for Vector {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Vector::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let p = Point::new(1.0, 2.0);
        let q = Point::new(4.0, 6.0);
        assert_eq!(p.distance(q), 5.0);
        assert_eq!(q.distance(p), 5.0);
    }

    #[test]
    fn distance_sq_avoids_sqrt() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(3.0, 4.0);
        assert_eq!(p.distance_sq(q), 25.0);
    }

    #[test]
    fn midpoint_is_halfway() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(2.0, 4.0);
        assert_eq!(p.midpoint(q), Point::new(1.0, 2.0));
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(10.0, -10.0);
        assert_eq!(p.lerp(q, 0.0), p);
        assert_eq!(p.lerp(q, 1.0), q);
        assert_eq!(p.lerp(q, 0.5), Point::new(5.0, -5.0));
    }

    #[test]
    fn lerp_extrapolates() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(1.0, 0.0);
        assert_eq!(p.lerp(q, 2.0), Point::new(2.0, 0.0));
    }

    #[test]
    fn vector_cross_orientation() {
        let e1 = Vector::new(1.0, 0.0);
        let e2 = Vector::new(0.0, 1.0);
        assert_eq!(e1.cross(e2), 1.0);
        assert_eq!(e2.cross(e1), -1.0);
        assert_eq!(e1.cross(e1), 0.0);
    }

    #[test]
    fn perp_is_ccw_rotation() {
        let v = Vector::new(1.0, 0.0);
        assert_eq!(v.perp(), Vector::new(0.0, 1.0));
        assert_eq!(v.perp().perp(), -v);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = Vector::new(-3.0, 4.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn angle_of_axes() {
        assert_eq!(Vector::new(1.0, 0.0).angle(), 0.0);
        assert!((Vector::new(0.0, 1.0).angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_points() {
        let c = Point::centroid_of([
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 3.0),
        ])
        .unwrap();
        assert!((c.x - 1.0).abs() < 1e-12);
        assert!((c.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert!(Point::centroid_of(std::iter::empty()).is_none());
    }

    #[test]
    fn point_vector_arithmetic_roundtrip() {
        let p = Point::new(1.0, 1.0);
        let v = Vector::new(2.0, 3.0);
        assert_eq!((p + v) - p, v);
        assert_eq!((p + v) - v, p);
    }

    #[test]
    fn conversions() {
        let p: Point = (1.0, 2.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.0, 2.0));
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Point::new(1.0, 2.0)).is_empty());
        assert!(!format!("{}", Vector::new(1.0, 2.0)).is_empty());
    }
}
