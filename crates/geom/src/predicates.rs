//! Orientation and in-circle predicates.
//!
//! These are epsilon-guarded floating-point predicates, not exact
//! arithmetic. The guard is *relative* to the magnitude of the inputs so
//! the predicates behave consistently whether coordinates are unit-disk
//! sized (harmonic maps) or hundreds of metres (fields of interest).

use crate::Point;

/// Result of an orientation test of three points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// `a`, `b`, `c` make a left turn.
    CounterClockwise,
    /// `a`, `b`, `c` make a right turn.
    Clockwise,
    /// The three points are (numerically) collinear.
    Collinear,
}

/// Twice the signed area of triangle `(a, b, c)`.
///
/// Positive when the triangle is counter-clockwise, negative when
/// clockwise, near zero when degenerate.
///
/// ```
/// use anr_geom::{orient2d, Point};
/// let v = orient2d(Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(0.0, 1.0));
/// assert!(v > 0.0);
/// ```
#[inline]
pub fn orient2d(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Classifies the turn made by `a → b → c` with a relative epsilon guard.
pub fn orientation(a: Point, b: Point, c: Point) -> Orientation {
    let det = orient2d(a, b, c);
    // Scale-aware threshold: |det| is compared against eps * the product of
    // the two edge lengths involved, so the classification is invariant
    // under uniform scaling of the input.
    let scale = (b - a).norm() * (c - a).norm();
    let guard = crate::EPS * scale.max(f64::MIN_POSITIVE);
    if det > guard {
        Orientation::CounterClockwise
    } else if det < -guard {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// In-circle predicate: is `d` strictly inside the circumcircle of the
/// counter-clockwise triangle `(a, b, c)`?
///
/// Returns a positive value when `d` is inside, negative when outside and
/// near zero when cocircular. The sign convention assumes `(a, b, c)` is
/// counter-clockwise; callers (Delaunay) must enforce that.
///
/// ```
/// use anr_geom::{in_circle, Point};
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(2.0, 0.0);
/// let c = Point::new(1.0, 2.0);
/// assert!(in_circle(a, b, c, Point::new(1.0, 0.5)) > 0.0); // inside
/// assert!(in_circle(a, b, c, Point::new(10.0, 10.0)) < 0.0); // outside
/// ```
pub fn in_circle(a: Point, b: Point, c: Point, d: Point) -> f64 {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;

    let ad = adx * adx + ady * ady;
    let bd = bdx * bdx + bdy * bdy;
    let cd = cdx * cdx + cdy * cdy;

    adx * (bdy * cd - bd * cdy) - ady * (bdx * cd - bd * cdx) + ad * (bdx * cdy - bdy * cdx)
}

/// Circumcenter of triangle `(a, b, c)`.
///
/// Returns `None` when the triangle is (numerically) degenerate.
pub fn circumcenter(a: Point, b: Point, c: Point) -> Option<Point> {
    let d = 2.0 * ((a.x - c.x) * (b.y - c.y) - (b.x - c.x) * (a.y - c.y));
    let scale = (a - c).norm() * (b - c).norm();
    if d.abs() <= crate::EPS * scale.max(f64::MIN_POSITIVE) {
        return None;
    }
    let a2 = a.x * a.x + a.y * a.y;
    let b2 = b.x * b.x + b.y * b.y;
    let c2 = c.x * c.x + c.y * c.y;
    let ux = (a2 - c2) * (b.y - c.y) - (b2 - c2) * (a.y - c.y);
    let uy = (b2 - c2) * (a.x - c.x) - (a2 - c2) * (b.x - c.x);
    Some(Point::new(ux / d, uy / d))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn orientation_basic() {
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orientation(p(0.0, 0.0), p(0.0, 1.0), p(1.0, 0.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn orientation_is_scale_invariant() {
        for s in [1e-6, 1.0, 1e6] {
            assert_eq!(
                orientation(p(0.0, 0.0), p(s, 0.0), p(0.0, s)),
                Orientation::CounterClockwise
            );
        }
    }

    #[test]
    fn orient2d_antisymmetry() {
        let (a, b, c) = (p(0.3, 0.7), p(2.5, -1.0), p(-4.0, 3.0));
        assert!((orient2d(a, b, c) + orient2d(b, a, c)).abs() < 1e-12);
    }

    #[test]
    fn in_circle_center_inside() {
        // Unit circle through three points; the center must be inside.
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        assert!(in_circle(a, b, c, p(0.0, 0.0)) > 0.0);
        assert!(in_circle(a, b, c, p(5.0, 5.0)) < 0.0);
    }

    #[test]
    fn in_circle_cocircular_is_near_zero() {
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        let d = p(0.0, -1.0);
        assert!(in_circle(a, b, c, d).abs() < 1e-9);
    }

    #[test]
    fn circumcenter_of_right_triangle() {
        // Right triangle: circumcenter is the hypotenuse midpoint.
        let cc = circumcenter(p(0.0, 0.0), p(2.0, 0.0), p(0.0, 2.0)).unwrap();
        assert!((cc.x - 1.0).abs() < 1e-12);
        assert!((cc.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circumcenter_degenerate_is_none() {
        assert!(circumcenter(p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)).is_none());
    }

    #[test]
    fn circumcenter_is_equidistant() {
        let (a, b, c) = (p(0.2, 0.1), p(5.0, -2.0), p(3.0, 4.0));
        let cc = circumcenter(a, b, c).unwrap();
        let ra = cc.distance(a);
        assert!((cc.distance(b) - ra).abs() < 1e-9);
        assert!((cc.distance(c) - ra).abs() < 1e-9);
    }
}
