//! Property-based tests for the geometry substrate.

use anr_geom::{
    barycentric_coords, barycentric_interpolate, normalize_angle, orient2d, rotate_point, Aabb,
    Point, Polygon, Rotation, Segment, Triangle, Vector,
};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    -1000.0..1000.0f64
}

fn arb_point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

/// A triangle with reasonable (non-sliver) area.
fn fat_triangle() -> impl Strategy<Value = Triangle> {
    (arb_point(), arb_point(), arb_point())
        .prop_map(|(a, b, c)| Triangle::new(a, b, c))
        .prop_filter("non-degenerate", |t| t.area() > 1.0)
}

proptest! {
    #[test]
    fn orient2d_antisymmetric(a in arb_point(), b in arb_point(), c in arb_point()) {
        let scale = orient2d(a, b, c).abs().max(1.0);
        prop_assert!((orient2d(a, b, c) + orient2d(b, a, c)).abs() / scale < 1e-9);
    }

    #[test]
    fn orient2d_cyclic(a in arb_point(), b in arb_point(), c in arb_point()) {
        let scale = orient2d(a, b, c).abs().max(1.0);
        prop_assert!((orient2d(a, b, c) - orient2d(b, c, a)).abs() / scale < 1e-6);
    }

    #[test]
    fn distance_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    #[test]
    fn barycentric_coords_sum_to_one(t in fat_triangle(), p in arb_point()) {
        let (t1, t2, t3) = barycentric_coords(&t, p).unwrap();
        prop_assert!((t1 + t2 + t3 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn barycentric_identity_reconstruction(t in fat_triangle(), p in arb_point()) {
        // Interpolating the corners' own coordinates reproduces p, even
        // outside the triangle (affine extension).
        let r = barycentric_interpolate(&t, p, t.a, t.b, t.c).unwrap();
        let scale = t.longest_edge().max(p.to_vector().norm()).max(1.0);
        prop_assert!(r.distance(p) / scale < 1e-6);
    }

    #[test]
    fn interior_points_have_nonnegative_coords(
        t in fat_triangle(),
        w1 in 0.01..1.0f64,
        w2 in 0.01..1.0f64,
        w3 in 0.01..1.0f64,
    ) {
        // A convex combination of the corners must be inside.
        let s = w1 + w2 + w3;
        let p = Point::new(
            (w1 * t.a.x + w2 * t.b.x + w3 * t.c.x) / s,
            (w1 * t.a.y + w2 * t.b.y + w3 * t.c.y) / s,
        );
        prop_assert!(t.contains(p));
    }

    #[test]
    fn rotation_preserves_distances(
        p in arb_point(),
        q in arb_point(),
        c in arb_point(),
        theta in -10.0..10.0f64,
    ) {
        let r = Rotation::about(c, theta);
        let scale = p.distance(q).max(1.0);
        prop_assert!((r.apply(p).distance(r.apply(q)) - p.distance(q)).abs() / scale < 1e-9);
    }

    #[test]
    fn rotation_roundtrip(p in arb_point(), c in arb_point(), theta in -10.0..10.0f64) {
        let there = rotate_point(p, c, theta);
        let back = rotate_point(there, c, -theta);
        prop_assert!(back.distance(p) < 1e-6 * (1.0 + p.to_vector().norm() + c.to_vector().norm()));
    }

    #[test]
    fn normalize_angle_in_range(theta in -100.0..100.0f64) {
        let n = normalize_angle(theta);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&n));
        // Same direction: sin/cos agree.
        prop_assert!((n.sin() - theta.sin()).abs() < 1e-9);
        prop_assert!((n.cos() - theta.cos()).abs() < 1e-9);
    }

    #[test]
    fn segment_closest_point_is_closest(
        a in arb_point(), b in arb_point(), p in arb_point(), t in 0.0..1.0f64
    ) {
        let seg = Segment::new(a, b);
        let best = seg.distance_to_point(p);
        // No sampled point on the segment is closer.
        prop_assert!(best <= seg.at(t).distance(p) + 1e-9);
    }

    #[test]
    fn aabb_contains_its_points(pts in prop::collection::vec(arb_point(), 1..20)) {
        let bb = Aabb::from_points(pts.iter().copied()).unwrap();
        for p in &pts {
            prop_assert!(bb.contains(*p));
        }
    }

    #[test]
    fn regular_polygon_contains_center(cx in finite_coord(), cy in finite_coord(),
                                       r in 0.1..100.0f64, n in 3usize..40) {
        let c = Point::new(cx, cy);
        let poly = Polygon::regular(c, r, n);
        prop_assert!(poly.contains(c));
        prop_assert!(poly.is_ccw());
    }

    #[test]
    fn polygon_translation_preserves_area(
        r in 1.0..100.0f64, n in 3usize..20, dx in finite_coord(), dy in finite_coord()
    ) {
        let poly = Polygon::regular(Point::ORIGIN, r, n);
        let moved = poly.translated(Vector::new(dx, dy));
        prop_assert!((moved.area() - poly.area()).abs() / poly.area() < 1e-9);
    }

    #[test]
    fn centroid_inside_convex_polygon(r in 1.0..100.0f64, n in 3usize..30) {
        let poly = Polygon::regular(Point::new(5.0, 5.0), r, n);
        prop_assert!(poly.contains(poly.centroid()));
    }

    #[test]
    fn resampled_points_on_boundary(r in 1.0..50.0f64, n in 3usize..12, spacing in 0.5..5.0f64) {
        let poly = Polygon::regular(Point::ORIGIN, r, n);
        for p in poly.resample_boundary(spacing, 8) {
            prop_assert!(poly.distance_to_boundary(p) < 1e-6);
        }
    }
}
