// Raw strings with `#` guards: everything between the quotes is opaque,
// including unbalanced braces, quotes, and fake rule trips.
pub fn raw_guarded() -> &'static str {
    r#"unbalanced { { { and a "quoted" panic!() and unwrap() "#
}

pub fn raw_double_guard() -> &'static str {
    r##"contains "# (a one-hash closer) and }} braces"##
}

pub fn raw_plain() -> &'static str {
    r"no guard } at all"
}

pub fn raw_identifiers() -> u32 {
    let r#type = 1u32;
    let r#fn = 2u32;
    r#type + r#fn
}

pub fn marker_raw_strings() {}
