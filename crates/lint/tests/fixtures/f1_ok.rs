//! F1 fixture: total order, no panic path.
pub fn rank(xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
}
