//! T1 fixture: a `_traced` twin that does extra work.
pub fn settle(xs: &mut [u32]) {
    relax(xs);
}

pub fn settle_traced(xs: &mut [u32], tracer: &Tracer) {
    let _span = tracer.span("settle");
    relax(xs);
    renormalize(xs);
}

fn relax(_xs: &mut [u32]) {}
fn renormalize(_xs: &mut [u32]) {}
