//! Fixture crate `beta`: calls into `alpha` through a trait method, a
//! qualified path, and a re-exported free function.

use alpha::{deep, Draw, Widget};

pub fn run() -> u32 {
    let w = Widget;
    w.draw() + deep() + alpha::Widget::render(&w)
}
