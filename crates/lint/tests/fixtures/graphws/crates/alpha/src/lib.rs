//! Fixture crate `alpha`: a type with an inherent method, a trait with
//! a dispatchable method, and a `pub use` re-export — everything the
//! call-graph builder must resolve from `beta`.

pub struct Widget;

impl Widget {
    pub fn render(&self) -> u32 {
        helper()
    }
}

pub trait Draw {
    fn draw(&self) -> u32;
}

impl Draw for Widget {
    fn draw(&self) -> u32 {
        self.render()
    }
}

fn helper() -> u32 {
    7
}

pub mod inner {
    pub fn deep() -> u32 {
        9
    }
}

pub use inner::deep;
