//! D2 fixture: wall-clock reads outside the trace wall module.
use std::time::Instant;

pub fn stage_ms() -> u128 {
    let t0 = Instant::now();
    run_stage();
    t0.elapsed().as_millis()
}

fn run_stage() {}
