//! H1 fixture: a crate root with no hygiene headers.

pub fn noop() {}
