//! P1 fixture: the same logic with panic-free signatures.
pub fn head(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn pick(flag: bool) -> Option<u32> {
    flag.then_some(1)
}
