//! D2 fixture: logical time only — no clock reads at all.
pub fn stage_ticks(clock: &mut u64) -> u64 {
    *clock += 1;
    *clock
}
