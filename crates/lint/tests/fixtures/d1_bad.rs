//! D1 fixture: a hash map in a shipping output path.
use std::collections::HashMap;

pub fn degree_sum(adj: &HashMap<u32, Vec<u32>>) -> usize {
    adj.values().map(Vec::len).sum()
}
