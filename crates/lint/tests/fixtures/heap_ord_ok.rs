//! Priority-queue fixture: a `BinaryHeap` over a key-only manual `Ord`
//! — the `anr-eventsim` event-queue idiom. Must stay clean under every
//! rule: ordered collections are sanctioned (D1 targets hash maps, not
//! heaps) and a total, integer-keyed `Ord` needs no `partial_cmp`
//! unwrapping (F1) nor any other panic path (P1).
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A queued event ordered by `(due, class, ord)` only; the payload is
/// deliberately excluded from the ordering.
pub struct Event {
    /// Delivery time.
    pub due: u64,
    /// Tie-break class at equal times.
    pub class: u8,
    /// Final tie-break: unique sequence number.
    pub ord: u64,
    /// Payload; never compared.
    pub payload: Vec<u8>,
}

impl Event {
    fn key(&self) -> (u64, u8, u64) {
        (self.due, self.class, self.ord)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Drains events in `(due, class, ord)` order via a min-heap.
pub fn drain_in_order(events: Vec<Event>) -> Vec<(u64, u8, u64)> {
    let mut heap: BinaryHeap<Reverse<Event>> = events.into_iter().map(Reverse).collect();
    let mut out = Vec::with_capacity(heap.len());
    while let Some(Reverse(ev)) = heap.pop() {
        out.push(ev.key());
    }
    out
}
