//! D4 fixture: every RNG comes from an explicit seed.
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub fn scramble(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}
