/* outer { unbalanced
   /* inner } also unbalanced, plus unwrap() and panic!() */
   still inside the outer comment } } }
*/
pub fn after_nested() -> u32 {
    41 /* inline /* deeply /* nested */ */ } */ + 1
}

pub fn marker_nested_comments() {}
