//! D3 fixture: raw thread spawning outside anr-par.
pub fn run_pair() {
    let h = std::thread::spawn(|| 1 + 1);
    drop(h);
}
