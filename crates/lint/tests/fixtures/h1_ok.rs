//! H1 fixture: both crate-level hygiene attributes present.
#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub fn noop() {}
