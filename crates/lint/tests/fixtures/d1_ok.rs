//! D1 fixture: ordered collections ship; hash maps stay in tests.
use std::collections::BTreeMap;

pub fn degree_sum(adj: &BTreeMap<u32, Vec<u32>>) -> usize {
    adj.values().map(Vec::len).sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn scratch_maps_are_fine_here() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.is_empty());
    }
}
