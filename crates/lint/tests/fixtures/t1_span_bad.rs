//! T1 fixture: span guards dropped on the spot.
pub fn step(tracer: &Tracer) {
    tracer.span("step");
    let _ = tracer.span("also-zero-width");
    work();
}

fn work() {}
