// Byte and char literals whose payload is a brace or quote: the lexer
// must treat them as opaque literals, not structural punctuation.
pub fn braces_in_chars() -> (char, char, u8, u8) {
    ('}', '{', b'}', b'{')
}

pub fn quotes_and_escapes() -> (char, char, u8, &'static [u8]) {
    ('\'', '\\', b'\'', b"bytes with } inside")
}

pub fn lifetimes_next_to_chars<'a>(x: &'a char) -> char {
    let c: char = *x;
    let d = '"';
    if c == d {
        '}'
    } else {
        c
    }
}

pub fn marker_byte_chars() {}
