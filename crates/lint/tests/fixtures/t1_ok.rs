//! T1 fixture: bound guards and a delegating plain twin.
pub fn settle(xs: &mut [u32]) {
    settle_traced(xs, &Tracer::disabled());
}

pub fn settle_traced(xs: &mut [u32], tracer: &Tracer) {
    let _span = tracer.span("settle");
    relax(xs);
    renormalize(xs);
}

fn relax(_xs: &mut [u32]) {}
fn renormalize(_xs: &mut [u32]) {}
