//! D4 fixture: an RNG seeded from the environment.
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub fn scramble() -> SmallRng {
    SmallRng::from_entropy()
}
