//! D3 fixture: no raw threads; anr-par owns parallelism.
pub fn run_pair(xs: &[u32]) -> Vec<u32> {
    xs.iter().map(|x| x + 1).collect()
}
