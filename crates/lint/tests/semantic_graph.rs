//! Integration tests for the interprocedural layer: the cross-crate
//! call graph against its golden artifact, S1 panic-reachability on an
//! injected entry-point chain, panic-report determinism on the real
//! workspace, and `--write-baseline` regeneration.

use anr_lint::{
    lint_workspace, render_baseline, write_baseline, AllowEntry, LintOptions, LintReport,
    ENTRY_POINTS,
};
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root exists")
}

fn graphws_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/graphws")
}

fn lint_at(root: &Path, workers: usize) -> LintReport {
    let options = LintOptions {
        root: root.to_path_buf(),
        baseline: None,
        workers,
    };
    lint_workspace(&options).expect("lint run succeeds")
}

/// The fixture workspace — cross-crate calls, trait-method dispatch,
/// and a `pub use` re-export — serializes to exactly the checked-in
/// `anr-lint-graph/1` golden file, for any worker count.
#[test]
fn call_graph_matches_golden_file() {
    let golden = fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/graphws.golden.jsonl"),
    )
    .expect("golden file");
    let first = lint_at(&graphws_root(), 1).graph.to_jsonl();
    assert_eq!(first, golden, "graph drifted from the golden artifact");
    // Byte-identical on a second run and with parallel scanning.
    assert_eq!(lint_at(&graphws_root(), 1).graph.to_jsonl(), golden);
    assert_eq!(lint_at(&graphws_root(), 4).graph.to_jsonl(), golden);
}

/// The golden graph encodes the semantic facts the S-rules rely on:
/// the trait-method call from `beta` resolves into `alpha`, and the
/// re-exported free function is linked despite the `pub use`.
#[test]
fn call_graph_resolves_cross_crate_edges() {
    let graph = lint_at(&graphws_root(), 1).graph;
    let jsonl = graph.to_jsonl();
    let run_line = jsonl
        .lines()
        .find(|l| l.contains("\"fn\":\"beta::run\""))
        .expect("beta::run node");
    // beta::run must call at least the method-dispatch candidates and
    // the re-exported alpha::deep — i.e. a non-empty cross-crate edge
    // list.
    assert!(
        !run_line.contains("\"calls\":[]"),
        "beta::run resolved no callees: {run_line}"
    );
    let deep_id: usize = jsonl
        .lines()
        .find(|l| l.contains("\"fn\":\"alpha::deep\""))
        .and_then(|l| {
            let tail = l.split("\"id\":").nth(1)?;
            tail.split(',').next()?.trim().parse().ok()
        })
        .expect("alpha::deep node with id");
    assert!(
        run_line.contains(&format!("{deep_id}")),
        "beta::run must link the re-exported alpha::deep (id {deep_id}): {run_line}"
    );
}

/// Acceptance criterion: injecting a call from `march` to an
/// unwrap-bearing helper turns S1 red, with the full chain reported.
#[test]
fn injected_march_panic_chain_turns_s1_red() {
    assert!(ENTRY_POINTS.contains(&"march"), "march is a guarded entry");
    let scratch = std::env::temp_dir().join(format!("anr-lint-s1-{}", std::process::id()));
    let src_dir = scratch.join("crates/demo/src");
    fs::create_dir_all(&src_dir).expect("scratch dirs");
    fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\n#![deny(unreachable_pub)]\n\
         //! Scratch crate.\n\
         pub fn march(x: Option<u32>) -> u32 { helper(x) }\n\
         fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("scratch lib.rs");

    let report = lint_at(&scratch, 1);
    let s1: Vec<_> = report.findings.iter().filter(|f| f.rule == "S1").collect();
    assert_eq!(s1.len(), 1, "exactly one entry point reaches the panic");
    assert!(!s1[0].baselined);
    let chain = s1[0].path.as_deref().expect("S1 carries its chain");
    assert_eq!(chain, "demo::march -> demo::helper");
    assert!(s1[0].message.contains("`.unwrap()`"));

    // A path-justified baseline entry absorbs it; a mismatched path
    // does not.
    fs::write(
        scratch.join("lint.allow.toml"),
        "[[allow]]\nrule = \"S1\"\nfile = \"crates/demo/src/lib.rs\"\n\
         path = \"demo::helper\"\ncount = 1\nreason = \"fixture\"\n",
    )
    .expect("scratch baseline");
    let report = lint_workspace(&LintOptions {
        root: scratch.clone(),
        baseline: None,
        workers: 1,
    })
    .expect("scratch lint");
    assert!(
        report
            .findings
            .iter()
            .filter(|f| f.rule == "S1")
            .all(|f| f.baselined),
        "path-pinned entry must absorb the matching chain"
    );

    fs::remove_dir_all(&scratch).expect("scratch cleanup");
}

/// Acceptance criterion: the panic-reachability report over the real
/// workspace — including the six pipeline entry points — is
/// byte-identical across runs and worker counts.
#[test]
fn panics_report_is_deterministic_on_this_workspace() {
    let a = lint_at(&repo_root(), 1).panics.to_jsonl();
    let b = lint_at(&repo_root(), 1).panics.to_jsonl();
    let c = lint_at(&repo_root(), 4).panics.to_jsonl();
    assert_eq!(a, b, "panics report differs between runs");
    assert_eq!(a, c, "panics report differs across worker counts");
    assert!(a.starts_with("{\"schema\":\"anr-lint-panics/1\""));
    // Every guarded entry point appears in the report.
    for entry in ENTRY_POINTS {
        assert!(
            a.contains(&format!("::{entry}\"")),
            "panics report missing entry point {entry}"
        );
    }
}

/// `--write-baseline` output is byte-identical across two runs, keeps
/// existing justifications, and marks new entries UNJUSTIFIED.
#[test]
fn write_baseline_is_deterministic_and_keeps_reasons() {
    let scratch = std::env::temp_dir().join(format!("anr-lint-wb-{}", std::process::id()));
    let src_dir = scratch.join("crates/demo/src");
    fs::create_dir_all(&src_dir).expect("scratch dirs");
    fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\n#![deny(unreachable_pub)]\n\
         //! Scratch crate.\n\
         pub fn march(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("scratch lib.rs");

    let options = LintOptions {
        root: scratch.clone(),
        baseline: None,
        workers: 1,
    };
    let first = write_baseline(&options, "").expect("write-baseline");
    let second = write_baseline(&options, "").expect("write-baseline again");
    assert_eq!(first, second, "regeneration must be byte-identical");
    assert!(first.contains("UNJUSTIFIED"), "new entries need reasons");
    assert!(first.contains("rule = \"P1\""));
    assert!(first.contains("rule = \"S1\""));
    assert!(
        first.contains("path = "),
        "S1 entries are pinned to their chain"
    );

    // Write a justification; regeneration preserves it and drops
    // nothing else.
    let justified = first.replace(
        "UNJUSTIFIED: write a one-line justification",
        "fixture: documented panic",
    );
    let third = write_baseline(&options, &justified).expect("write-baseline keeps reasons");
    assert!(third.contains("fixture: documented panic"));
    assert!(!third.contains("UNJUSTIFIED"));

    fs::remove_dir_all(&scratch).expect("scratch cleanup");
}

/// `render_baseline` is the deterministic serializer behind
/// `--write-baseline`: entries come out sorted by (rule, file, path)
/// with reasons escaped, regardless of input order.
#[test]
fn render_baseline_sorts_and_round_trips() {
    let entries = vec![
        AllowEntry {
            rule: "S1".to_string(),
            file: "crates/b/src/lib.rs".to_string(),
            count: 1,
            reason: "chain justified".to_string(),
            used: 0,
            path: Some("par::par_map".to_string()),
        },
        AllowEntry {
            rule: "P1".to_string(),
            file: "crates/a/src/lib.rs".to_string(),
            count: 2,
            reason: "documented \"fail-fast\"".to_string(),
            used: 0,
            path: None,
        },
    ];
    let mut reversed = entries.clone();
    reversed.reverse();
    let rendered = render_baseline(&entries);
    assert_eq!(rendered, render_baseline(&reversed), "order-insensitive");
    let p1 = rendered.find("rule = \"P1\"").expect("P1 entry");
    let s1 = rendered.find("rule = \"S1\"").expect("S1 entry");
    assert!(p1 < s1, "entries sorted by rule");
    assert!(rendered.contains("path = \"par::par_map\""));
    assert!(rendered.contains("\\\"fail-fast\\\""), "reasons escaped");
    // The rendered text parses back to the same entries.
    let parsed = anr_lint::parse_baseline(&rendered).expect("round trip");
    assert_eq!(parsed.len(), 2);
    assert_eq!(parsed[0].rule, "P1");
    assert_eq!(parsed[0].reason, "documented \"fail-fast\"");
    assert_eq!(parsed[1].path.as_deref(), Some("par::par_map"));
}
