//! The analyzer gates this very repository: the workspace must pass
//! `--deny` against the checked-in baseline, an injected violation must
//! fail it, and the JSONL output must follow the documented schema.

use anr_lint::{lint_workspace, LintOptions, LintReport};
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root exists")
}

fn lint_repo() -> LintReport {
    lint_workspace(&LintOptions::at(repo_root())).expect("lint run succeeds")
}

/// The gate the CI job enforces: zero non-baselined findings and no
/// stale baseline entries.
#[test]
fn workspace_is_clean_under_deny() {
    let report = lint_repo();
    let open: Vec<String> = report
        .findings
        .iter()
        .filter(|f| !f.baselined)
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        open.is_empty(),
        "non-baselined lint findings:\n{}",
        open.join("\n")
    );
    assert!(
        report.stale.is_empty(),
        "stale lint.allow.toml entries: {:?}",
        report.stale
    );
    assert!(
        report.files_scanned > 100,
        "walker should see the whole workspace"
    );
}

/// Injecting a violation into a scratch workspace turns the gate red;
/// baselining it with a justification turns it green again.
#[test]
fn injected_violation_fails_the_gate() {
    let scratch = std::env::temp_dir().join(format!("anr-lint-inject-{}", std::process::id()));
    let src_dir = scratch.join("crates/demo/src");
    fs::create_dir_all(&src_dir).expect("scratch dirs");
    fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\n#![deny(unreachable_pub)]\n\
         pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("scratch lib.rs");

    let report = lint_workspace(&LintOptions::at(&scratch)).expect("scratch lint");
    let mut rules: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| !f.baselined)
        .map(|f| f.rule)
        .collect();
    rules.sort_unstable();
    // The token rule catches the unwrap; the semantic layer also flags
    // the export nothing references.
    assert_eq!(rules, ["P1", "S3"], "the injected unwrap must be caught");

    // Justified baseline entries absorb both.
    fs::write(
        scratch.join("lint.allow.toml"),
        "[[allow]]\nrule = \"P1\"\nfile = \"crates/demo/src/lib.rs\"\ncount = 1\n\
         reason = \"demo of the ratchet workflow\"\n\
         [[allow]]\nrule = \"S3\"\nfile = \"crates/demo/src/lib.rs\"\ncount = 1\n\
         reason = \"scratch crate has no consumers yet\"\n",
    )
    .expect("scratch baseline");
    let report = lint_workspace(&LintOptions::at(&scratch)).expect("scratch lint");
    assert_eq!(report.non_baselined(), 0);
    assert_eq!(report.baselined(), 2);

    fs::remove_dir_all(&scratch).expect("scratch cleanup");
}

/// Every JSONL line follows the documented `anr-lint/2` schema: finding
/// records plus one trailing summary record.
#[test]
fn jsonl_output_matches_schema() {
    let report = lint_repo();
    let jsonl = report.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), report.findings.len() + 1);

    for line in &lines[..lines.len() - 1] {
        assert!(line.starts_with("{\"schema\":\"anr-lint/2\",\"kind\":\"finding\""));
        for key in [
            "\"rule\":",
            "\"severity\":",
            "\"file\":",
            "\"line\":",
            "\"col\":",
            "\"message\":",
            "\"hint\":",
            "\"baselined\":",
        ] {
            assert!(line.contains(key), "finding line missing {key}: {line}");
        }
        assert!(line.ends_with('}'));
    }

    let summary = lines.last().expect("summary line");
    assert!(summary.starts_with("{\"schema\":\"anr-lint/2\",\"kind\":\"summary\""));
    for key in [
        "\"files\":",
        "\"findings\":",
        "\"baselined\":",
        "\"non_baselined\":",
        "\"stale_allows\":",
    ] {
        assert!(summary.contains(key), "summary missing {key}");
    }
}

/// The report is byte-identical across two runs on the same tree — the
/// analyzer obeys the determinism bar it enforces.
#[test]
fn lint_output_is_deterministic() {
    assert_eq!(lint_repo().to_jsonl(), lint_repo().to_jsonl());
}
