//! Lexer edge cases that would corrupt the item parser if mis-lexed:
//! raw strings with `#` guards, nested block comments, and byte/char
//! literals containing structural characters. Each fixture carries
//! braces inside opaque regions; if any leaked, brace matching — and
//! with it every item boundary the parser finds — would be off.

use anr_lint::{lex, scan_source, TokKind, Token};

fn balance(toks: &[Token]) -> i64 {
    toks.iter().fold(0i64, |acc, t| {
        if t.is_punct("{") {
            acc + 1
        } else if t.is_punct("}") {
            acc - 1
        } else {
            acc
        }
    })
}

fn has_ident(toks: &[Token], name: &str) -> bool {
    toks.iter().any(|t| t.is_ident(name))
}

#[test]
fn raw_strings_with_hash_guards_are_opaque() {
    let src = include_str!("fixtures/lexer_raw_strings.rs");
    let toks = lex(src);
    assert_eq!(
        balance(&toks),
        0,
        "brace payloads leaked out of raw strings"
    );
    assert!(has_ident(&toks, "marker_raw_strings"));
    // The fake `panic!()`/`unwrap()` live inside string payloads only.
    assert!(!has_ident(&toks, "panic"));
    assert!(!has_ident(&toks, "unwrap"));
    assert!(scan_source("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn raw_identifiers_are_idents_not_literals() {
    let toks = lex("let r#type = 1; let r#fn = r#type;");
    // No phantom `r#` literal token, and the keyword-shaped names keep
    // their prefix so they never match `fn`/`type` keywords.
    assert!(toks
        .iter()
        .all(|t| t.kind != TokKind::Literal || t.text != "r#"));
    assert_eq!(toks.iter().filter(|t| t.is_ident("r#type")).count(), 2);
    assert_eq!(toks.iter().filter(|t| t.is_ident("r#fn")).count(), 1);
    assert!(!has_ident(&toks, "fn"));
}

#[test]
fn nested_block_comments_are_skipped_entirely() {
    let src = include_str!("fixtures/lexer_nested_comments.rs");
    let toks = lex(src);
    assert_eq!(balance(&toks), 0, "braces leaked out of nested comments");
    assert!(has_ident(&toks, "marker_nested_comments"));
    assert!(!has_ident(&toks, "unwrap"));
    assert!(scan_source("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn byte_and_char_literals_containing_braces_are_opaque() {
    let src = include_str!("fixtures/lexer_byte_chars.rs");
    let toks = lex(src);
    assert_eq!(balance(&toks), 0, "brace chars leaked as punctuation");
    assert!(has_ident(&toks, "marker_byte_chars"));
    for payload in ["'}'", "'{'", "b'}'", "b'{'", "'\\''", "b'\\''"] {
        assert!(
            toks.iter()
                .any(|t| t.kind == TokKind::Literal && t.text == payload),
            "expected literal token {payload}"
        );
    }
    assert!(scan_source("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn raw_string_closer_needs_full_guard() {
    // `"#` inside an `r##"…"##` string is payload, not a terminator.
    let toks = lex(r####"let s = r##"stop "# not yet"## ; done"####);
    let lit = toks
        .iter()
        .find(|t| t.kind == TokKind::Literal)
        .expect("raw string literal");
    assert!(lit.text.contains("not yet"));
    assert!(has_ident(&toks, "done"));
}
