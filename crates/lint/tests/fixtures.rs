//! Fixture-based rule tests: each `*_bad.rs` fixture trips exactly its
//! rule, each `*_ok.rs` twin is clean, and the path-based exemptions
//! (wall module, anr-par, binaries, test code) hold.
//!
//! Fixtures live in `tests/fixtures/` — a directory the workspace
//! walker deliberately skips, so the bad ones never show up in a real
//! lint run.

use anr_lint::scan_source;

/// Distinct rule ids tripped by scanning `src` as `rel_path`.
fn rules_at(rel_path: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<_> = scan_source(rel_path, src).iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

/// The bad fixture trips exactly `rule` (at `bad_path`); the ok fixture
/// is clean at the same path.
fn check_pair(rule: &str, bad_path: &str, bad: &str, ok: &str) {
    assert_eq!(
        rules_at(bad_path, bad),
        vec![rule],
        "bad fixture for {rule} should trip exactly {rule}"
    );
    assert_eq!(
        rules_at(bad_path, ok),
        Vec::<&str>::new(),
        "ok fixture for {rule} should be clean"
    );
}

const LIB: &str = "crates/core/src/fixture.rs";

#[test]
fn d1_hash_collections() {
    let bad = include_str!("fixtures/d1_bad.rs");
    check_pair("D1", LIB, bad, include_str!("fixtures/d1_ok.rs"));
    // The identical code is fine in a test target.
    assert!(rules_at("crates/core/tests/fixture.rs", bad).is_empty());
}

#[test]
fn d2_wall_clock() {
    let bad = include_str!("fixtures/d2_bad.rs");
    check_pair("D2", LIB, bad, include_str!("fixtures/d2_ok.rs"));
    // The trace crate's wall module is the one sanctioned reader.
    assert!(rules_at("crates/trace/src/wall.rs", bad).is_empty());
}

#[test]
fn d3_raw_threads() {
    let bad = include_str!("fixtures/d3_bad.rs");
    check_pair("D3", LIB, bad, include_str!("fixtures/d3_ok.rs"));
    // anr-par is where threads are allowed to live.
    assert!(rules_at("crates/par/src/pool.rs", bad).is_empty());
}

#[test]
fn d4_unseeded_rng() {
    check_pair(
        "D4",
        LIB,
        include_str!("fixtures/d4_bad.rs"),
        include_str!("fixtures/d4_ok.rs"),
    );
}

#[test]
fn p1_library_panics() {
    let bad = include_str!("fixtures/p1_bad.rs");
    check_pair("P1", LIB, bad, include_str!("fixtures/p1_ok.rs"));
    // Binaries may fail fast; the rule is library-only.
    assert!(rules_at("crates/cli/src/fixture.rs", bad).is_empty());
}

#[test]
fn f1_partial_cmp_unwrap() {
    // Checked at a binary path so the P1 overlap stays out of the way;
    // at a library path the same code trips F1 *and* P1.
    let bad = include_str!("fixtures/f1_bad.rs");
    check_pair(
        "F1",
        "crates/cli/src/fixture.rs",
        bad,
        include_str!("fixtures/f1_ok.rs"),
    );
    assert_eq!(rules_at(LIB, bad), vec!["F1", "P1"]);
}

#[test]
fn t1_span_guards_and_twins() {
    check_pair(
        "T1",
        LIB,
        include_str!("fixtures/t1_span_bad.rs"),
        include_str!("fixtures/t1_ok.rs"),
    );
    check_pair(
        "T1",
        LIB,
        include_str!("fixtures/t1_twin_bad.rs"),
        include_str!("fixtures/t1_ok.rs"),
    );
    // The span-guard fixture has two drop sites: the bare statement and
    // the `let _ =` binding.
    let hits = scan_source(LIB, include_str!("fixtures/t1_span_bad.rs"));
    assert_eq!(hits.len(), 2);
}

#[test]
fn h1_crate_headers() {
    // H1 only fires on crate roots, so the pair runs at src/lib.rs.
    let bad = include_str!("fixtures/h1_bad.rs");
    check_pair(
        "H1",
        "crates/core/src/lib.rs",
        bad,
        include_str!("fixtures/h1_ok.rs"),
    );
    // Non-root modules are exempt.
    assert!(rules_at(LIB, bad).is_empty());
}

#[test]
fn binary_heap_with_custom_ord_is_clean() {
    // The anr-eventsim event-queue idiom — a BinaryHeap over a manual
    // key-only Ord — must not trip any rule at a library path: heaps
    // are ordered (D1 is about hash maps), and an integer-keyed total
    // order has no partial_cmp unwrap (F1) or panic path (P1).
    let src = include_str!("fixtures/heap_ord_ok.rs");
    assert!(rules_at(LIB, src).is_empty());
    // Same verdict inside the engine crate itself.
    assert!(rules_at("crates/eventsim/src/fixture.rs", src).is_empty());
}

#[test]
fn findings_carry_positions_and_hints() {
    let hits = scan_source(LIB, include_str!("fixtures/p1_bad.rs"));
    assert!(!hits.is_empty());
    for f in &hits {
        assert!(f.line > 0 && f.col > 0);
        assert!(!f.hint.is_empty());
        assert!(!f.baselined);
    }
}
