//! The rule set: each rule walks a file's token stream and reports
//! findings. Rules are deliberately syntactic — no type information —
//! so every pattern is chosen to be cheap, deterministic, and
//! low-false-positive on this workspace's idiom.

use crate::context::{call_names, functions, matching, FileCtx, FileKind};

/// Finding severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Breaks a repo invariant (reproducibility or panic-freedom).
    Error,
    /// Risky pattern; may be justified via the baseline.
    Warn,
}

impl Severity {
    /// Lower-case label used in reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`D1`, `P1`, …).
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
    /// Covered by a `lint.allow.toml` entry?
    pub baselined: bool,
    /// Interprocedural call chain (S-rules): function displays joined
    /// with ` -> `. Baseline entries may pin a substring of this.
    pub path: Option<String>,
}

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule id.
    pub id: &'static str,
    /// Severity of its findings.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
    /// Fix hint attached to findings.
    pub hint: &'static str,
}

/// Every rule the analyzer knows, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        severity: Severity::Warn,
        summary: "HashMap/HashSet in shipping code: iteration order is nondeterministic",
        hint: "use BTreeMap/BTreeSet, or collect keys and sort before iterating",
    },
    RuleInfo {
        id: "D2",
        severity: Severity::Error,
        summary: "wall-clock read outside the anr-trace wall module",
        hint: "route timing through anr-trace's wall module (TraceConfig::wall_clock)",
    },
    RuleInfo {
        id: "D3",
        severity: Severity::Error,
        summary: "raw std::thread use outside anr-par",
        hint: "use anr_par::par_map/par_chunks so output order stays deterministic",
    },
    RuleInfo {
        id: "D4",
        severity: Severity::Error,
        summary: "unseeded RNG construction",
        hint: "construct RNGs with seed_from_u64 from an explicit, logged seed",
    },
    RuleInfo {
        id: "P1",
        severity: Severity::Error,
        summary: "panic path (unwrap/expect/panic!/unreachable!/todo!) in library code",
        hint: "return a typed error (MeshError/HarmonicError/…) or justify in lint.allow.toml",
    },
    RuleInfo {
        id: "F1",
        severity: Severity::Error,
        summary: "partial_cmp(..).unwrap()/expect() float comparison",
        hint: "use f64::total_cmp for a total, panic-free order",
    },
    RuleInfo {
        id: "T1",
        severity: Severity::Error,
        summary: "trace hygiene: dropped span guard or _traced twin diverging from its plain twin",
        hint: "bind span guards (`let _span = tracer.span(..)`) and keep _traced twins observation-only",
    },
    RuleInfo {
        id: "H1",
        severity: Severity::Error,
        summary: "crate root missing #![forbid(unsafe_code)] or #![deny(unreachable_pub)]",
        hint: "add the missing crate-level attribute at the top of lib.rs",
    },
    RuleInfo {
        id: "S1",
        severity: Severity::Error,
        summary: "pipeline entry point can reach a panic site through the call graph",
        hint: "convert the panicking step to a typed error, or path-justify in lint.allow.toml",
    },
    RuleInfo {
        id: "S2",
        severity: Severity::Error,
        summary: "pipeline entry point transitively reaches a nondeterminism sink",
        hint: "thread explicit seeds / logical clocks through the chain instead",
    },
    RuleInfo {
        id: "S3",
        severity: Severity::Warn,
        summary: "pub item is exported but referenced by no other workspace crate or test",
        hint: "demote to pub(crate) or delete the export",
    },
];

/// Looks up a rule by id.
#[must_use]
pub(crate) fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

fn finding(ctx: &FileCtx, rule: &'static str, i: usize, message: String) -> Finding {
    let info = rule_info(rule).unwrap_or(&RULES[0]);
    let t = &ctx.tokens[i];
    Finding {
        rule,
        severity: info.severity,
        file: ctx.rel_path.clone(),
        line: t.line,
        col: t.col,
        message,
        hint: info.hint,
        baselined: false,
        path: None,
    }
}

/// Does `Ident(a) :: Ident(b)` start at token `i`?
fn path2(ctx: &FileCtx, i: usize, a: &str, b: &str) -> bool {
    ctx.tokens[i].is_ident(a)
        && ctx.tokens.get(i + 1).is_some_and(|t| t.is_punct(":"))
        && ctx.tokens.get(i + 2).is_some_and(|t| t.is_punct(":"))
        && ctx.tokens.get(i + 3).is_some_and(|t| t.is_ident(b))
}

/// Is token `i` a method call `.name(`?
fn method_call(ctx: &FileCtx, i: usize, name: &str) -> bool {
    ctx.tokens[i].is_ident(name)
        && i > 0
        && ctx.tokens[i - 1].is_punct(".")
        && ctx.tokens.get(i + 1).is_some_and(|t| t.is_punct("("))
}

/// Is token `i` a macro invocation `name!`?
fn macro_call(ctx: &FileCtx, i: usize, name: &str) -> bool {
    ctx.tokens[i].is_ident(name) && ctx.tokens.get(i + 1).is_some_and(|t| t.is_punct("!"))
}

/// Runs every rule over one file.
#[must_use]
pub fn scan_file(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    rule_d1(ctx, &mut out);
    rule_d2(ctx, &mut out);
    rule_d3(ctx, &mut out);
    rule_d4(ctx, &mut out);
    rule_p1(ctx, &mut out);
    rule_f1(ctx, &mut out);
    rule_t1(ctx, &mut out);
    rule_h1(ctx, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// D1 — `HashMap`/`HashSet` in shipping (lib or bin, non-test) code.
/// Iteration order of the std hash collections varies run to run, so a
/// single use in an output path breaks byte-identical traces.
fn rule_d1(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for i in 0..ctx.tokens.len() {
        if !ctx.is_shipping_code(i) {
            continue;
        }
        let t = &ctx.tokens[i];
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(finding(
                ctx,
                "D1",
                i,
                format!(
                    "`{}` in shipping code (nondeterministic iteration order)",
                    t.text
                ),
            ));
        }
    }
}

/// D2 — wall-clock reads (`Instant::now`, `SystemTime`, `.elapsed()`)
/// anywhere but the dedicated wall module of `anr-trace`. Logical
/// timestamps keep traces byte-identical across machines.
fn rule_d2(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.rel_path == "crates/trace/src/wall.rs" {
        return;
    }
    for i in 0..ctx.tokens.len() {
        if path2(ctx, i, "Instant", "now") {
            out.push(finding(
                ctx,
                "D2",
                i,
                "`Instant::now()` wall-clock read".to_string(),
            ));
        } else if ctx.tokens[i].is_ident("SystemTime") {
            out.push(finding(
                ctx,
                "D2",
                i,
                "`SystemTime` wall-clock use".to_string(),
            ));
        } else if method_call(ctx, i, "elapsed") {
            out.push(finding(
                ctx,
                "D2",
                i,
                "`.elapsed()` wall-clock read".to_string(),
            ));
        }
    }
}

/// D3 — raw `std::thread` spawning outside `anr-par`. The par crate's
/// fork/join helpers are the only sanctioned parallelism: they pin
/// deterministic output order regardless of worker count.
fn rule_d3(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.crate_name == "par" {
        return;
    }
    for i in 0..ctx.tokens.len() {
        for target in ["spawn", "scope", "Builder"] {
            if path2(ctx, i, "thread", target) {
                out.push(finding(
                    ctx,
                    "D3",
                    i,
                    format!("`thread::{target}` outside anr-par"),
                ));
            }
        }
    }
}

/// D4 — unseeded RNG construction. Every random stream in the repo
/// must be reproducible from a logged seed.
fn rule_d4(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for i in 0..ctx.tokens.len() {
        let t = &ctx.tokens[i];
        if t.is_ident("from_entropy") || t.is_ident("thread_rng") {
            out.push(finding(
                ctx,
                "D4",
                i,
                format!("`{}` constructs an unseeded RNG", t.text),
            ));
        } else if path2(ctx, i, "rand", "random") {
            out.push(finding(
                ctx,
                "D4",
                i,
                "`rand::random` uses the thread RNG".to_string(),
            ));
        }
    }
}

/// P1 — panic paths in library (non-test, non-bin) code: `unwrap`,
/// `expect`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`.
/// Library crates surface typed errors; panicking is reserved for
/// documented preconditions (`assert!`) and binaries.
fn rule_p1(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for i in 0..ctx.tokens.len() {
        if !ctx.is_lib_code(i) {
            continue;
        }
        for name in ["unwrap", "expect"] {
            if method_call(ctx, i, name) {
                out.push(finding(
                    ctx,
                    "P1",
                    i,
                    format!("`.{name}()` in library code"),
                ));
            }
        }
        for name in ["panic", "unreachable", "todo", "unimplemented"] {
            if macro_call(ctx, i, name) {
                out.push(finding(ctx, "P1", i, format!("`{name}!` in library code")));
            }
        }
    }
}

/// F1 — `partial_cmp(..).unwrap()`-style float comparisons. These
/// panic on NaN; `f64::total_cmp` is total and panic-free.
fn rule_f1(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for i in 0..ctx.tokens.len() {
        if !ctx.is_shipping_code(i) || !ctx.tokens[i].is_ident("partial_cmp") {
            continue;
        }
        let tail = &ctx.tokens[i + 1..(i + 12).min(ctx.tokens.len())];
        if tail
            .iter()
            .any(|t| t.is_ident("unwrap") || t.is_ident("expect"))
        {
            out.push(finding(
                ctx,
                "F1",
                i,
                "`partial_cmp(..)` followed by unwrap/expect".to_string(),
            ));
        }
    }
}

/// Calls a `_traced` twin may make that its plain twin does not.
const TRACE_ALLOW: &[&str] = &[
    // Tracer API (observation-only by construction).
    "span",
    "span_with",
    "event",
    "counter_add",
    "hist_record",
    "counter",
    "hist",
    "flush",
    "is_enabled",
    "events",
    "take_events",
    "dropped",
    "span_durations_ms",
    "disabled",
    "ring",
    "wall",
    "with_sink",
    "jsonl_file",
    "jsonl_line",
    "id",
    // TraceValue constructors and glue used to build fields.
    "U64",
    "I64",
    "F64",
    "Bool",
    "Str",
    "Some",
    "Ok",
    "Err",
    "Box",
    "vec",
    "to_string",
    "into",
    "from",
    "clone",
    "len",
    "format",
    "as_ref",
];

/// T1 — trace hygiene, two checks:
///
/// 1. A `.span(..)` / `.span_with(..)` guard that is dropped on the
///    spot (bare statement or `let _ =`) closes immediately, producing
///    a zero-width span.
/// 2. A `foo_traced` twin that does not simply delegate must not call
///    anything its plain twin `foo` doesn't, beyond the tracer API —
///    tracing is observation only.
fn rule_t1(ctx: &FileCtx, out: &mut Vec<Finding>) {
    rule_t1_span_guards(ctx, out);
    rule_t1_twins(ctx, out);
}

fn rule_t1_span_guards(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for i in 0..ctx.tokens.len() {
        if ctx.in_test[i] || !(method_call(ctx, i, "span") || method_call(ctx, i, "span_with")) {
            continue;
        }
        // Statement start: just after the previous `;`, `{`, or `}`.
        let start = (0..i)
            .rev()
            .find(|&j| {
                ctx.tokens[j].is_punct(";")
                    || ctx.tokens[j].is_punct("{")
                    || ctx.tokens[j].is_punct("}")
            })
            .map_or(0, |j| j + 1);
        let stmt = &ctx.tokens[start..i];
        if let Some(let_pos) = stmt.iter().position(|t| t.is_ident("let")) {
            // `let _ = tracer.span(..)` drops the guard immediately.
            let binds_underscore = stmt.get(let_pos + 1).is_some_and(|t| t.is_ident("_"))
                && stmt.get(let_pos + 2).is_some_and(|t| t.is_punct("="));
            if binds_underscore {
                out.push(finding(
                    ctx,
                    "T1",
                    i,
                    "span guard bound to `_` is dropped immediately".to_string(),
                ));
            }
            continue;
        }
        if stmt.iter().any(|t| t.is_punct("=") || t.is_ident("return")) {
            continue; // assigned or returned: the guard lives on
        }
        // Bare statement: `tracer.span("x");` — flag when the call's
        // result is discarded (next token after the close paren is `;`).
        if let Some(close) = matching(&ctx.tokens, i + 1, "(", ")") {
            if ctx.tokens.get(close + 1).is_some_and(|t| t.is_punct(";")) {
                out.push(finding(
                    ctx,
                    "T1",
                    i,
                    "span guard discarded: bare `.span(..);` closes the span immediately"
                        .to_string(),
                ));
            }
        }
    }
}

fn rule_t1_twins(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    let fns = functions(&ctx.tokens);
    for f in &fns {
        let Some(plain_name) = f.name.strip_suffix("_traced") else {
            continue;
        };
        let Some(plain) = fns.iter().find(|p| p.name == plain_name) else {
            continue;
        };
        let plain_calls = call_names(&ctx.tokens, plain.body);
        if plain_calls.iter().any(|c| c == &f.name) {
            continue; // plain twin delegates to the traced twin
        }
        let traced_calls = call_names(&ctx.tokens, f.body);
        let extras: Vec<&str> = traced_calls
            .iter()
            .map(String::as_str)
            .filter(|c| !plain_calls.iter().any(|p| p == c) && !TRACE_ALLOW.contains(c))
            .collect();
        if !extras.is_empty() {
            let at = ctx
                .tokens
                .iter()
                .position(|t| t.line == f.line)
                .unwrap_or(0);
            out.push(finding(
                ctx,
                "T1",
                at,
                format!(
                    "`{}` calls {} absent from `{}` and the tracer allowlist",
                    f.name,
                    extras.join(", "),
                    plain_name
                ),
            ));
        }
    }
}

/// H1 — crate roots must carry `#![forbid(unsafe_code)]` and
/// `#![deny(unreachable_pub)]`.
fn rule_h1(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !ctx.is_crate_root() {
        return;
    }
    let mut has_forbid_unsafe = false;
    let mut has_deny_unreachable = false;
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        if toks[i].is_punct("#")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("["))
        {
            if let Some(close) = matching(toks, i + 2, "[", "]") {
                let attr = &toks[i + 2..=close];
                let has = |name: &str| attr.iter().any(|t| t.is_ident(name));
                if has("forbid") && has("unsafe_code") {
                    has_forbid_unsafe = true;
                }
                if has("deny") && has("unreachable_pub") {
                    has_deny_unreachable = true;
                }
            }
        }
    }
    for (ok, attr) in [
        (has_forbid_unsafe, "#![forbid(unsafe_code)]"),
        (has_deny_unreachable, "#![deny(unreachable_pub)]"),
    ] {
        if !ok && !toks.is_empty() {
            out.push(finding(
                ctx,
                "H1",
                0,
                format!("crate root missing `{attr}`"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> Vec<Finding> {
        scan_file(&FileCtx::new(path, src))
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        let mut v: Vec<_> = findings.iter().map(|f| f.rule).collect();
        v.dedup();
        v
    }

    #[test]
    fn d1_flags_shipping_hash_collections_only() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let hits = scan("crates/core/src/x.rs", src);
        assert_eq!(hits.iter().filter(|f| f.rule == "D1").count(), 3);
        // The same text in a test file is clean.
        assert!(scan("crates/core/tests/x.rs", src).is_empty());
    }

    #[test]
    fn p1_is_library_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_of(&scan("crates/mesh/src/x.rs", src)), vec!["P1"]);
        assert!(scan("crates/cli/src/x.rs", src).is_empty());
        assert!(scan("crates/mesh/tests/x.rs", src).is_empty());
        assert!(scan("crates/mesh/benches/x.rs", src).is_empty());
    }

    #[test]
    fn p1_ignores_unwrap_or_family() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_else(|| 1)) }";
        assert!(scan("crates/mesh/src/x.rs", src).is_empty());
    }

    #[test]
    fn t1_flags_discarded_span_guards() {
        let bad = "fn f(t: &Tracer) { t.span(\"x\"); }";
        assert_eq!(rules_of(&scan("crates/core/src/x.rs", bad)), vec!["T1"]);
        let bad2 = "fn f(t: &Tracer) { let _ = t.span(\"x\"); }";
        assert_eq!(rules_of(&scan("crates/core/src/x.rs", bad2)), vec!["T1"]);
        let good = "fn f(t: &Tracer) { let _guard = t.span(\"x\"); body(); }";
        assert!(scan("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn t1_twin_divergence() {
        let bad = "fn f(x: &mut S) { step(x); }\n\
                   fn f_traced(x: &mut S, t: &Tracer) { let _s = t.span(\"f\"); step(x); mutate(x); }";
        let hits = scan("crates/core/src/x.rs", bad);
        assert_eq!(rules_of(&hits), vec!["T1"]);
        assert!(hits[0].message.contains("mutate"));
        let good = "fn f(x: &mut S) { f_traced(x, &Tracer::disabled()); }\n\
                    fn f_traced(x: &mut S, t: &Tracer) { let _s = t.span(\"f\"); step(x); mutate(x); }";
        assert!(scan("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn h1_requires_both_headers() {
        let bare = "pub fn f() {}";
        let hits = scan("crates/core/src/lib.rs", bare);
        assert_eq!(hits.iter().filter(|f| f.rule == "H1").count(), 2);
        let full = "#![forbid(unsafe_code)]\n#![deny(unreachable_pub)]\npub fn f() {}";
        assert!(scan("crates/core/src/lib.rs", full).is_empty());
        // Non-root files are exempt.
        assert!(scan("crates/core/src/other.rs", bare).is_empty());
    }

    #[test]
    fn d2_exempts_the_wall_module() {
        let src = "fn f() { let t = Instant::now(); t.elapsed(); }";
        assert_eq!(
            scan("crates/core/src/x.rs", src)
                .iter()
                .filter(|f| f.rule == "D2")
                .count(),
            2
        );
        assert!(scan("crates/trace/src/wall.rs", src).is_empty());
    }

    #[test]
    fn f1_spots_partial_cmp_unwrap() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        // In library code this is both a float-order bug (F1) and a
        // panic path (P1); in binary code only F1 applies.
        assert_eq!(
            rules_of(&scan("crates/core/src/x.rs", src)),
            vec!["F1", "P1"]
        );
        assert_eq!(rules_of(&scan("crates/cli/src/x.rs", src)), vec!["F1"]);
        let ok = "fn f(v: &mut Vec<f64>) { v.sort_by(f64::total_cmp); }";
        assert!(scan("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn d3_d4_patterns() {
        let src = "fn f() { std::thread::spawn(|| {}); let r = SmallRng::from_entropy(); }";
        let hits = scan("crates/core/src/x.rs", src);
        assert!(hits.iter().any(|f| f.rule == "D3"));
        assert!(hits.iter().any(|f| f.rule == "D4"));
        // anr-par itself may use std::thread.
        let par = "fn f() { std::thread::scope(|s| {}); }";
        assert!(scan("crates/par/src/lib.rs", par)
            .iter()
            .all(|f| f.rule == "H1"));
    }
}
