//! `anr-lint` — the standalone analyzer binary CI runs:
//! `cargo run --release -p anr-lint -- --deny --jsonl findings.jsonl`.

use anr_lint::{lint_workspace, LintOptions, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
anr-lint — workspace determinism & panic-safety analyzer

USAGE:
  anr-lint [--root <dir>] [--baseline <file>] [--jsonl <file>]
           [--deny] [--list-rules]

FLAGS:
  --root <dir>       workspace root to scan (default: .)
  --baseline <file>  allow file (default: <root>/lint.allow.toml)
  --jsonl <file>     also write the findings as JSON Lines
  --deny             exit non-zero on any non-baselined finding
  --list-rules       print the rule table and exit
";

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    jsonl: Option<PathBuf>,
    deny: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        jsonl: None,
        deny: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?))
            }
            "--jsonl" => {
                args.jsonl = Some(PathBuf::from(it.next().ok_or("--jsonl needs a value")?))
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("anr-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for r in RULES {
            println!("{:<4} {:<6} {}", r.id, r.severity.as_str(), r.summary);
        }
        return ExitCode::SUCCESS;
    }
    let report = match lint_workspace(&LintOptions {
        root: args.root,
        baseline: args.baseline,
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("anr-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.jsonl {
        if let Err(e) = std::fs::write(path, report.to_jsonl()) {
            eprintln!("anr-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    print!("{}", report.to_human());
    if args.deny && report.non_baselined() > 0 {
        eprintln!(
            "anr-lint: --deny: {} non-baselined finding(s)",
            report.non_baselined()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
