//! `anr-lint` — the standalone analyzer binary CI runs:
//! `cargo run --release -p anr-lint -- --deny --jsonl findings.jsonl`.

use anr_lint::{lint_workspace, write_baseline, LintOptions, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
anr-lint — workspace determinism & panic-safety analyzer

USAGE:
  anr-lint [--root <dir>] [--baseline <file>] [--jsonl <file>]
           [--graph <file>] [--panics <file>] [--report panics]
           [--workers <n>] [--deny] [--write-baseline] [--list-rules]

FLAGS:
  --root <dir>       workspace root to scan (default: .)
  --baseline <file>  allow file (default: <root>/lint.allow.toml)
  --jsonl <file>     also write the findings as JSON Lines (anr-lint/2)
  --graph <file>     write the cross-crate call graph (anr-lint-graph/1)
  --panics <file>    write panic reachability for every pub library fn
                     (anr-lint-panics/1)
  --report panics    print the panic-reachability report instead of
                     the findings report
  --workers <n>      scan files on n threads (0 = auto; output is
                     identical for any worker count)
  --deny             exit non-zero on any non-baselined finding
  --write-baseline   regenerate the baseline file from current findings
                     (deterministic; keeps existing justifications)
  --list-rules       print the rule table and exit
";

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    jsonl: Option<PathBuf>,
    graph: Option<PathBuf>,
    panics: Option<PathBuf>,
    report: Option<String>,
    workers: usize,
    deny: bool,
    write_baseline: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        jsonl: None,
        graph: None,
        panics: None,
        report: None,
        workers: 1,
        deny: false,
        write_baseline: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--write-baseline" => args.write_baseline = true,
            "--list-rules" => args.list_rules = true,
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?))
            }
            "--jsonl" => {
                args.jsonl = Some(PathBuf::from(it.next().ok_or("--jsonl needs a value")?))
            }
            "--graph" => {
                args.graph = Some(PathBuf::from(it.next().ok_or("--graph needs a value")?))
            }
            "--panics" => {
                args.panics = Some(PathBuf::from(it.next().ok_or("--panics needs a value")?))
            }
            "--report" => args.report = Some(it.next().ok_or("--report needs a value")?),
            "--workers" => {
                args.workers = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|_| "--workers must be an integer".to_string())?
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if let Some(r) = &args.report {
        if r != "panics" {
            return Err(format!("unknown report `{r}` (only `panics`)"));
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("anr-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for r in RULES {
            println!("{:<4} {:<6} {}", r.id, r.severity.as_str(), r.summary);
        }
        return ExitCode::SUCCESS;
    }
    let options = LintOptions {
        root: args.root.clone(),
        baseline: args.baseline.clone(),
        workers: args.workers,
    };
    if args.write_baseline {
        let baseline_path = args
            .baseline
            .clone()
            .unwrap_or_else(|| args.root.join("lint.allow.toml"));
        let existing = std::fs::read_to_string(&baseline_path).unwrap_or_default();
        let rendered = match write_baseline(&options, &existing) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("anr-lint: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&baseline_path, &rendered) {
            eprintln!("anr-lint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!("anr-lint: wrote {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }
    let report = match lint_workspace(&options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("anr-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for (path, contents) in [
        (&args.jsonl, report.to_jsonl()),
        (&args.graph, report.graph.to_jsonl()),
        (&args.panics, report.panics.to_jsonl()),
    ] {
        if let Some(path) = path {
            if let Err(e) = std::fs::write(path, contents) {
                eprintln!("anr-lint: writing {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    if args.report.as_deref() == Some("panics") {
        print!("{}", report.panics.to_human());
    } else {
        print!("{}", report.to_human());
    }
    if args.deny && report.non_baselined() > 0 {
        eprintln!(
            "anr-lint: --deny: {} non-baselined finding(s)",
            report.non_baselined()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
