//! Item-level parsing on top of the lexer: `fn` / `impl` / `trait` /
//! `mod` / `use` items with visibility, module path, and body token
//! ranges. This is what turns the token stream into the units the
//! cross-crate call graph links.
//!
//! The parser is deliberately shallow: it walks item structure only and
//! never descends into function bodies (a `fn` nested inside a body is
//! attributed to its parent — sound for reachability, since only the
//! parent can call it). All positions are token indices into the
//! owning [`FileCtx`].

use crate::context::{matching, FileCtx};
use crate::lexer::{TokKind, Token};

/// Item visibility, as far as cross-crate analysis cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Visibility {
    /// `pub` — exported from the crate.
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in …)` — crate-internal.
    Scoped,
    /// No visibility keyword.
    Private,
}

impl Visibility {
    /// Lower-case label used in reports and the graph artifact.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Visibility::Pub => "pub",
            Visibility::Scoped => "pub(crate)",
            Visibility::Private => "private",
        }
    }
}

/// A function definition (free, impl method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Self type for impl methods / trait name for default methods.
    pub self_ty: Option<String>,
    /// Trait being implemented, for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// In-file module path (`mod a { mod b { … } }` → `["a", "b"]`).
    pub module: Vec<String>,
    /// Visibility.
    pub vis: Visibility,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body (inside the braces, exclusive); `None`
    /// for bodyless trait method declarations.
    pub body: Option<(usize, usize)>,
    /// Token range of the signature: from the `fn` keyword up to (not
    /// including) the body's open brace, or past the trailing `;` for
    /// bodyless declarations.
    pub sig: (usize, usize),
    /// Defined inside `#[cfg(test)]` / `#[test]` code?
    pub in_test: bool,
}

/// A `use` declaration, expanded: one record per imported name.
#[derive(Debug, Clone)]
pub struct UseDef {
    /// Full path segments (`use a::b::c` → `["a", "b", "c"]`; globs end
    /// in `"*"`).
    pub segments: Vec<String>,
    /// `use … as alias` rename.
    pub alias: Option<String>,
    /// Visibility (`pub use` is a re-export).
    pub vis: Visibility,
    /// 1-based line of the `use` keyword.
    pub line: u32,
}

impl UseDef {
    /// The name this import binds locally: the alias, or the last
    /// non-glob segment.
    #[must_use]
    pub fn local_name(&self) -> Option<&str> {
        if let Some(a) = &self.alias {
            return Some(a);
        }
        match self.segments.last().map(String::as_str) {
            Some("*") | None => None,
            Some(s) => Some(s),
        }
    }
}

/// A non-function item (the S3 dead-`pub` surface).
#[derive(Debug, Clone)]
pub struct ItemDef {
    /// Item keyword (`struct`, `enum`, `trait`, `const`, `static`,
    /// `type`, `macro`).
    pub kind: &'static str,
    /// Item name.
    pub name: String,
    /// Visibility.
    pub vis: Visibility,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// Token range of the whole item, from its keyword to where the
    /// next item starts (exclusive).
    pub span: (usize, usize),
    /// Defined inside test-only code?
    pub in_test: bool,
}

/// Everything the item parser extracts from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Function definitions, in source order.
    pub fns: Vec<FnDef>,
    /// Expanded `use` declarations.
    pub uses: Vec<UseDef>,
    /// Non-function items.
    pub items: Vec<ItemDef>,
}

/// Parses the item structure of one file.
#[must_use]
pub fn parse_file(ctx: &FileCtx) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut module = Vec::new();
    parse_items(
        ctx,
        (0, ctx.tokens.len()),
        &mut module,
        None,
        None,
        &mut out,
    );
    out
}

/// Is `>` at `j` the tail of `->`? (Lexed as two one-char puncts.)
fn is_arrow_tail(toks: &[Token], j: usize) -> bool {
    j > 0 && toks[j - 1].is_punct("-")
}

fn parse_items(
    ctx: &FileCtx,
    range: (usize, usize),
    module: &mut Vec<String>,
    self_ty: Option<&str>,
    trait_name: Option<&str>,
    out: &mut ParsedFile,
) {
    let toks = &ctx.tokens;
    let mut i = range.0;
    while i < range.1 {
        // Skip attributes (`#[…]`, `#![…]`).
        if toks[i].is_punct("#") {
            let open = if toks.get(i + 1).is_some_and(|t| t.is_punct("!")) {
                i + 2
            } else {
                i + 1
            };
            if toks.get(open).is_some_and(|t| t.is_punct("[")) {
                match matching(toks, open, "[", "]") {
                    Some(close) => {
                        i = close + 1;
                        continue;
                    }
                    None => return,
                }
            }
            i += 1;
            continue;
        }
        // Visibility prefix.
        let mut vis = Visibility::Private;
        if toks[i].is_ident("pub") {
            if toks.get(i + 1).is_some_and(|t| t.is_punct("(")) {
                vis = Visibility::Scoped;
                match matching(toks, i + 1, "(", ")") {
                    Some(close) => i = close + 1,
                    None => return,
                }
            } else {
                vis = Visibility::Pub;
                i += 1;
            }
            if i >= range.1 {
                return;
            }
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "use" => i = parse_use(ctx, i, range.1, vis, out),
            "mod" => {
                let Some(name) = ident_at(toks, i + 1) else {
                    i += 1;
                    continue;
                };
                if toks.get(i + 2).is_some_and(|t| t.is_punct("{")) {
                    let Some(close) = matching(toks, i + 2, "{", "}") else {
                        return;
                    };
                    module.push(name);
                    parse_items(ctx, (i + 3, close), module, None, None, out);
                    module.pop();
                    i = close + 1;
                } else {
                    i += 2; // `mod name;` — a file module, parsed on its own
                }
            }
            "fn" => {
                let Some(name) = ident_at(toks, i + 1) else {
                    i += 1; // `fn(…)` pointer type or malformed
                    continue;
                };
                let (body, next) = fn_body(toks, i + 2, range.1);
                out.fns.push(FnDef {
                    name,
                    self_ty: self_ty.map(str::to_string),
                    trait_name: trait_name.map(str::to_string),
                    module: module.clone(),
                    vis,
                    line: t.line,
                    body,
                    sig: (i, body.map_or(next, |b| b.0.saturating_sub(1))),
                    in_test: ctx.in_test[i],
                });
                i = next;
            }
            "impl" => {
                let Some((ty, tr, open)) = impl_header(toks, i + 1, range.1) else {
                    i += 1;
                    continue;
                };
                let Some(close) = matching(toks, open, "{", "}") else {
                    return;
                };
                parse_items(
                    ctx,
                    (open + 1, close),
                    module,
                    ty.as_deref(),
                    tr.as_deref(),
                    out,
                );
                i = close + 1;
            }
            "trait" => {
                let Some(name) = ident_at(toks, i + 1) else {
                    i += 1;
                    continue;
                };
                let (body, next) = fn_body(toks, i + 2, range.1);
                out.items.push(ItemDef {
                    kind: "trait",
                    name: name.clone(),
                    vis,
                    line: t.line,
                    span: (i, next),
                    in_test: ctx.in_test[i],
                });
                if let Some((start, end)) = body {
                    parse_items(ctx, (start, end), module, Some(&name), None, out);
                }
                i = next;
            }
            kw @ ("struct" | "enum" | "union") => {
                let Some(name) = ident_at(toks, i + 1) else {
                    i += 1;
                    continue;
                };
                let (_, next) = fn_body(toks, i + 2, range.1);
                out.items.push(ItemDef {
                    kind: if kw == "struct" { "struct" } else { "enum" },
                    name,
                    vis,
                    line: t.line,
                    span: (i, next),
                    in_test: ctx.in_test[i],
                });
                i = next;
            }
            kw @ ("const" | "static") => {
                // `const fn` is a function; plain const/static ends at
                // the first `;` outside braces.
                if toks.get(i + 1).is_some_and(|t| {
                    t.is_ident("fn") || t.is_ident("unsafe") || t.is_ident("extern")
                }) {
                    i += 1;
                    continue;
                }
                let next = skip_to_semi(toks, i + 1, range.1);
                if let Some(name) = ident_at(toks, i + 1) {
                    if name != "_" {
                        out.items.push(ItemDef {
                            kind: if kw == "const" { "const" } else { "static" },
                            name,
                            vis,
                            line: t.line,
                            span: (i, next),
                            in_test: ctx.in_test[i],
                        });
                    }
                }
                i = next;
            }
            "type" => {
                let next = skip_to_semi(toks, i + 1, range.1);
                if let Some(name) = ident_at(toks, i + 1) {
                    out.items.push(ItemDef {
                        kind: "type",
                        name,
                        vis,
                        line: t.line,
                        span: (i, next),
                        in_test: ctx.in_test[i],
                    });
                }
                i = next;
            }
            "macro_rules" => {
                let (_, next) = fn_body(toks, i + 2, range.1);
                if let Some(name) = ident_at(toks, i + 2) {
                    out.items.push(ItemDef {
                        kind: "macro",
                        name,
                        vis: Visibility::Pub, // #[macro_export] decides; treat as pub
                        line: t.line,
                        span: (i, next),
                        in_test: ctx.in_test[i],
                    });
                }
                i = next;
            }
            "extern" => {
                // `extern crate x;` or `extern "C" { … }`.
                let (_, next) = fn_body(toks, i + 1, range.1);
                i = next;
            }
            _ => i += 1, // `unsafe`, `async`, `default`, stray tokens
        }
    }
}

fn ident_at(toks: &[Token], i: usize) -> Option<String> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

/// Scans a signature for its body: returns the body's interior token
/// range (or `None` when the item ends at `;`) and the index to resume
/// item parsing at.
fn fn_body(toks: &[Token], start: usize, limit: usize) -> (Option<(usize, usize)>, usize) {
    let mut j = start;
    while j < limit {
        if toks[j].is_punct(";") {
            return (None, j + 1);
        }
        if toks[j].is_punct("{") {
            return match matching(toks, j, "{", "}") {
                Some(end) => (Some((j + 1, end)), end + 1),
                None => (None, limit),
            };
        }
        j += 1;
    }
    (None, limit)
}

fn skip_to_semi(toks: &[Token], start: usize, limit: usize) -> usize {
    let mut depth = 0usize;
    let mut j = start;
    while j < limit {
        if toks[j].is_punct("{") {
            depth += 1;
        } else if toks[j].is_punct("}") {
            depth = depth.saturating_sub(1);
        } else if toks[j].is_punct(";") && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    limit
}

/// Parses an `impl` header starting right after the `impl` keyword:
/// returns `(self_type, trait_name, index_of_body_open_brace)`.
///
/// The self type is the last angle-depth-0 identifier of the type path
/// (after `for` when present), stopping at `where` — so
/// `impl<T: Fn() -> R> Display for mesh::TriMesh<T> where …` yields
/// `(Some("TriMesh"), Some("Display"), _)`.
fn impl_header(
    toks: &[Token],
    start: usize,
    limit: usize,
) -> Option<(Option<String>, Option<String>, usize)> {
    let mut depth = 0i32;
    let mut last: Option<String> = None;
    let mut before_for: Option<String> = None;
    let mut saw_for = false;
    let mut j = start;
    while j < limit {
        let t = &toks[j];
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") && !is_arrow_tail(toks, j) {
            depth -= 1;
        } else if depth == 0 {
            if t.is_punct("{") {
                let trait_name = if saw_for { before_for } else { None };
                return Some((last, trait_name, j));
            }
            if t.is_ident("where") {
                // The self type is settled; find the body brace.
                let trait_name = if saw_for { before_for } else { None };
                let mut k = j;
                let mut d = 0i32;
                while k < limit {
                    if toks[k].is_punct("<") {
                        d += 1;
                    } else if toks[k].is_punct(">") && !is_arrow_tail(toks, k) {
                        d -= 1;
                    } else if toks[k].is_punct("{") && d <= 0 {
                        return Some((last, trait_name, k));
                    }
                    k += 1;
                }
                return None;
            }
            if t.is_ident("for") {
                saw_for = true;
                before_for = last.take();
            } else if t.kind == TokKind::Ident
                && !matches!(t.text.as_str(), "dyn" | "mut" | "const" | "unsafe" | "as")
            {
                last = Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

fn parse_use(
    ctx: &FileCtx,
    use_kw: usize,
    limit: usize,
    vis: Visibility,
    out: &mut ParsedFile,
) -> usize {
    let toks = &ctx.tokens;
    let line = toks[use_kw].line;
    let end = skip_to_semi(toks, use_kw + 1, limit);
    // Tokens of the use tree, excluding the trailing `;`.
    let tree_end = if end > use_kw + 1 && toks.get(end - 1).is_some_and(|t| t.is_punct(";")) {
        end - 1
    } else {
        end
    };
    expand_use_tree(toks, use_kw + 1, tree_end, &mut Vec::new(), vis, line, out);
    end
}

/// Expands one use-tree token range (`a::b::{c, d as e}`) into flat
/// [`UseDef`] records under `prefix`.
fn expand_use_tree(
    toks: &[Token],
    start: usize,
    end: usize,
    prefix: &mut Vec<String>,
    vis: Visibility,
    line: u32,
    out: &mut ParsedFile,
) {
    let mut segments = prefix.clone();
    let mut alias = None;
    let mut j = start;
    while j < end {
        let t = &toks[j];
        if t.kind == TokKind::Ident && t.text == "as" {
            if let Some(a) = ident_at(toks, j + 1) {
                alias = Some(a);
            }
            j += 2;
        } else if t.kind == TokKind::Ident {
            segments.push(t.text.clone());
            j += 1;
        } else if t.is_punct("*") {
            segments.push("*".to_string());
            j += 1;
        } else if t.is_punct("{") {
            let close = match matching(&toks[..end], j, "{", "}") {
                Some(c) => c,
                None => end,
            };
            // Split the group body on depth-0 commas.
            let mut item_start = j + 1;
            let mut depth = 0usize;
            for k in j + 1..close {
                if toks[k].is_punct("{") {
                    depth += 1;
                } else if toks[k].is_punct("}") {
                    depth = depth.saturating_sub(1);
                } else if toks[k].is_punct(",") && depth == 0 {
                    expand_use_tree(toks, item_start, k, &mut segments, vis, line, out);
                    item_start = k + 1;
                }
            }
            if item_start < close {
                expand_use_tree(toks, item_start, close, &mut segments, vis, line, out);
            }
            return; // a group ends the tree at this level
        } else {
            j += 1; // `::` separators
        }
    }
    if !segments.is_empty() && segments != *prefix {
        out.uses.push(UseDef {
            segments,
            alias,
            vis,
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&FileCtx::new("crates/core/src/x.rs", src))
    }

    #[test]
    fn finds_free_fns_with_visibility() {
        let p = parse("pub fn a() {}\npub(crate) fn b() {}\nfn c() {}");
        let names: Vec<_> = p.fns.iter().map(|f| (f.name.as_str(), f.vis)).collect();
        assert_eq!(
            names,
            vec![
                ("a", Visibility::Pub),
                ("b", Visibility::Scoped),
                ("c", Visibility::Private)
            ]
        );
    }

    #[test]
    fn impl_methods_get_self_type() {
        let p = parse(
            "struct Foo;\nimpl Foo { pub fn new() -> Foo { Foo } }\n\
             impl std::fmt::Display for Foo { fn fmt(&self) {} }",
        );
        let new = p.fns.iter().find(|f| f.name == "new").unwrap();
        assert_eq!(new.self_ty.as_deref(), Some("Foo"));
        assert_eq!(new.trait_name, None);
        let fmt = p.fns.iter().find(|f| f.name == "fmt").unwrap();
        assert_eq!(fmt.self_ty.as_deref(), Some("Foo"));
        assert_eq!(fmt.trait_name.as_deref(), Some("Display"));
    }

    #[test]
    fn generic_impl_headers_resolve() {
        let p = parse(
            "impl<T: Fn() -> R, R> Wrapper<T> where T: Clone { fn call(&self) {} }\n\
             impl<'a> Iterator for Iter<'a> { fn next(&mut self) {} }",
        );
        assert_eq!(p.fns[0].self_ty.as_deref(), Some("Wrapper"));
        assert_eq!(p.fns[1].self_ty.as_deref(), Some("Iter"));
        assert_eq!(p.fns[1].trait_name.as_deref(), Some("Iterator"));
    }

    #[test]
    fn trait_default_methods_and_module_paths() {
        let p = parse(
            "pub trait Audit { fn go(&self) { self.step(); } fn step(&self); }\n\
             mod inner { pub fn helper() {} mod deep { fn bottom() {} } }",
        );
        let go = p.fns.iter().find(|f| f.name == "go").unwrap();
        assert_eq!(go.self_ty.as_deref(), Some("Audit"));
        assert!(go.body.is_some());
        let step = p.fns.iter().find(|f| f.name == "step").unwrap();
        assert!(step.body.is_none());
        let helper = p.fns.iter().find(|f| f.name == "helper").unwrap();
        assert_eq!(helper.module, vec!["inner"]);
        let bottom = p.fns.iter().find(|f| f.name == "bottom").unwrap();
        assert_eq!(bottom.module, vec!["inner", "deep"]);
        assert!(p
            .items
            .iter()
            .any(|i| i.kind == "trait" && i.name == "Audit"));
    }

    #[test]
    fn use_trees_expand() {
        let p = parse(
            "use anr_geom::Point;\npub use anr_mesh::{TriMesh, foi::Region as Reg};\n\
             use anr_par::*;\n",
        );
        let paths: Vec<(String, Option<String>)> = p
            .uses
            .iter()
            .map(|u| (u.segments.join("::"), u.alias.clone()))
            .collect();
        assert_eq!(
            paths,
            vec![
                ("anr_geom::Point".into(), None),
                ("anr_mesh::TriMesh".into(), None),
                ("anr_mesh::foi::Region".into(), Some("Reg".into())),
                ("anr_par::*".into(), None),
            ]
        );
        assert_eq!(p.uses[1].vis, Visibility::Pub);
        assert_eq!(p.uses[1].local_name(), Some("TriMesh"));
        assert_eq!(p.uses[2].local_name(), Some("Reg"));
        assert_eq!(p.uses[3].local_name(), None);
    }

    #[test]
    fn items_for_dead_pub_analysis() {
        let p = parse(
            "pub struct S { pub x: u32 }\npub enum E { A }\npub const C: u32 = 1;\n\
             pub static ST: u32 = 2;\npub type Alias = u32;\nconst fn cf() -> u32 { 3 }",
        );
        let kinds: Vec<_> = p.items.iter().map(|i| (i.kind, i.name.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                ("struct", "S"),
                ("enum", "E"),
                ("const", "C"),
                ("static", "ST"),
                ("type", "Alias"),
            ]
        );
        // `const fn` lands in fns, not items.
        assert!(p.fns.iter().any(|f| f.name == "cf"));
    }

    #[test]
    fn bodies_are_not_descended() {
        let p = parse("fn outer() { let f = |x: u32| x; inner_call(); }\nfn after() {}");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[1].name, "after");
    }

    #[test]
    fn test_fns_are_marked() {
        let p = parse("#[cfg(test)]\nmod tests { fn helper() {} }\nfn live() {}");
        assert!(p.fns.iter().find(|f| f.name == "helper").unwrap().in_test);
        assert!(!p.fns.iter().find(|f| f.name == "live").unwrap().in_test);
    }
}
