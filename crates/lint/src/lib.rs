//! # anr-lint — determinism & panic-safety static analysis
//!
//! The repo's headline guarantees — byte-identical traces across runs,
//! machines, and worker counts; worker-count-independent fault-sweep
//! JSON; typed errors instead of panics in library crates — are
//! invariants *by construction* only while every crate keeps to a
//! narrow idiom. This crate checks that idiom mechanically on every
//! change: a small Rust lexer plus a rule engine walk every workspace
//! crate (excluding `vendor/` and `target/`) and report findings with
//! `file:line`, rule id, severity, and a fix hint, in both human and
//! JSONL form.
//!
//! ## Rules
//!
//! | id | checks |
//! |----|--------|
//! | D1 | `HashMap`/`HashSet` in shipping code (nondeterministic iteration) |
//! | D2 | wall-clock reads outside `anr-trace`'s wall module |
//! | D3 | raw `std::thread` use outside `anr-par` |
//! | D4 | unseeded RNG construction (`from_entropy`, `thread_rng`, `rand::random`) |
//! | P1 | `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` in library code |
//! | F1 | `partial_cmp(..).unwrap()` float comparisons (NaN panics) |
//! | T1 | trace hygiene: dropped span guards; `_traced` twins that mutate |
//! | H1 | crate roots missing `#![forbid(unsafe_code)]` / `#![deny(unreachable_pub)]` |
//! | S1 | pipeline entry points that can reach a panic site (interprocedural) |
//! | S2 | pipeline entry points that reach a nondeterminism sink (interprocedural) |
//! | S3 | `pub` exports no other workspace crate or test references |
//!
//! The S-rules run over a cross-crate call graph built from an
//! item-level parse of every file (see [`build_graph`] and [`analyze`]);
//! the graph serializes as the `anr-lint-graph/1` JSONL artifact and
//! panic reachability for the whole `pub` surface as
//! `anr-lint-panics/1`.
//!
//! Findings are suppressible only via the checked-in `lint.allow.toml`
//! baseline, where every entry carries a one-line justification and a
//! maximum count — so the gate lands green today and ratchets down
//! over time. `--deny` exits non-zero on any non-baselined finding.
//!
//! ```no_run
//! use anr_lint::{lint_workspace, LintOptions};
//!
//! let report = lint_workspace(&LintOptions::at(".")).unwrap();
//! assert_eq!(report.non_baselined(), 0);
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

mod baseline;
mod context;
mod graph;
mod lexer;
mod parser;
mod report;
mod rules;
mod semantic;
mod walk;

pub use baseline::{
    apply_baseline, parse_baseline, render_baseline, stale_entries, AllowEntry, BaselineError,
};
pub use context::{FileCtx, FileKind};
pub use graph::{build_graph, CallGraph, FnNode};
pub use lexer::{lex, TokKind, Token};
pub use parser::{parse_file, FnDef, ItemDef, ParsedFile, UseDef, Visibility};
pub use report::LintReport;
pub use rules::{scan_file, Finding, RuleInfo, Severity, RULES};
pub use semantic::{analyze, PanicEntry, PanicsReport, SemanticOutput, ENTRY_POINTS};
pub use walk::workspace_files;

use std::path::{Path, PathBuf};

/// Options for a workspace lint run.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Workspace root (the directory holding `Cargo.toml` and `crates/`).
    pub root: PathBuf,
    /// Baseline file; defaults to `<root>/lint.allow.toml`. A missing
    /// baseline file means an empty baseline, not an error.
    pub baseline: Option<PathBuf>,
    /// Worker threads for per-file scanning (0 = auto, 1 = serial).
    /// Findings, the call graph, and every artifact are identical for
    /// any worker count.
    pub workers: usize,
}

impl LintOptions {
    /// Options rooted at `root` with the default baseline location.
    pub fn at<P: AsRef<Path>>(root: P) -> LintOptions {
        LintOptions {
            root: root.as_ref().to_path_buf(),
            baseline: None,
            workers: 1,
        }
    }
}

/// A lint run failure (I/O or a malformed baseline) — distinct from
/// findings, which are data, not errors.
#[derive(Debug)]
pub enum LintError {
    /// Reading a source file or directory failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// `lint.allow.toml` is malformed.
    Baseline(BaselineError),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            LintError::Baseline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Scans one source string as `rel_path` — the per-file entry point the
/// fixture tests use.
#[must_use]
pub fn scan_source(rel_path: &str, src: &str) -> Vec<Finding> {
    scan_file(&FileCtx::new(rel_path, src))
}

/// Lints the whole workspace under `options.root` against its baseline:
/// the per-file token rules (D/P/F/T/H families) plus the
/// interprocedural S-rules over the cross-crate call graph.
///
/// Per-file work fans out over `options.workers` threads via
/// [`anr_par::par_map`]; results are input-ordered, so the report is
/// identical for any worker count.
///
/// # Errors
///
/// [`LintError`] on unreadable files or a malformed baseline file.
/// Findings — baselined or not — are part of the report, never an error.
pub fn lint_workspace(options: &LintOptions) -> Result<LintReport, LintError> {
    let (mut findings, built, files_scanned) = scan_and_parse(options)?;
    let graph = build_graph(&options.root, &built);
    let sem = analyze(&graph, &built);
    findings.extend(sem.findings);
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));

    let baseline_path = options
        .baseline
        .clone()
        .unwrap_or_else(|| options.root.join("lint.allow.toml"));
    let mut entries = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path).map_err(|source| LintError::Io {
            path: baseline_path.clone(),
            source,
        })?;
        parse_baseline(&text).map_err(LintError::Baseline)?
    } else {
        Vec::new()
    };
    apply_baseline(&mut findings, &mut entries);

    Ok(LintReport {
        findings,
        files_scanned,
        stale: stale_entries(&entries),
        graph,
        panics: sem.panics,
    })
}

/// Reads, lexes, parses, and token-scans every workspace file,
/// fanning out over `options.workers` threads.
#[allow(clippy::type_complexity)]
fn scan_and_parse(
    options: &LintOptions,
) -> Result<(Vec<Finding>, Vec<(FileCtx, ParsedFile)>, usize), LintError> {
    let files = workspace_files(&options.root).map_err(|source| LintError::Io {
        path: options.root.clone(),
        source,
    })?;
    let mut sources = Vec::with_capacity(files.len());
    for (rel, path) in &files {
        let src = std::fs::read_to_string(path).map_err(|source| LintError::Io {
            path: path.clone(),
            source,
        })?;
        sources.push((rel.clone(), src));
    }
    let per_file = anr_par::par_map(&sources, options.workers, |(rel, src)| {
        let ctx = FileCtx::new(rel, src);
        let parsed = parse_file(&ctx);
        let findings = scan_file(&ctx);
        (ctx, parsed, findings)
    });
    let mut findings = Vec::new();
    let mut built = Vec::with_capacity(per_file.len());
    for (ctx, parsed, file_findings) in per_file {
        findings.extend(file_findings);
        built.push((ctx, parsed));
    }
    Ok((findings, built, files.len()))
}

/// Regenerates the baseline from the workspace's *current* findings:
/// one entry per `(rule, file)` (plus the call chain as `path` for
/// S1/S2), counts set to what is actually present, reasons carried
/// over from `existing` where an old entry still matches, and
/// `UNJUSTIFIED` placeholders on genuinely new entries. Output is
/// deterministic — byte-identical across runs and worker counts.
///
/// # Errors
///
/// [`LintError`] on unreadable files (the existing baseline is taken
/// as text, not read here).
pub fn write_baseline(options: &LintOptions, existing: &str) -> Result<String, LintError> {
    let old = parse_baseline(existing).unwrap_or_default();
    // Lint against an empty baseline so every finding is open.
    let mut opts = options.clone();
    opts.baseline = Some(PathBuf::from("/nonexistent/lint.allow.toml"));
    let report = lint_workspace(&opts)?;

    // Group: S1/S2 findings keep their chain as the pinned path; all
    // other rules aggregate per (rule, file).
    let mut grouped: std::collections::BTreeMap<(String, String, Option<String>), usize> =
        std::collections::BTreeMap::new();
    for f in &report.findings {
        let path = if matches!(f.rule, "S1" | "S2") {
            f.path.clone()
        } else {
            None
        };
        *grouped
            .entry((f.rule.to_string(), f.file.clone(), path))
            .or_insert(0) += 1;
    }
    let entries: Vec<AllowEntry> = grouped
        .into_iter()
        .map(|((rule, file, path), count)| {
            let reason = old
                .iter()
                .find(|e| {
                    e.rule == rule
                        && e.file == file
                        && match (&e.path, &path) {
                            (None, _) => true,
                            (Some(op), Some(np)) => np.contains(op.as_str()),
                            (Some(_), None) => false,
                        }
                })
                .map_or_else(
                    || "UNJUSTIFIED: write a one-line justification".to_string(),
                    |e| e.reason.clone(),
                );
            AllowEntry {
                rule,
                file,
                count,
                reason,
                used: 0,
                path,
            }
        })
        .collect();
    Ok(render_baseline(&entries))
}
