//! # anr-lint — determinism & panic-safety static analysis
//!
//! The repo's headline guarantees — byte-identical traces across runs,
//! machines, and worker counts; worker-count-independent fault-sweep
//! JSON; typed errors instead of panics in library crates — are
//! invariants *by construction* only while every crate keeps to a
//! narrow idiom. This crate checks that idiom mechanically on every
//! change: a small Rust lexer plus a rule engine walk every workspace
//! crate (excluding `vendor/` and `target/`) and report findings with
//! `file:line`, rule id, severity, and a fix hint, in both human and
//! JSONL form.
//!
//! ## Rules
//!
//! | id | checks |
//! |----|--------|
//! | D1 | `HashMap`/`HashSet` in shipping code (nondeterministic iteration) |
//! | D2 | wall-clock reads outside `anr-trace`'s wall module |
//! | D3 | raw `std::thread` use outside `anr-par` |
//! | D4 | unseeded RNG construction (`from_entropy`, `thread_rng`, `rand::random`) |
//! | P1 | `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` in library code |
//! | F1 | `partial_cmp(..).unwrap()` float comparisons (NaN panics) |
//! | T1 | trace hygiene: dropped span guards; `_traced` twins that mutate |
//! | H1 | crate roots missing `#![forbid(unsafe_code)]` / `#![deny(unreachable_pub)]` |
//!
//! Findings are suppressible only via the checked-in `lint.allow.toml`
//! baseline, where every entry carries a one-line justification and a
//! maximum count — so the gate lands green today and ratchets down
//! over time. `--deny` exits non-zero on any non-baselined finding.
//!
//! ```no_run
//! use anr_lint::{lint_workspace, LintOptions};
//!
//! let report = lint_workspace(&LintOptions::at(".")).unwrap();
//! assert_eq!(report.non_baselined(), 0);
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

mod baseline;
mod context;
mod lexer;
mod report;
mod rules;
mod walk;

pub use baseline::{apply_baseline, parse_baseline, stale_entries, AllowEntry, BaselineError};
pub use context::{FileCtx, FileKind};
pub use lexer::{lex, TokKind, Token};
pub use report::LintReport;
pub use rules::{rule_info, scan_file, Finding, RuleInfo, Severity, RULES};
pub use walk::workspace_files;

use std::path::{Path, PathBuf};

/// Options for a workspace lint run.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Workspace root (the directory holding `Cargo.toml` and `crates/`).
    pub root: PathBuf,
    /// Baseline file; defaults to `<root>/lint.allow.toml`. A missing
    /// baseline file means an empty baseline, not an error.
    pub baseline: Option<PathBuf>,
}

impl LintOptions {
    /// Options rooted at `root` with the default baseline location.
    pub fn at<P: AsRef<Path>>(root: P) -> LintOptions {
        LintOptions {
            root: root.as_ref().to_path_buf(),
            baseline: None,
        }
    }
}

/// A lint run failure (I/O or a malformed baseline) — distinct from
/// findings, which are data, not errors.
#[derive(Debug)]
pub enum LintError {
    /// Reading a source file or directory failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// `lint.allow.toml` is malformed.
    Baseline(BaselineError),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            LintError::Baseline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Scans one source string as `rel_path` — the per-file entry point the
/// fixture tests use.
#[must_use]
pub fn scan_source(rel_path: &str, src: &str) -> Vec<Finding> {
    scan_file(&FileCtx::new(rel_path, src))
}

/// Lints the whole workspace under `options.root` against its baseline.
///
/// # Errors
///
/// [`LintError`] on unreadable files or a malformed baseline file.
/// Findings — baselined or not — are part of the report, never an error.
pub fn lint_workspace(options: &LintOptions) -> Result<LintReport, LintError> {
    let files = workspace_files(&options.root).map_err(|source| LintError::Io {
        path: options.root.clone(),
        source,
    })?;
    let mut findings = Vec::new();
    for (rel, path) in &files {
        let src = std::fs::read_to_string(path).map_err(|source| LintError::Io {
            path: path.clone(),
            source,
        })?;
        findings.extend(scan_source(rel, &src));
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));

    let baseline_path = options
        .baseline
        .clone()
        .unwrap_or_else(|| options.root.join("lint.allow.toml"));
    let mut entries = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path).map_err(|source| LintError::Io {
            path: baseline_path.clone(),
            source,
        })?;
        parse_baseline(&text).map_err(LintError::Baseline)?
    } else {
        Vec::new()
    };
    apply_baseline(&mut findings, &mut entries);

    Ok(LintReport {
        findings,
        files_scanned: files.len(),
        stale: stale_entries(&entries),
    })
}
