//! Deterministic workspace traversal: every `.rs` file of every
//! workspace target, excluding `vendor/`, `target/`, and the lint
//! crate's intentionally-bad `fixtures/`.

use std::io;
use std::path::{Path, PathBuf};

/// Directories that are never scanned, wherever they appear.
const SKIP_DIRS: &[&str] = &["vendor", "target", "fixtures", ".git", ".github"];

/// Collects every workspace `.rs` file as `(relative_path, absolute_path)`,
/// sorted by relative path so reports are byte-stable.
///
/// # Errors
///
/// Propagates directory-read failures (a missing optional directory,
/// e.g. a crate without `tests/`, is not an error).
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    for top in ["src", "tests", "examples", "benches"] {
        collect(root, &root.join(top), &mut out)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            for sub in ["src", "tests", "examples", "benches"] {
                collect(root, &member.join(sub), &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, path));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_this_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_files(&root).unwrap();
        assert!(files
            .iter()
            .any(|(rel, _)| rel == "crates/lint/src/walk.rs"));
        assert!(files.iter().any(|(rel, _)| rel == "src/lib.rs"));
        // vendor/, target/, and fixture files never appear.
        assert!(files
            .iter()
            .all(|(rel, _)| !rel.contains("vendor/") && !rel.contains("target/")));
        assert!(files.iter().all(|(rel, _)| !rel.contains("fixtures/")));
        // Deterministic order.
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
