//! The `lint.allow.toml` baseline: a checked-in, justification-carrying
//! ledger of accepted findings, matched by `(rule, file)` with a
//! maximum count so entries survive line churn but ratchet down as
//! violations are fixed.
//!
//! Only the tiny TOML subset the baseline needs is parsed: `[[allow]]`
//! array-of-tables with string and integer values, `#` comments.
//!
//! Interprocedural findings (S1/S2) carry a call chain; their entries
//! may pin a `path` — a substring the finding's chain must contain —
//! so a justification stays attached to *that* panic path and stops
//! matching if the chain is rerouted.

use crate::rules::{rule_info, Finding};
use std::fmt::Write as _;

/// One baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry covers.
    pub rule: String,
    /// Workspace-relative file the entry covers.
    pub file: String,
    /// Maximum findings of `rule` in `file` this entry absorbs.
    pub count: usize,
    /// One-line justification (required).
    pub reason: String,
    /// Findings actually absorbed (filled by [`apply_baseline`]).
    pub used: usize,
    /// Call-chain substring this entry is pinned to (S-rules); an entry
    /// with a path only absorbs findings whose chain contains it.
    pub path: Option<String>,
}

/// Baseline file problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line of the problem (0 = whole file).
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "lint.allow.toml:{}: {}", self.line, self.message)
        } else {
            write!(f, "lint.allow.toml: {}", self.message)
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> BaselineError {
    BaselineError {
        line,
        message: message.into(),
    }
}

#[derive(Default)]
struct Partial {
    rule: Option<String>,
    file: Option<String>,
    count: Option<usize>,
    reason: Option<String>,
    path: Option<String>,
    start_line: usize,
}

fn finish(p: Partial) -> Result<AllowEntry, BaselineError> {
    let line = p.start_line;
    let rule = p.rule.ok_or_else(|| err(line, "entry missing `rule`"))?;
    let file = p.file.ok_or_else(|| err(line, "entry missing `file`"))?;
    let count = p.count.ok_or_else(|| err(line, "entry missing `count`"))?;
    let reason = p
        .reason
        .ok_or_else(|| err(line, "entry missing `reason`"))?;
    if rule_info(&rule).is_none() {
        return Err(err(line, format!("unknown rule id `{rule}`")));
    }
    if count == 0 {
        return Err(err(line, "count must be ≥ 1 (delete the entry instead)"));
    }
    if reason.trim().is_empty() {
        return Err(err(line, "reason must be a non-empty justification"));
    }
    Ok(AllowEntry {
        rule,
        file,
        count,
        reason,
        used: 0,
        path: p.path,
    })
}

/// Parses the baseline text.
///
/// # Errors
///
/// [`BaselineError`] on malformed syntax, unknown keys or rules,
/// missing justifications, or zero counts.
pub fn parse_baseline(text: &str) -> Result<Vec<AllowEntry>, BaselineError> {
    let mut entries = Vec::new();
    let mut current: Option<Partial> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = current.take() {
                entries.push(finish(p)?);
            }
            current = Some(Partial {
                start_line: lineno,
                ..Partial::default()
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
        };
        let Some(p) = current.as_mut() else {
            return Err(err(lineno, "key outside any [[allow]] entry"));
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "rule" => {
                p.rule = Some(
                    parse_string(value)
                        .ok_or_else(|| err(lineno, "rule must be a quoted string"))?,
                )
            }
            "file" => {
                p.file = Some(
                    parse_string(value)
                        .ok_or_else(|| err(lineno, "file must be a quoted string"))?,
                )
            }
            "reason" => {
                p.reason = Some(
                    parse_string(value)
                        .ok_or_else(|| err(lineno, "reason must be a quoted string"))?,
                )
            }
            "count" => {
                p.count = Some(
                    value
                        .parse()
                        .map_err(|_| err(lineno, "count must be an integer"))?,
                )
            }
            "path" => {
                p.path = Some(
                    parse_string(value)
                        .ok_or_else(|| err(lineno, "path must be a quoted string"))?,
                )
            }
            other => return Err(err(lineno, format!("unknown key `{other}`"))),
        }
    }
    if let Some(p) = current.take() {
        entries.push(finish(p)?);
    }
    Ok(entries)
}

/// Strips a `#` comment that is outside any quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut escaped = false;
    for c in inner.chars() {
        if escaped {
            out.push(match c {
                'n' => '\n',
                't' => '\t',
                other => other,
            });
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return None; // unescaped quote mid-string
        } else {
            out.push(c);
        }
    }
    if escaped {
        return None;
    }
    Some(out)
}

/// Marks findings covered by the baseline (`finding.baselined`) and
/// records usage on each entry. Findings must be pre-sorted so the
/// assignment is deterministic.
pub fn apply_baseline(findings: &mut [Finding], entries: &mut [AllowEntry]) {
    for f in findings.iter_mut() {
        // Path-pinned entries are preferred so a broad (pathless) entry
        // is not consumed by a finding a specific entry justifies.
        let slot = entries
            .iter_mut()
            .filter(|e| e.rule == f.rule && e.file == f.file && e.used < e.count)
            .filter(|e| match &e.path {
                None => true,
                Some(p) => f
                    .path
                    .as_deref()
                    .is_some_and(|chain| chain.contains(p.as_str())),
            })
            .max_by_key(|e| e.path.is_some());
        if let Some(e) = slot {
            e.used += 1;
            f.baselined = true;
        }
    }
}

/// Renders a baseline deterministically: entries sorted by
/// `(rule, file, path)`, one `[[allow]]` table each, stable key order.
/// [`crate::write_baseline`] uses this to regenerate `lint.allow.toml`.
#[must_use]
pub fn render_baseline(entries: &[AllowEntry]) -> String {
    let mut sorted: Vec<&AllowEntry> = entries.iter().collect();
    sorted.sort_by(|a, b| (&a.rule, &a.file, &a.path).cmp(&(&b.rule, &b.file, &b.path)));
    let mut out = String::from(
        "# anr-lint baseline — every entry needs a one-line justification.\n\
         # Regenerate with `anr-lint --write-baseline`; counts only ratchet down.\n",
    );
    for e in sorted {
        out.push_str("\n[[allow]]\n");
        let _ = write!(out, "rule = ");
        toml_str(&mut out, &e.rule);
        let _ = write!(out, "\nfile = ");
        toml_str(&mut out, &e.file);
        if let Some(p) = &e.path {
            let _ = write!(out, "\npath = ");
            toml_str(&mut out, p);
        }
        let _ = write!(out, "\ncount = {}\nreason = ", e.count);
        toml_str(&mut out, &e.reason);
        out.push('\n');
    }
    out
}

fn toml_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Entries whose `count` exceeds the findings they absorbed — the
/// ratchet can be tightened (or the entry deleted).
#[must_use]
pub fn stale_entries(entries: &[AllowEntry]) -> Vec<AllowEntry> {
    entries
        .iter()
        .filter(|e| e.used < e.count)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCtx;
    use crate::rules::scan_file;

    const GOOD: &str = r#"
# keep sorted
[[allow]]
rule = "P1"  # panic family
file = "crates/mesh/src/foi.rs"
count = 2
reason = "geometric invariant: centroid of a non-degenerate polygon exists"
"#;

    #[test]
    fn parses_entries() {
        let entries = parse_baseline(GOOD).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "P1");
        assert_eq!(entries[0].count, 2);
    }

    #[test]
    fn rejects_missing_reason_unknown_rule_zero_count() {
        let no_reason = "[[allow]]\nrule = \"P1\"\nfile = \"a.rs\"\ncount = 1\n";
        assert!(parse_baseline(no_reason).is_err());
        let bad_rule = "[[allow]]\nrule = \"Z9\"\nfile = \"a.rs\"\ncount = 1\nreason = \"x\"\n";
        assert!(parse_baseline(bad_rule).is_err());
        let zero = "[[allow]]\nrule = \"P1\"\nfile = \"a.rs\"\ncount = 0\nreason = \"x\"\n";
        assert!(parse_baseline(zero).is_err());
        let stray = "rule = \"P1\"\n";
        assert!(parse_baseline(stray).is_err());
    }

    #[test]
    fn baseline_absorbs_up_to_count() {
        let src = "fn f(a: Option<u32>, b: Option<u32>, c: Option<u32>) -> u32 {\n\
                   a.unwrap() + b.unwrap() + c.unwrap() }";
        let mut findings = scan_file(&FileCtx::new("crates/mesh/src/x.rs", src));
        assert_eq!(findings.len(), 3);
        let mut entries = parse_baseline(
            "[[allow]]\nrule = \"P1\"\nfile = \"crates/mesh/src/x.rs\"\ncount = 2\nreason = \"two are invariant-guarded\"\n",
        )
        .unwrap();
        apply_baseline(&mut findings, &mut entries);
        assert_eq!(findings.iter().filter(|f| f.baselined).count(), 2);
        assert_eq!(findings.iter().filter(|f| !f.baselined).count(), 1);
        assert!(stale_entries(&entries).is_empty());
    }

    #[test]
    fn stale_entries_reported() {
        let mut entries = parse_baseline(
            "[[allow]]\nrule = \"D1\"\nfile = \"crates/x/src/y.rs\"\ncount = 5\nreason = \"gone\"\n",
        )
        .unwrap();
        apply_baseline(&mut [], &mut entries);
        let stale = stale_entries(&entries);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].used, 0);
    }
}
