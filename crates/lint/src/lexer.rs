//! A minimal Rust lexer: just enough structure for pattern rules.
//!
//! Comments and whitespace are skipped (so doc examples never trip a
//! rule), strings/chars/numbers collapse to [`TokKind::Literal`], and
//! everything else is an identifier, a lifetime, or a one-character
//! punctuation token. Line/column positions are 1-based.

/// Token class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_`).
    Ident,
    /// One punctuation character (`::` is two tokens).
    Punct,
    /// String, byte-string, char, or numeric literal.
    Literal,
    /// A lifetime such as `'a` (quote included in the text).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Source text (literals keep their full text).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in chars).
    pub col: u32,
}

impl Token {
    /// Is this an identifier with exactly this text?
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Is this a punctuation token with exactly this text?
    #[must_use]
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn skip_block_comment(&mut self) {
        // Entered after consuming `/*`; block comments nest in Rust.
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Consumes a `"…"` body (opening quote already consumed),
    /// honouring backslash escapes.
    fn finish_quoted(&mut self, out: &mut String) {
        while let Some(c) = self.bump() {
            out.push(c);
            match c {
                '\\' => {
                    if let Some(e) = self.bump() {
                        out.push(e);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consumes a raw string `r##"…"##` starting at the first `#`/`"`.
    /// Returns `false` (leaving the consumed hashes in `out`) when no
    /// string follows — a raw identifier such as `r#type`.
    fn finish_raw(&mut self, out: &mut String) -> bool {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            out.push('#');
            self.bump();
            hashes += 1;
        }
        if self.peek(0) != Some('"') {
            return false; // `r#ident` raw identifier, not a string
        }
        out.push('"');
        self.bump();
        loop {
            match self.bump() {
                Some('"') => {
                    out.push('"');
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        out.push('#');
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(c) => out.push(c),
                None => break,
            }
        }
        true
    }

    fn lex_number(&mut self, first: char) -> String {
        let mut out = String::new();
        out.push(first);
        loop {
            match self.peek(0) {
                Some(c) if is_ident_continue(c) => {
                    out.push(c);
                    self.bump();
                }
                Some('.') if self.peek(1).is_some_and(|c| c.is_ascii_digit()) => {
                    out.push('.');
                    self.bump();
                }
                Some(c @ ('+' | '-'))
                    if out.ends_with(['e', 'E'])
                        && self.peek(1).is_some_and(|c| c.is_ascii_digit()) =>
                {
                    out.push(c);
                    self.bump();
                }
                _ => break,
            }
        }
        out
    }
}

/// Lexes `src` into tokens, skipping whitespace and comments.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    loop {
        let (line, col) = (lx.line, lx.col);
        let Some(c) = lx.peek(0) else { break };
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        if c == '/' && lx.peek(1) == Some('/') {
            lx.skip_line_comment();
            continue;
        }
        if c == '/' && lx.peek(1) == Some('*') {
            lx.bump();
            lx.bump();
            lx.skip_block_comment();
            continue;
        }
        // String-literal prefixes: r" r# b" b' br" br# rb (non-standard
        // orders fall through to plain identifiers harmlessly).
        if c == 'r' && matches!(lx.peek(1), Some('"' | '#')) {
            let mut text = String::from("r");
            lx.bump();
            if lx.finish_raw(&mut text) {
                toks.push(Token {
                    kind: TokKind::Literal,
                    text,
                    line,
                    col,
                });
            } else {
                // `r#ident` raw identifier: one Ident token whose text
                // keeps the `r#` prefix so it never matches a keyword.
                while let Some(c) = lx.peek(0) {
                    if is_ident_continue(c) {
                        text.push(c);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                toks.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            continue;
        }
        if c == 'b' && lx.peek(1) == Some('"') {
            let mut text = String::from("b\"");
            lx.bump();
            lx.bump();
            lx.finish_quoted(&mut text);
            toks.push(Token {
                kind: TokKind::Literal,
                text,
                line,
                col,
            });
            continue;
        }
        if c == 'b' && lx.peek(1) == Some('\'') {
            let mut text = String::from("b'");
            lx.bump();
            lx.bump();
            while let Some(c) = lx.bump() {
                text.push(c);
                match c {
                    '\\' => {
                        if let Some(e) = lx.bump() {
                            text.push(e);
                        }
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            toks.push(Token {
                kind: TokKind::Literal,
                text,
                line,
                col,
            });
            continue;
        }
        if c == 'b' && lx.peek(1) == Some('r') && matches!(lx.peek(2), Some('"' | '#')) {
            let mut text = String::from("br");
            lx.bump();
            lx.bump();
            let kind = if lx.finish_raw(&mut text) {
                TokKind::Literal
            } else {
                TokKind::Ident // not valid Rust, but never a phantom literal
            };
            toks.push(Token {
                kind,
                text,
                line,
                col,
            });
            continue;
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(c) = lx.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    lx.bump();
                } else {
                    break;
                }
            }
            toks.push(Token {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        if c.is_ascii_digit() {
            lx.bump();
            let text = lx.lex_number(c);
            toks.push(Token {
                kind: TokKind::Literal,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '"' {
            let mut text = String::from("\"");
            lx.bump();
            lx.finish_quoted(&mut text);
            toks.push(Token {
                kind: TokKind::Literal,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '\'' {
            // Lifetime (`'a` not closed by a quote) vs char literal.
            let is_lifetime = lx.peek(1).is_some_and(is_ident_start) && lx.peek(2) != Some('\'');
            if is_lifetime {
                let mut text = String::from("'");
                lx.bump();
                while let Some(c) = lx.peek(0) {
                    if is_ident_continue(c) {
                        text.push(c);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                toks.push(Token {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                    col,
                });
            } else {
                let mut text = String::from("'");
                lx.bump();
                while let Some(c) = lx.bump() {
                    text.push(c);
                    match c {
                        '\\' => {
                            if let Some(e) = lx.bump() {
                                text.push(e);
                            }
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                toks.push(Token {
                    kind: TokKind::Literal,
                    text,
                    line,
                    col,
                });
            }
            continue;
        }
        lx.bump();
        toks.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let toks = lex("let x = a.unwrap();\nfoo()");
        assert!(toks[0].is_ident("let"));
        assert!(toks[5].is_ident("unwrap"));
        assert_eq!(toks[5].line, 1);
        let foo = toks.iter().find(|t| t.is_ident("foo")).unwrap();
        assert_eq!(foo.line, 2);
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let ts = texts("// unwrap()\n/* panic!() /* nested */ */ \"unwrap()\" x");
        assert_eq!(ts, vec!["\"unwrap()\"", "x"]);
    }

    #[test]
    fn raw_strings_and_hashes() {
        let ts = texts("r#\"has \"quotes\" inside\"# after");
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[1], "after");
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(c: char) { let x = 'x'; let y = '\\n'; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "'x'"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "'\\n'"));
    }

    #[test]
    fn numbers_lex_as_literals() {
        let toks = lex("1.5e-3 + 0x1f + 12usize");
        let lits: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec!["1.5e-3", "0x1f", "12usize"]);
    }

    #[test]
    fn byte_strings() {
        let ts = texts("b\"bytes\" br#\"raw\"# b'x'");
        assert_eq!(ts, vec!["b\"bytes\"", "br#\"raw\"#", "b'x'"]);
    }
}
