//! The cross-crate call graph: nodes are every function the item
//! parser found; edges link call sites to the workspace functions they
//! can resolve to. Resolution is name-based but *dependency-aware*: a
//! call in crate X may only resolve into crates X actually depends on
//! (transitively, per the workspace `Cargo.toml`s), which keeps the
//! conservative method-name matching from inventing impossible edges.
//!
//! Everything is BTree-ordered, so the graph — and the
//! `anr-lint-graph/1` JSONL artifact serialized from it — is
//! byte-identical across runs and worker counts.

use crate::context::{FileCtx, FileKind};
use crate::lexer::TokKind;
use crate::parser::{ParsedFile, Visibility};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::Path;

/// One function node in the call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Human-readable name: `crate::[Type::]name`.
    pub display: String,
    /// Owning crate directory name (`core`, `par`, … or `anr-marching`).
    pub crate_name: String,
    /// Bare function name.
    pub name: String,
    /// Impl self type / trait name, when this is a method.
    pub self_ty: Option<String>,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Visibility.
    pub vis: Visibility,
    /// Target kind of the owning file.
    pub kind: FileKind,
    /// Defined in test-only code (or a test/bench/example file)?
    pub in_test: bool,
    /// Index of the owning file in the builder's input slice.
    pub file_idx: usize,
    /// Body token range in the owning file (exclusive); `None` for
    /// bodyless trait method declarations.
    pub body: Option<(usize, usize)>,
}

/// The assembled workspace call graph.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Nodes, ordered by (file, source order) — deterministic.
    pub nodes: Vec<FnNode>,
    /// `(caller, callee)` node-index pairs, sorted and deduplicated.
    pub edges: Vec<(usize, usize)>,
    /// Transitive dependency closure per crate (including itself).
    pub crate_deps: BTreeMap<String, BTreeSet<String>>,
    /// Number of source files the graph was built from.
    pub files: usize,
}

impl CallGraph {
    /// Outgoing callee indices of `node`, in sorted order.
    #[must_use]
    pub fn callees(&self, node: usize) -> Vec<usize> {
        let start = self.edges.partition_point(|&(c, _)| c < node);
        self.edges[start..]
            .iter()
            .take_while(|&&(c, _)| c == node)
            .map(|&(_, v)| v)
            .collect()
    }

    /// Serializes the graph as `anr-lint-graph/1` JSON Lines: one
    /// `node` record per function (with its sorted callee ids) plus a
    /// trailing `summary` record. Byte-identical across runs.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = write!(
                out,
                "{{\"schema\":\"anr-lint-graph/1\",\"kind\":\"node\",\"id\":{i},\"fn\":"
            );
            crate::report::json_str(&mut out, &n.display);
            out.push_str(",\"file\":");
            crate::report::json_str(&mut out, &n.file);
            let _ = write!(out, ",\"line\":{},\"crate\":", n.line);
            crate::report::json_str(&mut out, &n.crate_name);
            let _ = write!(
                out,
                ",\"vis\":\"{}\",\"target\":\"{}\",\"test\":{},\"calls\":[",
                n.vis.as_str(),
                kind_str(n.kind),
                n.in_test,
            );
            for (k, c) in self.callees(i).iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}\n");
        }
        let _ = writeln!(
            out,
            "{{\"schema\":\"anr-lint-graph/1\",\"kind\":\"summary\",\"nodes\":{},\"edges\":{},\"files\":{},\"crates\":{}}}",
            self.nodes.len(),
            self.edges.len(),
            self.files,
            self.crate_deps.len(),
        );
        out
    }
}

fn kind_str(kind: FileKind) -> &'static str {
    match kind {
        FileKind::Lib => "lib",
        FileKind::Bin => "bin",
        FileKind::Test => "test",
        FileKind::Bench => "bench",
        FileKind::Example => "example",
    }
}

/// Workspace crate metadata: package-name ↔ crate-dir mapping and the
/// declared dependency edges, read from the `Cargo.toml`s under `root`.
#[derive(Debug, Default)]
struct CrateMeta {
    /// Normalized package name (`anr_march`) → crate dir (`core`).
    pkg_to_dir: BTreeMap<String, String>,
    /// Crate dir → directly declared workspace deps (crate dirs).
    deps: BTreeMap<String, BTreeSet<String>>,
    /// Crate dirs found without a readable `Cargo.toml` (fixture
    /// workspaces) — these may reach every crate.
    unmapped: BTreeSet<String>,
}

fn normalize(pkg: &str) -> String {
    pkg.replace('-', "_")
}

/// Minimal `Cargo.toml` scan: the `[package] name` plus every key under
/// a `[dependencies]`-family section. Deliberately not a TOML parser —
/// the workspace manifests are plain enough.
fn scan_cargo_toml(text: &str) -> (Option<String>, Vec<String>) {
    let mut name = None;
    let mut deps = Vec::new();
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.to_string();
            continue;
        }
        if section == "[package]" {
            if let Some(rest) = line.strip_prefix("name") {
                if let Some(v) = rest.trim_start().strip_prefix('=') {
                    name = Some(v.trim().trim_matches('"').to_string());
                }
            }
        } else if matches!(
            section.as_str(),
            "[dependencies]" | "[dev-dependencies]" | "[build-dependencies]"
        ) {
            if let Some(eq) = line.find('=') {
                let key = line[..eq].trim();
                let key = key.split('.').next().unwrap_or(key).trim();
                if !key.is_empty() {
                    deps.push(key.to_string());
                }
            }
        }
    }
    (name, deps)
}

fn load_crate_meta(root: &Path, crate_names: &BTreeSet<String>) -> CrateMeta {
    let mut meta = CrateMeta::default();
    let mut raw_deps: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for dir in crate_names {
        let manifest = if dir == "anr-marching" {
            root.join("Cargo.toml")
        } else {
            root.join("crates").join(dir).join("Cargo.toml")
        };
        match std::fs::read_to_string(&manifest) {
            Ok(text) => {
                let (pkg, deps) = scan_cargo_toml(&text);
                let pkg = pkg.unwrap_or_else(|| dir.clone());
                meta.pkg_to_dir.insert(normalize(&pkg), dir.clone());
                meta.pkg_to_dir.insert(normalize(dir), dir.clone());
                raw_deps.insert(dir.clone(), deps);
            }
            Err(_) => {
                meta.pkg_to_dir.insert(normalize(dir), dir.clone());
                meta.unmapped.insert(dir.clone());
            }
        }
    }
    // Dep package names → crate dirs; packages outside the workspace
    // (vendored stand-ins, std shims) simply drop out.
    for (dir, deps) in raw_deps {
        let set: BTreeSet<String> = deps
            .iter()
            .filter_map(|d| meta.pkg_to_dir.get(&normalize(d)).cloned())
            .collect();
        meta.deps.insert(dir, set);
    }
    meta
}

/// Transitive closure of the declared deps. A crate without a manifest
/// may reach every crate — fixture workspaces stay fully linkable.
fn dep_closure(
    meta: &CrateMeta,
    crate_names: &BTreeSet<String>,
) -> BTreeMap<String, BTreeSet<String>> {
    let mut closure = BTreeMap::new();
    for name in crate_names {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        if meta.unmapped.contains(name) {
            seen.extend(crate_names.iter().cloned());
        } else {
            let mut stack = vec![name.clone()];
            while let Some(c) = stack.pop() {
                if !seen.insert(c.clone()) {
                    continue;
                }
                if let Some(direct) = meta.deps.get(&c) {
                    stack.extend(direct.iter().cloned());
                }
            }
        }
        seen.insert(name.clone());
        closure.insert(name.clone(), seen);
    }
    closure
}

/// A call site extracted from a function body.
enum CallSite {
    /// `name(…)` with no path qualifier.
    Unqualified(String),
    /// `a::b::name(…)`, or a mentioned path `a::b::name` used as a
    /// value (`map(Self::f)` passes the function itself).
    Qualified(Vec<String>),
    /// `.name(…)` method call.
    Method(String),
}

/// Extracts the call sites of one body token range.
fn call_sites(ctx: &FileCtx, body: (usize, usize)) -> Vec<CallSite> {
    let toks = &ctx.tokens;
    let mut sites = Vec::new();
    let mut i = body.0;
    let end = body.1.min(toks.len());
    while i < end {
        if toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // `::` lexes as two `:` puncts; a segment preceded by one was
        // already swallowed when the path head was seen.
        if i >= 2 && toks[i - 1].is_punct(":") && toks[i - 2].is_punct(":") {
            i += 1;
            continue;
        }
        let mut segments = vec![toks[i].text.clone()];
        let mut j = i;
        while j + 3 < end
            && toks[j + 1].is_punct(":")
            && toks[j + 2].is_punct(":")
            && toks[j + 3].kind == TokKind::Ident
        {
            segments.push(toks[j + 3].text.clone());
            j += 3;
        }
        let is_call = toks.get(j + 1).is_some_and(|t| t.is_punct("("));
        let prev_dot = i > body.0 && toks[i - 1].is_punct(".");
        let prev_fn = i > body.0 && toks[i - 1].is_ident("fn");
        if segments.len() == 1 {
            if is_call && !prev_fn {
                let name = segments.remove(0);
                if prev_dot {
                    sites.push(CallSite::Method(name));
                } else {
                    sites.push(CallSite::Unqualified(name));
                }
            }
        } else if !prev_fn {
            sites.push(CallSite::Qualified(segments));
        }
        i = j + 1;
    }
    sites
}

/// Name-resolution indexes over the graph nodes. Test-only functions
/// never appear: a shipping call site cannot land in `#[cfg(test)]`.
struct Indexes {
    /// (crate dir, name) → free fns.
    free: BTreeMap<(String, String), Vec<usize>>,
    /// name → free fns anywhere (re-export fallback, closure-filtered).
    free_any: BTreeMap<String, Vec<usize>>,
    /// method name → impl/trait fns (conservative dynamic dispatch).
    methods: BTreeMap<String, Vec<usize>>,
    /// (self type or trait, name) → fns.
    typed: BTreeMap<(String, String), Vec<usize>>,
}

fn build_indexes(nodes: &[FnNode]) -> Indexes {
    let mut ix = Indexes {
        free: BTreeMap::new(),
        free_any: BTreeMap::new(),
        methods: BTreeMap::new(),
        typed: BTreeMap::new(),
    };
    for (i, n) in nodes.iter().enumerate() {
        if n.in_test || !matches!(n.kind, FileKind::Lib | FileKind::Bin) {
            continue;
        }
        match &n.self_ty {
            None => {
                ix.free
                    .entry((n.crate_name.clone(), n.name.clone()))
                    .or_default()
                    .push(i);
                ix.free_any.entry(n.name.clone()).or_default().push(i);
            }
            Some(ty) => {
                ix.methods.entry(n.name.clone()).or_default().push(i);
                ix.typed
                    .entry((ty.clone(), n.name.clone()))
                    .or_default()
                    .push(i);
            }
        }
    }
    ix
}

fn is_type_like(segment: &str) -> bool {
    segment
        .trim_start_matches("r#")
        .chars()
        .next()
        .is_some_and(char::is_uppercase)
}

/// Maps a path head segment to a crate dir: `crate`/`self`/`super`
/// stay in the caller's crate; otherwise the package map, then the
/// file's imports (`use anr_trace::wall;` makes `wall::…` trace's).
fn head_crate(
    head: &str,
    caller_crate: &str,
    meta: &CrateMeta,
    imports: &BTreeMap<String, Vec<String>>,
) -> Option<String> {
    if matches!(head, "crate" | "self" | "super") {
        return Some(caller_crate.to_string());
    }
    if let Some(dir) = meta.pkg_to_dir.get(&normalize(head)) {
        return Some(dir.clone());
    }
    if let Some(path) = imports.get(head) {
        if let Some(first) = path.first() {
            if first != head {
                return head_crate(first, caller_crate, meta, imports);
            }
        }
    }
    None
}

/// Resolves one call site to candidate callee nodes. Candidates are
/// always filtered to the caller's dependency closure.
fn resolve_site(
    site: &CallSite,
    caller: &FnNode,
    ix: &Indexes,
    meta: &CrateMeta,
    imports: &BTreeMap<String, Vec<String>>,
    globs: &[String],
) -> Vec<usize> {
    let pick = |cands: Option<&Vec<usize>>| cands.cloned().unwrap_or_default();
    match site {
        CallSite::Method(name) => pick(ix.methods.get(name)),
        CallSite::Unqualified(name) => {
            let local = pick(ix.free.get(&(caller.crate_name.clone(), name.clone())));
            if !local.is_empty() {
                return local;
            }
            if let Some(path) = imports.get(name) {
                let real = path.last().cloned().unwrap_or_else(|| name.clone());
                if let Some(head) = path.first() {
                    if let Some(dir) = head_crate(head, &caller.crate_name, meta, imports) {
                        let hit = pick(ix.free.get(&(dir, real.clone())));
                        if !hit.is_empty() {
                            return hit;
                        }
                    }
                }
                // Re-exported through an intermediate crate: any free fn
                // of that name (the closure filter prunes the rest).
                return pick(ix.free_any.get(&real));
            }
            let mut out = Vec::new();
            for head in globs {
                if let Some(dir) = head_crate(head, &caller.crate_name, meta, imports) {
                    out.extend(pick(ix.free.get(&(dir, name.clone()))));
                }
            }
            out
        }
        CallSite::Qualified(segments) => {
            let name = segments.last().cloned().unwrap_or_default();
            let head = segments.first().cloned().unwrap_or_default();
            let qual = segments[segments.len() - 2].clone();
            if is_type_like(&head) {
                let ty = if head == "Self" {
                    caller.self_ty.clone().unwrap_or(head)
                } else {
                    head
                };
                return pick(ix.typed.get(&(ty, name)));
            }
            if let Some(dir) = head_crate(&head, &caller.crate_name, meta, imports) {
                let hit = pick(ix.free.get(&(dir, name.clone())));
                if !hit.is_empty() {
                    return hit;
                }
                if is_type_like(&qual) {
                    // `anr_mesh::TriMesh::new` — typed tail.
                    return pick(ix.typed.get(&(qual, name)));
                }
                // `anr_march::par_map` may really be par's (re-export).
                return pick(ix.free_any.get(&name));
            }
            if is_type_like(&qual) {
                return pick(ix.typed.get(&(qual, name)));
            }
            // Unknown module path: same-crate module call.
            pick(ix.free.get(&(caller.crate_name.clone(), name)))
        }
    }
}

/// Builds the workspace call graph from lexed + parsed files.
///
/// `files` pairs each file's analysis context with its parsed items;
/// `root` is read for `Cargo.toml` dependency metadata.
#[must_use]
pub fn build_graph(root: &Path, files: &[(FileCtx, ParsedFile)]) -> CallGraph {
    let mut nodes = Vec::new();
    for (file_idx, (ctx, parsed)) in files.iter().enumerate() {
        for f in &parsed.fns {
            let display = match &f.self_ty {
                Some(ty) => format!("{}::{}::{}", ctx.crate_name, ty, f.name),
                None => format!("{}::{}", ctx.crate_name, f.name),
            };
            nodes.push(FnNode {
                display,
                crate_name: ctx.crate_name.clone(),
                name: f.name.clone(),
                self_ty: f.self_ty.clone(),
                file: ctx.rel_path.clone(),
                line: f.line,
                vis: f.vis,
                kind: ctx.kind,
                in_test: f.in_test
                    || matches!(
                        ctx.kind,
                        FileKind::Test | FileKind::Bench | FileKind::Example
                    ),
                file_idx,
                body: f.body,
            });
        }
    }

    let crate_names: BTreeSet<String> = files.iter().map(|(c, _)| c.crate_name.clone()).collect();
    let meta = load_crate_meta(root, &crate_names);
    let crate_deps = dep_closure(&meta, &crate_names);
    let ix = build_indexes(&nodes);

    // Per-file import tables: local name → path segments, plus the
    // heads of glob imports.
    let mut imports: Vec<BTreeMap<String, Vec<String>>> = Vec::with_capacity(files.len());
    let mut globs: Vec<Vec<String>> = Vec::with_capacity(files.len());
    for (_, parsed) in files {
        let mut table = BTreeMap::new();
        let mut g = Vec::new();
        for u in &parsed.uses {
            match u.local_name() {
                Some(name) => {
                    table.insert(name.to_string(), u.segments.clone());
                }
                None => {
                    if let Some(first) = u.segments.first() {
                        g.push(first.clone());
                    }
                }
            }
        }
        imports.push(table);
        globs.push(g);
    }

    let empty = BTreeSet::new();
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for caller in 0..nodes.len() {
        let Some(body) = nodes[caller].body else {
            continue;
        };
        let file_idx = nodes[caller].file_idx;
        let ctx = &files[file_idx].0;
        let allowed = crate_deps.get(&nodes[caller].crate_name).unwrap_or(&empty);
        for site in call_sites(ctx, body) {
            for callee in resolve_site(
                &site,
                &nodes[caller],
                &ix,
                &meta,
                &imports[file_idx],
                &globs[file_idx],
            ) {
                if callee != caller && allowed.contains(&nodes[callee].crate_name) {
                    edges.insert((caller, callee));
                }
            }
        }
    }

    CallGraph {
        nodes,
        edges: edges.into_iter().collect(),
        crate_deps,
        files: files.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let built: Vec<(FileCtx, ParsedFile)> = files
            .iter()
            .map(|(path, src)| {
                let ctx = FileCtx::new(path, src);
                let parsed = parse_file(&ctx);
                (ctx, parsed)
            })
            .collect();
        build_graph(Path::new("/nonexistent-root"), &built)
    }

    fn edge(g: &CallGraph, from: &str, to: &str) -> bool {
        g.edges
            .iter()
            .any(|&(a, b)| g.nodes[a].display == from && g.nodes[b].display == to)
    }

    #[test]
    fn direct_and_cross_crate_calls_link() {
        let g = graph_of(&[
            (
                "crates/alpha/src/lib.rs",
                "use beta::helper;\npub fn entry() { helper(); local(); }\nfn local() {}",
            ),
            ("crates/beta/src/lib.rs", "pub fn helper() {}"),
        ]);
        assert!(edge(&g, "alpha::entry", "alpha::local"));
        assert!(edge(&g, "alpha::entry", "beta::helper"));
    }

    #[test]
    fn method_calls_dispatch_conservatively() {
        let g = graph_of(&[
            (
                "crates/alpha/src/lib.rs",
                "pub fn entry(m: &Mesh) { m.area(); }",
            ),
            (
                "crates/beta/src/lib.rs",
                "pub struct Mesh;\nimpl Mesh { pub fn area(&self) -> f64 { 0.0 } }",
            ),
        ]);
        assert!(edge(&g, "alpha::entry", "beta::Mesh::area"));
    }

    #[test]
    fn typed_paths_and_fn_references() {
        let g = graph_of(&[
            (
                "crates/alpha/src/lib.rs",
                "pub fn entry() { Mesh::build(); steal(helper); crate::helper(); }\n\
                 fn steal(_f: fn()) {}\npub fn helper() {}",
            ),
            (
                "crates/beta/src/lib.rs",
                "pub struct Mesh;\nimpl Mesh { pub fn build() {} }",
            ),
        ]);
        assert!(edge(&g, "alpha::entry", "beta::Mesh::build"));
        assert!(edge(&g, "alpha::entry", "alpha::steal"));
        assert!(edge(&g, "alpha::entry", "alpha::helper"));
    }

    #[test]
    fn qualified_mentions_without_parens_count() {
        let g = graph_of(&[(
            "crates/alpha/src/lib.rs",
            "pub struct K;\nimpl K { pub fn cmp(a: f64) -> f64 { a } }\n\
             pub fn entry(v: &mut Vec<f64>) { v.sort_by_key(K::cmp); }",
        )]);
        assert!(edge(&g, "alpha::entry", "alpha::K::cmp"));
    }

    #[test]
    fn test_fns_never_resolve_as_callees() {
        let g = graph_of(&[(
            "crates/alpha/src/lib.rs",
            "pub fn entry() { helper(); }\n#[cfg(test)]\nmod tests { fn helper() {} }",
        )]);
        assert!(!g
            .edges
            .iter()
            .any(|&(a, _)| g.nodes[a].display == "alpha::entry"));
    }

    #[test]
    fn jsonl_is_deterministic_and_schema_tagged() {
        let files: &[(&str, &str)] = &[(
            "crates/alpha/src/lib.rs",
            "pub fn entry() { helper(); }\npub fn helper() {}",
        )];
        let a = graph_of(files).to_jsonl();
        let b = graph_of(files).to_jsonl();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":\"anr-lint-graph/1\",\"kind\":\"node\""));
        assert!(a.lines().last().unwrap().contains("\"kind\":\"summary\""));
    }

    #[test]
    fn cargo_toml_scan_reads_names_and_deps() {
        let (name, deps) = scan_cargo_toml(
            "[package]\nname = \"anr-mesh\"\n\n[dependencies]\n\
             anr-geom.workspace = true\nrand = { path = \"x\" }\n\n\
             [dev-dependencies]\nproptest.workspace = true\n",
        );
        assert_eq!(name.as_deref(), Some("anr-mesh"));
        assert_eq!(deps, vec!["anr-geom", "rand", "proptest"]);
    }
}
