//! Report rendering: human-readable text and the machine-readable
//! JSONL stream (`schema: anr-lint/2`).
//!
//! JSONL schema — one object per line:
//!
//! * finding lines: `{"schema":"anr-lint/2","kind":"finding","rule":R,`
//!   `"severity":"error"|"warn","file":F,"line":N,"col":N,"message":M,`
//!   `"hint":H,"baselined":bool[,"path":CHAIN]}` — `path` appears on
//!   interprocedural (S-rule) findings only and holds the call chain
//!   as ` -> `-joined function displays
//! * one trailing summary line: `{"schema":"anr-lint/2","kind":"summary",`
//!   `"files":N,"findings":N,"baselined":N,"non_baselined":N,`
//!   `"stale_allows":N}`

use crate::baseline::AllowEntry;
use crate::graph::CallGraph;
use crate::rules::Finding;
use crate::semantic::PanicsReport;
use std::fmt::Write as _;

/// A complete lint run over the workspace.
#[derive(Debug)]
pub struct LintReport {
    /// All findings, sorted by (file, line, col, rule), with
    /// `baselined` already resolved against the allow file.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Baseline entries that absorbed fewer findings than they allow.
    pub stale: Vec<AllowEntry>,
    /// The cross-crate call graph the S-rules ran over; serialize with
    /// [`CallGraph::to_jsonl`] for the `anr-lint-graph/1` artifact.
    pub graph: CallGraph,
    /// Panic reachability for the whole `pub` library surface.
    pub panics: PanicsReport,
}

impl LintReport {
    /// Findings not covered by the baseline.
    #[must_use]
    pub fn non_baselined(&self) -> usize {
        self.findings.iter().filter(|f| !f.baselined).count()
    }

    /// Findings absorbed by the baseline.
    #[must_use]
    pub fn baselined(&self) -> usize {
        self.findings.len() - self.non_baselined()
    }

    /// Renders the JSONL stream (finding lines + summary line).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = write!(
                out,
                "{{\"schema\":\"anr-lint/2\",\"kind\":\"finding\",\"rule\":\"{}\",\"severity\":\"{}\",\"file\":",
                f.rule,
                f.severity.as_str(),
            );
            json_str(&mut out, &f.file);
            let _ = write!(out, ",\"line\":{},\"col\":{},\"message\":", f.line, f.col);
            json_str(&mut out, &f.message);
            out.push_str(",\"hint\":");
            json_str(&mut out, f.hint);
            let _ = write!(out, ",\"baselined\":{}", f.baselined);
            if let Some(path) = &f.path {
                out.push_str(",\"path\":");
                json_str(&mut out, path);
            }
            out.push_str("}\n");
        }
        let _ = writeln!(
            out,
            "{{\"schema\":\"anr-lint/2\",\"kind\":\"summary\",\"files\":{},\"findings\":{},\"baselined\":{},\"non_baselined\":{},\"stale_allows\":{}}}",
            self.files_scanned,
            self.findings.len(),
            self.baselined(),
            self.non_baselined(),
            self.stale.len(),
        );
        out
    }

    /// Renders the human report. Baselined findings are summarized;
    /// non-baselined findings are listed one per line.
    #[must_use]
    pub fn to_human(&self) -> String {
        let mut out = String::new();
        for f in self.findings.iter().filter(|f| !f.baselined) {
            let _ = writeln!(
                out,
                "{}:{}:{}: {} [{}] {}\n    hint: {}",
                f.file,
                f.line,
                f.col,
                f.severity.as_str(),
                f.rule,
                f.message,
                f.hint,
            );
            if let Some(path) = &f.path {
                let _ = writeln!(out, "    path: {path}");
            }
        }
        for e in &self.stale {
            let _ = writeln!(
                out,
                "note: stale allow: {} in {} permits {} but only {} found — ratchet down",
                e.rule, e.file, e.count, e.used,
            );
        }
        let _ = writeln!(
            out,
            "anr-lint: {} files, {} findings ({} baselined, {} open)",
            self.files_scanned,
            self.findings.len(),
            self.baselined(),
            self.non_baselined(),
        );
        out
    }
}

pub(crate) fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn sample() -> LintReport {
        LintReport {
            findings: vec![Finding {
                rule: "P1",
                severity: Severity::Error,
                file: "crates/mesh/src/foi.rs".to_string(),
                line: 10,
                col: 7,
                message: "`.unwrap()` in library code".to_string(),
                hint: "return a typed error",
                baselined: false,
                path: None,
            }],
            files_scanned: 3,
            stale: Vec::new(),
            graph: CallGraph {
                nodes: Vec::new(),
                edges: Vec::new(),
                crate_deps: std::collections::BTreeMap::new(),
                files: 0,
            },
            panics: PanicsReport::default(),
        }
    }

    #[test]
    fn jsonl_has_findings_and_summary() {
        let report = sample();
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"schema\":\"anr-lint/2\""));
        assert!(lines[0].contains("\"kind\":\"finding\""));
        assert!(lines[0].contains("\"rule\":\"P1\""));
        assert!(lines[0].contains("\"baselined\":false"));
        assert!(lines[1].contains("\"kind\":\"summary\""));
        assert!(lines[1].contains("\"non_baselined\":1"));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn human_report_lists_open_findings() {
        let text = sample().to_human();
        assert!(text.contains("crates/mesh/src/foi.rs:10:7"));
        assert!(text.contains("[P1]"));
        assert!(text.contains("1 open"));
    }
}
