//! Per-file analysis context: what kind of target a file belongs to,
//! which token spans are test code, and where functions live.

use crate::lexer::{TokKind, Token};

/// What compilation target a source file belongs to, derived from its
/// workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code — the panic-safety rules apply here.
    Lib,
    /// Binary code (`src/main.rs`, `src/bin/`, and all of `crates/cli`).
    Bin,
    /// Integration tests (`tests/` directories).
    Test,
    /// Benchmarks (`benches/` directories).
    Bench,
    /// Examples (`examples/` directories).
    Example,
}

/// The analysis context for one source file.
pub struct FileCtx {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Owning crate directory name (`core`, `mesh`, …; the umbrella
    /// crate's `src/` and `tests/` map to `anr-marching`).
    pub crate_name: String,
    /// Target classification.
    pub kind: FileKind,
    /// Lexed tokens.
    pub tokens: Vec<Token>,
    /// `in_test[i]` — token `i` is inside `#[cfg(test)]` / `#[test]` /
    /// proptest-macro code.
    pub in_test: Vec<bool>,
}

impl FileCtx {
    /// Builds the context for one file.
    #[must_use]
    pub fn new(rel_path: &str, src: &str) -> FileCtx {
        let rel_path = rel_path.replace('\\', "/");
        let tokens = crate::lexer::lex(src);
        let in_test = mark_test_regions(&tokens);
        let (crate_name, kind) = classify(&rel_path);
        FileCtx {
            rel_path,
            crate_name,
            kind,
            tokens,
            in_test,
        }
    }

    /// Library code outside any test region?
    #[must_use]
    pub fn is_lib_code(&self, i: usize) -> bool {
        self.kind == FileKind::Lib && !self.in_test[i]
    }

    /// Shipping (library or binary) code outside any test region?
    #[must_use]
    pub fn is_shipping_code(&self, i: usize) -> bool {
        matches!(self.kind, FileKind::Lib | FileKind::Bin) && !self.in_test[i]
    }

    /// Is this file a crate root (`src/lib.rs`)?
    #[must_use]
    pub fn is_crate_root(&self) -> bool {
        self.rel_path.ends_with("src/lib.rs")
    }
}

fn classify(rel_path: &str) -> (String, FileKind) {
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("anr-marching")
        .to_string();
    let kind = if rel_path.contains("/tests/") || rel_path.starts_with("tests/") {
        FileKind::Test
    } else if rel_path.contains("/benches/") || rel_path.starts_with("benches/") {
        FileKind::Bench
    } else if rel_path.contains("/examples/") || rel_path.starts_with("examples/") {
        FileKind::Example
    } else if rel_path.contains("/src/bin/")
        || rel_path.ends_with("src/main.rs")
        || crate_name == "cli"
    {
        // The CLI crate is the binary surface end to end; its lib.rs
        // exists only so the binary's logic is unit-testable.
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    (crate_name, kind)
}

/// Marks tokens inside test-only items: any item annotated
/// `#[cfg(test)]` (but not `cfg(not(test))`), `#[test]`, or a proptest
/// macro block (`proptest! { … }`).
fn mark_test_regions(toks: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        let mut region: Option<(usize, usize)> = None;
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            let close = match matching(toks, i + 1, "[", "]") {
                Some(c) => c,
                None => break,
            };
            if attr_is_test(&toks[i + 1..=close]) {
                if let Some(end) = item_body_end(toks, close + 1) {
                    region = Some((i, end));
                }
            }
            // Attributes never nest; resume after `]` either way so
            // stacked attributes (`#[test] #[ignore] fn …`) still see
            // the item.
            if region.is_none() {
                i = close + 1;
                continue;
            }
        } else if toks[i].is_ident("proptest") && i + 1 < toks.len() && toks[i + 1].is_punct("!") {
            if let Some(open) = toks[i + 2..].iter().position(|t| t.is_punct("{")) {
                if let Some(end) = matching(toks, i + 2 + open, "{", "}") {
                    region = Some((i, end));
                }
            }
        }
        match region {
            Some((start, end)) => {
                for flag in &mut in_test[start..=end] {
                    *flag = true;
                }
                i = end + 1;
            }
            None => i += 1,
        }
    }
    in_test
}

/// Does an attribute token slice (from `[` to `]`) mark test-only code?
fn attr_is_test(attr: &[Token]) -> bool {
    let has = |name: &str| attr.iter().any(|t| t.is_ident(name));
    if has("not") {
        return false; // `cfg(not(test))` is shipping code
    }
    (has("cfg") && has("test")) || attr.iter().any(|t| t.is_ident("test") && attr.len() <= 3)
}

/// Finds the end of the item starting at `start` (after its
/// attributes): the matching `}` of its first block, or the first `;`
/// for body-less items. Skips over any further attributes.
fn item_body_end(toks: &[Token], mut start: usize) -> Option<usize> {
    while start + 1 < toks.len() && toks[start].is_punct("#") && toks[start + 1].is_punct("[") {
        start = matching(toks, start + 1, "[", "]")? + 1;
    }
    let mut j = start;
    while j < toks.len() {
        if toks[j].is_punct(";") {
            return Some(j);
        }
        if toks[j].is_punct("{") {
            return matching(toks, j, "{", "}");
        }
        j += 1;
    }
    None
}

/// Index of the delimiter matching `toks[open]`.
pub(crate) fn matching(
    toks: &[Token],
    open: usize,
    open_ch: &str,
    close_ch: &str,
) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_ch) {
            depth += 1;
        } else if t.is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// A function item found in a file: its name and body token range.
#[derive(Debug, Clone)]
pub(crate) struct FnItem {
    /// Function name.
    pub(crate) name: String,
    /// Line of the `fn` keyword.
    pub(crate) line: u32,
    /// Token range of the body (inside the braces, exclusive).
    pub(crate) body: (usize, usize),
}

/// Extracts every named `fn` item with a body (at any nesting level).
#[must_use]
pub(crate) fn functions(toks: &[Token]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            // Scan the signature for the body `{`; a `;` first means a
            // trait method declaration without a body.
            let mut j = i + 2;
            let mut body = None;
            while j < toks.len() {
                if toks[j].is_punct(";") {
                    break;
                }
                if toks[j].is_punct("{") {
                    if let Some(end) = matching(toks, j, "{", "}") {
                        body = Some((j + 1, end));
                    }
                    break;
                }
                j += 1;
            }
            if let Some(body) = body {
                fns.push(FnItem { name, line, body });
            }
        }
        i += 1;
    }
    fns
}

/// The set of names invoked as calls (`name(…)`, `.name(…)`, or
/// `name!{…}`) within a token range, sorted and deduplicated.
#[must_use]
pub(crate) fn call_names(toks: &[Token], range: (usize, usize)) -> Vec<String> {
    let mut names = Vec::new();
    for i in range.0..range.1.min(toks.len()) {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let next = toks.get(i + 1);
        let called = match next {
            Some(t) if t.is_punct("(") => !toks
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.is_ident("fn")),
            Some(t) if t.is_punct("!") => true,
            _ => false,
        };
        if called {
            names.push(toks[i].text.clone());
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn classifies_paths() {
        assert_eq!(
            classify("crates/mesh/src/foi.rs"),
            ("mesh".into(), FileKind::Lib)
        );
        assert_eq!(
            classify("crates/cli/src/commands.rs"),
            ("cli".into(), FileKind::Bin)
        );
        assert_eq!(
            classify("crates/netgraph/tests/properties.rs"),
            ("netgraph".into(), FileKind::Test)
        );
        assert_eq!(
            classify("tests/lemmas.rs"),
            ("anr-marching".into(), FileKind::Test)
        );
        assert_eq!(
            classify("examples/quickstart.rs"),
            ("anr-marching".into(), FileKind::Example)
        );
        assert_eq!(
            classify("src/lib.rs"),
            ("anr-marching".into(), FileKind::Lib)
        );
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn shipping() {}\n#[cfg(test)]\nmod tests { fn helper() { x.unwrap(); } }";
        let ctx = FileCtx::new("crates/core/src/x.rs", src);
        let unwrap_at = ctx
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        assert!(ctx.in_test[unwrap_at]);
        let shipping_at = ctx
            .tokens
            .iter()
            .position(|t| t.is_ident("shipping"))
            .unwrap();
        assert!(!ctx.in_test[shipping_at]);
    }

    #[test]
    fn cfg_not_test_is_shipping() {
        let src = "#[cfg(not(test))]\nfn real() { x.unwrap(); }";
        let ctx = FileCtx::new("crates/core/src/x.rs", src);
        assert!(ctx.in_test.iter().all(|&b| !b));
    }

    #[test]
    fn stacked_attrs_and_test_fn() {
        let src = "#[test]\n#[ignore]\nfn t() { x.unwrap(); }\nfn live() {}";
        let ctx = FileCtx::new("crates/core/src/x.rs", src);
        let unwrap_at = ctx
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        assert!(ctx.in_test[unwrap_at]);
        let live_at = ctx.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!ctx.in_test[live_at]);
    }

    #[test]
    fn derive_attrs_do_not_swallow_items() {
        let src = "#[derive(Debug, Clone)]\nstruct S { x: u32 }\nfn live() { y.unwrap(); }";
        let ctx = FileCtx::new("crates/core/src/x.rs", src);
        assert!(ctx.in_test.iter().all(|&b| !b));
    }

    #[test]
    fn finds_functions_and_calls() {
        let toks = lex("fn a() { b(); c.d(); }\nfn e();\nfn b() {}");
        let fns = functions(&toks);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        let calls = call_names(&toks, fns[0].body);
        assert_eq!(calls, vec!["b", "d"]);
    }
}
