//! Interprocedural rules over the cross-crate call graph.
//!
//! A reverse breadth-first fixed point from sink functions computes,
//! for every node, the minimum number of call edges to a sink; paths
//! are then reconstructed deterministically (smallest distance first,
//! node index as tie-break), so the reported chain for a given
//! workspace is byte-identical across runs and worker counts.
//!
//! * **S1 — panic reachability.** Sinks are library functions whose
//!   bodies contain a panic pattern (`.unwrap()` / `.expect()` /
//!   `panic!` / `unreachable!` / `todo!` / `unimplemented!`). Every
//!   pipeline entry point that can reach one is reported with its
//!   shortest chain; the chain doubles as the `path` a baseline entry
//!   must pin to justify it.
//! * **S2 — determinism taint.** Sinks are functions touching
//!   wall-clock, unseeded RNG, or std hash collections (the D1/D2/D4
//!   patterns), excluding the sanctioned `anr-trace` wall module.
//! * **S3 — cross-crate dead `pub`.** A `pub` item in library code
//!   that no *other* workspace crate, no bin target, no test, and no
//!   exported API surface (`pub fn` signature / `pub` item definition)
//!   references. Bin targets count because they link against the
//!   library like an external consumer; the API surface counts because
//!   result types flow to consumers through type inference without
//!   ever being named by them.

use crate::context::{FileCtx, FileKind};
use crate::graph::CallGraph;
use crate::lexer::TokKind;
use crate::parser::{ParsedFile, Visibility};
use crate::rules::{rule_info, Finding};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// The seven pipeline entry points S1/S2 guard. Matched by function
/// name on non-test library code, so fixture workspaces can exercise
/// the rules with a same-named function.
pub const ENTRY_POINTS: &[&str] = &[
    "march",
    "audit_piecewise",
    "run_lloyd_guarded",
    "run_fault_sweep",
    "run_pipeline_bench",
    "run_distsim_bench",
    "lint_workspace",
];

/// One row of the panic-reachability report: a `pub` library function
/// and its shortest path to a panic site, if any.
#[derive(Debug, Clone)]
pub struct PanicEntry {
    /// Function display name (`crate::[Type::]name`).
    pub display: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Call edges to the nearest panic sink; 0 = panics locally;
    /// `None` = no panic site reachable.
    pub dist: Option<u32>,
    /// The shortest chain, ` -> `-joined, ending at the sink.
    pub path: Option<String>,
    /// The sink pattern and its location (`` `.unwrap()` at file:line ``).
    pub sink: Option<String>,
}

/// The full panic-reachability surface: every `pub` library function,
/// sorted by (file, line). Serialized as `anr-lint-panics/1` JSONL.
#[derive(Debug, Clone, Default)]
pub struct PanicsReport {
    /// One entry per `pub` library function.
    pub entries: Vec<PanicEntry>,
}

impl PanicsReport {
    /// `pub` functions with any reachable panic site.
    #[must_use]
    pub fn reachable(&self) -> usize {
        self.entries.iter().filter(|e| e.dist.is_some()).count()
    }

    /// Serializes the report as `anr-lint-panics/1` JSON Lines — one
    /// record per `pub` function plus a trailing summary.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str("{\"schema\":\"anr-lint-panics/1\",\"kind\":\"fn\",\"fn\":");
            crate::report::json_str(&mut out, &e.display);
            out.push_str(",\"file\":");
            crate::report::json_str(&mut out, &e.file);
            let _ = write!(out, ",\"line\":{},\"panic_dist\":", e.line);
            match e.dist {
                Some(d) => {
                    let _ = write!(out, "{d}");
                }
                None => out.push_str("null"),
            }
            if let Some(path) = &e.path {
                out.push_str(",\"path\":");
                crate::report::json_str(&mut out, path);
            }
            if let Some(sink) = &e.sink {
                out.push_str(",\"sink\":");
                crate::report::json_str(&mut out, sink);
            }
            out.push_str("}\n");
        }
        let _ = writeln!(
            out,
            "{{\"schema\":\"anr-lint-panics/1\",\"kind\":\"summary\",\"fns\":{},\"reachable\":{}}}",
            self.entries.len(),
            self.reachable(),
        );
        out
    }

    /// Human-readable report: reachable functions first (with chains),
    /// then a summary line.
    #[must_use]
    pub fn to_human(&self) -> String {
        let mut out = String::new();
        for e in self.entries.iter().filter(|e| e.dist.is_some()) {
            let _ = writeln!(
                out,
                "{}:{}: `{}` can panic (distance {})",
                e.file,
                e.line,
                e.display,
                e.dist.unwrap_or(0),
            );
            if let Some(path) = &e.path {
                let _ = writeln!(out, "    path: {path}");
            }
            if let Some(sink) = &e.sink {
                let _ = writeln!(out, "    sink: {sink}");
            }
        }
        let _ = writeln!(
            out,
            "anr-lint panics: {} pub fns, {} can reach a panic site",
            self.entries.len(),
            self.reachable(),
        );
        out
    }
}

/// Everything the interprocedural pass produces.
#[derive(Debug, Default)]
pub struct SemanticOutput {
    /// S1/S2/S3 findings, unsorted (the caller merges and sorts).
    pub findings: Vec<Finding>,
    /// Panic reachability for the whole `pub` library surface.
    pub panics: PanicsReport,
}

/// A sink function: which pattern fires inside it, and where.
struct Sink {
    /// Pattern label (`` `.unwrap()` ``, `` `thread_rng` ``, …).
    label: String,
    /// 1-based line of the first occurrence.
    line: u32,
}

/// Scans one body token range for the first panic pattern.
fn panic_sink(ctx: &FileCtx, body: (usize, usize)) -> Option<Sink> {
    let toks = &ctx.tokens;
    for i in body.0..body.1.min(toks.len()) {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        let next_open = toks.get(i + 1).is_some_and(|t| t.is_punct("("));
        let prev_dot = i > 0 && toks[i - 1].is_punct(".");
        if matches!(name, "unwrap" | "expect") && prev_dot && next_open {
            return Some(Sink {
                label: format!("`.{name}()`"),
                line: toks[i].line,
            });
        }
        if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
        {
            return Some(Sink {
                label: format!("`{name}!`"),
                line: toks[i].line,
            });
        }
    }
    None
}

/// Scans one body token range for the first determinism sink: the
/// D1/D2/D4 patterns (hash collections, wall clock, unseeded RNG).
fn determinism_sink(ctx: &FileCtx, body: (usize, usize)) -> Option<Sink> {
    if ctx.rel_path == "crates/trace/src/wall.rs" {
        return None; // the one sanctioned wall-clock module
    }
    let toks = &ctx.tokens;
    for i in body.0..body.1.min(toks.len()) {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        let path_tail = |head: &str| {
            i >= 3
                && toks[i - 1].is_punct(":")
                && toks[i - 2].is_punct(":")
                && toks[i - 3].is_ident(head)
        };
        let label = match name {
            "HashMap" | "HashSet" => Some(format!("`{name}` iteration order")),
            "SystemTime" => Some("`SystemTime` wall-clock".to_string()),
            "from_entropy" | "thread_rng" => Some(format!("`{name}` unseeded RNG")),
            "now" if path_tail("Instant") => Some("`Instant::now()` wall-clock".to_string()),
            "elapsed"
                if i > 0
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|t| t.is_punct("(")) =>
            {
                Some("`.elapsed()` wall-clock".to_string())
            }
            "random" if path_tail("rand") => Some("`rand::random` thread RNG".to_string()),
            _ => None,
        };
        if let Some(label) = label {
            return Some(Sink {
                label,
                line: toks[i].line,
            });
        }
    }
    None
}

/// Reverse BFS from the sink set: `dist[n]` = minimum call edges from
/// `n` to any sink (sinks are 0). `usize::MAX` = unreachable.
fn distances(graph: &CallGraph, sinks: &BTreeMap<usize, Sink>) -> Vec<usize> {
    let n = graph.nodes.len();
    // Reverse adjacency: callee → callers.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(caller, callee) in &graph.edges {
        rev[callee].push(caller);
    }
    let mut dist = vec![usize::MAX; n];
    let mut frontier: Vec<usize> = sinks.keys().copied().collect();
    for &s in &frontier {
        dist[s] = 0;
    }
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &node in &frontier {
            let d = dist[node] + 1;
            for &caller in &rev[node] {
                if dist[caller] > d {
                    dist[caller] = d;
                    next.push(caller);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }
    dist
}

/// Reconstructs the shortest chain from `start` to a sink: at each hop
/// pick the callee with the smallest distance, node index as tie-break.
/// Returns the chain string and the sink node reached.
fn chain(graph: &CallGraph, dist: &[usize], start: usize) -> (String, usize) {
    let mut cur = start;
    let mut parts = vec![graph.nodes[cur].display.clone()];
    while dist[cur] > 0 {
        let next = graph
            .callees(cur)
            .into_iter()
            .filter(|&c| dist[c] < dist[cur])
            .min_by_key(|&c| (dist[c], c));
        match next {
            Some(c) => {
                parts.push(graph.nodes[c].display.clone());
                cur = c;
            }
            None => break, // cannot happen on a consistent BFS result
        }
    }
    (parts.join(" -> "), cur)
}

fn mk_finding(
    rule: &'static str,
    file: &str,
    line: u32,
    message: String,
    path: Option<String>,
) -> Finding {
    let info = rule_info(rule).unwrap_or(&crate::rules::RULES[0]);
    Finding {
        rule,
        severity: info.severity,
        file: file.to_string(),
        line,
        col: 1,
        message,
        hint: info.hint,
        baselined: false,
        path,
    }
}

/// Is node `i` shipping library code (the S-rule surface)?
fn is_lib_node(graph: &CallGraph, i: usize) -> bool {
    let n = &graph.nodes[i];
    n.kind == FileKind::Lib && !n.in_test
}

/// Runs the interprocedural S-rules over the call graph.
#[must_use]
pub fn analyze(graph: &CallGraph, files: &[(FileCtx, ParsedFile)]) -> SemanticOutput {
    let mut out = SemanticOutput::default();

    // Sink sets. Panic sinks are library-only (binaries may panic);
    // determinism sinks count everywhere but the wall module.
    let mut panic_sinks: BTreeMap<usize, Sink> = BTreeMap::new();
    let mut det_sinks: BTreeMap<usize, Sink> = BTreeMap::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        let Some(body) = n.body else { continue };
        if n.in_test {
            continue;
        }
        let ctx = &files[n.file_idx].0;
        if n.kind == FileKind::Lib {
            if let Some(s) = panic_sink(ctx, body) {
                panic_sinks.insert(i, s);
            }
        }
        if matches!(n.kind, FileKind::Lib | FileKind::Bin) {
            if let Some(s) = determinism_sink(ctx, body) {
                det_sinks.insert(i, s);
            }
        }
    }

    let panic_dist = distances(graph, &panic_sinks);
    let det_dist = distances(graph, &det_sinks);

    let sink_note = |sinks: &BTreeMap<usize, Sink>, node: usize| -> String {
        sinks.get(&node).map_or_else(
            || "?".to_string(),
            |s| format!("{} at {}:{}", s.label, graph.nodes[node].file, s.line),
        )
    };

    // S1 + S2: the pipeline entry points.
    for (i, n) in graph.nodes.iter().enumerate() {
        if !is_lib_node(graph, i) || n.self_ty.is_some() || !ENTRY_POINTS.contains(&n.name.as_str())
        {
            continue;
        }
        if panic_dist[i] != usize::MAX {
            let (path, sink) = chain(graph, &panic_dist, i);
            out.findings.push(mk_finding(
                "S1",
                &n.file,
                n.line,
                format!(
                    "entry point `{}` can reach a panic: {}",
                    n.display,
                    sink_note(&panic_sinks, sink),
                ),
                Some(path),
            ));
        }
        if det_dist[i] != usize::MAX {
            let (path, sink) = chain(graph, &det_dist, i);
            out.findings.push(mk_finding(
                "S2",
                &n.file,
                n.line,
                format!(
                    "entry point `{}` reaches a nondeterminism sink: {}",
                    n.display,
                    sink_note(&det_sinks, sink),
                ),
                Some(path),
            ));
        }
    }

    // Panic-reachability report: the whole pub library surface.
    for (i, n) in graph.nodes.iter().enumerate() {
        if !is_lib_node(graph, i) || n.vis != Visibility::Pub {
            continue;
        }
        let (dist, path, sink) = if panic_dist[i] == usize::MAX {
            (None, None, None)
        } else {
            let (path, sink) = chain(graph, &panic_dist, i);
            (
                Some(u32::try_from(panic_dist[i]).unwrap_or(u32::MAX)),
                Some(path),
                Some(sink_note(&panic_sinks, sink)),
            )
        };
        out.panics.entries.push(PanicEntry {
            display: n.display.clone(),
            file: n.file.clone(),
            line: n.line,
            dist,
            path,
            sink,
        });
    }
    out.panics
        .entries
        .sort_by(|a, b| (&a.file, a.line, &a.display).cmp(&(&b.file, b.line, &b.display)));

    // S3 — cross-crate dead pub. Liveness is name-based: an export
    // stays alive if its identifier occurs in (a) another crate's
    // library code, (b) any bin target — bins are separate link
    // targets that import through the package path, even from their
    // own crate, (c) any test (test file / bench / example /
    // #[cfg(test)] region), or (d) the exported API surface itself —
    // `pub fn` signatures and `pub` item definitions, which reach
    // consumers through type inference without being named by them.
    let mut shipping_refs: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut target_refs: BTreeSet<&str> = BTreeSet::new();
    for (ctx, _) in files {
        let testish_file = matches!(
            ctx.kind,
            FileKind::Test | FileKind::Bench | FileKind::Example
        );
        for (i, t) in ctx.tokens.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            if testish_file || ctx.kind == FileKind::Bin || ctx.in_test[i] {
                target_refs.insert(t.text.as_str());
            } else {
                shipping_refs
                    .entry(t.text.as_str())
                    .or_default()
                    .insert(ctx.crate_name.as_str());
            }
        }
    }
    let mut surface_refs: BTreeSet<&str> = BTreeSet::new();
    for (ctx, parsed) in files {
        if ctx.kind != FileKind::Lib {
            continue;
        }
        let spans = parsed
            .fns
            .iter()
            .filter(|f| f.vis == Visibility::Pub && !f.in_test)
            .map(|f| f.sig)
            .chain(
                parsed
                    .items
                    .iter()
                    .filter(|it| it.vis == Visibility::Pub && !it.in_test)
                    .map(|it| it.span),
            );
        for (start, end) in spans {
            // Skip the leading keyword and the item's own name so a
            // definition never keeps itself alive.
            let from = (start + 2).min(ctx.tokens.len());
            let to = end.min(ctx.tokens.len());
            for t in &ctx.tokens[from..to] {
                if t.kind == TokKind::Ident {
                    surface_refs.insert(t.text.as_str());
                }
            }
        }
    }
    let dead = |crate_name: &str, name: &str| -> bool {
        if target_refs.contains(name) || surface_refs.contains(name) {
            return false;
        }
        shipping_refs
            .get(name)
            .is_none_or(|crates| crates.iter().all(|c| *c == crate_name))
    };
    for (ctx, parsed) in files {
        if ctx.kind != FileKind::Lib {
            continue;
        }
        for item in &parsed.items {
            if item.vis != Visibility::Pub || item.in_test || item.kind == "macro" {
                continue;
            }
            if dead(&ctx.crate_name, &item.name) {
                out.findings.push(mk_finding(
                    "S3",
                    &ctx.rel_path,
                    item.line,
                    format!(
                        "`pub {} {}` is referenced by no other workspace crate or test",
                        item.kind, item.name,
                    ),
                    None,
                ));
            }
        }
        for f in &parsed.fns {
            if f.vis != Visibility::Pub
                || f.in_test
                || f.self_ty.is_some()
                || f.name == "main"
                || ENTRY_POINTS.contains(&f.name.as_str())
            {
                continue;
            }
            if dead(&ctx.crate_name, &f.name) {
                out.findings.push(mk_finding(
                    "S3",
                    &ctx.rel_path,
                    f.line,
                    format!(
                        "`pub fn {}` is referenced by no other workspace crate or test",
                        f.name,
                    ),
                    None,
                ));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_graph;
    use crate::parser::parse_file;
    use std::path::Path;

    fn run(files: &[(&str, &str)]) -> SemanticOutput {
        let built: Vec<(FileCtx, ParsedFile)> = files
            .iter()
            .map(|(path, src)| {
                let ctx = FileCtx::new(path, src);
                let parsed = parse_file(&ctx);
                (ctx, parsed)
            })
            .collect();
        let graph = build_graph(Path::new("/nonexistent-root"), &built);
        analyze(&graph, &built)
    }

    fn rules_of(out: &SemanticOutput) -> Vec<&'static str> {
        let mut v: Vec<_> = out.findings.iter().map(|f| f.rule).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn s1_reports_transitive_panic_with_chain() {
        let out = run(&[
            (
                "crates/alpha/src/lib.rs",
                "use beta::step;\npub fn march() { step(); }",
            ),
            (
                "crates/beta/src/lib.rs",
                "pub fn step() { deep(); }\nfn deep() { None::<u32>.unwrap(); }",
            ),
        ]);
        let s1 = out.findings.iter().find(|f| f.rule == "S1").expect("S1");
        let path = s1.path.as_deref().expect("chain");
        assert_eq!(path, "alpha::march -> beta::step -> beta::deep");
        assert!(s1.message.contains("`.unwrap()`"));
        assert!(s1.message.contains("crates/beta/src/lib.rs:2"));
    }

    #[test]
    fn s1_ignores_non_entry_fns_and_test_panics() {
        let out = run(&[(
            "crates/alpha/src/lib.rs",
            "pub fn helper_api(x: Option<u32>) -> u32 { x.unwrap() }\n\
             pub fn march() { clean(); }\nfn clean() {}\n\
             #[cfg(test)]\nmod tests { fn t() { panic!(); } }",
        )]);
        assert!(!rules_of(&out).contains(&"S1"));
    }

    #[test]
    fn panics_report_covers_non_entry_pub_fns() {
        let out = run(&[(
            "crates/alpha/src/lib.rs",
            "pub fn other(x: Option<u32>) -> u32 { x.unwrap() }",
        )]);
        let row = out
            .panics
            .entries
            .iter()
            .find(|e| e.display == "alpha::other")
            .expect("report row");
        assert_eq!(row.dist, Some(0));
        assert!(row.sink.as_deref().unwrap_or("").contains("`.unwrap()`"));
    }

    #[test]
    fn s2_flags_determinism_sinks() {
        let out = run(&[(
            "crates/alpha/src/lib.rs",
            "pub fn march() { helper(); }\nfn helper() { let _ = thread_rng(); }",
        )]);
        let s2 = out.findings.iter().find(|f| f.rule == "S2").expect("S2");
        assert!(s2.message.contains("thread_rng"));
        assert_eq!(s2.path.as_deref(), Some("alpha::march -> alpha::helper"));
    }

    #[test]
    fn s2_exempts_the_wall_module() {
        let out = run(&[
            (
                "crates/trace/src/wall.rs",
                "pub fn now_ms() -> u64 { SystemTime::now(); 0 }",
            ),
            (
                "crates/alpha/src/lib.rs",
                "use trace::now_ms;\npub fn march() { now_ms(); }",
            ),
        ]);
        assert!(!rules_of(&out).contains(&"S2"));
    }

    #[test]
    fn s3_flags_cross_crate_dead_pub_only() {
        let out = run(&[
            (
                "crates/alpha/src/lib.rs",
                "pub struct Used;\npub struct Dead;\npub fn dead_fn() {}\n\
                 pub fn used_fn() {}\npub(crate) fn internal() {}",
            ),
            (
                "crates/beta/src/lib.rs",
                "use alpha::Used;\npub fn f(_u: Used) { alpha::used_fn(); }",
            ),
        ]);
        let s3: Vec<&str> = out
            .findings
            .iter()
            .filter(|f| f.rule == "S3")
            .map(|f| f.message.as_str())
            .collect();
        // `beta::f` is also dead: nothing references beta's export.
        assert_eq!(s3.len(), 3, "{s3:?}");
        assert!(s3.iter().any(|m| m.contains("struct Dead")));
        assert!(s3.iter().any(|m| m.contains("fn dead_fn")));
        assert!(!s3
            .iter()
            .any(|m| m.contains("used_fn") || m.contains("Used") && !m.contains("Dead")));
    }

    #[test]
    fn s3_test_references_keep_exports_alive() {
        let out = run(&[
            ("crates/alpha/src/lib.rs", "pub fn probe() {}"),
            (
                "crates/alpha/tests/t.rs",
                "#[test]\nfn uses() { alpha::probe(); }",
            ),
        ]);
        assert!(rules_of(&out).is_empty());
    }

    #[test]
    fn panics_report_is_deterministic() {
        let files: &[(&str, &str)] = &[(
            "crates/alpha/src/lib.rs",
            "pub fn alpha_a() { alpha_b(); }\npub fn alpha_b(x: Option<u32>) { x.unwrap(); }\npub fn alpha_c() {}",
        )];
        let a = run(files).panics.to_jsonl();
        let b = run(files).panics.to_jsonl();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\":\"anr-lint-panics/1\""));
        assert!(a.lines().last().unwrap().contains("\"reachable\":2"));
    }
}
