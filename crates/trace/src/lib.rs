//! # anr-trace — zero-dependency structured tracing and metrics
//!
//! The marching pipeline is a chain of numerical stages (triangulate →
//! harmonic map → rotation search → repair → trajectories → Lloyd) whose
//! behaviour the paper quantifies *per instant* and *per iteration*.
//! This crate is the observability substrate for all of it: spans with
//! parent ids, instant events, counters and histograms, collected into
//! an in-memory ring buffer and (optionally) streamed to a JSONL sink.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Timestamps are *logical*: a monotonic counter
//!    (`seq`) advanced by the tracer itself, one tick per record, so two
//!    runs of the same deterministic pipeline produce byte-identical
//!    traces. Wall-clock durations are opt-in ([`TraceConfig::wall_clock`],
//!    used by the benchmark harness) and ride along as a `dur_ns` field
//!    on span ends without replacing the logical clock.
//! 2. **Observation only.** A tracer never influences the traffic it
//!    watches: every emit path is append-only, and the disabled tracer
//!    ([`Tracer::disabled`]) is a no-op whose presence is pinned (by
//!    tests in `anr-march`) to change no pipeline output byte.
//! 3. **Zero dependencies.** Hand-rolled JSON, `std` only.
//!
//! ## Example
//!
//! ```
//! use anr_trace::{Tracer, TraceValue};
//!
//! let tracer = Tracer::ring(1024);
//! {
//!     let _stage = tracer.span("rotation");
//!     tracer.event("eval", &[("theta", TraceValue::F64(0.5))]);
//!     tracer.counter_add("evals", 1);
//! }
//! let events = tracer.events();
//! if tracer.is_enabled() {
//!     // span_start, event, counter, span_end — with the `off` cargo
//!     // feature the tracer is inert and `events` is empty instead.
//!     assert_eq!(events.len(), 4);
//!     assert_eq!(tracer.counter("evals"), 1);
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::{Arc, Mutex, MutexGuard};

mod wall;
use wall::WallStamp;

/// A field value attached to a trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (serialized as `null` when not finite).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (escaped on serialization).
    Str(String),
}

/// What kind of record a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A span opened (`span` is its id, `parent` the enclosing span).
    SpanStart,
    /// A span closed (same `span` id as its start).
    SpanEnd,
    /// An instant event inside the current span.
    Event,
    /// A counter increment (`fields` carry `delta` and `total`).
    Counter,
    /// A histogram sample (`fields` carry `value`).
    Hist,
}

/// One record of the trace stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Logical timestamp: the tracer's monotonic counter at emit time.
    pub seq: u64,
    /// Record kind.
    pub kind: TraceKind,
    /// Record name (stage, event, counter or histogram name).
    pub name: &'static str,
    /// Span id this record belongs to (0 = outside any span).
    pub span: u64,
    /// Parent span id (0 = top level). Only meaningful for span records.
    pub parent: u64,
    /// Structured payload.
    pub fields: Vec<(&'static str, TraceValue)>,
}

/// Aggregate summary of a histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sum of all samples.
    pub sum: f64,
}

impl HistSummary {
    /// Mean sample (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Construction options for an enabled tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring-buffer capacity in events; older events are dropped (and
    /// counted) once full. Default 65 536.
    pub capacity: usize,
    /// Also record wall-clock span durations (`dur_ns` on span ends).
    /// Off by default: wall times are nondeterministic, so they are
    /// reserved for the benchmark harness. Default `false`.
    pub wall_clock: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 65_536,
            wall_clock: false,
        }
    }
}

#[derive(Default)]
struct Histogram {
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
}

struct State {
    seq: u64,
    next_span: u64,
    stack: Vec<u64>,
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    sink: Option<Box<dyn Write + Send>>,
    sink_failed: bool,
}

struct Inner {
    wall: Option<WallStamp>,
    state: Mutex<State>,
}

/// A structured tracer handle.
///
/// Cheap to clone (all clones share one stream); safe to share across
/// threads. The disabled tracer ([`Tracer::disabled`], also `Default`)
/// short-circuits every emit path.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

fn lock(state: &Mutex<State>) -> MutexGuard<'_, State> {
    // A panic while holding the lock must not cascade: tracing is
    // observation only.
    state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Tracer {
    /// A tracer that records nothing; every emit path is a no-op.
    #[must_use]
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer collecting into a ring buffer of `capacity`
    /// events, logical clock only.
    #[must_use]
    pub fn ring(capacity: usize) -> Tracer {
        Tracer::new(TraceConfig {
            capacity,
            ..TraceConfig::default()
        })
    }

    /// An enabled tracer with wall-clock span durations — the benchmark
    /// harness's stage timer.
    #[must_use]
    pub fn wall(capacity: usize) -> Tracer {
        Tracer::new(TraceConfig {
            capacity,
            wall_clock: true,
        })
    }

    /// An enabled tracer with explicit options.
    ///
    /// With the `off` cargo feature this (and every other constructor)
    /// returns the disabled tracer, compiling instrumentation out.
    #[must_use]
    pub fn new(config: TraceConfig) -> Tracer {
        Tracer::build(config, None)
    }

    /// An enabled tracer that additionally streams every record to
    /// `sink` as one JSON object per line (JSONL).
    #[must_use]
    pub fn with_sink(config: TraceConfig, sink: Box<dyn Write + Send>) -> Tracer {
        Tracer::build(config, Some(sink))
    }

    /// Convenience: JSONL sink writing to a freshly created `path`
    /// (buffered), default options.
    ///
    /// # Errors
    ///
    /// Propagates file creation failures.
    pub fn jsonl_file<P: AsRef<std::path::Path>>(path: P) -> io::Result<Tracer> {
        let file = std::fs::File::create(path)?;
        Ok(Tracer::with_sink(
            TraceConfig::default(),
            Box::new(io::BufWriter::new(file)),
        ))
    }

    fn build(config: TraceConfig, sink: Option<Box<dyn Write + Send>>) -> Tracer {
        if cfg!(feature = "off") {
            return Tracer::disabled();
        }
        Tracer {
            inner: Some(Arc::new(Inner {
                wall: config.wall_clock.then(wall::stamp),
                state: Mutex::new(State {
                    seq: 0,
                    next_span: 0,
                    stack: Vec::new(),
                    ring: VecDeque::new(),
                    capacity: config.capacity.max(1),
                    dropped: 0,
                    counters: BTreeMap::new(),
                    hists: BTreeMap::new(),
                    sink,
                    sink_failed: false,
                }),
            })),
        }
    }

    /// Is this tracer recording? Use to skip expensive field
    /// construction; emit calls are already safe either way.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !cfg!(feature = "off") && self.inner.is_some()
    }

    /// Opens a span named `name` nested under the currently open span.
    /// The span closes (emitting a `span_end` record) when the returned
    /// guard drops.
    #[must_use]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_with(name, Vec::new())
    }

    /// [`Tracer::span`] with structured fields on the start record.
    #[must_use]
    pub fn span_with(
        &self,
        name: &'static str,
        fields: Vec<(&'static str, TraceValue)>,
    ) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                tracer: Tracer::disabled(),
                id: 0,
                parent: 0,
                name,
                started: None,
            };
        };
        let started = inner.wall.map(|_| wall::stamp());
        let mut st = lock(&inner.state);
        st.next_span += 1;
        let id = st.next_span;
        let parent = st.stack.last().copied().unwrap_or(0);
        st.stack.push(id);
        emit(&mut st, TraceKind::SpanStart, name, id, parent, fields);
        SpanGuard {
            tracer: self.clone(),
            id,
            parent,
            name,
            started,
        }
    }

    /// Emits an instant event inside the currently open span.
    pub fn event(&self, name: &'static str, fields: &[(&'static str, TraceValue)]) {
        let Some(inner) = &self.inner else { return };
        let mut st = lock(&inner.state);
        let span = st.stack.last().copied().unwrap_or(0);
        emit(&mut st, TraceKind::Event, name, span, 0, fields.to_vec());
    }

    /// Adds `delta` to the named monotonic counter and emits a record
    /// carrying both the delta and the new total.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = lock(&inner.state);
        let total = {
            let t = st.counters.entry(name).or_insert(0);
            *t += delta;
            *t
        };
        let span = st.stack.last().copied().unwrap_or(0);
        emit(
            &mut st,
            TraceKind::Counter,
            name,
            span,
            0,
            vec![
                ("delta", TraceValue::U64(delta)),
                ("total", TraceValue::U64(total)),
            ],
        );
    }

    /// Records one sample into the named histogram and emits a record.
    pub fn hist_record(&self, name: &'static str, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut st = lock(&inner.state);
        {
            let h = st.hists.entry(name).or_default();
            if h.count == 0 {
                h.min = value;
                h.max = value;
            } else {
                h.min = h.min.min(value);
                h.max = h.max.max(value);
            }
            h.count += 1;
            h.sum += value;
        }
        let span = st.stack.last().copied().unwrap_or(0);
        emit(
            &mut st,
            TraceKind::Hist,
            name,
            span,
            0,
            vec![("value", TraceValue::F64(value))],
        );
    }

    /// Current total of a counter (0 when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        lock(&inner.state).counters.get(name).copied().unwrap_or(0)
    }

    /// Summary of a histogram, if any samples were recorded.
    #[must_use]
    pub fn hist(&self, name: &str) -> Option<HistSummary> {
        let inner = self.inner.as_ref()?;
        let st = lock(&inner.state);
        st.hists.get(name).map(|h| HistSummary {
            count: h.count,
            min: h.min,
            max: h.max,
            sum: h.sum,
        })
    }

    /// Snapshot of the ring buffer (oldest first).
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        lock(&inner.state).ring.iter().cloned().collect()
    }

    /// Drains the ring buffer, returning the events (oldest first).
    /// Counters and histograms are unaffected.
    #[must_use]
    pub fn take_events(&self) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        lock(&inner.state).ring.drain(..).collect()
    }

    /// Events evicted from the ring buffer because it was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        lock(&inner.state).dropped
    }

    /// Wall-clock durations (milliseconds) of every closed span named
    /// `name` still in the ring buffer, in completion order. Empty
    /// unless the tracer was built with [`TraceConfig::wall_clock`].
    #[must_use]
    pub fn span_durations_ms(&self, name: &str) -> Vec<f64> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        lock(&inner.state)
            .ring
            .iter()
            .filter(|e| e.kind == TraceKind::SpanEnd && e.name == name)
            .filter_map(|e| {
                e.fields.iter().find_map(|(k, v)| match (k, v) {
                    (&"dur_ns", TraceValue::U64(ns)) => Some(*ns as f64 / 1e6),
                    _ => None,
                })
            })
            .collect()
    }

    /// Flushes the JSONL sink, surfacing any deferred write error.
    ///
    /// # Errors
    ///
    /// The first sink write/flush failure (writes themselves never
    /// interrupt the traced computation; the error is remembered and
    /// reported here).
    pub fn flush(&self) -> io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        let mut st = lock(&inner.state);
        if st.sink_failed {
            return Err(io::Error::other("trace sink write failed"));
        }
        match &mut st.sink {
            Some(sink) => sink.flush(),
            None => Ok(()),
        }
    }

    fn end_span(&self, guard: &SpanGuard) {
        let Some(inner) = &self.inner else { return };
        let mut st = lock(&inner.state);
        // Unwind the stack down to (and including) this span: spans are
        // guards, so an early-dropped inner span has already popped.
        while let Some(&top) = st.stack.last() {
            st.stack.pop();
            if top == guard.id {
                break;
            }
        }
        let mut fields = Vec::new();
        if let Some(started) = guard.started {
            fields.push(("dur_ns", TraceValue::U64(started.elapsed_ns())));
        }
        emit(
            &mut st,
            TraceKind::SpanEnd,
            guard.name,
            guard.id,
            guard.parent,
            fields,
        );
    }
}

/// RAII guard for an open span; closing happens on drop.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    id: u64,
    parent: u64,
    name: &'static str,
    started: Option<WallStamp>,
}

impl SpanGuard {
    /// This span's id (0 when the tracer is disabled).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id != 0 {
            let tracer = self.tracer.clone();
            tracer.end_span(self);
        }
    }
}

fn emit(
    st: &mut State,
    kind: TraceKind,
    name: &'static str,
    span: u64,
    parent: u64,
    fields: Vec<(&'static str, TraceValue)>,
) {
    st.seq += 1;
    let ev = TraceEvent {
        seq: st.seq,
        kind,
        name,
        span,
        parent,
        fields,
    };
    if !st.sink_failed {
        if let Some(sink) = st.sink.as_mut() {
            let line = jsonl_line(&ev);
            if sink.write_all(line.as_bytes()).is_err() {
                st.sink_failed = true;
            }
        }
    }
    if st.ring.len() == st.capacity {
        st.ring.pop_front();
        st.dropped += 1;
    }
    st.ring.push_back(ev);
}

fn kind_str(kind: TraceKind) -> &'static str {
    match kind {
        TraceKind::SpanStart => "span_start",
        TraceKind::SpanEnd => "span_end",
        TraceKind::Event => "event",
        TraceKind::Counter => "counter",
        TraceKind::Hist => "hist",
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_value(out: &mut String, v: &TraceValue) {
    match v {
        TraceValue::U64(x) => {
            let _ = write!(out, "{x}");
        }
        TraceValue::I64(x) => {
            let _ = write!(out, "{x}");
        }
        TraceValue::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        TraceValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        TraceValue::Str(s) => push_json_str(out, s),
    }
}

/// Serializes one event as a single JSONL line (trailing newline
/// included). `span`/`parent` are omitted when 0; `fields` when empty.
#[must_use]
pub fn jsonl_line(ev: &TraceEvent) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"seq\":{},\"kind\":\"{}\",",
        ev.seq,
        kind_str(ev.kind)
    );
    s.push_str("\"name\":");
    push_json_str(&mut s, ev.name);
    if ev.span != 0 {
        let _ = write!(s, ",\"span\":{}", ev.span);
    }
    if ev.parent != 0 {
        let _ = write!(s, ",\"parent\":{}", ev.parent);
    }
    if !ev.fields.is_empty() {
        s.push_str(",\"fields\":{");
        for (i, (k, v)) in ev.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_str(&mut s, k);
            s.push(':');
            push_json_value(&mut s, v);
        }
        s.push('}');
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(not(feature = "off"))]
    use std::sync::mpsc;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        {
            let span = t.span("stage");
            assert_eq!(span.id(), 0);
            t.event("e", &[("k", TraceValue::U64(1))]);
            t.counter_add("c", 5);
            t.hist_record("h", 1.0);
        }
        assert!(t.events().is_empty());
        assert_eq!(t.counter("c"), 0);
        assert!(t.hist("h").is_none());
        t.flush().unwrap();
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn spans_nest_with_parent_ids() {
        let t = Tracer::ring(64);
        {
            let outer = t.span("outer");
            {
                let inner = t.span("inner");
                assert_ne!(inner.id(), outer.id());
            }
            t.event("tail", &[]);
        }
        let evs = t.events();
        let starts: Vec<_> = evs
            .iter()
            .filter(|e| e.kind == TraceKind::SpanStart)
            .collect();
        assert_eq!(starts.len(), 2);
        assert_eq!(starts[0].name, "outer");
        assert_eq!(starts[0].parent, 0);
        assert_eq!(starts[1].name, "inner");
        assert_eq!(starts[1].parent, starts[0].span);
        // The tail event belongs to the outer span again.
        let tail = evs.iter().find(|e| e.name == "tail").unwrap();
        assert_eq!(tail.span, starts[0].span);
        // Ends come in inner-first order.
        let ends: Vec<_> = evs
            .iter()
            .filter(|e| e.kind == TraceKind::SpanEnd)
            .collect();
        assert_eq!(ends[0].name, "inner");
        assert_eq!(ends[1].name, "outer");
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn seq_is_monotonic_and_dense() {
        let t = Tracer::ring(64);
        let _s = t.span("a");
        t.event("b", &[]);
        t.counter_add("c", 1);
        drop(_s);
        let evs = t.events();
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4]);
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn counters_and_hists_aggregate() {
        let t = Tracer::ring(64);
        t.counter_add("msgs", 3);
        t.counter_add("msgs", 4);
        assert_eq!(t.counter("msgs"), 7);
        t.hist_record("res", 2.0);
        t.hist_record("res", 4.0);
        t.hist_record("res", 0.5);
        let h = t.hist("res").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 4.0);
        assert!((h.mean() - 6.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn ring_overflow_drops_oldest() {
        let t = Tracer::ring(3);
        for _ in 0..5 {
            t.event("e", &[]);
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].seq, 3);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn take_events_drains() {
        let t = Tracer::ring(8);
        t.event("e", &[]);
        assert_eq!(t.take_events().len(), 1);
        assert!(t.events().is_empty());
    }

    #[test]
    fn jsonl_lines_are_valid_and_deterministic() {
        let ev = TraceEvent {
            seq: 7,
            kind: TraceKind::Event,
            name: "pcg_iter",
            span: 3,
            parent: 0,
            fields: vec![
                ("iter", TraceValue::U64(12)),
                ("residual", TraceValue::F64(0.5)),
                ("label", TraceValue::Str("a\"b".to_string())),
                ("nan", TraceValue::F64(f64::NAN)),
            ],
        };
        let line = jsonl_line(&ev);
        assert_eq!(
            line,
            "{\"seq\":7,\"kind\":\"event\",\"name\":\"pcg_iter\",\"span\":3,\
             \"fields\":{\"iter\":12,\"residual\":0.5,\"label\":\"a\\\"b\",\"nan\":null}}\n"
        );
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn sink_receives_jsonl_stream() {
        struct ChanWriter(mpsc::Sender<Vec<u8>>);
        impl Write for ChanWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.send(buf.to_vec()).ok();
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let (tx, rx) = mpsc::channel();
        let t = Tracer::with_sink(TraceConfig::default(), Box::new(ChanWriter(tx)));
        {
            let _s = t.span("stage");
        }
        t.flush().unwrap();
        drop(t);
        let bytes: Vec<u8> = rx.try_iter().flatten().collect();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"span_start\""));
        assert!(lines[1].contains("\"kind\":\"span_end\""));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn wall_clock_records_durations() {
        let t = Tracer::wall(16);
        {
            let _s = t.span("timed");
            std::hint::black_box((0..1000).sum::<u64>());
        }
        let durs = t.span_durations_ms("timed");
        assert_eq!(durs.len(), 1);
        assert!(durs[0] >= 0.0);
        // Logical-clock tracers carry no durations.
        let t2 = Tracer::ring(16);
        {
            let _s = t2.span("timed");
        }
        assert!(t2.span_durations_ms("timed").is_empty());
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn clones_share_the_stream() {
        let t = Tracer::ring(16);
        let t2 = t.clone();
        t.event("a", &[]);
        t2.event("b", &[]);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t2.events().len(), 2);
    }

    #[test]
    #[cfg(feature = "off")]
    fn off_feature_disables_every_constructor() {
        assert!(!Tracer::ring(16).is_enabled());
        assert!(!Tracer::wall(16).is_enabled());
        assert!(!Tracer::new(TraceConfig::default()).is_enabled());
    }
}
