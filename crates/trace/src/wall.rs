//! The only module in the workspace allowed to read the wall clock
//! (lint rule D2 exempts exactly this file).
//!
//! Everything nondeterministic about time is funnelled through
//! [`WallStamp`]: the tracer's logical clock never touches it, and the
//! opt-in `dur_ns` span field (benchmark harness only) is the sole
//! consumer.

use std::time::Instant;

/// An opaque wall-clock reading.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WallStamp(Instant);

/// Reads the wall clock now.
pub(crate) fn stamp() -> WallStamp {
    WallStamp(Instant::now())
}

impl WallStamp {
    /// Nanoseconds elapsed since this stamp was taken (saturating).
    pub(crate) fn elapsed_ns(self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}
