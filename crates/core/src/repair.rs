//! Global-connectivity repair (paper Sec. III-D-1).
//!
//! After the harmonic map proposes a destination for every robot, some
//! robots — or whole subgroups — may be predicted to lose every
//! communication link during the transition. The paper's fix: identify
//! vertices with no preserved path to the network boundary (packets
//! initiated at boundary vertices, flooded over preserved links), pick
//! for each isolated subgroup a *root* whose one-range neighbor is
//! nearest to the boundary, and make the subgroup march **parallel** to
//! that reference neighbor at the same speed. Parallel same-speed motion
//! keeps every relative vector inside the subgroup — and from the root to
//! its reference — constant, so those links survive the whole transition.
//!
//! For synchronized straight-line motion (Eqn. 2) the distance between
//! two robots is a convex function of time, so a link is preserved for
//! all `t` iff it holds at both endpoints; "preserved" below therefore
//! means *target distance within range*.

use anr_geom::Point;
use anr_netgraph::UnitDiskGraph;
use std::collections::VecDeque;

/// What the repair pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Robots whose targets were adjusted to parallel motion.
    pub adjusted_robots: Vec<usize>,
    /// Number of isolated subgroups found (singletons included).
    pub isolated_subgroups: usize,
    /// Repair rounds executed.
    pub rounds: usize,
}

impl RepairReport {
    /// Did the repair change anything?
    pub fn is_clean(&self) -> bool {
        self.adjusted_robots.is_empty()
    }
}

/// Repairs predicted isolation by re-targeting isolated subgroups to
/// parallel motion (Sec. III-D-1). `boundary` lists the triangulation's
/// boundary vertices — the "network boundary" of Definition 2.
///
/// Returns the report; `targets` is modified in place.
///
/// # Panics
///
/// Panics when the slices disagree in length, `range <= 0`, or
/// `boundary` contains an out-of-range index.
pub fn repair_connectivity(
    positions: &[Point],
    targets: &mut [Point],
    boundary: &[usize],
    range: f64,
) -> RepairReport {
    assert_eq!(positions.len(), targets.len(), "one target per robot");
    assert!(range > 0.0, "communication range must be positive");
    let n = positions.len();
    for &b in boundary {
        assert!(b < n, "boundary vertex out of range");
    }

    let initial = UnitDiskGraph::new(positions, range);
    let mut report = RepairReport::default();

    // A few rounds for safety; one round suffices in theory because
    // adjusted subgroups attach to already-reachable references.
    for round in 0..5 {
        // Preserved-link adjacency: initial links whose endpoint targets
        // remain within range.
        let preserved: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                initial
                    .neighbors(i)
                    .iter()
                    .copied()
                    .filter(|&j| targets[i].distance(targets[j]) <= range)
                    .collect()
            })
            .collect();

        // Hop field from the boundary over preserved links.
        let mut hops: Vec<Option<usize>> = vec![None; n];
        let mut queue = VecDeque::new();
        for &b in boundary {
            if hops[b].is_none() {
                hops[b] = Some(0);
                queue.push_back(b);
            }
        }
        while let Some(u) = queue.pop_front() {
            let Some(d) = hops[u] else { continue };
            for &v in &preserved[u] {
                if hops[v].is_none() {
                    hops[v] = Some(d + 1);
                    queue.push_back(v);
                }
            }
        }

        let unreachable: Vec<usize> = (0..n).filter(|&v| hops[v].is_none()).collect();
        if unreachable.is_empty() {
            report.rounds = round;
            return report;
        }
        report.rounds = round + 1;

        // Subgroups: connected components of the unreachable set under
        // the *initial* links (the subgroup will move rigidly, so all its
        // internal links are preserved by construction).
        let mut comp: Vec<Option<usize>> = vec![None; n];
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for &v in &unreachable {
            if comp[v].is_some() {
                continue;
            }
            let gid = groups.len();
            let mut group = Vec::new();
            let mut q = VecDeque::from([v]);
            comp[v] = Some(gid);
            while let Some(u) = q.pop_front() {
                group.push(u);
                for &w in initial.neighbors(u) {
                    if hops[w].is_none() && comp[w].is_none() {
                        comp[w] = Some(gid);
                        q.push_back(w);
                    }
                }
            }
            groups.push(group);
        }
        report.isolated_subgroups += groups.len();

        for group in &groups {
            // Root selection: the member with a reachable one-range
            // neighbor nearest (in hops, then distance) to the boundary.
            let mut best: Option<(usize, usize, usize, f64)> = None; // (root, ref, hops, dist)
            for &m in group {
                for &nb in initial.neighbors(m) {
                    if let Some(h) = hops[nb] {
                        let d = positions[m].distance(positions[nb]);
                        let better = match best {
                            None => true,
                            Some((_, _, bh, bd)) => h < bh || (h == bh && d < bd),
                        };
                        if better {
                            best = Some((m, nb, h, d));
                        }
                    }
                }
            }
            // Extreme fallback: no member has a reachable one-range
            // neighbor (the subgroup was already separated in M1 — cannot
            // happen for connected deployments, but stay safe): reference
            // the nearest reachable robot.
            let (root, reference) = match best {
                Some((r, nb, _, _)) => (r, nb),
                None => {
                    let m = group[0];
                    let nb = (0..n).filter(|&x| hops[x].is_some()).min_by(|&a, &b| {
                        positions[a]
                            .distance_sq(positions[m])
                            .total_cmp(&positions[b].distance_sq(positions[m]))
                    });
                    match nb {
                        Some(nb) => (m, nb),
                        None => continue, // no reachable robot at all
                    }
                }
            };

            // The whole subgroup marches parallel to the reference: each
            // member's displacement equals the reference's displacement.
            let shift = targets[reference] - positions[reference];
            let _ = root;
            for &m in group {
                targets[m] = positions[m] + shift;
                report.adjusted_robots.push(m);
            }
        }
    }

    finalize(report)
}

fn finalize(mut report: RepairReport) -> RepairReport {
    report.adjusted_robots.sort_unstable();
    report.adjusted_robots.dedup();
    report
}

/// Strengthened repair: runs the paper's boundary-based pass, then keeps
/// merging connected components of the *preserved-link graph* until it
/// is a single component.
///
/// The boundary heuristic of Sec. III-D-1 silently assumes the boundary
/// ring itself stays connected when mapped onto `M2`; for sparse swarms
/// (boundary gaps stretched beyond `r_c`) that assumption fails. This
/// pass restores the guarantee: every non-largest component of the
/// preserved graph adopts parallel motion relative to the nearest robot
/// of another component (preferring an actual one-range neighbor), which
/// preserves that attachment link for the whole transition; since the
/// preserved graph is then connected and preserved links hold at every
/// `t`, global connectivity `C = 1` follows for the straight-line leg.
///
/// # Panics
///
/// Same contract as [`repair_connectivity`].
pub fn repair_connectivity_strict(
    positions: &[Point],
    targets: &mut [Point],
    boundary: &[usize],
    range: f64,
) -> RepairReport {
    let mut report = repair_connectivity(positions, targets, boundary, range);
    let n = positions.len();
    let initial = UnitDiskGraph::new(positions, range);

    for _ in 0..n {
        // Components of the preserved-link graph.
        let mut comp: Vec<Option<usize>> = vec![None; n];
        let mut comps: Vec<Vec<usize>> = Vec::new();
        for start in 0..n {
            if comp[start].is_some() {
                continue;
            }
            let gid = comps.len();
            let mut group = Vec::new();
            let mut q = VecDeque::from([start]);
            comp[start] = Some(gid);
            while let Some(u) = q.pop_front() {
                group.push(u);
                for &v in initial.neighbors(u) {
                    if comp[v].is_none() && targets[u].distance(targets[v]) <= range {
                        comp[v] = Some(gid);
                        q.push_back(v);
                    }
                }
            }
            comps.push(group);
        }
        if comps.len() <= 1 {
            break;
        }

        // Attach the smallest component to the best outside reference:
        // prefer an initial one-range neighbor (guaranteed attachment),
        // else the closest outside robot.
        let smallest = comps
            .iter()
            .enumerate()
            .min_by_key(|(_, g)| g.len())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let group = &comps[smallest];
        let mut best: Option<(usize, usize, f64)> = None;
        for &m in group {
            for &nb in initial.neighbors(m) {
                if comp[nb] != Some(smallest) {
                    let d = positions[m].distance(positions[nb]);
                    if best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((m, nb, d));
                    }
                }
            }
        }
        let reference = match best {
            Some((_, nb, _)) => nb,
            None => {
                // No initial link leaves the group (possible only for a
                // disconnected initial deployment): fall back to the
                // closest outside robot.
                let comp = &comp;
                match group
                    .iter()
                    .flat_map(|&m| {
                        (0..n)
                            .filter(move |&x| comp[x] != Some(smallest))
                            .map(move |x| (m, x))
                    })
                    .min_by(|&(m1, x1), &(m2, x2)| {
                        positions[m1]
                            .distance_sq(positions[x1])
                            .total_cmp(&positions[m2].distance_sq(positions[x2]))
                    }) {
                    Some((_, x)) => x,
                    None => break,
                }
            }
        };
        let shift = targets[reference] - positions[reference];
        for &m in group {
            targets[m] = positions[m] + shift;
            report.adjusted_robots.push(m);
        }
        report.isolated_subgroups += 1;
        report.rounds += 1;
    }

    finalize(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn clean_transition_is_untouched() {
        // Rigid translation: everything preserved.
        let positions = vec![p(0.0, 0.0), p(60.0, 0.0), p(120.0, 0.0)];
        let mut targets: Vec<Point> = positions.iter().map(|q| p(q.x + 500.0, q.y)).collect();
        let before = targets.clone();
        let report = repair_connectivity(&positions, &mut targets, &[0, 2], 80.0);
        assert!(report.is_clean());
        assert_eq!(report.isolated_subgroups, 0);
        assert_eq!(targets, before);
    }

    #[test]
    fn isolated_singleton_adopts_parallel_motion() {
        // Robot 2's proposed target strands it; it must be re-targeted
        // parallel to a neighbor.
        let positions = vec![p(0.0, 0.0), p(60.0, 0.0), p(120.0, 0.0)];
        let mut targets = vec![p(500.0, 0.0), p(560.0, 0.0), p(2000.0, 0.0)];
        let report = repair_connectivity(&positions, &mut targets, &[0], 80.0);
        assert_eq!(report.adjusted_robots, vec![2]);
        assert_eq!(report.isolated_subgroups, 1);
        // Parallel to robot 1 (its only in-range neighbor with a path):
        // displacement (500, 0) applied to (120, 0).
        assert_eq!(targets[2], p(620.0, 0.0));
        // The repaired plan preserves the 1–2 link at the endpoints.
        assert!(targets[1].distance(targets[2]) <= 80.0);
    }

    #[test]
    fn isolated_pair_moves_as_a_block() {
        // Robots 3, 4 form a subgroup stranded by the proposal.
        let positions = vec![
            p(0.0, 0.0),
            p(60.0, 0.0),
            p(120.0, 0.0),
            p(180.0, 0.0),
            p(240.0, 0.0),
        ];
        let mut targets = vec![
            p(0.0, 500.0),
            p(60.0, 500.0),
            p(120.0, 500.0),
            p(5000.0, 0.0),
            p(5060.0, 0.0),
        ];
        let report = repair_connectivity(&positions, &mut targets, &[0], 80.0);
        assert_eq!(report.adjusted_robots, vec![3, 4]);
        assert_eq!(report.isolated_subgroups, 1);
        // Root is 3 (neighbor 2 is reachable); subgroup shifts by robot
        // 2's displacement (0, 500).
        assert_eq!(targets[3], p(180.0, 500.0));
        assert_eq!(targets[4], p(240.0, 500.0));
        // Internal link and attachment link hold at the endpoints.
        assert!(targets[3].distance(targets[4]) <= 80.0);
        assert!(targets[2].distance(targets[3]) <= 80.0);
    }

    #[test]
    fn repaired_plan_has_full_hop_coverage() {
        // After repair, re-running the reachability analysis finds no
        // isolated vertices.
        let positions: Vec<Point> = (0..8).map(|i| p(i as f64 * 60.0, 0.0)).collect();
        let mut targets: Vec<Point> = positions
            .iter()
            .enumerate()
            .map(|(i, q)| {
                if i >= 5 {
                    p(q.x * 3.0, 900.0) // strand the tail
                } else {
                    p(q.x, 400.0)
                }
            })
            .collect();
        let r1 = repair_connectivity(&positions, &mut targets, &[0], 80.0);
        assert!(!r1.is_clean());
        let mut targets2 = targets.clone();
        let r2 = repair_connectivity(&positions, &mut targets2, &[0], 80.0);
        assert!(r2.is_clean(), "second pass should find nothing: {r2:?}");
        assert_eq!(targets, targets2);
    }

    #[test]
    fn straight_line_motion_keeps_subgroup_connected_throughout() {
        // Simulate the synchronized linear motion and verify the network
        // stays connected at every sampled instant after repair.
        let positions: Vec<Point> = (0..6).map(|i| p(i as f64 * 60.0, 0.0)).collect();
        let mut targets: Vec<Point> = vec![
            p(0.0, 300.0),
            p(60.0, 300.0),
            p(120.0, 300.0),
            p(180.0, 300.0),
            p(800.0, -500.0),
            p(860.0, -500.0),
        ];
        repair_connectivity(&positions, &mut targets, &[0], 80.0);
        for k in 0..=20 {
            let t = k as f64 / 20.0;
            let row: Vec<Point> = positions
                .iter()
                .zip(&targets)
                .map(|(a, b)| a.lerp(*b, t))
                .collect();
            assert!(
                UnitDiskGraph::new(&row, 80.0).is_connected(),
                "disconnected at t = {t}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let positions = vec![p(0.0, 0.0)];
        let mut targets = vec![p(0.0, 0.0), p(1.0, 1.0)];
        let _ = repair_connectivity(&positions, &mut targets, &[], 80.0);
    }
}
