//! Robot trajectories: constant-speed polylines with hole avoidance.
//!
//! The transition path of a robot is a straight line from its `M1`
//! position to its mapped `M2` position (paper Eqn. 2). When the straight
//! line crosses a forbidden region, "the robot goes along the boundary
//! until it can follow its computed moving path again" (Sec. III-D-3);
//! [`route_around_obstacles`] computes that detour.

use anr_geom::{Point, Polygon, Segment};

/// A constant-speed polyline path, parameterized by normalized time
/// `s ∈ [0, 1]` (all robots depart at `s = 0` and arrive at `s = 1`,
/// matching the synchronized linear motion of Eqn. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Polyline {
    waypoints: Vec<Point>,
    /// Cumulative arclength at each waypoint.
    cumulative: Vec<f64>,
}

impl Polyline {
    /// Creates a path through `waypoints` (at least one).
    ///
    /// # Panics
    ///
    /// Panics when `waypoints` is empty.
    pub fn new(waypoints: Vec<Point>) -> Self {
        assert!(!waypoints.is_empty(), "a path needs at least one waypoint");
        let mut cumulative = Vec::with_capacity(waypoints.len());
        let mut acc = 0.0;
        cumulative.push(0.0);
        for w in waypoints.windows(2) {
            acc += w[0].distance(w[1]);
            cumulative.push(acc);
        }
        Polyline {
            waypoints,
            cumulative,
        }
    }

    /// A stationary path.
    pub fn stationary(p: Point) -> Self {
        Polyline::new(vec![p])
    }

    /// The waypoints.
    #[inline]
    pub fn waypoints(&self) -> &[Point] {
        &self.waypoints
    }

    /// Total path length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.cumulative.last().copied().unwrap_or(0.0)
    }

    /// Start point.
    #[inline]
    pub fn start(&self) -> Point {
        self.waypoints[0]
    }

    /// End point.
    #[inline]
    pub fn end(&self) -> Point {
        self.waypoints.last().copied().unwrap_or(Point::ORIGIN)
    }

    /// Position at normalized time `s ∈ [0, 1]` (constant speed along
    /// the path; clamped outside the range).
    pub fn position_at(&self, s: f64) -> Point {
        let s = s.clamp(0.0, 1.0);
        let target = s * self.length();
        if self.length() == 0.0 {
            return self.waypoints[0];
        }
        // Binary search the segment containing `target`.
        let idx = match self.cumulative.binary_search_by(|c| c.total_cmp(&target)) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        if idx + 1 >= self.waypoints.len() {
            return self.end();
        }
        let seg_len = self.cumulative[idx + 1] - self.cumulative[idx];
        if seg_len <= 0.0 {
            return self.waypoints[idx];
        }
        let t = (target - self.cumulative[idx]) / seg_len;
        self.waypoints[idx].lerp(self.waypoints[idx + 1], t)
    }

    /// Positions at a **sorted ascending** list of normalized times.
    ///
    /// Walks the cumulative-length table with a monotone cursor instead
    /// of binary-searching every query, and returns bit-identical
    /// positions to calling [`Polyline::position_at`] per time (pinned
    /// by `sorted_sampling_matches_per_query`). Detour-heavy trajectory
    /// sets (hole scenarios) produce thousands of breakpoint rows, which
    /// made the per-query search the `trajectories` stage hot spot.
    ///
    /// Out-of-order inputs still produce correct positions (the cursor
    /// only ever lags, never overshoots, for non-decreasing times; a
    /// decreasing time restarts the scan from segment 0).
    pub fn positions_at_sorted(&self, times: &[f64]) -> Vec<Point> {
        let len = self.length();
        let m = self.waypoints.len();
        let mut idx = 0usize;
        times
            .iter()
            .map(|&s| {
                if len == 0.0 {
                    return self.waypoints[0];
                }
                let target = s.clamp(0.0, 1.0) * len;
                if self.cumulative[idx] > target {
                    idx = 0;
                }
                while idx + 1 < m && self.cumulative[idx + 1] <= target {
                    idx += 1;
                }
                if idx + 1 >= m {
                    return self.end();
                }
                let seg_len = self.cumulative[idx + 1] - self.cumulative[idx];
                if seg_len <= 0.0 {
                    return self.waypoints[idx];
                }
                let t = (target - self.cumulative[idx]) / seg_len;
                self.waypoints[idx].lerp(self.waypoints[idx + 1], t)
            })
            .collect()
    }

    /// Normalized times `s` of the waypoints — the breakpoints of the
    /// piecewise-linear motion. Between consecutive breakpoints the
    /// robot moves along a single straight segment, so any per-instant
    /// property that is convex along a segment (inter-robot distance in
    /// particular) attains its extremes at these instants.
    ///
    /// A zero-length path reports a single breakpoint at `0.0`.
    pub fn breakpoints(&self) -> Vec<f64> {
        let len = self.length();
        if len <= 0.0 {
            return vec![0.0];
        }
        self.cumulative.iter().map(|c| c / len).collect()
    }
}

/// The synchronized trajectories of a whole swarm.
#[derive(Debug, Clone)]
pub struct TrajectorySet {
    paths: Vec<Polyline>,
}

impl TrajectorySet {
    /// Creates a set from per-robot paths.
    pub fn new(paths: Vec<Polyline>) -> Self {
        TrajectorySet { paths }
    }

    /// Builds straight-line paths `from[i] → to[i]`, detouring around
    /// `obstacles`.
    ///
    /// # Panics
    ///
    /// Panics when `from.len() != to.len()`.
    pub fn straight(from: &[Point], to: &[Point], obstacles: &[Polygon]) -> Self {
        assert_eq!(from.len(), to.len(), "endpoint lists must match");
        let paths = from
            .iter()
            .zip(to)
            .map(|(&a, &b)| Polyline::new(route_around_obstacles(a, b, obstacles)))
            .collect();
        TrajectorySet { paths }
    }

    /// Number of robots.
    #[inline]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Per-robot paths.
    #[inline]
    pub fn paths(&self) -> &[Polyline] {
        &self.paths
    }

    /// Sum of all path lengths — the total moving distance `D` of the
    /// transition leg.
    pub fn total_length(&self) -> f64 {
        self.paths.iter().map(Polyline::length).sum()
    }

    /// All robot positions at normalized time `s ∈ [0, 1]`.
    pub fn positions_at(&self, s: f64) -> Vec<Point> {
        self.paths.iter().map(|p| p.position_at(s)).collect()
    }

    /// Samples all robot positions at `samples + 1` uniformly spaced
    /// normalized times (including `s = 0` and `s = 1`).
    ///
    /// Uniform samples may step **over** a polyline waypoint, so motion
    /// between consecutive rows is not necessarily linear; exact
    /// continuous metrics need [`TrajectorySet::breakpoints`] /
    /// [`TrajectorySet::sample_at`] instead.
    ///
    /// # Panics
    ///
    /// Panics when `samples == 0`.
    pub fn sample(&self, samples: usize) -> Vec<Vec<Point>> {
        assert!(samples > 0, "need at least one sample interval");
        (0..=samples)
            .map(|k| self.positions_at(k as f64 / samples as f64))
            .collect()
    }

    /// All robot positions at each of the given normalized `times`.
    ///
    /// Sorted time lists (the common case — [`TrajectorySet::breakpoints`]
    /// and [`TrajectorySet::sample_times_with_breakpoints`] are sorted)
    /// are sampled with one monotone cursor walk per path, fanned out
    /// over worker threads; the rows are bit-identical to the per-query
    /// path at any worker count.
    pub fn sample_at(&self, times: &[f64]) -> Vec<Vec<Point>> {
        if !times.windows(2).all(|w| w[1] >= w[0]) {
            return times.iter().map(|&s| self.positions_at(s)).collect();
        }
        let per_path: Vec<Vec<Point>> =
            anr_par::par_map(&self.paths, 0, |p| p.positions_at_sorted(times));
        (0..times.len())
            .map(|r| per_path.iter().map(|c| c[r]).collect())
            .collect()
    }

    /// The union of every path's waypoint instants — sorted, deduped,
    /// always containing `0.0` and `1.0`. Between consecutive entries
    /// **every** robot moves along one straight segment, which is what
    /// makes the closed-form distance-extremum audit exact.
    pub fn breakpoints(&self) -> Vec<f64> {
        let mut times = vec![0.0, 1.0];
        for path in &self.paths {
            times.extend(path.breakpoints());
        }
        times.sort_by(f64::total_cmp);
        times.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        times
    }

    /// `samples + 1` uniform instants **augmented with every trajectory
    /// breakpoint**: a timeline sampled at these times is genuinely
    /// piecewise-linear row-to-row, so [`crate::evaluate_timeline`] and
    /// the continuous auditor are exact on it. The uniform instants keep
    /// the timeline's visual resolution for rendering.
    ///
    /// # Panics
    ///
    /// Panics when `samples == 0`.
    pub fn sample_times_with_breakpoints(&self, samples: usize) -> Vec<f64> {
        assert!(samples > 0, "need at least one sample interval");
        let mut times = self.breakpoints();
        times.extend((0..=samples).map(|k| k as f64 / samples as f64));
        times.sort_by(f64::total_cmp);
        times.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        times
    }
}

/// Computes a path `a → b` detouring around the `obstacles` that the
/// straight segment would cross (Sec. III-D-3: follow the hole boundary
/// until the straight path is clear again).
///
/// The detour follows the crossed obstacle's boundary in whichever
/// direction is shorter, with waypoints pushed slightly outward so the
/// path never grazes the obstacle interior. Handles multiple obstacles
/// sequentially (up to a small recursion depth — FoI scenarios cross at
/// most a few holes).
pub fn route_around_obstacles(a: Point, b: Point, obstacles: &[Polygon]) -> Vec<Point> {
    let mut waypoints = route_recursive(a, b, obstacles, 8);
    // Drop consecutive duplicates introduced by tangent touches.
    waypoints.dedup_by(|x, y| x.distance(*y) < 1e-9);
    waypoints
}

fn route_recursive(a: Point, b: Point, obstacles: &[Polygon], depth: usize) -> Vec<Point> {
    if depth == 0 {
        return vec![a, b];
    }
    let seg = Segment::new(a, b);

    // Find the obstacle crossed first (nearest entry along the segment).
    let mut first: Option<(usize, f64, f64)> = None; // (obstacle, t_in, t_out)
    for (oi, obs) in obstacles.iter().enumerate() {
        let mut ts: Vec<f64> = Vec::new();
        for e in obs.edges() {
            if let Some(x) = seg.intersection(e) {
                let t = if (b - a).norm() > 0.0 {
                    (x - a).dot(b - a) / (b - a).norm_sq()
                } else {
                    0.0
                };
                ts.push(t.clamp(0.0, 1.0));
            }
        }
        // Also catch segments that start or end inside the obstacle.
        if obs.contains_strict(a) {
            ts.push(0.0);
        }
        if obs.contains_strict(b) {
            ts.push(1.0);
        }
        if ts.len() >= 2 {
            let t_in = ts.iter().copied().fold(f64::INFINITY, f64::min);
            let t_out = ts.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            // Ignore grazing touches.
            if t_out - t_in > 1e-9 && seg.at(0.5 * (t_in + t_out)).distance(a) > 0.0 {
                let mid = seg.at(0.5 * (t_in + t_out));
                if obs.contains_strict(mid) {
                    match first {
                        Some((_, bt, _)) if bt <= t_in => {}
                        _ => first = Some((oi, t_in, t_out)),
                    }
                }
            }
        }
    }

    let (oi, t_in, t_out) = match first {
        Some(f) => f,
        None => return vec![a, b],
    };
    let obs = &obstacles[oi];
    let entry = seg.at(t_in);
    let exit = seg.at(t_out);

    // Walk the obstacle boundary between the entry and exit points in
    // both directions; keep the shorter walk.
    let detour = boundary_walk(obs, entry, exit);

    let mut out = vec![a];
    out.extend(detour);
    // Continue past the obstacle toward b (there may be more obstacles).
    let rest = route_recursive(exit_offset(obs, exit), b, obstacles, depth - 1);
    out.extend(rest);
    out
}

/// Pushes `p` slightly outward from the obstacle so subsequent segments
/// do not re-enter it numerically.
fn exit_offset(obs: &Polygon, p: Point) -> Point {
    let c = obs.centroid();
    let v = p - c;
    if v.norm() == 0.0 {
        return p;
    }
    p + v.normalized() * (obs.bbox().diagonal() * 1e-6)
}

/// The shorter boundary walk from `entry` to `exit`, with waypoints
/// pushed slightly outward.
fn boundary_walk(obs: &Polygon, entry: Point, exit: Point) -> Vec<Point> {
    let verts = obs.vertices();
    let n = verts.len();

    // Edge index whose segment contains a point (the closest edge).
    let edge_of = |p: Point| -> usize {
        (0..n)
            .min_by(|&i, &j| {
                let di = Segment::new(verts[i], verts[(i + 1) % n]).distance_to_point(p);
                let dj = Segment::new(verts[j], verts[(j + 1) % n]).distance_to_point(p);
                di.total_cmp(&dj)
            })
            .unwrap_or(0)
    };
    let e_in = edge_of(entry);
    let e_out = edge_of(exit);

    let push = |p: Point| exit_offset(obs, p);

    // Forward walk: entry → verts[e_in+1] → ... → verts[e_out] → exit.
    let mut forward = vec![push(entry)];
    {
        let mut k = (e_in + 1) % n;
        loop {
            forward.push(push(verts[k]));
            if k == e_out {
                break;
            }
            // entry and exit may share an edge.
            if forward.len() > n + 2 {
                break;
            }
            k = (k + 1) % n;
        }
        if e_in == e_out {
            forward = vec![push(entry)];
        }
        forward.push(push(exit));
    }

    // Backward walk: entry → verts[e_in] → verts[e_in−1] → ... →
    // verts[e_out+1] → exit.
    let mut backward = vec![push(entry)];
    {
        let mut k = e_in;
        loop {
            backward.push(push(verts[k]));
            if k == (e_out + 1) % n {
                break;
            }
            if backward.len() > n + 2 {
                break;
            }
            k = (k + n - 1) % n;
        }
        if e_in == e_out {
            backward = vec![push(entry)];
        }
        backward.push(push(exit));
    }

    let len = |pts: &[Point]| -> f64 { pts.windows(2).map(|w| w[0].distance(w[1])).sum() };
    if len(&forward) <= len(&backward) {
        forward
    } else {
        backward
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn polyline_length_and_positions() {
        let path = Polyline::new(vec![p(0.0, 0.0), p(10.0, 0.0), p(10.0, 10.0)]);
        assert_eq!(path.length(), 20.0);
        assert_eq!(path.position_at(0.0), p(0.0, 0.0));
        assert_eq!(path.position_at(0.25), p(5.0, 0.0));
        assert_eq!(path.position_at(0.5), p(10.0, 0.0));
        assert_eq!(path.position_at(0.75), p(10.0, 5.0));
        assert_eq!(path.position_at(1.0), p(10.0, 10.0));
    }

    #[test]
    fn polyline_clamps_time() {
        let path = Polyline::new(vec![p(0.0, 0.0), p(4.0, 0.0)]);
        assert_eq!(path.position_at(-1.0), p(0.0, 0.0));
        assert_eq!(path.position_at(2.0), p(4.0, 0.0));
    }

    #[test]
    fn stationary_path() {
        let path = Polyline::stationary(p(3.0, 3.0));
        assert_eq!(path.length(), 0.0);
        assert_eq!(path.position_at(0.5), p(3.0, 3.0));
    }

    #[test]
    fn straight_route_without_obstacles() {
        let route = route_around_obstacles(p(0.0, 0.0), p(10.0, 0.0), &[]);
        assert_eq!(route, vec![p(0.0, 0.0), p(10.0, 0.0)]);
    }

    #[test]
    fn route_detours_around_square() {
        let obs = Polygon::rectangle(p(4.0, -2.0), 2.0, 4.0);
        let route = route_around_obstacles(p(0.0, 0.0), p(10.0, 0.0), std::slice::from_ref(&obs));
        assert!(route.len() > 2, "no detour: {route:?}");
        // Path avoids the obstacle interior at every sampled position.
        let path = Polyline::new(route);
        for k in 0..=200 {
            let q = path.position_at(k as f64 / 200.0);
            assert!(
                !obs.contains_strict(q) || obs.distance_to_boundary(q) < 1e-4,
                "path enters obstacle at {q}"
            );
        }
        // Detour costs more than the straight line but not absurdly more.
        assert!(path.length() >= 10.0);
        assert!(path.length() < 10.0 + obs.perimeter());
    }

    #[test]
    fn route_takes_shorter_side() {
        // Obstacle offset downward: the shorter detour goes over the top.
        let obs = Polygon::new(vec![p(4.0, -8.0), p(6.0, -8.0), p(6.0, 1.0), p(4.0, 1.0)]).unwrap();
        let route = route_around_obstacles(p(0.0, 0.0), p(10.0, 0.0), &[obs]);
        let max_y = route.iter().map(|q| q.y).fold(f64::NEG_INFINITY, f64::max);
        let min_y = route.iter().map(|q| q.y).fold(f64::INFINITY, f64::min);
        assert!(max_y > 0.5, "did not go over the top: {route:?}");
        assert!(min_y > -5.0, "went the long way: {route:?}");
    }

    #[test]
    fn route_handles_two_obstacles() {
        let o1 = Polygon::rectangle(p(2.0, -1.0), 1.0, 2.0);
        let o2 = Polygon::rectangle(p(6.0, -1.0), 1.0, 2.0);
        let route = route_around_obstacles(p(0.0, 0.0), p(10.0, 0.0), &[o1.clone(), o2.clone()]);
        let path = Polyline::new(route);
        for k in 0..=300 {
            let q = path.position_at(k as f64 / 300.0);
            for obs in [&o1, &o2] {
                assert!(
                    !obs.contains_strict(q) || obs.distance_to_boundary(q) < 1e-4,
                    "path enters obstacle at {q}"
                );
            }
        }
    }

    #[test]
    fn route_detours_around_concave_flower() {
        // A five-petal flower obstacle (the paper's pond shape): the
        // detour must stay out of the obstacle interior even though the
        // boundary walk passes concave notches.
        let verts: Vec<Point> = (0..40)
            .map(|i| {
                let theta = std::f64::consts::TAU * i as f64 / 40.0;
                let r = 3.0 * (1.0 + 0.35 * (5.0 * theta).cos());
                p(5.0 + r * theta.cos(), r * theta.sin())
            })
            .collect();
        let obs = Polygon::new(verts).unwrap();
        let route = route_around_obstacles(p(-2.0, 0.0), p(12.0, 0.0), std::slice::from_ref(&obs));
        assert!(route.len() > 2);
        let path = Polyline::new(route);
        for k in 0..=400 {
            let q = path.position_at(k as f64 / 400.0);
            assert!(
                !obs.contains_strict(q) || obs.distance_to_boundary(q) < 1e-3,
                "path enters flower at {q}"
            );
        }
    }

    #[test]
    fn untouched_obstacles_do_not_detour() {
        let obs = Polygon::rectangle(p(4.0, 5.0), 2.0, 2.0);
        let route = route_around_obstacles(p(0.0, 0.0), p(10.0, 0.0), &[obs]);
        assert_eq!(route.len(), 2);
    }

    #[test]
    fn trajectory_set_sampling() {
        let set = TrajectorySet::straight(
            &[p(0.0, 0.0), p(0.0, 10.0)],
            &[p(10.0, 0.0), p(10.0, 10.0)],
            &[],
        );
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_length(), 20.0);
        let samples = set.sample(4);
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[0][0], p(0.0, 0.0));
        assert_eq!(samples[2][0], p(5.0, 0.0));
        assert_eq!(samples[4][1], p(10.0, 10.0));
    }

    #[test]
    fn breakpoints_cover_every_waypoint() {
        let path = Polyline::new(vec![p(0.0, 0.0), p(10.0, 0.0), p(10.0, 10.0)]);
        assert_eq!(path.breakpoints(), vec![0.0, 0.5, 1.0]);
        assert_eq!(Polyline::stationary(p(1.0, 1.0)).breakpoints(), vec![0.0]);

        let set = TrajectorySet::new(vec![
            path,
            Polyline::new(vec![p(0.0, 0.0), p(3.0, 0.0), p(4.0, 0.0)]),
        ]);
        let bks = set.breakpoints();
        assert_eq!(bks.first(), Some(&0.0));
        assert_eq!(bks.last(), Some(&1.0));
        assert!(bks.contains(&0.5) && bks.contains(&0.75), "{bks:?}");
        assert!(bks.windows(2).all(|w| w[1] > w[0]), "{bks:?}");
        // Sampling at the breakpoints reproduces the waypoints exactly.
        let rows = set.sample_at(&bks);
        assert_eq!(rows.len(), bks.len());
        assert_eq!(
            rows[bks.iter().position(|&s| s == 0.75).unwrap()][1],
            p(3.0, 0.0)
        );
    }

    #[test]
    fn sorted_sampling_matches_per_query() {
        // Detour-like path with many short segments plus a stationary
        // robot; sampling at breakpoints, uniform times and repeated
        // times must be bit-identical to per-query position_at.
        let jagged = Polyline::new(
            (0..50)
                .map(|i| p(i as f64, if i % 2 == 0 { 0.0 } else { 0.3 }))
                .collect(),
        );
        let set = TrajectorySet::new(vec![
            jagged.clone(),
            Polyline::stationary(p(7.0, 7.0)),
            Polyline::new(vec![p(0.0, 0.0), p(100.0, 0.0)]),
        ]);
        let mut times = set.sample_times_with_breakpoints(13);
        times.push(1.0); // repeated endpoint
        for &s in &times {
            let row = jagged.positions_at_sorted(&[s]);
            assert_eq!(row[0], jagged.position_at(s));
        }
        let rows = set.sample_at(&times);
        for (r, &s) in times.iter().enumerate() {
            assert_eq!(rows[r], set.positions_at(s), "row {r} at s={s}");
        }
        // Unsorted queries fall back to per-query sampling.
        let unsorted = [0.9, 0.1, 0.5, 0.5, 0.0];
        let rows = set.sample_at(&unsorted);
        for (r, &s) in unsorted.iter().enumerate() {
            assert_eq!(rows[r], set.positions_at(s));
        }
        // The monotone cursor also survives unsorted direct calls.
        let direct = jagged.positions_at_sorted(&unsorted);
        for (r, &s) in unsorted.iter().enumerate() {
            assert_eq!(direct[r], jagged.position_at(s));
        }
    }

    #[test]
    fn synchronized_arrival() {
        // Robots with different path lengths still arrive together at
        // s = 1 (speeds differ, per Eqn. 2's common transition time T).
        let set = TrajectorySet::straight(
            &[p(0.0, 0.0), p(0.0, 1.0)],
            &[p(100.0, 0.0), p(1.0, 1.0)],
            &[],
        );
        let samples = set.sample(10);
        assert_eq!(samples[10][0], p(100.0, 0.0));
        assert_eq!(samples[10][1], p(1.0, 1.0));
        // At half time, both are halfway along their own paths.
        assert_eq!(samples[5][0], p(50.0, 0.0));
        assert_eq!(samples[5][1], p(0.5, 1.0));
    }
}
