//! The optimal-marching pipeline (paper Sec. III).

use crate::{
    evaluate_timeline, repair_connectivity_strict, MarchConfig, MarchError, MarchProblem,
    RepairReport, TrajectorySet, TransitionMetrics,
};
use anr_coverage::{run_lloyd_guarded_traced, GridPartition};
use anr_geom::Point;
use anr_harmonic::{fill_holes, harmonic_map_to_disk_traced, DiskOverlay};
use anr_mesh::{FoiMesher, PointLocator};
use anr_netgraph::{extract_triangulation, UnitDiskGraph};
use anr_trace::{TraceValue, Tracer};

/// Which objective the rotation search optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Method (a): maximize the total stable link ratio subject to
    /// global connectivity — the optimal-marching objective
    /// (Definition 6).
    MaxStableLinks,
    /// Method (b): minimize the total moving distance, trading "a little
    /// total stable link ratio" (Sec. III-D-2).
    MinMovingDistance,
}

/// Everything produced by one marching run.
#[derive(Debug, Clone)]
pub struct MarchOutcome {
    /// Initial positions (copied from the problem).
    pub initial: Vec<Point>,
    /// Positions after the harmonic-map transition, before the coverage
    /// refinement (the second row of the paper's Fig. 3).
    pub mapped: Vec<Point>,
    /// Final optimal coverage positions (the third row of Fig. 3).
    pub final_positions: Vec<Point>,
    /// The chosen disk rotation angle (radians).
    pub rotation: f64,
    /// The transition trajectories `M1 → M2`.
    pub transition: TrajectorySet,
    /// The sampled position timeline (transition samples followed by one
    /// row per Lloyd iteration) the metrics were computed on.
    pub timeline: Vec<Vec<Point>>,
    /// `D`, `L`, `C` and link accounting.
    pub metrics: TransitionMetrics,
    /// What the connectivity repair did.
    pub repair: RepairReport,
    /// Lloyd iterations used by the coverage refinement.
    pub lloyd_iterations: usize,
}

/// Runs the paper's marching pipeline on `problem` with the given
/// `method` and configuration.
///
/// Pipeline (Fig. 2): extract the triangulation `T` of the deployment →
/// fill holes → harmonic-map `T` and the meshed target FoI onto unit
/// disks → search the disk rotation (max `L` for method (a), min `D` for
/// method (b)) → compose the maps to get destinations → repair predicted
/// isolation → move along straight hole-avoiding paths → guarded Lloyd
/// to optimal coverage positions.
///
/// # Errors
///
/// Any [`MarchError`]; most commonly a disconnected deployment, a robot
/// outside the triangulation, or a meshing failure on a degenerate FoI.
pub fn march(
    problem: &MarchProblem,
    method: Method,
    config: &MarchConfig,
) -> Result<MarchOutcome, MarchError> {
    march_traced(problem, method, config, &Tracer::disabled())
}

/// [`march`] with structured tracing: every pipeline stage runs inside a
/// span (`triangulate`, `harmonic_m1`, `harmonic_m2`, `rotation`,
/// `repair`, `lloyd`, plus `trajectories` and `metrics`), rotation
/// evaluations and solver iterations are emitted as events, and the
/// produced outcome is **byte-identical** to the untraced run — tracing
/// observes, never steers (pinned by a test below).
///
/// # Errors
///
/// Same as [`march`].
pub fn march_traced(
    problem: &MarchProblem,
    method: Method,
    config: &MarchConfig,
    tracer: &Tracer,
) -> Result<MarchOutcome, MarchError> {
    let n = problem.num_robots();
    let positions = &problem.positions;
    let range = problem.range;
    let _pipeline = tracer.span_with(
        "march",
        vec![
            ("robots", TraceValue::U64(n as u64)),
            ("range", TraceValue::F64(range)),
            (
                "method",
                TraceValue::Str(
                    match method {
                        Method::MaxStableLinks => "max_stable_links",
                        Method::MinMovingDistance => "min_moving_distance",
                    }
                    .to_string(),
                ),
            ),
        ],
    );

    // ------------------------------------------------------------------
    // 1. Triangulation T of the deployment (Sec. III-A).
    // ------------------------------------------------------------------
    let t_mesh = {
        let _s = tracer.span("triangulate");
        extract_triangulation(positions, range)?
    };
    if let Some(robot) = (0..n).find(|&v| t_mesh.vertex_neighbors(v).is_empty()) {
        return Err(MarchError::RobotOutsideTriangulation { robot });
    }

    // ------------------------------------------------------------------
    // 2. Harmonic map of T to the unit disk (holes filled first when M1
    //    itself has holes, Sec. III-D-3).
    // ------------------------------------------------------------------
    let (filled_t, robot_disk) = {
        let _s = tracer.span("harmonic_m1");
        let filled_t = fill_holes(&t_mesh)?;
        let disk_t = harmonic_map_to_disk_traced(filled_t.mesh(), &config.harmonic, tracer)?;
        let robot_disk: Vec<Point> = (0..n).map(|v| disk_t.position(v)).collect();
        (filled_t, robot_disk)
    };

    // ------------------------------------------------------------------
    // 3. Grid + triangulate + harmonic-map the target FoI (Sec. III-B).
    // ------------------------------------------------------------------
    let spacing = config.resolve_mesh_spacing(problem.m2.area(), n);
    let overlay = {
        let _s = tracer.span("harmonic_m2");
        let foi2 = FoiMesher::new(spacing).mesh(&problem.m2)?;
        let filled2 = fill_holes(foi2.mesh())?;
        let disk2 = harmonic_map_to_disk_traced(filled2.mesh(), &config.harmonic, tracer)?;
        DiskOverlay::new(
            filled2.mesh(),
            disk2.positions(),
            filled2.virtual_vertices(),
        )
    };

    // ------------------------------------------------------------------
    // 4. Rotation search (Sec. III-B for (a), III-D-2 for (b)).
    //
    // For synchronized straight-line motion the inter-robot distance is
    // convex in t, so a link survives the whole transition iff it holds
    // at both endpoints; the link objective therefore only needs the
    // mapped endpoint positions.
    // ------------------------------------------------------------------
    let links = UnitDiskGraph::new(positions, range).links();
    // The point locator over the target disk mesh is built once for the
    // whole sweep; rebuilding it per angle used to dominate this stage.
    let disk_locator = PointLocator::new(overlay.disk_mesh());
    // Destinations are clamped into M2: mesh-boundary jitter can place
    // an interpolated position a millimetre outside the polygon.
    let map_at = |theta: f64| -> Vec<Point> {
        overlay
            .map_all_with(&disk_locator, &robot_disk, theta)
            .into_iter()
            .map(|m| problem.m2.clamp_inside(m.position))
            .collect()
    };
    let score_at = |theta: f64| -> f64 {
        let q = map_at(theta);
        match method {
            Method::MaxStableLinks => {
                if links.is_empty() {
                    1.0
                } else {
                    links
                        .iter()
                        .filter(|&&(i, j)| q[i].distance(q[j]) <= range)
                        .count() as f64
                        / links.len() as f64
                }
            }
            Method::MinMovingDistance => positions
                .iter()
                .zip(&q)
                .map(|(p, t)| p.distance(*t))
                .sum::<f64>(),
        }
    };
    // Each search round's angles fan out over worker threads; the round's
    // scores are re-scanned in input order on this thread (including the
    // trace events), so the chosen optimum and the event stream are
    // identical to the serial sweep at any worker count.
    let batch = |thetas: &[f64]| -> Vec<f64> {
        let scores = anr_par::par_map(thetas, 0, |&t| score_at(t));
        for (&theta, &score) in thetas.iter().zip(&scores) {
            tracer.event(
                "rotation_eval",
                &[
                    ("theta", TraceValue::F64(theta)),
                    ("score", TraceValue::F64(score)),
                ],
            );
        }
        scores
    };

    let rotation_span = tracer.span("rotation");
    let (rotation, _score, _evals) = match method {
        Method::MaxStableLinks => config.rotation.maximize_batch(batch),
        Method::MinMovingDistance => config.rotation.minimize_batch(batch),
    };
    drop(rotation_span);

    let mut targets = map_at(rotation);

    // ------------------------------------------------------------------
    // 5. Global-connectivity repair (Sec. III-D-1): isolated subgroups
    //    adopt parallel motion. The network boundary is T's outer loop.
    // ------------------------------------------------------------------
    let repair = {
        let _s = tracer.span("repair");
        let boundary: Vec<usize> = filled_t
            .mesh()
            .boundary_loops()
            .into_iter()
            .next()
            .unwrap_or_default()
            .into_iter()
            .filter(|&v| v < n)
            .collect();
        repair_connectivity_strict(positions, &mut targets, &boundary, range)
    };

    // ------------------------------------------------------------------
    // 6. Transition trajectories (Eqn. 2) with hole avoidance. The
    //    timeline samples the uniform instants PLUS every trajectory
    //    breakpoint, so motion between rows is exactly linear and the
    //    metrics below are continuous-time exact.
    // ------------------------------------------------------------------
    let _trajectories_span = tracer.span("trajectories");
    let obstacles = problem.obstacles();
    let transition = TrajectorySet::straight(positions, &targets, &obstacles);
    let times = transition.sample_times_with_breakpoints(config.time_samples);
    let mut timeline = transition.sample_at(&times);
    let mut total_distance = transition.total_length();
    let mapped = targets.clone();
    drop(_trajectories_span);

    // ------------------------------------------------------------------
    // 7. Minor local adjustment: connectivity-guarded Lloyd (Sec. III-C).
    // ------------------------------------------------------------------
    let (final_positions, lloyd_iterations) = if config.refine_coverage {
        let _s = tracer.span("lloyd");
        // Fine partition: ≥ ~50 samples per robot cell, so the weighted
        // centroids resolve the density gradient instead of locking into
        // a coarse discrete fixed point.
        let partition = GridPartition::new(&problem.m2, spacing * 0.2);
        // The timeline metrics need the per-iteration site history.
        let lloyd_config = anr_coverage::LloydConfig {
            record_history: true,
            ..config.lloyd
        };
        let lloyd = run_lloyd_guarded_traced(
            &targets,
            &partition,
            &config.density,
            &lloyd_config,
            range,
            tracer,
        );
        total_distance += lloyd.total_movement;
        timeline.extend(lloyd.history.iter().cloned());
        (lloyd.sites, lloyd.iterations)
    } else {
        (targets, 0)
    };

    // ------------------------------------------------------------------
    // 8. Metrics (Definitions 1 and 2), exact over the piecewise-linear
    //    timeline (transition breakpoints + Lloyd iteration rows).
    // ------------------------------------------------------------------
    let metrics = {
        let _s = tracer.span("metrics");
        evaluate_timeline(&timeline, range, total_distance)?
    };

    Ok(MarchOutcome {
        initial: positions.clone(),
        mapped,
        final_positions,
        rotation,
        transition,
        timeline,
        metrics,
        repair,
        lloyd_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anr_geom::{Polygon, PolygonWithHoles};

    fn square_region(side: f64, origin: Point) -> PolygonWithHoles {
        PolygonWithHoles::without_holes(Polygon::rectangle(origin, side, side))
    }

    /// A small but realistic problem: 36 robots, square → square.
    fn small_problem(separation: f64) -> MarchProblem {
        let m1 = square_region(300.0, Point::ORIGIN);
        let m2 = square_region(300.0, Point::new(separation, 0.0));
        MarchProblem::with_lattice_deployment(m1, m2, 36, 80.0).unwrap()
    }

    fn fast_config() -> MarchConfig {
        MarchConfig {
            time_samples: 20,
            lloyd: anr_coverage::LloydConfig {
                tolerance: 2.0,
                max_iterations: 10,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn method_a_maintains_global_connectivity() {
        let problem = small_problem(800.0);
        let out = march(&problem, Method::MaxStableLinks, &fast_config()).unwrap();
        assert_eq!(out.metrics.global_connectivity, 1);
        assert!(
            out.metrics.stable_link_ratio > 0.5,
            "L = {}",
            out.metrics.stable_link_ratio
        );
        assert_eq!(out.final_positions.len(), 36);
        // All robots end inside M2.
        for q in &out.final_positions {
            assert!(problem.m2.contains(*q), "{q} outside M2");
        }
    }

    #[test]
    fn method_b_moves_no_more_than_method_a() {
        let problem = small_problem(700.0);
        let cfg = fast_config();
        let a = march(&problem, Method::MaxStableLinks, &cfg).unwrap();
        let b = march(&problem, Method::MinMovingDistance, &cfg).unwrap();
        // (b) optimizes distance; allow a small tolerance because the
        // final Lloyd cost differs between rotations.
        assert!(
            b.metrics.total_distance <= a.metrics.total_distance * 1.10,
            "D(b) = {} vs D(a) = {}",
            b.metrics.total_distance,
            a.metrics.total_distance
        );
        assert_eq!(b.metrics.global_connectivity, 1);
    }

    #[test]
    fn distance_scales_with_separation() {
        let cfg = fast_config();
        let near = march(&small_problem(600.0), Method::MaxStableLinks, &cfg).unwrap();
        let far = march(&small_problem(2000.0), Method::MaxStableLinks, &cfg).unwrap();
        assert!(far.metrics.total_distance > near.metrics.total_distance + 30_000.0);
    }

    #[test]
    fn timeline_starts_at_initial_positions() {
        let problem = small_problem(600.0);
        let out = march(&problem, Method::MaxStableLinks, &fast_config()).unwrap();
        assert_eq!(out.timeline[0], problem.positions);
        assert_eq!(out.metrics.samples, out.timeline.len());
    }

    #[test]
    fn disconnected_deployment_rejected() {
        let m1 = square_region(300.0, Point::ORIGIN);
        let m2 = square_region(300.0, Point::new(900.0, 0.0));
        let positions = vec![
            Point::new(10.0, 10.0),
            Point::new(60.0, 10.0),
            Point::new(35.0, 50.0),
            Point::new(290.0, 290.0), // alone in the corner
        ];
        assert!(matches!(
            MarchProblem::new(m1, m2, positions, 80.0),
            Err(MarchError::DisconnectedDeployment { .. })
        ));
    }

    #[test]
    fn refine_coverage_can_be_disabled() {
        let problem = small_problem(600.0);
        let cfg = MarchConfig {
            refine_coverage: false,
            ..fast_config()
        };
        let out = march(&problem, Method::MaxStableLinks, &cfg).unwrap();
        assert_eq!(out.lloyd_iterations, 0);
        assert_eq!(out.mapped, out.final_positions);
    }

    #[test]
    fn tracing_is_observation_only_and_covers_stages() {
        use anr_trace::TraceKind;
        let problem = small_problem(700.0);
        let cfg = fast_config();
        // The untraced run IS the disabled-tracer run (`march` delegates
        // with `Tracer::disabled()`), so this comparison pins the
        // contract: enabling tracing changes no output byte.
        let plain = march(&problem, Method::MaxStableLinks, &cfg).unwrap();
        let tracer = Tracer::ring(1 << 16);
        let traced = march_traced(&problem, Method::MaxStableLinks, &cfg, &tracer).unwrap();
        assert_eq!(plain.initial, traced.initial);
        assert_eq!(plain.mapped, traced.mapped);
        assert_eq!(plain.final_positions, traced.final_positions);
        assert_eq!(plain.rotation, traced.rotation);
        assert_eq!(plain.timeline, traced.timeline);
        assert_eq!(plain.metrics, traced.metrics);
        assert_eq!(plain.lloyd_iterations, traced.lloyd_iterations);

        let events = tracer.events();
        for stage in [
            "march",
            "triangulate",
            "harmonic_m1",
            "harmonic_m2",
            "rotation",
            "repair",
            "trajectories",
            "lloyd",
            "metrics",
        ] {
            assert!(
                events
                    .iter()
                    .any(|e| e.kind == TraceKind::SpanStart && e.name == stage),
                "missing span {stage}"
            );
            assert!(
                events
                    .iter()
                    .any(|e| e.kind == TraceKind::SpanEnd && e.name == stage),
                "unclosed span {stage}"
            );
        }
        // Solver iterations and rotation evaluations ride along.
        assert!(events.iter().any(|e| e.name == "pcg_iter"));
        assert!(events.iter().any(|e| e.name == "rotation_eval"));
        assert!(events.iter().any(|e| e.name == "lloyd_iter"));
        assert_eq!(tracer.dropped(), 0, "ring must hold the whole run");
    }

    #[test]
    fn marching_into_foi_with_hole() {
        let m1 = square_region(300.0, Point::ORIGIN);
        let outer = Polygon::rectangle(Point::new(800.0, 0.0), 340.0, 340.0);
        let hole = Polygon::regular(Point::new(970.0, 170.0), 50.0, 12);
        let m2 = PolygonWithHoles::new(outer, vec![hole.clone()]).unwrap();
        let problem = MarchProblem::with_lattice_deployment(m1, m2, 36, 80.0).unwrap();
        let out = march(&problem, Method::MaxStableLinks, &fast_config()).unwrap();
        assert_eq!(out.metrics.global_connectivity, 1);
        // Nobody ends up inside the hole.
        for q in &out.final_positions {
            assert!(!problem.m2.in_hole(*q), "robot inside hole at {q}");
        }
    }
}
