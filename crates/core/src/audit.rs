//! Continuous-time invariant audit: exact link stability and global
//! connectivity over piecewise-linear motion (Definitions 1 and 2).
//!
//! The paper's definitions quantify over **every instant** `t ∈ [0, T]`.
//! For synchronized piecewise-linear motion the squared inter-robot
//! distance on one linear piece is a convex quadratic in the time
//! parameter,
//!
//! ```text
//! d²(τ) = ‖u + τ·w‖² = ‖w‖² τ² + 2(u·w) τ + ‖u‖²,
//! ```
//!
//! (`u` the relative position at the piece start, `w` the relative
//! displacement over the piece), so no sampling is ever needed:
//!
//! * the **maximum** of `d` over a piece is attained at a piece endpoint
//!   (convexity) — a link is stable on `[0, T]` iff it is within range
//!   at every piece breakpoint;
//! * the instants where a pair **crosses** the range `r` are the roots
//!   of `d²(τ) = r²` — the unit-disk edge set only changes at those
//!   roots, so connectivity is certified by checking one instant inside
//!   each open interval between consecutive roots (at a root instant the
//!   edge set is a superset of both one-sided limits, because `d ≤ r` is
//!   a closed condition; a supergraph of a connected graph is
//!   connected).
//!
//! [`audit_piecewise`] runs both checks over an explicit breakpoint
//! timeline; [`audit_trajectories`] derives that timeline from a
//! [`TrajectorySet`]'s own polyline waypoints. Violations are reported
//! with the offending link, the exact out-of-range interval, and the
//! maximum distance reached, and are mirrored as `anr-trace` events.

use crate::metrics::MetricsError;
use crate::trajectory::TrajectorySet;
use anr_geom::Point;
use anr_netgraph::{RollbackUnionFind, UnitDiskGraph};
use anr_trace::{TraceValue, Tracer};
use std::collections::BTreeMap;

/// An initial link that left communication range during the transition.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkViolation {
    /// The offending link `(i, j)`, `i < j`.
    pub link: (usize, usize),
    /// First maximal normalized-time interval during which the pair was
    /// out of range (exact roots of `d²(s) = r²`, not samples).
    pub interval: (f64, f64),
    /// Maximum distance the pair reached over the whole transition.
    pub max_distance: f64,
}

/// Result of a continuous-time audit.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Number of robots audited.
    pub robots: usize,
    /// Links of the initial unit-disk graph (denominator of `L`).
    pub initial_links: usize,
    /// Initial links within range at **every** instant.
    pub preserved_links: usize,
    /// Exact total stable link ratio `L` (1.0 when there are no links).
    pub stable_link_ratio: f64,
    /// 1 when the network was connected at every instant, else 0.
    pub global_connectivity: u8,
    /// Every broken initial link, with its exact violation interval.
    pub violations: Vec<LinkViolation>,
    /// Maximal normalized-time intervals during which the network was
    /// disconnected (empty iff `global_connectivity == 1`).
    pub disconnected_intervals: Vec<(f64, f64)>,
    /// Linear motion pieces audited (timeline rows − 1).
    pub pieces: usize,
    /// Connectivity check instants examined (one per open interval
    /// between consecutive edge-set change events).
    pub connectivity_checks: usize,
}

impl AuditReport {
    /// True when both invariants held: `C = 1` and no link violations.
    #[must_use]
    pub fn certified(&self) -> bool {
        self.global_connectivity == 1 && self.violations.is_empty()
    }
}

/// Audits a [`TrajectorySet`] continuously over `s ∈ [0, 1]`.
///
/// The breakpoint timeline is the union of every polyline's waypoint
/// instants, so each piece is exactly linear and the audit is exact.
///
/// # Errors
///
/// [`MetricsError`] on empty sets, non-positive range, or non-finite
/// positions.
pub fn audit_trajectories(
    set: &TrajectorySet,
    range: f64,
    tracer: &Tracer,
) -> Result<AuditReport, MetricsError> {
    let times = set.breakpoints();
    let rows: Vec<Vec<Point>> = times.iter().map(|&s| set.positions_at(s)).collect();
    audit_piecewise(&rows, &times, range, tracer)
}

/// Audits an explicit piecewise-linear timeline: `rows[k]` holds every
/// robot's position at normalized time `times[k]`, and every robot moves
/// **linearly** between consecutive rows (rows must therefore include
/// every trajectory breakpoint — see
/// [`TrajectorySet::breakpoints`]).
///
/// Emits `audit_violation` / `audit_disconnect` trace events as
/// violations are found and a final `audit_summary` event.
///
/// # Errors
///
/// [`MetricsError`] on an empty or ragged timeline, mismatched or
/// non-monotonic `times`, non-positive `range`, or non-finite positions.
pub fn audit_piecewise(
    rows: &[Vec<Point>],
    times: &[f64],
    range: f64,
    tracer: &Tracer,
) -> Result<AuditReport, MetricsError> {
    validate(rows, times, range)?;
    let n = rows[0].len();
    let r2 = range * range;

    let initial = UnitDiskGraph::new(&rows[0], range);
    let links = initial.links();
    let initial_links = links.len();

    // ------------------------------------------------------------------
    // Link stability: d is convex on every linear piece, so its maximum
    // over [0, 1] is attained at a row instant. Exact, no sampling.
    // ------------------------------------------------------------------
    let mut max_dist_sq = vec![0.0f64; links.len()];
    for row in rows {
        for (k, &(i, j)) in links.iter().enumerate() {
            max_dist_sq[k] = max_dist_sq[k].max(row[i].distance_sq(row[j]));
        }
    }

    let mut violations = Vec::new();
    for (k, &(i, j)) in links.iter().enumerate() {
        if max_dist_sq[k] <= r2 {
            continue;
        }
        let interval = first_out_interval(rows, times, (i, j), r2);
        let max_distance = max_dist_sq[k].sqrt();
        tracer.event(
            "audit_violation",
            &[
                ("i", TraceValue::U64(i as u64)),
                ("j", TraceValue::U64(j as u64)),
                ("s_lo", TraceValue::F64(interval.0)),
                ("s_hi", TraceValue::F64(interval.1)),
                ("max_distance", TraceValue::F64(max_distance)),
            ],
        );
        violations.push(LinkViolation {
            link: (i, j),
            interval,
            max_distance,
        });
    }
    let preserved_links = initial_links - violations.len();
    let stable_link_ratio = if initial_links == 0 {
        1.0
    } else {
        preserved_links as f64 / initial_links as f64
    };

    // ------------------------------------------------------------------
    // Continuous connectivity: within a piece the edge set changes only
    // at roots of d²(τ) = r²; one connectivity check per open interval
    // between consecutive roots certifies the whole piece (at the roots
    // themselves the edge set is a superset of both one-sided limits).
    // ------------------------------------------------------------------
    let mut disconnected_intervals: Vec<(f64, f64)> = Vec::new();
    let mut connectivity_checks = 0usize;
    if rows.len() == 1 {
        connectivity_checks = 1;
        if !initial.is_connected() {
            disconnected_intervals.push((times[0], times[0]));
        }
    }
    let mut events: Vec<f64> = Vec::new();
    // Pairs ever in range during the current piece, with their in-range
    // sub-interval of [0, 1] — one interval per pair, because d² is
    // convex so {τ : d²(τ) ≤ r²} is connected. Each connectivity check
    // then unions only these candidate edges (≈ the unit-disk degree
    // sum) instead of re-scanning all n² pairs per check instant.
    let mut candidates: Vec<(u32, u32, f64, f64)> = Vec::new();
    for piece in 0..rows.len().saturating_sub(1) {
        let (a, b) = (&rows[piece], &rows[piece + 1]);
        events.clear();
        candidates.clear();
        let mut scan_pair = |i: usize, j: usize| {
            let u = a[i] - a[j];
            let w = (b[i] - b[j]) - u;
            let (qa, qb, qc) = (w.norm_sq(), u.dot(w), u.norm_sq() - r2);
            if qa <= 0.0 {
                // Constant relative distance: no crossing, in range
                // for the whole piece or not at all.
                if qc <= 0.0 {
                    candidates.push((i as u32, j as u32, 0.0, 1.0));
                }
                return;
            }
            let disc = qb * qb - qa * qc;
            if disc <= 0.0 {
                return; // never touches the range circle (or grazes it)
            }
            let sq = disc.sqrt();
            let (t1, t2) = ((-qb - sq) / qa, (-qb + sq) / qa); // in range on [t1, t2]
            if t2 <= 0.0 || t1 >= 1.0 {
                return; // only in range outside this piece
            }
            candidates.push((i as u32, j as u32, t1.max(0.0), t2.min(1.0)));
            for root in [t1, t2] {
                if root > 0.0 && root < 1.0 {
                    events.push(root);
                }
            }
        };
        // d(τ) ≥ d(0) − τ‖w‖ ≥ d(0) − 2·dmax, so only pairs starting
        // within r + 2·dmax of each other can ever be in range on this
        // piece: a grid with that cell size prunes the O(n²) scan to
        // near-neighbors. The candidate/event multisets are unchanged
        // (the scan itself re-filters), so results stay deterministic
        // even though grid iteration order is not.
        if n >= 64 {
            let dmax = a
                .iter()
                .zip(b)
                .map(|(p, q)| p.distance(*q))
                .fold(0.0f64, f64::max);
            for_each_near_pair(a, range + 2.0 * dmax, &mut scan_pair);
        } else {
            for i in 0..n {
                for j in (i + 1)..n {
                    scan_pair(i, j);
                }
            }
        }
        events.sort_by(f64::total_cmp);
        events.dedup_by(|x, y| (*x - *y).abs() < 1e-12);

        // One check instant inside every open interval between events.
        // The edge set is constant on each interval, so certifying its
        // midpoint certifies the interval. Large swarms can have
        // hundreds of thousands of events per piece, so connectivity is
        // decided offline: each edge covers a contiguous run of
        // intervals (its in-range set is one interval), and a
        // divide-and-conquer over the interval axis with a rollback
        // union-find visits every interval in O(E log E) total unions
        // instead of O(E · edges).
        let mids: Vec<f64> = (0..=events.len())
            .map(|k| {
                let lo = if k == 0 { 0.0 } else { events[k - 1] };
                let hi = events.get(k).copied().unwrap_or(1.0);
                0.5 * (lo + hi)
            })
            .collect();
        connectivity_checks += mids.len();

        let spans: Vec<(u32, u32, u32, u32)> = candidates
            .iter()
            .filter_map(|&(i, j, elo, ehi)| {
                let a = mids.partition_point(|&m| m < elo);
                let b = mids.partition_point(|&m| m <= ehi);
                (a < b).then(|| (i, j, a as u32, (b - 1) as u32))
            })
            .collect();

        let mut bad_intervals = Vec::new();
        if n > 1 {
            let mut uf = RollbackUnionFind::new(n);
            disconnected_leaves(0, mids.len() - 1, &spans, &mut uf, &mut bad_intervals);
        }
        for k in bad_intervals {
            let lo = if k == 0 { 0.0 } else { events[k - 1] };
            let hi = events.get(k).copied().unwrap_or(1.0);
            let s0 = times[piece] + lo * (times[piece + 1] - times[piece]);
            let s1 = times[piece] + hi * (times[piece + 1] - times[piece]);
            tracer.event(
                "audit_disconnect",
                &[("s_lo", TraceValue::F64(s0)), ("s_hi", TraceValue::F64(s1))],
            );
            merge_interval(&mut disconnected_intervals, (s0, s1));
        }
    }
    let global_connectivity = u8::from(disconnected_intervals.is_empty());

    tracer.event(
        "audit_summary",
        &[
            ("robots", TraceValue::U64(n as u64)),
            ("initial_links", TraceValue::U64(initial_links as u64)),
            ("violations", TraceValue::U64(violations.len() as u64)),
            ("stable_link_ratio", TraceValue::F64(stable_link_ratio)),
            (
                "global_connectivity",
                TraceValue::U64(u64::from(global_connectivity)),
            ),
            (
                "connectivity_checks",
                TraceValue::U64(connectivity_checks as u64),
            ),
        ],
    );

    Ok(AuditReport {
        robots: n,
        initial_links,
        preserved_links,
        stable_link_ratio,
        global_connectivity,
        violations,
        disconnected_intervals,
        pieces: rows.len().saturating_sub(1),
        connectivity_checks,
    })
}

fn validate(rows: &[Vec<Point>], times: &[f64], range: f64) -> Result<(), MetricsError> {
    if range.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(MetricsError::NonPositiveRange { range });
    }
    if rows.is_empty() {
        return Err(MetricsError::EmptyTimeline);
    }
    if times.len() != rows.len() {
        return Err(MetricsError::LengthMismatch {
            expected: rows.len(),
            got: times.len(),
        });
    }
    let n = rows[0].len();
    for (k, row) in rows.iter().enumerate() {
        if row.len() != n {
            return Err(MetricsError::RaggedTimeline {
                row: k,
                got: row.len(),
                expected: n,
            });
        }
        if let Some(robot) = row.iter().position(|p| !p.is_finite()) {
            return Err(MetricsError::NonFinitePosition { row: k, robot });
        }
    }
    if let Some(idx) = times
        .windows(2)
        .position(|w| w[1].partial_cmp(&w[0]) != Some(std::cmp::Ordering::Greater))
    {
        return Err(MetricsError::NonMonotonicTimes { index: idx + 1 });
    }
    if times.iter().any(|t| !t.is_finite()) {
        return Err(MetricsError::NonMonotonicTimes { index: 0 });
    }
    Ok(())
}

/// Calls `f(i, j)` (with `i < j`) exactly once for every pair of points
/// within `cutoff` of each other — and possibly for some farther pairs,
/// which the callback must re-filter. Uniform grid with `cutoff`-sized
/// cells: near pairs share a cell or sit in 8-adjacent cells, and each
/// unordered cell pair is enumerated once via a forward
/// half-neighborhood. `O(n + near pairs)` instead of `O(n²)`; iteration
/// order is unspecified.
fn for_each_near_pair(points: &[Point], cutoff: f64, f: &mut impl FnMut(usize, usize)) {
    debug_assert!(cutoff > 0.0 && cutoff.is_finite());
    let inv = 1.0 / cutoff;
    let mut cells: BTreeMap<(i64, i64), Vec<u32>> = BTreeMap::new();
    for (k, p) in points.iter().enumerate() {
        let key = ((p.x * inv).floor() as i64, (p.y * inv).floor() as i64);
        cells.entry(key).or_default().push(k as u32);
    }
    const FWD: [(i64, i64); 4] = [(1, -1), (1, 0), (1, 1), (0, 1)];
    for (&(cx, cy), members) in &cells {
        for (s, &i) in members.iter().enumerate() {
            for &j in &members[s + 1..] {
                f(i.min(j) as usize, i.max(j) as usize);
            }
        }
        for (dx, dy) in FWD {
            if let Some(other) = cells.get(&(cx.saturating_add(dx), cy.saturating_add(dy))) {
                for &i in members {
                    for &j in other {
                        f(i.min(j) as usize, i.max(j) as usize);
                    }
                }
            }
        }
    }
}

/// Offline dynamic connectivity over the interval axis `[k_lo, k_hi]`:
/// an edge whose interval run covers the whole node is unioned once
/// here; the rest are handed to whichever children they overlap. Each
/// leaf is one open interval between consecutive edge-set change
/// events — its index is pushed to `out` when the graph there is
/// disconnected. Leaves are visited left to right, so `out` stays
/// sorted. Unions are rolled back on exit, so each edge costs
/// `O(log E)` unions overall instead of one scan per interval.
fn disconnected_leaves(
    k_lo: usize,
    k_hi: usize,
    spans: &[(u32, u32, u32, u32)],
    uf: &mut RollbackUnionFind,
    out: &mut Vec<usize>,
) {
    let mark = uf.checkpoint();
    if k_lo == k_hi {
        for &(i, j, _, _) in spans {
            uf.union(i as usize, j as usize);
        }
        if uf.num_sets() != 1 {
            out.push(k_lo);
        }
        uf.rollback(mark);
        return;
    }
    let mid = k_lo + (k_hi - k_lo) / 2;
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &(i, j, a, b) in spans {
        if a as usize <= k_lo && k_hi <= b as usize {
            uf.union(i as usize, j as usize);
        } else {
            if a as usize <= mid {
                left.push((i, j, a, b));
            }
            if b as usize > mid {
                right.push((i, j, a, b));
            }
        }
    }
    disconnected_leaves(k_lo, mid, &left, uf, out);
    disconnected_leaves(mid + 1, k_hi, &right, uf, out);
    uf.rollback(mark);
}

/// The first maximal normalized-time interval during which link `(i, j)`
/// is out of range, from the exact per-piece quadratic roots.
fn first_out_interval(
    rows: &[Vec<Point>],
    times: &[f64],
    (i, j): (usize, usize),
    r2: f64,
) -> (f64, f64) {
    let mut start: Option<f64> = None;
    let mut end = times[0];
    for piece in 0..rows.len() - 1 {
        let (a, b) = (&rows[piece], &rows[piece + 1]);
        let u = a[i] - a[j];
        let w = (b[i] - b[j]) - u;
        let (qa, qb, qc) = (w.norm_sq(), u.dot(w), u.norm_sq() - r2);
        // Out-of-range sub-intervals of [0, 1]: where q(τ) > 0. q is
        // convex, so that region is [0, 1] minus the root interval.
        let mut outs: Vec<(f64, f64)> = Vec::new();
        if qa <= 0.0 {
            if qc > 0.0 {
                outs.push((0.0, 1.0));
            }
        } else {
            let disc = qb * qb - qa * qc;
            if disc <= 0.0 {
                if qc > 0.0 {
                    outs.push((0.0, 1.0));
                }
            } else {
                let sq = disc.sqrt();
                let (t1, t2) = ((-qb - sq) / qa, (-qb + sq) / qa);
                if t1 > 0.0 {
                    outs.push((0.0, t1.min(1.0)));
                }
                if t2 < 1.0 {
                    outs.push((t2.max(0.0), 1.0));
                }
            }
        }
        let span = times[piece + 1] - times[piece];
        for (lo, hi) in outs {
            if hi <= lo {
                continue;
            }
            let (s0, s1) = (times[piece] + lo * span, times[piece] + hi * span);
            match start {
                None => {
                    start = Some(s0);
                    end = s1;
                }
                Some(_) if s0 <= end + 1e-12 => end = end.max(s1),
                Some(s) => return (s, end), // gap: first interval complete
            }
        }
        // In-range for the rest of this piece and a violation already
        // found: if the next piece starts in range the interval is over —
        // handled by the gap check above on the next out interval.
    }
    match start {
        Some(s) => (s, end),
        // max_dist > r only at an isolated instant (grazing): degenerate.
        None => (times[0], times[0]),
    }
}

/// Appends `iv` to `list`, merging with the previous interval when they
/// touch (intervals arrive in increasing order).
fn merge_interval(list: &mut Vec<(f64, f64)>, iv: (f64, f64)) {
    if let Some(last) = list.last_mut() {
        if iv.0 <= last.1 + 1e-12 {
            last.1 = last.1.max(iv.1);
            return;
        }
    }
    list.push(iv);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::Polyline;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn near_pair_grid_covers_all_near_pairs_once() {
        // Deterministic scatter; the grid must report every pair within
        // the cutoff (farther extras are allowed) and never repeat one.
        let mut seed = 0xdead_beef_u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        let pts: Vec<Point> = (0..200)
            .map(|_| p(next() * 900.0 - 450.0, next() * 900.0 - 450.0))
            .collect();
        for cutoff in [40.0, 120.0, 2000.0] {
            let mut got: Vec<(usize, usize)> = Vec::new();
            for_each_near_pair(&pts, cutoff, &mut |i, j| {
                assert!(i < j);
                got.push((i, j));
            });
            got.sort_unstable();
            assert!(
                got.windows(2).all(|w| w[0] != w[1]),
                "duplicate pair at cutoff {cutoff}"
            );
            let got: std::collections::HashSet<_> = got.into_iter().collect();
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    if pts[i].distance(pts[j]) <= cutoff {
                        assert!(
                            got.contains(&(i, j)),
                            "missing near pair ({i}, {j}) at cutoff {cutoff}"
                        );
                    }
                }
            }
        }
    }

    /// The grid-pruned scan path (n ≥ 64) must behave exactly like the
    /// dense one: a rigidly translating 70-robot chain certifies, and an
    /// endpoint robot detouring out of range mid-piece is caught as both
    /// a violation and a disconnect.
    #[test]
    fn grid_path_large_swarm_audits_exactly() {
        let n = 70;
        let mut polys: Vec<Polyline> = (0..n)
            .map(|i| {
                let x = i as f64 * 50.0;
                Polyline::new(vec![p(x, 0.0), p(x + 300.0, 40.0)])
            })
            .collect();
        let set = TrajectorySet::new(polys.clone());
        let r = audit_trajectories(&set, 80.0, &Tracer::disabled()).unwrap();
        assert!(r.certified(), "rigid translation must certify");
        assert_eq!(r.initial_links, n - 1);

        // Robot 0 detours far below the chain before rejoining: its only
        // link breaks and it disconnects, invisible at the endpoints.
        polys[0] = Polyline::new(vec![p(0.0, 0.0), p(150.0, -200.0), p(300.0, 40.0)]);
        let set = TrajectorySet::new(polys);
        let r = audit_trajectories(&set, 80.0, &Tracer::disabled()).unwrap();
        assert_eq!(r.global_connectivity, 0);
        assert!(!r.violations.is_empty());
        assert!(!r.disconnected_intervals.is_empty());
    }

    #[test]
    fn stationary_pair_certifies() {
        let set = TrajectorySet::new(vec![
            Polyline::stationary(p(0.0, 0.0)),
            Polyline::stationary(p(50.0, 0.0)),
        ]);
        let r = audit_trajectories(&set, 80.0, &Tracer::disabled()).unwrap();
        assert!(r.certified());
        assert_eq!(r.initial_links, 1);
        assert_eq!(r.preserved_links, 1);
        assert_eq!(r.stable_link_ratio, 1.0);
    }

    /// The regression scenario from the issue: a link that is within
    /// range at **all 11 default sample instants** but bows out of range
    /// between samples. Sampled metrics call it stable; the exact
    /// auditor must not.
    #[test]
    fn link_breaking_between_samples_is_caught() {
        // Robot A parked at the origin; robot B runs x: 76 → 80.2 → 72.4
        // (total arclength 12, so the 80.2 peak sits at s = 4.2/12 =
        // 0.35, strictly between the s = 0.3 and s = 0.4 samples).
        let set = TrajectorySet::new(vec![
            Polyline::stationary(p(0.0, 0.0)),
            Polyline::new(vec![p(76.0, 0.0), p(80.2, 0.0), p(72.4, 0.0)]),
        ]);
        let range = 80.0;

        // Sanity: the default 10-interval sampling sees nothing wrong.
        for k in 0..=10 {
            let s = k as f64 / 10.0;
            let rowa = set.positions_at(s);
            assert!(
                rowa[0].distance(rowa[1]) <= range,
                "sample {k} already out of range — scenario miscalibrated"
            );
        }

        let r = audit_trajectories(&set, range, &Tracer::disabled()).unwrap();
        assert!(!r.certified());
        assert_eq!(r.violations.len(), 1);
        let v = &r.violations[0];
        assert_eq!(v.link, (0, 1));
        assert!((v.max_distance - 80.2).abs() < 1e-9);
        // Exact interval: |76 + 12s| = 80 ⇒ s = 1/3; on the way back
        // |80.2 − 12(s − 0.35)·(7.8/0.65)/…| — endpoints from the roots.
        assert!(
            v.interval.0 > 0.3 && v.interval.0 < 0.35,
            "{:?}",
            v.interval
        );
        assert!(
            v.interval.1 > 0.35 && v.interval.1 < 0.4,
            "{:?}",
            v.interval
        );
        assert!((set.positions_at(v.interval.0)[1].x - 80.0).abs() < 1e-9);
        assert!((set.positions_at(v.interval.1)[1].x - 80.0).abs() < 1e-9);
        // L reflects the broken link exactly.
        assert_eq!(r.preserved_links, 0);
        assert_eq!(r.stable_link_ratio, 0.0);
    }

    #[test]
    fn transient_partition_between_rows_is_caught() {
        // Bridge handover: A and B are 140 apart (never linked). Relay
        // R1 starts between them and slides past B; relay R2 slides in
        // from beyond A to take over the bridge. Both row instants are
        // connected (R1 bridges at s = 0, R2 at s = 1), but mid-piece
        // each relay is within range of only its own side, so the
        // network splits into {A, R2} | {B, R1} — a partition no
        // row-instant check can see.
        let rows = vec![
            vec![p(0.0, 0.0), p(140.0, 0.0), p(70.0, 10.0), p(-70.0, 10.0)],
            vec![p(0.0, 0.0), p(140.0, 0.0), p(210.0, 10.0), p(70.0, 10.0)],
        ];
        for row in &rows {
            assert!(
                UnitDiskGraph::new(row, 80.0).is_connected(),
                "row instants must look fine — scenario miscalibrated"
            );
        }
        let times = vec![0.0, 1.0];
        let r = audit_piecewise(&rows, &times, 80.0, &Tracer::disabled()).unwrap();
        assert_eq!(r.global_connectivity, 0);
        assert_eq!(r.disconnected_intervals.len(), 1);
        let (lo, hi) = r.disconnected_intervals[0];
        // A–R1 breaks at 70 + 140τ = √6300 ⇒ τ ≈ 0.067; B–R2 restores
        // the bridge symmetrically at τ ≈ 0.933.
        let tau = (6300.0f64.sqrt() - 70.0) / 140.0;
        assert!((lo - tau).abs() < 1e-9, "lo = {lo}, expected {tau}");
        assert!((hi - (1.0 - tau)).abs() < 1e-9, "hi = {hi}");
        // Initial links: A–R1, A–R2, B–R1; only A–R1 breaks.
        assert_eq!(r.initial_links, 3);
        assert_eq!(r.preserved_links, 2);
        assert!((r.stable_link_ratio - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rigid_translation_certifies_exactly() {
        let from = [p(0.0, 0.0), p(60.0, 0.0), p(30.0, 50.0)];
        let to: Vec<Point> = from.iter().map(|q| p(q.x + 900.0, q.y + 40.0)).collect();
        let set = TrajectorySet::straight(&from, &to, &[]);
        let r = audit_trajectories(&set, 80.0, &Tracer::disabled()).unwrap();
        assert!(r.certified());
        assert_eq!(r.stable_link_ratio, 1.0);
    }

    #[test]
    fn violation_events_are_traced() {
        let set = TrajectorySet::new(vec![
            Polyline::stationary(p(0.0, 0.0)),
            Polyline::new(vec![p(76.0, 0.0), p(80.2, 0.0), p(72.4, 0.0)]),
        ]);
        let tracer = Tracer::ring(256);
        let r = audit_trajectories(&set, 80.0, &tracer).unwrap();
        assert!(!r.certified());
        let events = tracer.events();
        assert!(events.iter().any(|e| e.name == "audit_violation"));
        let summary = events.iter().find(|e| e.name == "audit_summary").unwrap();
        assert!(summary
            .fields
            .iter()
            .any(|(k, v)| *k == "violations" && *v == TraceValue::U64(1)));
    }

    #[test]
    fn bad_input_is_an_error_not_a_panic() {
        let row = vec![p(0.0, 0.0)];
        assert!(matches!(
            audit_piecewise(std::slice::from_ref(&row), &[0.0], 0.0, &Tracer::disabled()),
            Err(MetricsError::NonPositiveRange { .. })
        ));
        assert!(matches!(
            audit_piecewise(&[], &[], 80.0, &Tracer::disabled()),
            Err(MetricsError::EmptyTimeline)
        ));
        assert!(matches!(
            audit_piecewise(
                &[row.clone(), vec![]],
                &[0.0, 1.0],
                80.0,
                &Tracer::disabled()
            ),
            Err(MetricsError::RaggedTimeline { row: 1, .. })
        ));
        assert!(matches!(
            audit_piecewise(
                &[row.clone(), row.clone()],
                &[0.0],
                80.0,
                &Tracer::disabled()
            ),
            Err(MetricsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            audit_piecewise(&[row.clone(), row], &[0.5, 0.5], 80.0, &Tracer::disabled()),
            Err(MetricsError::NonMonotonicTimes { .. })
        ));
    }

    #[test]
    fn single_row_connectivity() {
        let connected = vec![p(0.0, 0.0), p(50.0, 0.0)];
        let r = audit_piecewise(&[connected], &[0.0], 80.0, &Tracer::disabled()).unwrap();
        assert_eq!(r.global_connectivity, 1);
        let split = vec![p(0.0, 0.0), p(500.0, 0.0)];
        let r = audit_piecewise(&[split], &[0.0], 80.0, &Tracer::disabled()).unwrap();
        assert_eq!(r.global_connectivity, 0);
        assert_eq!(r.disconnected_intervals, vec![(0.0, 0.0)]);
    }
}
