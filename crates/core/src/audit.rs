//! Continuous-time invariant audit: exact link stability and global
//! connectivity over piecewise-linear motion (Definitions 1 and 2).
//!
//! The paper's definitions quantify over **every instant** `t ∈ [0, T]`.
//! For synchronized piecewise-linear motion the squared inter-robot
//! distance on one linear piece is a convex quadratic in the time
//! parameter,
//!
//! ```text
//! d²(τ) = ‖u + τ·w‖² = ‖w‖² τ² + 2(u·w) τ + ‖u‖²,
//! ```
//!
//! (`u` the relative position at the piece start, `w` the relative
//! displacement over the piece), so no sampling is ever needed:
//!
//! * the **maximum** of `d` over a piece is attained at a piece endpoint
//!   (convexity) — a link is stable on `[0, T]` iff it is within range
//!   at every piece breakpoint;
//! * the instants where a pair **crosses** the range `r` are the roots
//!   of `d²(τ) = r²` — the unit-disk edge set only changes at those
//!   roots, so connectivity is certified by checking one instant inside
//!   each open interval between consecutive roots (at a root instant the
//!   edge set is a superset of both one-sided limits, because `d ≤ r` is
//!   a closed condition; a supergraph of a connected graph is
//!   connected).
//!
//! Motion is continuous across rows (a row is both the end of one piece
//! and the start of the next), so the crossing instants of **all**
//! pieces form one global event axis and connectivity is decided by a
//! single offline dynamic-connectivity pass over it — a
//! divide-and-conquer with a rollback union-find whose independent
//! subtrees fan out over [`anr_par`]. The pair scan itself is batched
//! into *epochs* of consecutive pieces: one uniform grid built at the
//! epoch's first row prunes the `O(n²)` pair set for every piece of the
//! epoch (robots move at most the epoch's displacement budget, so the
//! grid stays conservative), positions and per-robot cumulative
//! displacements are laid out as flat robot-major arrays, and each
//! candidate pair walks the epoch with a displacement-bound skip: while
//! the pair's distance is provably farther from `r` than the two robots
//! can close, whole runs of pieces are skipped in `O(log)` without
//! evaluating a single quadratic. All of this is observation-order
//! independent — every parallel path returns byte-identical results at
//! any worker count.
//!
//! [`audit_piecewise`] runs both checks over an explicit breakpoint
//! timeline; [`audit_trajectories`] derives that timeline from a
//! [`TrajectorySet`]'s own polyline waypoints. Violations are reported
//! with the offending link, the exact out-of-range interval, and the
//! maximum distance reached, and are mirrored as `anr-trace` events.

use crate::metrics::MetricsError;
use crate::trajectory::TrajectorySet;
use anr_geom::Point;
use anr_netgraph::{RollbackUnionFind, UnitDiskGraph};
use anr_trace::{TraceValue, Tracer};
use std::collections::BTreeMap;

/// An initial link that left communication range during the transition.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkViolation {
    /// The offending link `(i, j)`, `i < j`.
    pub link: (usize, usize),
    /// First maximal normalized-time interval during which the pair was
    /// out of range (exact roots of `d²(s) = r²`, not samples).
    pub interval: (f64, f64),
    /// Maximum distance the pair reached over the whole transition.
    pub max_distance: f64,
}

/// Result of a continuous-time audit.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Number of robots audited.
    pub robots: usize,
    /// Links of the initial unit-disk graph (denominator of `L`).
    pub initial_links: usize,
    /// Initial links within range at **every** instant.
    pub preserved_links: usize,
    /// Exact total stable link ratio `L` (1.0 when there are no links).
    pub stable_link_ratio: f64,
    /// 1 when the network was connected at every instant, else 0.
    pub global_connectivity: u8,
    /// Every broken initial link, with its exact violation interval.
    pub violations: Vec<LinkViolation>,
    /// Maximal normalized-time intervals during which the network was
    /// disconnected (empty iff `global_connectivity == 1`).
    pub disconnected_intervals: Vec<(f64, f64)>,
    /// Linear motion pieces audited (timeline rows − 1).
    pub pieces: usize,
    /// Connectivity check instants examined: one per open interval
    /// between consecutive edge-set change events on the **global**
    /// event axis (events + 1).
    pub connectivity_checks: usize,
}

impl AuditReport {
    /// True when both invariants held: `C = 1` and no link violations.
    #[must_use]
    pub fn certified(&self) -> bool {
        self.global_connectivity == 1 && self.violations.is_empty()
    }
}

/// Audits a [`TrajectorySet`] continuously over `s ∈ [0, 1]`.
///
/// The breakpoint timeline is the union of every polyline's waypoint
/// instants, so each piece is exactly linear and the audit is exact.
///
/// # Errors
///
/// [`MetricsError`] on empty sets, non-positive range, or non-finite
/// positions.
pub fn audit_trajectories(
    set: &TrajectorySet,
    range: f64,
    tracer: &Tracer,
) -> Result<AuditReport, MetricsError> {
    let times = set.breakpoints();
    let rows: Vec<Vec<Point>> = times.iter().map(|&s| set.positions_at(s)).collect();
    audit_piecewise(&rows, &times, range, tracer)
}

/// Audits an explicit piecewise-linear timeline: `rows[k]` holds every
/// robot's position at normalized time `times[k]`, and every robot moves
/// **linearly** between consecutive rows (rows must therefore include
/// every trajectory breakpoint — see
/// [`TrajectorySet::breakpoints`]).
///
/// Emits `audit_violation` / `audit_disconnect` trace events and a
/// final `audit_summary` event.
///
/// Worker count: [`anr_par::default_workers`]. The result is
/// byte-identical at any worker count (see
/// [`audit_piecewise_with_workers`]).
///
/// # Errors
///
/// [`MetricsError`] on an empty or ragged timeline, mismatched or
/// non-monotonic `times`, non-positive `range`, or non-finite positions.
pub fn audit_piecewise(
    rows: &[Vec<Point>],
    times: &[f64],
    range: f64,
    tracer: &Tracer,
) -> Result<AuditReport, MetricsError> {
    audit_piecewise_with_workers(rows, times, range, 0, tracer)
}

/// [`audit_piecewise`] with an explicit worker count (0 = auto).
///
/// Parallel fan-out happens over three structures — link chunks of the
/// stability maximum, piece epochs of the crossing scan, and subtrees of
/// the offline dynamic-connectivity divide-and-conquer. Each is merged
/// back in deterministic input order, so the report (and every trace
/// event) is byte-identical whatever `workers` is.
///
/// # Errors
///
/// See [`audit_piecewise`].
pub fn audit_piecewise_with_workers(
    rows: &[Vec<Point>],
    times: &[f64],
    range: f64,
    workers: usize,
    tracer: &Tracer,
) -> Result<AuditReport, MetricsError> {
    validate(rows, times, range)?;
    let n = rows[0].len();
    let r2 = range * range;

    let initial = UnitDiskGraph::new(&rows[0], range);
    let links = initial.links();
    let initial_links = links.len();

    let pieces = rows.len() - 1;
    let (t0, t1) = (times[0], times[pieces]);

    if pieces == 0 {
        // Single instant: connectivity of the one row, no motion.
        let mut disconnected_intervals = Vec::new();
        if !initial.is_connected() {
            disconnected_intervals.push((t0, t0));
            tracer.event(
                "audit_disconnect",
                &[("s_lo", TraceValue::F64(t0)), ("s_hi", TraceValue::F64(t0))],
            );
        }
        let stable_link_ratio = 1.0;
        let report = AuditReport {
            robots: n,
            initial_links,
            preserved_links: initial_links,
            stable_link_ratio,
            global_connectivity: u8::from(disconnected_intervals.is_empty()),
            violations: Vec::new(),
            disconnected_intervals,
            pieces: 0,
            connectivity_checks: 1,
        };
        trace_summary(tracer, &report);
        return Ok(report);
    }

    // ------------------------------------------------------------------
    // Struct-of-arrays layout: positions plus a per-robot cumulative
    // *deviation* prefix, robot-major (`arr[i * nrows + r]`). The
    // deviation frame subtracts each piece's mean displacement over all
    // robots: inter-robot distances are invariant under the common
    // drift, so every skip and cutoff bound below only spends budget on
    // how far robots move relative to the formation — for a marching
    // swarm that is far smaller than absolute motion.
    // ------------------------------------------------------------------
    let nrows = pieces + 1;
    let mut px = vec![0.0f64; n * nrows];
    let mut py = vec![0.0f64; n * nrows];
    for (r, row) in rows.iter().enumerate() {
        for (i, p) in row.iter().enumerate() {
            px[i * nrows + r] = p.x;
            py[i * nrows + r] = p.y;
        }
    }
    let inv_n = 1.0 / n as f64;
    let mut mean_dx = vec![0.0f64; pieces];
    let mut mean_dy = vec![0.0f64; pieces];
    for (r, (row, next)) in rows.iter().zip(&rows[1..]).enumerate() {
        let (mut sx, mut sy) = (0.0f64, 0.0f64);
        for (p, q) in row.iter().zip(next) {
            sx += q.x - p.x;
            sy += q.y - p.y;
        }
        mean_dx[r] = sx * inv_n;
        mean_dy[r] = sy * inv_n;
    }
    // `dmax[r]`: the largest single-robot deviation on piece r (drives
    // the epoch budget); `cum`: per-robot deviation prefix (drives the
    // per-pair galloping skip and the discovery cutoffs).
    let mut cum = vec![0.0f64; n * nrows];
    let mut dmax = vec![0.0f64; pieces];
    for i in 0..n {
        let base = i * nrows;
        for r in 1..nrows {
            let dx = px[base + r] - px[base + r - 1] - mean_dx[r - 1];
            let dy = py[base + r] - py[base + r - 1] - mean_dy[r - 1];
            let dev = (dx * dx + dy * dy).sqrt();
            cum[base + r] = cum[base + r - 1] + dev;
            dmax[r - 1] = dmax[r - 1].max(dev);
        }
    }

    // ------------------------------------------------------------------
    // Candidate discovery, batched into epochs of consecutive pieces.
    // One uniform grid per epoch (built at its first row) marks every
    // pair that can come within range during that epoch: a pair must
    // start the epoch within `range + 2·(max per-robot deviation over
    // the epoch)`. The union across epochs (a bit-OR, order-
    // independent) is the full candidate set; pairs never marked are
    // provably never in range. The greedy deviation budget keeps each
    // epoch's cutoff (and so its candidate count) bounded.
    // ------------------------------------------------------------------
    let budget = 0.5 * range;
    let mut epochs: Vec<(usize, usize)> = Vec::new(); // (first piece, piece count)
    {
        let mut k = 0;
        while k < pieces {
            let mut len = 1;
            let mut moved = dmax[k];
            while k + len < pieces && moved + dmax[k + len] <= budget {
                moved += dmax[k + len];
                len += 1;
            }
            epochs.push((k, len));
            k += len;
        }
    }

    let words = (n * n).div_ceil(64);
    let pairs: Vec<(u32, u32)> = if n < 64 {
        (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect()
    } else {
        let sets: Vec<Vec<u64>> = anr_par::par_map(&epochs, workers, |&(k0, len)| {
            discover_epoch(rows, k0, len, range, words, &cum, nrows)
        });
        let mut bits = vec![0u64; words];
        for s in &sets {
            for (w, &v) in bits.iter_mut().zip(s) {
                *w |= v;
            }
        }
        let mut pairs = Vec::new();
        for (wi, &word) in bits.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let idx = wi * 64 + word.trailing_zeros() as usize;
                pairs.push(((idx / n) as u32, (idx % n) as u32));
                word &= word - 1;
            }
        }
        pairs
    };

    // ------------------------------------------------------------------
    // Crossing scan: every candidate pair walks the whole timeline once
    // (position stripes + deviation prefix driving the galloping skip),
    // emitting its maximal in-range spans, its crossing events on the
    // global axis, and — when it is an initial link whose spans fail to
    // cover the timeline — its violation record. Pair chunks are
    // independent; concatenating chunk outputs in order keeps spans and
    // violations sorted by pair.
    // ------------------------------------------------------------------
    let outs: Vec<PairScan> = anr_par::par_chunks(&pairs, 2048, workers, |chunk| {
        let mut walk = PairWalk {
            out: PairScan {
                events: Vec::new(),
                spans: Vec::new(),
                violations: Vec::new(),
            },
            px: &px,
            py: &py,
            cum: &cum,
            times,
            npieces: pieces,
            nrows,
            range,
            r2,
        };
        for &(i, j) in chunk {
            walk.walk(i as usize, j as usize);
        }
        walk.out
    });

    // ------------------------------------------------------------------
    // Global event axis: the edge set changes only at crossing instants
    // (plus exact-at-a-row status flips, which the walker reports
    // explicitly), so one check instant inside each open interval
    // between consecutive events certifies the whole timeline.
    // ------------------------------------------------------------------
    let mut events: Vec<f64> = Vec::new();
    for o in &outs {
        events.extend(o.events.iter().copied().filter(|&e| e > t0 && e < t1));
    }
    events.sort_by(f64::total_cmp);
    events.dedup_by(|x, y| (*x - *y).abs() < 1e-12);

    let mids: Vec<f64> = (0..=events.len())
        .map(|k| {
            let lo = if k == 0 { t0 } else { events[k - 1] };
            let hi = events.get(k).copied().unwrap_or(t1);
            0.5 * (lo + hi)
        })
        .collect();
    let connectivity_checks = mids.len();

    // Maximal in-range spans mapped to interval-index runs.
    let spans: Vec<(u32, u32, u32, u32)> = outs
        .iter()
        .flat_map(|o| o.spans.iter())
        .filter_map(|&(i, j, elo, ehi)| {
            let a = mids.partition_point(|&m| m < elo);
            let b = mids.partition_point(|&m| m <= ehi);
            (a < b).then(|| (i, j, a as u32, (b - 1) as u32))
        })
        .collect();

    let bad = if n > 1 {
        disconnected_leaves_par(n, mids.len(), &spans, workers)
    } else {
        Vec::new()
    };
    let mut disconnected_intervals: Vec<(f64, f64)> = Vec::new();
    for k in bad {
        let lo = if k == 0 { t0 } else { events[k - 1] };
        let hi = events.get(k).copied().unwrap_or(t1);
        merge_interval(&mut disconnected_intervals, (lo, hi));
    }
    for &(lo, hi) in &disconnected_intervals {
        tracer.event(
            "audit_disconnect",
            &[("s_lo", TraceValue::F64(lo)), ("s_hi", TraceValue::F64(hi))],
        );
    }

    // ------------------------------------------------------------------
    // Violations: a violating link is exactly an initial link whose
    // in-range spans fail to cover [t0, t1] (d² is convex per piece, so
    // any excursion beyond range shows up as a span gap). The walker
    // already reported each one with its first out-of-range interval
    // and its row-maximum distance; records are sorted by pair, so the
    // link loop below keeps the initial-graph link order.
    // ------------------------------------------------------------------
    let mut vio: Vec<(u32, u32, f64, f64, f64)> = Vec::new();
    for o in &outs {
        vio.extend(o.violations.iter().copied());
    }
    let mut violations = Vec::new();
    for &(i, j) in &links {
        let Ok(k) = vio.binary_search_by(|v| (v.0 as usize, v.1 as usize).cmp(&(i, j))) else {
            continue;
        };
        let (_, _, lo, hi, max_distance) = vio[k];
        let interval = (lo, hi);
        tracer.event(
            "audit_violation",
            &[
                ("i", TraceValue::U64(i as u64)),
                ("j", TraceValue::U64(j as u64)),
                ("s_lo", TraceValue::F64(interval.0)),
                ("s_hi", TraceValue::F64(interval.1)),
                ("max_distance", TraceValue::F64(max_distance)),
            ],
        );
        violations.push(LinkViolation {
            link: (i, j),
            interval,
            max_distance,
        });
    }
    let preserved_links = initial_links - violations.len();
    let stable_link_ratio = if initial_links == 0 {
        1.0
    } else {
        preserved_links as f64 / initial_links as f64
    };

    let report = AuditReport {
        robots: n,
        initial_links,
        preserved_links,
        stable_link_ratio,
        global_connectivity: u8::from(disconnected_intervals.is_empty()),
        violations,
        disconnected_intervals,
        pieces,
        connectivity_checks,
    };
    trace_summary(tracer, &report);
    Ok(report)
}

fn trace_summary(tracer: &Tracer, report: &AuditReport) {
    tracer.event(
        "audit_summary",
        &[
            ("robots", TraceValue::U64(report.robots as u64)),
            (
                "initial_links",
                TraceValue::U64(report.initial_links as u64),
            ),
            (
                "violations",
                TraceValue::U64(report.violations.len() as u64),
            ),
            (
                "stable_link_ratio",
                TraceValue::F64(report.stable_link_ratio),
            ),
            (
                "global_connectivity",
                TraceValue::U64(u64::from(report.global_connectivity)),
            ),
            (
                "connectivity_checks",
                TraceValue::U64(report.connectivity_checks as u64),
            ),
        ],
    );
}

/// Candidate-pair scan output, all values on the global time axis.
struct PairScan {
    /// Edge-set change instants (crossing roots plus exact-at-a-row
    /// status flips), unsorted, possibly including the timeline bounds.
    events: Vec<f64>,
    /// Maximal closed in-range intervals, grouped by pair and
    /// time-sorted within a pair.
    spans: Vec<(u32, u32, f64, f64)>,
    /// `(i, j, out_lo, out_hi, max_distance)` for every walked pair
    /// that was in range at `times[0]` but not for the whole timeline,
    /// sorted by pair.
    violations: Vec<(u32, u32, f64, f64, f64)>,
}

/// Marks every pair that can come within range during pieces
/// `k0 .. k0 + npieces` in a bitset (`bit i·n + j`): the pair must start
/// the epoch within `range + 2·(max per-robot deviation over the
/// epoch)`, and the uniform grid enumerates exactly those starts.
fn discover_epoch(
    rows: &[Vec<Point>],
    k0: usize,
    npieces: usize,
    range: f64,
    words: usize,
    cum: &[f64],
    nrows: usize,
) -> Vec<u64> {
    let n = rows[0].len();
    let mut move_max = 0.0f64;
    for i in 0..n {
        let base = i * nrows;
        move_max = move_max.max(cum[base + k0 + npieces] - cum[base + k0]);
    }
    let cutoff = range + 2.0 * move_max;
    let mut bits = vec![0u64; words];
    for_each_near_pair(&rows[k0], cutoff, &mut |i, j| {
        let idx = i * n + j;
        bits[idx >> 6] |= 1 << (idx & 63);
    });
    bits
}

/// Walks one candidate pair down the whole timeline.
///
/// Positions and per-robot cumulative displacements are flattened into
/// robot-major arrays (`arr[i * nrows + r]`), so the walk touches two
/// contiguous stripes. It skips runs of pieces in `O(log)` whenever the
/// pair's distance to the range circle exceeds what the two robots'
/// remaining displacement can close.
struct PairWalk<'a> {
    out: PairScan,
    px: &'a [f64],
    py: &'a [f64],
    cum: &'a [f64],
    times: &'a [f64],
    npieces: usize,
    nrows: usize,
    range: f64,
    r2: f64,
}

impl PairWalk<'_> {
    fn emit(&mut self, i: usize, j: usize, s_lo: f64, s_hi: f64) {
        self.out.spans.push((i as u32, j as u32, s_lo, s_hi));
    }

    fn walk(&mut self, i: usize, j: usize) {
        let (bi, bj) = (i * self.nrows, j * self.nrows);
        let start_idx = self.out.spans.len();
        let d2 = {
            let dx = self.px[bi] - self.px[bj];
            let dy = self.py[bi] - self.py[bj];
            dx * dx + dy * dy
        };
        let initial_in = d2 <= self.r2;
        let mut prev_in = initial_in;
        let mut open: Option<f64> = prev_in.then(|| self.times[0]);

        let mut r = 0usize;
        while r < self.npieces {
            let dx = self.px[bi + r] - self.px[bj + r];
            let dy = self.py[bi + r] - self.py[bj + r];
            let dist = (dx * dx + dy * dy).sqrt();
            // Small relative margin so a rounding wobble in the bound
            // can never skip over a genuine grazing crossing.
            let gap = (dist - self.range).abs() - 1e-9 * (dist + self.range);
            if gap > 0.0 {
                // Skip every piece the pair provably cannot cross: their
                // combined displacement bound is monotone, so gallop then
                // bisect for the farthest safe row.
                let c0 = self.cum[bi + r] + self.cum[bj + r];
                if self.cum[bi + r + 1] + self.cum[bj + r + 1] - c0 < gap {
                    let mut q = r + 1;
                    let mut step = 1usize;
                    while q + step <= self.npieces
                        && self.cum[bi + q + step] + self.cum[bj + q + step] - c0 < gap
                    {
                        q += step;
                        step *= 2;
                    }
                    let mut hi = (q + step).min(self.npieces);
                    while q < hi {
                        let m = q + (hi - q).div_ceil(2);
                        if self.cum[bi + m] + self.cum[bj + m] - c0 < gap {
                            q = m;
                        } else {
                            hi = m - 1;
                        }
                    }
                    r = q;
                    continue;
                }
            }

            // Exact quadratic on piece r.
            let ux = dx;
            let uy = dy;
            let wx = (self.px[bi + r + 1] - self.px[bj + r + 1]) - ux;
            let wy = (self.py[bi + r + 1] - self.py[bj + r + 1]) - uy;
            let (qa, qb, qc) = (
                wx * wx + wy * wy,
                ux * wx + uy * wy,
                ux * ux + uy * uy - self.r2,
            );
            let piece_lo = self.times[r];
            let piece_hi = self.times[r + 1];
            let span_w = piece_hi - piece_lo;
            let mut iv: Option<(f64, f64)> = None;
            if qa <= 0.0 {
                if qc <= 0.0 {
                    iv = Some((0.0, 1.0));
                }
            } else {
                let disc = qb * qb - qa * qc;
                if disc <= 0.0 {
                    if qc <= 0.0 {
                        iv = Some((0.0, 1.0));
                    }
                } else {
                    let sq = disc.sqrt();
                    let (root1, root2) = ((-qb - sq) / qa, (-qb + sq) / qa);
                    if root2 > 0.0 && root1 < 1.0 {
                        for root in [root1, root2] {
                            if root > 0.0 && root < 1.0 {
                                self.out.events.push(piece_lo + root * span_w);
                            }
                        }
                        let (lo, hi) = (root1.max(0.0), root2.min(1.0));
                        if hi > lo {
                            iv = Some((lo, hi));
                        }
                    }
                }
            }

            // A status flip exactly at the row instant has no interior
            // root; the global axis still needs the event (the old
            // per-piece interval axis restarted at every row).
            let in_start = matches!(iv, Some((lo, _)) if lo == 0.0);
            if in_start != prev_in {
                self.out.events.push(piece_lo);
                if prev_in {
                    let s0 = open.take().unwrap_or(piece_lo);
                    self.emit(i, j, s0, piece_lo);
                } else {
                    open = Some(piece_lo);
                }
            }
            match iv {
                None => prev_in = false,
                Some((lo, hi)) => {
                    if lo > 0.0 {
                        open = Some(piece_lo + lo * span_w);
                    }
                    if hi < 1.0 {
                        let s0 = open.take().unwrap_or(piece_lo);
                        self.emit(i, j, s0, piece_lo + hi * span_w);
                        prev_in = false;
                    } else {
                        prev_in = true;
                    }
                }
            }
            r += 1;
        }
        if let Some(s0) = open {
            let end = self.times[self.npieces];
            self.emit(i, j, s0, end);
        }

        // An initial link whose spans don't cover the timeline broke:
        // report its first out-of-range interval plus its maximum
        // distance (d is convex per piece, so the max over the rows of
        // the pair's stripes is the exact maximum over all time).
        if initial_in {
            let (t0, t1) = (self.times[0], self.times[self.npieces]);
            let spans = &self.out.spans[start_idx..];
            let fully = spans.len() == 1 && spans[0].2 == t0 && spans[0].3 == t1;
            if !fully {
                let interval = first_out_from_spans(spans, t0, t1);
                let mut m = 0.0f64;
                for r in 0..self.nrows {
                    let dx = self.px[bi + r] - self.px[bj + r];
                    let dy = self.py[bi + r] - self.py[bj + r];
                    m = m.max(dx * dx + dy * dy);
                }
                self.out
                    .violations
                    .push((i as u32, j as u32, interval.0, interval.1, m.sqrt()));
            }
        }
    }
}

/// First maximal out-of-range interval of a link given its in-range
/// spans over `[t0, t1]` (time-sorted): the complement's first run,
/// with in-range gaps ≤ 1e-12 bridged. Degenerate `(t0, t0)` when the
/// link only grazes out of range at isolated instants.
fn first_out_from_spans(in_spans: &[(u32, u32, f64, f64)], t0: f64, t1: f64) -> (f64, f64) {
    let mut outs: Vec<(f64, f64)> = Vec::new();
    let mut cursor = t0;
    for &(_, _, lo, hi) in in_spans {
        if lo > cursor {
            outs.push((cursor, lo));
        }
        cursor = cursor.max(hi);
    }
    if cursor < t1 {
        outs.push((cursor, t1));
    }
    let mut it = outs.into_iter();
    let Some((start, mut end)) = it.next() else {
        return (t0, t0);
    };
    for (lo, hi) in it {
        if lo <= end + 1e-12 {
            end = end.max(hi);
        } else {
            break;
        }
    }
    (start, end)
}

fn validate(rows: &[Vec<Point>], times: &[f64], range: f64) -> Result<(), MetricsError> {
    if range.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(MetricsError::NonPositiveRange { range });
    }
    if rows.is_empty() {
        return Err(MetricsError::EmptyTimeline);
    }
    if times.len() != rows.len() {
        return Err(MetricsError::LengthMismatch {
            expected: rows.len(),
            got: times.len(),
        });
    }
    let n = rows[0].len();
    for (k, row) in rows.iter().enumerate() {
        if row.len() != n {
            return Err(MetricsError::RaggedTimeline {
                row: k,
                got: row.len(),
                expected: n,
            });
        }
        if let Some(robot) = row.iter().position(|p| !p.is_finite()) {
            return Err(MetricsError::NonFinitePosition { row: k, robot });
        }
    }
    if let Some(idx) = times
        .windows(2)
        .position(|w| w[1].partial_cmp(&w[0]) != Some(std::cmp::Ordering::Greater))
    {
        return Err(MetricsError::NonMonotonicTimes { index: idx + 1 });
    }
    if times.iter().any(|t| !t.is_finite()) {
        return Err(MetricsError::NonMonotonicTimes { index: 0 });
    }
    Ok(())
}

/// Calls `f(i, j)` (with `i < j`) exactly once for every pair of points
/// within `cutoff` of each other — and possibly for some farther pairs,
/// which the callback must re-filter. Uniform grid with `cutoff`-sized
/// cells: near pairs share a cell or sit in 8-adjacent cells, and each
/// unordered cell pair is enumerated once via a forward
/// half-neighborhood. `O(n + near pairs)` instead of `O(n²)`; iteration
/// order is unspecified.
fn for_each_near_pair(points: &[Point], cutoff: f64, f: &mut impl FnMut(usize, usize)) {
    debug_assert!(cutoff > 0.0 && cutoff.is_finite());
    let inv = 1.0 / cutoff;
    let mut cells: BTreeMap<(i64, i64), Vec<u32>> = BTreeMap::new();
    for (k, p) in points.iter().enumerate() {
        let key = ((p.x * inv).floor() as i64, (p.y * inv).floor() as i64);
        cells.entry(key).or_default().push(k as u32);
    }
    const FWD: [(i64, i64); 4] = [(1, -1), (1, 0), (1, 1), (0, 1)];
    for (&(cx, cy), members) in &cells {
        for (s, &i) in members.iter().enumerate() {
            for &j in &members[s + 1..] {
                f(i.min(j) as usize, i.max(j) as usize);
            }
        }
        for (dx, dy) in FWD {
            if let Some(other) = cells.get(&(cx.saturating_add(dx), cy.saturating_add(dy))) {
                for &i in members {
                    for &j in other {
                        f(i.min(j) as usize, i.max(j) as usize);
                    }
                }
            }
        }
    }
}

/// Offline dynamic connectivity over the global interval axis, fanned
/// out over [`anr_par`]: the recursion's independent subtrees are cut
/// off at a fixed depth (worker-count independent) into tasks, each
/// carrying the edges that fully cover its subtree (the unions its
/// ancestors would have applied). Each task replays those unions into a
/// fresh rollback union-find and runs the serial recursion; leaf
/// indices concatenate back in axis order.
fn disconnected_leaves_par(
    n: usize,
    num_leaves: usize,
    spans: &[(u32, u32, u32, u32)],
    workers: usize,
) -> Vec<usize> {
    struct Task {
        k_lo: usize,
        k_hi: usize,
        spans: Vec<(u32, u32, u32, u32)>,
        path: Vec<(u32, u32)>,
    }
    fn split(
        k_lo: usize,
        k_hi: usize,
        spans: Vec<(u32, u32, u32, u32)>,
        path: Vec<(u32, u32)>,
        depth: usize,
        uf: &mut RollbackUnionFind,
        tasks: &mut Vec<Task>,
    ) {
        if depth == 0 || k_lo == k_hi {
            tasks.push(Task {
                k_lo,
                k_hi,
                spans,
                path,
            });
            return;
        }
        let mark = uf.checkpoint();
        let mid = k_lo + (k_hi - k_lo) / 2;
        let mut covering = path;
        let mut left = Vec::new();
        let mut right = Vec::new();
        for &(i, j, a, b) in &spans {
            if a as usize <= k_lo && k_hi <= b as usize {
                covering.push((i, j));
                uf.union(i as usize, j as usize);
            } else {
                if a as usize <= mid {
                    left.push((i, j, a, b));
                }
                if b as usize > mid {
                    right.push((i, j, a, b));
                }
            }
        }
        // The covering edges alone already connect the graph: every
        // leaf below only gains edges, so the whole subtree is clean.
        if uf.num_sets() == 1 {
            uf.rollback(mark);
            return;
        }
        split(k_lo, mid, left, covering.clone(), depth - 1, uf, tasks);
        split(mid + 1, k_hi, right, covering, depth - 1, uf, tasks);
        uf.rollback(mark);
    }

    let mut tasks = Vec::new();
    let depth = if num_leaves >= 64 { 4 } else { 0 };
    let mut uf0 = RollbackUnionFind::new(n);
    split(
        0,
        num_leaves - 1,
        spans.to_vec(),
        Vec::new(),
        depth,
        &mut uf0,
        &mut tasks,
    );
    let results = anr_par::par_map(&tasks, workers, |t| {
        let mut uf = RollbackUnionFind::new(n);
        for &(i, j) in &t.path {
            uf.union(i as usize, j as usize);
        }
        let mut out = Vec::new();
        disconnected_leaves(t.k_lo, t.k_hi, &t.spans, &mut uf, &mut out);
        out
    });
    results.into_iter().flatten().collect()
}

/// Offline dynamic connectivity over the interval axis `[k_lo, k_hi]`:
/// an edge whose interval run covers the whole node is unioned once
/// here; the rest are handed to whichever children they overlap. Each
/// leaf is one open interval between consecutive edge-set change
/// events — its index is pushed to `out` when the graph there is
/// disconnected. Leaves are visited left to right, so `out` stays
/// sorted. Unions are rolled back on exit, so each edge costs
/// `O(log E)` unions overall instead of one scan per interval.
fn disconnected_leaves(
    k_lo: usize,
    k_hi: usize,
    spans: &[(u32, u32, u32, u32)],
    uf: &mut RollbackUnionFind,
    out: &mut Vec<usize>,
) {
    let mark = uf.checkpoint();
    if k_lo == k_hi {
        for &(i, j, _, _) in spans {
            uf.union(i as usize, j as usize);
        }
        if uf.num_sets() != 1 {
            out.push(k_lo);
        }
        uf.rollback(mark);
        return;
    }
    let mid = k_lo + (k_hi - k_lo) / 2;
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &(i, j, a, b) in spans {
        if a as usize <= k_lo && k_hi <= b as usize {
            uf.union(i as usize, j as usize);
        } else {
            if a as usize <= mid {
                left.push((i, j, a, b));
            }
            if b as usize > mid {
                right.push((i, j, a, b));
            }
        }
    }
    // Covering edges alone connect the graph ⇒ every leaf below is
    // connected; prune the subtree.
    if uf.num_sets() == 1 {
        uf.rollback(mark);
        return;
    }
    disconnected_leaves(k_lo, mid, &left, uf, out);
    disconnected_leaves(mid + 1, k_hi, &right, uf, out);
    uf.rollback(mark);
}

/// Appends `iv` to `list`, merging with the previous interval when they
/// touch (intervals arrive in increasing order).
fn merge_interval(list: &mut Vec<(f64, f64)>, iv: (f64, f64)) {
    if let Some(last) = list.last_mut() {
        if iv.0 <= last.1 + 1e-12 {
            last.1 = last.1.max(iv.1);
            return;
        }
    }
    list.push(iv);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::Polyline;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn near_pair_grid_covers_all_near_pairs_once() {
        // Deterministic scatter; the grid must report every pair within
        // the cutoff (farther extras are allowed) and never repeat one.
        let mut seed = 0xdead_beef_u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        let pts: Vec<Point> = (0..200)
            .map(|_| p(next() * 900.0 - 450.0, next() * 900.0 - 450.0))
            .collect();
        for cutoff in [40.0, 120.0, 2000.0] {
            let mut got: Vec<(usize, usize)> = Vec::new();
            for_each_near_pair(&pts, cutoff, &mut |i, j| {
                assert!(i < j);
                got.push((i, j));
            });
            got.sort_unstable();
            assert!(
                got.windows(2).all(|w| w[0] != w[1]),
                "duplicate pair at cutoff {cutoff}"
            );
            let got: std::collections::HashSet<_> = got.into_iter().collect();
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    if pts[i].distance(pts[j]) <= cutoff {
                        assert!(
                            got.contains(&(i, j)),
                            "missing near pair ({i}, {j}) at cutoff {cutoff}"
                        );
                    }
                }
            }
        }
    }

    /// The grid-pruned scan path (n ≥ 64) must behave exactly like the
    /// dense one: a rigidly translating 70-robot chain certifies, and an
    /// endpoint robot detouring out of range mid-piece is caught as both
    /// a violation and a disconnect.
    #[test]
    fn grid_path_large_swarm_audits_exactly() {
        let n = 70;
        let mut polys: Vec<Polyline> = (0..n)
            .map(|i| {
                let x = i as f64 * 50.0;
                Polyline::new(vec![p(x, 0.0), p(x + 300.0, 40.0)])
            })
            .collect();
        let set = TrajectorySet::new(polys.clone());
        let r = audit_trajectories(&set, 80.0, &Tracer::disabled()).unwrap();
        assert!(r.certified(), "rigid translation must certify");
        assert_eq!(r.initial_links, n - 1);

        // Robot 0 detours far below the chain before rejoining: its only
        // link breaks and it disconnects, invisible at the endpoints.
        polys[0] = Polyline::new(vec![p(0.0, 0.0), p(150.0, -200.0), p(300.0, 40.0)]);
        let set = TrajectorySet::new(polys);
        let r = audit_trajectories(&set, 80.0, &Tracer::disabled()).unwrap();
        assert_eq!(r.global_connectivity, 0);
        assert!(!r.violations.is_empty());
        assert!(!r.disconnected_intervals.is_empty());
    }

    #[test]
    fn stationary_pair_certifies() {
        let set = TrajectorySet::new(vec![
            Polyline::stationary(p(0.0, 0.0)),
            Polyline::stationary(p(50.0, 0.0)),
        ]);
        let r = audit_trajectories(&set, 80.0, &Tracer::disabled()).unwrap();
        assert!(r.certified());
        assert_eq!(r.initial_links, 1);
        assert_eq!(r.preserved_links, 1);
        assert_eq!(r.stable_link_ratio, 1.0);
    }

    /// The regression scenario from the issue: a link that is within
    /// range at **all 11 default sample instants** but bows out of range
    /// between samples. Sampled metrics call it stable; the exact
    /// auditor must not.
    #[test]
    fn link_breaking_between_samples_is_caught() {
        // Robot A parked at the origin; robot B runs x: 76 → 80.2 → 72.4
        // (total arclength 12, so the 80.2 peak sits at s = 4.2/12 =
        // 0.35, strictly between the s = 0.3 and s = 0.4 samples).
        let set = TrajectorySet::new(vec![
            Polyline::stationary(p(0.0, 0.0)),
            Polyline::new(vec![p(76.0, 0.0), p(80.2, 0.0), p(72.4, 0.0)]),
        ]);
        let range = 80.0;

        // Sanity: the default 10-interval sampling sees nothing wrong.
        for k in 0..=10 {
            let s = k as f64 / 10.0;
            let rowa = set.positions_at(s);
            assert!(
                rowa[0].distance(rowa[1]) <= range,
                "sample {k} already out of range — scenario miscalibrated"
            );
        }

        let r = audit_trajectories(&set, range, &Tracer::disabled()).unwrap();
        assert!(!r.certified());
        assert_eq!(r.violations.len(), 1);
        let v = &r.violations[0];
        assert_eq!(v.link, (0, 1));
        assert!((v.max_distance - 80.2).abs() < 1e-9);
        // Exact interval: |76 + 12s| = 80 ⇒ s = 1/3; on the way back
        // |80.2 − 12(s − 0.35)·(7.8/0.65)/…| — endpoints from the roots.
        assert!(
            v.interval.0 > 0.3 && v.interval.0 < 0.35,
            "{:?}",
            v.interval
        );
        assert!(
            v.interval.1 > 0.35 && v.interval.1 < 0.4,
            "{:?}",
            v.interval
        );
        assert!((set.positions_at(v.interval.0)[1].x - 80.0).abs() < 1e-9);
        assert!((set.positions_at(v.interval.1)[1].x - 80.0).abs() < 1e-9);
        // L reflects the broken link exactly.
        assert_eq!(r.preserved_links, 0);
        assert_eq!(r.stable_link_ratio, 0.0);
    }

    #[test]
    fn transient_partition_between_rows_is_caught() {
        // Bridge handover: A and B are 140 apart (never linked). Relay
        // R1 starts between them and slides past B; relay R2 slides in
        // from beyond A to take over the bridge. Both row instants are
        // connected (R1 bridges at s = 0, R2 at s = 1), but mid-piece
        // each relay is within range of only its own side, so the
        // network splits into {A, R2} | {B, R1} — a partition no
        // row-instant check can see.
        let rows = vec![
            vec![p(0.0, 0.0), p(140.0, 0.0), p(70.0, 10.0), p(-70.0, 10.0)],
            vec![p(0.0, 0.0), p(140.0, 0.0), p(210.0, 10.0), p(70.0, 10.0)],
        ];
        for row in &rows {
            assert!(
                UnitDiskGraph::new(row, 80.0).is_connected(),
                "row instants must look fine — scenario miscalibrated"
            );
        }
        let times = vec![0.0, 1.0];
        let r = audit_piecewise(&rows, &times, 80.0, &Tracer::disabled()).unwrap();
        assert_eq!(r.global_connectivity, 0);
        assert_eq!(r.disconnected_intervals.len(), 1);
        let (lo, hi) = r.disconnected_intervals[0];
        // A–R1 breaks at 70 + 140τ = √6300 ⇒ τ ≈ 0.067; B–R2 restores
        // the bridge symmetrically at τ ≈ 0.933.
        let tau = (6300.0f64.sqrt() - 70.0) / 140.0;
        assert!((lo - tau).abs() < 1e-9, "lo = {lo}, expected {tau}");
        assert!((hi - (1.0 - tau)).abs() < 1e-9, "hi = {hi}");
        // Initial links: A–R1, A–R2, B–R1; only A–R1 breaks.
        assert_eq!(r.initial_links, 3);
        assert_eq!(r.preserved_links, 2);
        assert!((r.stable_link_ratio - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rigid_translation_certifies_exactly() {
        let from = [p(0.0, 0.0), p(60.0, 0.0), p(30.0, 50.0)];
        let to: Vec<Point> = from.iter().map(|q| p(q.x + 900.0, q.y + 40.0)).collect();
        let set = TrajectorySet::straight(&from, &to, &[]);
        let r = audit_trajectories(&set, 80.0, &Tracer::disabled()).unwrap();
        assert!(r.certified());
        assert_eq!(r.stable_link_ratio, 1.0);
    }

    #[test]
    fn violation_events_are_traced() {
        let set = TrajectorySet::new(vec![
            Polyline::stationary(p(0.0, 0.0)),
            Polyline::new(vec![p(76.0, 0.0), p(80.2, 0.0), p(72.4, 0.0)]),
        ]);
        let tracer = Tracer::ring(256);
        let r = audit_trajectories(&set, 80.0, &tracer).unwrap();
        assert!(!r.certified());
        let events = tracer.events();
        assert!(events.iter().any(|e| e.name == "audit_violation"));
        let summary = events.iter().find(|e| e.name == "audit_summary").unwrap();
        assert!(summary
            .fields
            .iter()
            .any(|(k, v)| *k == "violations" && *v == TraceValue::U64(1)));
    }

    #[test]
    fn bad_input_is_an_error_not_a_panic() {
        let row = vec![p(0.0, 0.0)];
        assert!(matches!(
            audit_piecewise(std::slice::from_ref(&row), &[0.0], 0.0, &Tracer::disabled()),
            Err(MetricsError::NonPositiveRange { .. })
        ));
        assert!(matches!(
            audit_piecewise(&[], &[], 80.0, &Tracer::disabled()),
            Err(MetricsError::EmptyTimeline)
        ));
        assert!(matches!(
            audit_piecewise(
                &[row.clone(), vec![]],
                &[0.0, 1.0],
                80.0,
                &Tracer::disabled()
            ),
            Err(MetricsError::RaggedTimeline { row: 1, .. })
        ));
        assert!(matches!(
            audit_piecewise(
                &[row.clone(), row.clone()],
                &[0.0],
                80.0,
                &Tracer::disabled()
            ),
            Err(MetricsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            audit_piecewise(&[row.clone(), row], &[0.5, 0.5], 80.0, &Tracer::disabled()),
            Err(MetricsError::NonMonotonicTimes { .. })
        ));
    }

    #[test]
    fn single_row_connectivity() {
        let connected = vec![p(0.0, 0.0), p(50.0, 0.0)];
        let r = audit_piecewise(&[connected], &[0.0], 80.0, &Tracer::disabled()).unwrap();
        assert_eq!(r.global_connectivity, 1);
        let split = vec![p(0.0, 0.0), p(500.0, 0.0)];
        let r = audit_piecewise(&[split], &[0.0], 80.0, &Tracer::disabled()).unwrap();
        assert_eq!(r.global_connectivity, 0);
        assert_eq!(r.disconnected_intervals, vec![(0.0, 0.0)]);
    }

    /// The parallel fan-out must be byte-identical at every worker
    /// count: same violations, same intervals, same counts.
    #[test]
    fn workers_do_not_change_the_report() {
        // A 80-robot chain with several detouring robots, many pieces.
        let n = 80;
        let polys: Vec<Polyline> = (0..n)
            .map(|i| {
                let x = i as f64 * 50.0;
                if i % 11 == 3 {
                    Polyline::new(vec![
                        p(x, 0.0),
                        p(x + 90.0, -160.0),
                        p(x + 180.0, 30.0),
                        p(x + 300.0, 40.0),
                    ])
                } else {
                    Polyline::new(vec![p(x, 0.0), p(x + 150.0, 20.0), p(x + 300.0, 40.0)])
                }
            })
            .collect();
        let set = TrajectorySet::new(polys);
        let times = set.sample_times_with_breakpoints(40);
        let rows = set.sample_at(&times);
        let reference =
            audit_piecewise_with_workers(&rows, &times, 80.0, 1, &Tracer::disabled()).unwrap();
        for workers in [2, 3, 8] {
            let r = audit_piecewise_with_workers(&rows, &times, 80.0, workers, &Tracer::disabled())
                .unwrap();
            assert_eq!(r, reference, "workers = {workers} diverged");
        }
    }

    /// A status flip exactly at a row instant (the peak of a detour
    /// touching the range circle at a breakpoint) must still be audited
    /// exactly — the global event axis gets an explicit event there.
    #[test]
    fn exact_breakpoint_crossing_is_an_event() {
        // B sits exactly at range 80 at its middle waypoint, then moves
        // out to 90 before coming back: out-of-range strictly between
        // the middle rows.
        let rows = vec![
            vec![p(0.0, 0.0), p(70.0, 0.0)],
            vec![p(0.0, 0.0), p(80.0, 0.0)],
            vec![p(0.0, 0.0), p(90.0, 0.0)],
            vec![p(0.0, 0.0), p(80.0, 0.0)],
            vec![p(0.0, 0.0), p(70.0, 0.0)],
        ];
        let times = vec![0.0, 0.25, 0.5, 0.75, 1.0];
        let r = audit_piecewise(&rows, &times, 80.0, &Tracer::disabled()).unwrap();
        assert_eq!(r.global_connectivity, 0);
        assert_eq!(r.violations.len(), 1);
        let (lo, hi) = r.violations[0].interval;
        assert!((lo - 0.25).abs() < 1e-12, "lo = {lo}");
        assert!((hi - 0.75).abs() < 1e-12, "hi = {hi}");
        assert_eq!(r.disconnected_intervals.len(), 1);
        let (dlo, dhi) = r.disconnected_intervals[0];
        assert!((dlo - 0.25).abs() < 1e-12 && (dhi - 0.75).abs() < 1e-12);
    }
}
