//! The paper's two comparison methods (Sec. IV): direct translation and
//! the pure Hungarian assignment. Both assume the optimal coverage
//! positions in `M2` were computed before the transition.

use crate::{
    evaluate_timeline, optimal_coverage_positions, MarchConfig, MarchError, MarchOutcome,
    MarchProblem, RepairReport, TrajectorySet,
};
use anr_assign::{euclidean_costs, hungarian};
use anr_geom::Point;

/// Direct translation: the robots rigidly translate by the vector
/// between the two FoI centroids, then adjust to the optimal coverage
/// positions with a Hungarian assignment.
///
/// The rigid leg preserves every link perfectly; all breakage happens in
/// the adjustment leg, whose size depends on how similar the two FoI
/// shapes are — the effect the paper measures in scenarios 1–7.
///
/// # Errors
///
/// [`MarchError::TooFewRobots`] when `M2` cannot fit the swarm, plus
/// assignment errors.
pub fn direct_translation(
    problem: &MarchProblem,
    config: &MarchConfig,
) -> Result<MarchOutcome, MarchError> {
    let n = problem.num_robots();
    let coverage =
        optimal_coverage_positions(&problem.m2, n).ok_or(MarchError::TooFewRobots { got: n })?;

    let shift = problem.m2.centroid() - problem.m1.centroid();
    let translated: Vec<Point> = problem.positions.iter().map(|&p| p + shift).collect();

    // Hungarian assignment from the translated positions to the optimal
    // coverage positions.
    let costs = euclidean_costs(&translated, &coverage)?;
    let assignment = hungarian(&costs);
    let finals: Vec<Point> = (0..n).map(|i| coverage[assignment.target_of(i)]).collect();

    let obstacles = problem.obstacles();
    // Two legs: the rigid translation, then the assignment adjustment.
    // Waypoints concatenate so the timeline sampling covers both.
    let paths: Vec<crate::Polyline> = (0..n)
        .map(|i| {
            let mut wps =
                crate::route_around_obstacles(problem.positions[i], translated[i], &obstacles);
            let leg2 = crate::route_around_obstacles(translated[i], finals[i], &obstacles);
            wps.extend(leg2.into_iter().skip(1));
            crate::Polyline::new(wps)
        })
        .collect();
    let transition = TrajectorySet::new(paths);
    let times = transition.sample_times_with_breakpoints(config.time_samples);
    let timeline = transition.sample_at(&times);
    let total_distance = transition.total_length();
    let metrics = evaluate_timeline(&timeline, problem.range, total_distance)?;

    Ok(MarchOutcome {
        initial: problem.positions.clone(),
        mapped: translated,
        final_positions: finals,
        rotation: 0.0,
        transition,
        timeline,
        metrics,
        repair: RepairReport::default(),
        lloyd_iterations: 0,
    })
}

/// Pure Hungarian method: the minimum-total-moving-distance assignment
/// from the `M1` positions straight to the optimal coverage positions in
/// `M2` — the paper's lower bound on `D` ("should achieve the minimum
/// total moving distance among all possible methods", Sec. IV).
///
/// # Errors
///
/// [`MarchError::TooFewRobots`] when `M2` cannot fit the swarm, plus
/// assignment errors.
pub fn hungarian_direct(
    problem: &MarchProblem,
    config: &MarchConfig,
) -> Result<MarchOutcome, MarchError> {
    let n = problem.num_robots();
    let coverage =
        optimal_coverage_positions(&problem.m2, n).ok_or(MarchError::TooFewRobots { got: n })?;

    let costs = euclidean_costs(&problem.positions, &coverage)?;
    let assignment = hungarian(&costs);
    let finals: Vec<Point> = (0..n).map(|i| coverage[assignment.target_of(i)]).collect();

    let transition = TrajectorySet::straight(&problem.positions, &finals, &problem.obstacles());
    let times = transition.sample_times_with_breakpoints(config.time_samples);
    let timeline = transition.sample_at(&times);
    let total_distance = transition.total_length();
    let metrics = evaluate_timeline(&timeline, problem.range, total_distance)?;

    Ok(MarchOutcome {
        initial: problem.positions.clone(),
        mapped: finals.clone(),
        final_positions: finals,
        rotation: 0.0,
        transition,
        timeline,
        metrics,
        repair: RepairReport::default(),
        lloyd_iterations: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anr_geom::{Polygon, PolygonWithHoles};

    fn square_region(side: f64, origin: Point) -> PolygonWithHoles {
        PolygonWithHoles::without_holes(Polygon::rectangle(origin, side, side))
    }

    fn problem(separation: f64) -> MarchProblem {
        let m1 = square_region(300.0, Point::ORIGIN);
        let m2 = square_region(300.0, Point::new(separation, 0.0));
        MarchProblem::with_lattice_deployment(m1, m2, 36, 80.0).unwrap()
    }

    #[test]
    fn hungarian_is_cheapest() {
        let pr = problem(800.0);
        let cfg = MarchConfig::default();
        let h = hungarian_direct(&pr, &cfg).unwrap();
        let d = direct_translation(&pr, &cfg).unwrap();
        assert!(
            h.metrics.total_distance <= d.metrics.total_distance + 1e-6,
            "hungarian {} vs direct {}",
            h.metrics.total_distance,
            d.metrics.total_distance
        );
    }

    #[test]
    fn direct_translation_identical_shapes_preserves_most_links() {
        // Same-shape FoIs: the Hungarian touch-up is small, so L is high.
        let pr = problem(900.0);
        let cfg = MarchConfig::default();
        let d = direct_translation(&pr, &cfg).unwrap();
        assert!(
            d.metrics.stable_link_ratio > 0.6,
            "L = {}",
            d.metrics.stable_link_ratio
        );
    }

    #[test]
    fn hungarian_breaks_links_on_distant_transition() {
        // The min-distance matching reshuffles robots; links break.
        let pr = problem(700.0);
        let cfg = MarchConfig::default();
        let h = hungarian_direct(&pr, &cfg).unwrap();
        assert!(
            h.metrics.stable_link_ratio < 1.0,
            "L = {}",
            h.metrics.stable_link_ratio
        );
    }

    #[test]
    fn both_end_at_coverage_positions() {
        let pr = problem(800.0);
        let cfg = MarchConfig::default();
        let h = hungarian_direct(&pr, &cfg).unwrap();
        let d = direct_translation(&pr, &cfg).unwrap();
        // Identical final position sets (different per-robot matching).
        let mut hf: Vec<(i64, i64)> = h
            .final_positions
            .iter()
            .map(|p| ((p.x * 100.0) as i64, (p.y * 100.0) as i64))
            .collect();
        let mut df: Vec<(i64, i64)> = d
            .final_positions
            .iter()
            .map(|p| ((p.x * 100.0) as i64, (p.y * 100.0) as i64))
            .collect();
        hf.sort_unstable();
        df.sort_unstable();
        assert_eq!(hf, df);
        for q in &h.final_positions {
            assert!(pr.m2.contains(*q));
        }
    }

    #[test]
    fn rigid_leg_of_direct_translation_is_lossless() {
        // Sample only the first leg (before the Hungarian touch-up):
        // mapped == translated positions preserve all links.
        let pr = problem(1200.0);
        let cfg = MarchConfig::default();
        let d = direct_translation(&pr, &cfg).unwrap();
        let initial = anr_netgraph::UnitDiskGraph::new(&pr.positions, pr.range);
        let after = anr_netgraph::UnitDiskGraph::new(&d.mapped, pr.range);
        assert_eq!(initial.num_links(), after.num_links());
    }
}
