//! Mid-transition replanning after robot failures.
//!
//! The paper's introduction motivates global connectivity with exactly
//! this situation: "an unexpected event … may happen during the
//! relocation. As a result, the ANRs must cooperatively determine how to
//! adapt to the event. If an ANR is isolated at this time, it may be
//! excluded from the new plan and thus become permanently lost."
//!
//! [`replan_after_failure`] plays that scenario out: freeze the march at
//! a fraction of the transition, remove a set of failed robots, verify
//! the survivors are still one network (they are, whenever the original
//! plan maintained `C = 1` and the failures don't hit articulation
//! robots), and compute a fresh marching plan for the survivors from
//! their mid-transition positions.

use crate::{march, MarchConfig, MarchError, MarchOutcome, MarchProblem, Method};
use anr_geom::{Point, PolygonWithHoles};
use anr_netgraph::UnitDiskGraph;

/// The outcome of a failure-and-replan experiment.
#[derive(Debug, Clone)]
pub struct ReplanOutcome {
    /// Positions at the failure instant (all robots, before removal).
    pub at_failure: Vec<Point>,
    /// Indices (into the original swarm) of the surviving robots.
    pub survivors: Vec<usize>,
    /// Whether the survivors were still one connected network at the
    /// failure instant — the property the paper's `C = 1` guarantee is
    /// meant to protect.
    pub survivors_connected: bool,
    /// The fresh plan computed for the survivors.
    pub plan: MarchOutcome,
}

/// Freezes `outcome` at `time_fraction ∈ [0, 1]` of its transition leg,
/// removes the `failed` robots, and computes a new plan from the
/// survivors' positions to the target FoI.
///
/// The new problem reuses the original `M2` (and both FoIs' obstacles);
/// `M1` is kept for obstacle purposes only — the survivors start from
/// their mid-transition positions, not from a FoI deployment.
///
/// # Errors
///
/// * [`MarchError::TooFewRobots`] when fewer than 3 robots survive.
/// * [`MarchError::DisconnectedDeployment`] when the survivors are not
///   one network at the failure instant (the situation the paper calls
///   "permanently lost" — surfaced as an error so callers can count it).
/// * Any pipeline error from the fresh plan.
///
/// # Panics
///
/// Panics when `time_fraction` is not in `[0, 1]`.
pub fn replan_after_failure(
    problem: &MarchProblem,
    outcome: &MarchOutcome,
    time_fraction: f64,
    failed: &[usize],
    method: Method,
    config: &MarchConfig,
) -> Result<ReplanOutcome, MarchError> {
    assert!(
        (0.0..=1.0).contains(&time_fraction),
        "time fraction must be in [0, 1]"
    );
    let at_failure: Vec<Point> = outcome
        .transition
        .paths()
        .iter()
        .map(|p| p.position_at(time_fraction))
        .collect();

    let survivors: Vec<usize> = (0..at_failure.len())
        .filter(|i| !failed.contains(i))
        .collect();
    if survivors.len() < 3 {
        return Err(MarchError::TooFewRobots {
            got: survivors.len(),
        });
    }
    let survivor_positions: Vec<Point> = survivors.iter().map(|&i| at_failure[i]).collect();
    let survivors_connected = UnitDiskGraph::new(&survivor_positions, problem.range).is_connected();
    if !survivors_connected {
        let components = UnitDiskGraph::new(&survivor_positions, problem.range)
            .connected_components()
            .len();
        return Err(MarchError::DisconnectedDeployment { components });
    }

    // Fresh plan from the frozen positions. M1 is only consulted for its
    // holes (obstacle avoidance), so passing the original M1 keeps the
    // obstacle set intact even though the survivors are outside it.
    let new_problem = MarchProblem::new(
        problem.m1.clone(),
        problem.m2.clone(),
        survivor_positions,
        problem.range,
    )?;
    let plan = march(&new_problem, method, config)?;

    Ok(ReplanOutcome {
        at_failure,
        survivors,
        survivors_connected: true,
        plan,
    })
}

/// Convenience wrapper: fail every robot in `failed` at the midpoint of
/// the transition and replan with method (a).
///
/// # Errors
///
/// See [`replan_after_failure`].
pub fn replan_midway(
    problem: &MarchProblem,
    outcome: &MarchOutcome,
    failed: &[usize],
) -> Result<ReplanOutcome, MarchError> {
    replan_after_failure(
        problem,
        outcome,
        0.5,
        failed,
        Method::MaxStableLinks,
        &MarchConfig::default(),
    )
}

/// Keeps the target FoI reachable for a shrunken swarm: `M2` scaled so
/// the per-robot area stays what it was for the full swarm. Useful when
/// many robots fail and full coverage of the original `M2` is no longer
/// possible at `r_c ≥ √3·r_s`.
///
/// Returns `None` when `survivors == 0`.
pub fn shrink_target_for(
    m2: &PolygonWithHoles,
    original_robots: usize,
    survivors: usize,
) -> Option<PolygonWithHoles> {
    if survivors == 0 || original_robots == 0 {
        return None;
    }
    if survivors >= original_robots {
        return Some(m2.clone());
    }
    let factor = (survivors as f64 / original_robots as f64).sqrt();
    let c = m2.centroid();
    let outer = m2.outer().scaled_about(c, factor);
    let holes: Vec<_> = m2
        .holes()
        .iter()
        .map(|h| h.scaled_about(c, factor))
        .collect();
    PolygonWithHoles::new(outer, holes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anr_geom::Polygon;

    fn square(side: f64, origin: Point) -> PolygonWithHoles {
        PolygonWithHoles::without_holes(Polygon::rectangle(origin, side, side))
    }

    fn setup() -> (MarchProblem, MarchOutcome) {
        let m1 = square(300.0, Point::ORIGIN);
        let m2 = square(300.0, Point::new(900.0, 0.0));
        let problem = MarchProblem::with_lattice_deployment(m1, m2, 36, 80.0).unwrap();
        let outcome = march(&problem, Method::MaxStableLinks, &MarchConfig::default()).unwrap();
        (problem, outcome)
    }

    #[test]
    fn replan_after_losing_two_robots() {
        let (problem, outcome) = setup();
        let r = replan_midway(&problem, &outcome, &[3, 17]).unwrap();
        assert!(r.survivors_connected);
        assert_eq!(r.survivors.len(), 34);
        assert_eq!(r.plan.metrics.global_connectivity, 1);
        // Survivors end inside (or within metres of) M2 — robots whose
        // targets were parallel-shifted by the repair may finish just
        // outside the boundary before a longer coverage refinement would
        // pull them in.
        for q in &r.plan.final_positions {
            assert!(
                problem.m2.contains(*q) || problem.m2.outer().distance_to_boundary(*q) < 10.0,
                "robot far outside M2 at {q}"
            );
        }
    }

    #[test]
    fn failure_positions_interpolate_the_transition() {
        let (problem, outcome) = setup();
        let r = replan_after_failure(
            &problem,
            &outcome,
            0.0,
            &[],
            Method::MaxStableLinks,
            &MarchConfig::default(),
        )
        .unwrap();
        // At t = 0 the frozen positions are the initial deployment.
        for (a, b) in r.at_failure.iter().zip(&problem.positions) {
            assert!(a.distance(*b) < 1e-9);
        }
    }

    #[test]
    fn too_many_failures_rejected() {
        let (problem, outcome) = setup();
        let all: Vec<usize> = (0..35).collect();
        assert!(matches!(
            replan_midway(&problem, &outcome, &all),
            Err(MarchError::TooFewRobots { got: 1 })
        ));
    }

    #[test]
    fn shrink_target_scales_area() {
        let m2 = square(300.0, Point::ORIGIN);
        let shrunk = shrink_target_for(&m2, 144, 36).unwrap();
        // Quarter of the robots → quarter of the area.
        assert!((shrunk.area() - m2.area() / 4.0).abs() / m2.area() < 1e-9);
        // Same centroid.
        assert!(shrunk.centroid().distance(m2.centroid()) < 1e-6);
        // No shrink when nothing was lost.
        let same = shrink_target_for(&m2, 144, 144).unwrap();
        assert_eq!(same.area(), m2.area());
        assert!(shrink_target_for(&m2, 144, 0).is_none());
    }

    #[test]
    fn midway_failure_of_many_still_replans() {
        let (problem, outcome) = setup();
        // Lose a whole corner block (6 robots).
        let failed: Vec<usize> = (0..6).collect();
        let r = replan_midway(&problem, &outcome, &failed).unwrap();
        assert_eq!(r.survivors.len(), 30);
        assert_eq!(r.plan.metrics.global_connectivity, 1);
    }
}
