//! Error type for the marching pipeline.

use std::error::Error;
use std::fmt;

/// Errors raised by the optimal-marching pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarchError {
    /// The initial deployment's connectivity graph is not connected, so
    /// no transition can preserve global connectivity.
    DisconnectedDeployment {
        /// Number of connected components found.
        components: usize,
    },
    /// A robot is not part of the extracted triangulation (too far from
    /// the rest of the swarm).
    RobotOutsideTriangulation {
        /// Index of the offending robot.
        robot: usize,
    },
    /// The deployment has fewer robots than the minimum for a
    /// triangulation.
    TooFewRobots {
        /// Robots supplied.
        got: usize,
    },
    /// Geometry error from a FoI.
    Geometry(anr_geom::GeomError),
    /// Meshing error while gridding a FoI.
    Mesh(anr_mesh::MeshError),
    /// Harmonic-map error.
    Harmonic(anr_harmonic::HarmonicError),
    /// Assignment error from a baseline.
    Assign(anr_assign::AssignError),
    /// Invalid input to the metrics / continuous-audit layer.
    Metrics(crate::MetricsError),
}

impl fmt::Display for MarchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarchError::DisconnectedDeployment { components } => {
                write!(
                    f,
                    "initial deployment has {components} connected components"
                )
            }
            MarchError::RobotOutsideTriangulation { robot } => {
                write!(
                    f,
                    "robot {robot} is not part of the deployment triangulation"
                )
            }
            MarchError::TooFewRobots { got } => {
                write!(f, "marching needs at least 3 robots, got {got}")
            }
            MarchError::Geometry(e) => write!(f, "geometry error: {e}"),
            MarchError::Mesh(e) => write!(f, "meshing error: {e}"),
            MarchError::Harmonic(e) => write!(f, "harmonic map error: {e}"),
            MarchError::Assign(e) => write!(f, "assignment error: {e}"),
            MarchError::Metrics(e) => write!(f, "metrics error: {e}"),
        }
    }
}

impl Error for MarchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MarchError::Geometry(e) => Some(e),
            MarchError::Mesh(e) => Some(e),
            MarchError::Harmonic(e) => Some(e),
            MarchError::Assign(e) => Some(e),
            MarchError::Metrics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<anr_geom::GeomError> for MarchError {
    fn from(e: anr_geom::GeomError) -> Self {
        MarchError::Geometry(e)
    }
}

impl From<anr_mesh::MeshError> for MarchError {
    fn from(e: anr_mesh::MeshError) -> Self {
        MarchError::Mesh(e)
    }
}

impl From<anr_harmonic::HarmonicError> for MarchError {
    fn from(e: anr_harmonic::HarmonicError) -> Self {
        MarchError::Harmonic(e)
    }
}

impl From<anr_assign::AssignError> for MarchError {
    fn from(e: anr_assign::AssignError) -> Self {
        MarchError::Assign(e)
    }
}

impl From<crate::MetricsError> for MarchError {
    fn from(e: crate::MetricsError) -> Self {
        MarchError::Metrics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = MarchError::DisconnectedDeployment { components: 3 };
        assert!(!e.to_string().is_empty());
        assert!(e.source().is_none());

        let e: MarchError = anr_mesh::MeshError::EmptyMesh.into();
        assert!(e.to_string().contains("meshing"));
        assert!(e.source().is_some());
    }
}
