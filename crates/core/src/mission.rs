//! Multi-FoI missions (paper Definition 6: "a group of ANRs are
//! instructed to explore a number of FoIs **sequentially**").
//!
//! A [`Mission`] chains marching legs: the swarm deploys in the first
//! FoI, marches to the second, finishes its task there, marches on, and
//! so forth. Each leg's starting positions are the previous leg's final
//! coverage positions, so errors and link wear compound exactly as they
//! would on a real tour.

use crate::{march, MarchConfig, MarchError, MarchOutcome, MarchProblem, Method};
use anr_geom::{Point, PolygonWithHoles};

/// A sequential tour of fields of interest.
#[derive(Debug, Clone)]
pub struct Mission {
    /// The fields to explore, in visiting order (at least two).
    pub fois: Vec<PolygonWithHoles>,
    /// Number of robots.
    pub robots: usize,
    /// Communication range `r_c`.
    pub range: f64,
}

/// Aggregate metrics of a whole mission.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionMetrics {
    /// Sum of every leg's total moving distance.
    pub total_distance: f64,
    /// Per-leg stable link ratios.
    pub leg_link_ratios: Vec<f64>,
    /// Arithmetic mean of the per-leg stable link ratios.
    pub mean_stable_link_ratio: f64,
    /// 1 when global connectivity held on **every** leg.
    pub global_connectivity: u8,
}

/// Everything produced by a mission run.
#[derive(Debug, Clone)]
pub struct MissionOutcome {
    /// One marching outcome per leg (`fois.len() − 1` legs).
    pub legs: Vec<MarchOutcome>,
    /// Aggregates across legs.
    pub metrics: MissionMetrics,
}

impl Mission {
    /// Creates a mission.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two FoIs are given, `robots < 3`, or
    /// `range <= 0`.
    pub fn new(fois: Vec<PolygonWithHoles>, robots: usize, range: f64) -> Self {
        assert!(fois.len() >= 2, "a mission needs at least two FoIs");
        assert!(robots >= 3, "a mission needs at least 3 robots");
        assert!(range > 0.0, "communication range must be positive");
        Mission {
            fois,
            robots,
            range,
        }
    }

    /// Number of marching legs.
    pub fn num_legs(&self) -> usize {
        self.fois.len() - 1
    }
}

/// Runs the whole mission with the given method: deploy in `fois[0]`,
/// march to `fois[1]`, then `fois[2]`, …
///
/// # Errors
///
/// Any [`MarchError`] from a leg (the tour stops at the first failure);
/// [`MarchError::TooFewRobots`] when the first FoI cannot fit the swarm.
pub fn march_mission(
    mission: &Mission,
    method: Method,
    config: &MarchConfig,
) -> Result<MissionOutcome, MarchError> {
    let mut positions: Vec<Point> =
        crate::optimal_coverage_positions(&mission.fois[0], mission.robots)
            .ok_or(MarchError::TooFewRobots { got: 0 })?;

    let mut legs = Vec::with_capacity(mission.num_legs());
    for leg in 0..mission.num_legs() {
        let problem = MarchProblem::new(
            mission.fois[leg].clone(),
            mission.fois[leg + 1].clone(),
            positions.clone(),
            mission.range,
        )?;
        let outcome = march(&problem, method, config)?;
        positions = outcome.final_positions.clone();
        legs.push(outcome);
    }

    let leg_link_ratios: Vec<f64> = legs.iter().map(|o| o.metrics.stable_link_ratio).collect();
    let metrics = MissionMetrics {
        total_distance: legs.iter().map(|o| o.metrics.total_distance).sum(),
        mean_stable_link_ratio: leg_link_ratios.iter().sum::<f64>() / leg_link_ratios.len() as f64,
        global_connectivity: u8::from(legs.iter().all(|o| o.metrics.global_connectivity == 1)),
        leg_link_ratios,
    };

    Ok(MissionOutcome { legs, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anr_geom::Polygon;

    fn square(side: f64, origin: Point) -> PolygonWithHoles {
        PolygonWithHoles::without_holes(Polygon::rectangle(origin, side, side))
    }

    fn three_foi_mission() -> Mission {
        Mission::new(
            vec![
                square(300.0, Point::ORIGIN),
                square(320.0, Point::new(900.0, 100.0)),
                square(280.0, Point::new(1800.0, -100.0)),
            ],
            36,
            80.0,
        )
    }

    #[test]
    fn tour_of_three_fois() {
        let mission = three_foi_mission();
        let out = march_mission(&mission, Method::MaxStableLinks, &MarchConfig::default()).unwrap();
        assert_eq!(out.legs.len(), 2);
        assert_eq!(out.metrics.global_connectivity, 1);
        assert_eq!(out.metrics.leg_link_ratios.len(), 2);
        // Every leg ends inside its target FoI.
        for (leg, outcome) in out.legs.iter().enumerate() {
            for q in &outcome.final_positions {
                assert!(
                    mission.fois[leg + 1].contains(*q),
                    "leg {leg}: robot outside FoI at {q}"
                );
            }
        }
    }

    #[test]
    fn legs_chain_positions() {
        let mission = three_foi_mission();
        let out = march_mission(&mission, Method::MaxStableLinks, &MarchConfig::default()).unwrap();
        assert_eq!(out.legs[1].initial, out.legs[0].final_positions);
    }

    #[test]
    fn mission_distance_is_sum_of_legs() {
        let mission = three_foi_mission();
        let out =
            march_mission(&mission, Method::MinMovingDistance, &MarchConfig::default()).unwrap();
        let sum: f64 = out.legs.iter().map(|l| l.metrics.total_distance).sum();
        assert!((out.metrics.total_distance - sum).abs() < 1e-9);
        assert!(out.metrics.mean_stable_link_ratio > 0.5);
    }

    #[test]
    #[should_panic]
    fn mission_needs_two_fois() {
        let _ = Mission::new(vec![square(100.0, Point::ORIGIN)], 10, 80.0);
    }

    #[test]
    fn num_legs_counts() {
        assert_eq!(three_foi_mission().num_legs(), 2);
    }
}
