//! Transition metrics: total moving distance `D`, total stable link
//! ratio `L` (Definition 1) and global connectivity `C` (Definition 2).

use anr_geom::Point;
use anr_netgraph::UnitDiskGraph;

/// Edge-stretch statistics of a proposed relocation: for every initial
/// communication link `(i, j)`, the ratio `‖qᵢ − qⱼ‖ / ‖pᵢ − pⱼ‖`.
///
/// The harmonic map is "proved least-stretched" (paper Sec. II-B); these
/// statistics let that claim be measured against the baselines: a
/// method with smaller maximum stretch breaks fewer links for the same
/// communication range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchStats {
    /// Smallest link stretch (compression < 1).
    pub min: f64,
    /// Largest link stretch.
    pub max: f64,
    /// Mean link stretch.
    pub mean: f64,
    /// Fraction of links with stretch ≤ 1 (not stretched at all).
    pub fraction_compressed: f64,
    /// Number of links measured.
    pub links: usize,
}

/// Measures the stretch of every initial link under the relocation
/// `positions[i] → targets[i]`.
///
/// Returns `None` when the initial graph has no links.
///
/// # Panics
///
/// Panics when the slices disagree in length or `range <= 0`.
pub fn edge_stretch_stats(
    positions: &[Point],
    targets: &[Point],
    range: f64,
) -> Option<StretchStats> {
    assert_eq!(positions.len(), targets.len(), "one target per robot");
    assert!(range > 0.0, "communication range must be positive");
    let g = UnitDiskGraph::new(positions, range);
    let links = g.links();
    if links.is_empty() {
        return None;
    }
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    let mut sum = 0.0;
    let mut compressed = 0usize;
    for &(i, j) in &links {
        let before = positions[i].distance(positions[j]);
        let after = targets[i].distance(targets[j]);
        let stretch = if before > 0.0 { after / before } else { 1.0 };
        min = min.min(stretch);
        max = max.max(stretch);
        sum += stretch;
        if stretch <= 1.0 {
            compressed += 1;
        }
    }
    Some(StretchStats {
        min,
        max,
        mean: sum / links.len() as f64,
        fraction_compressed: compressed as f64 / links.len() as f64,
        links: links.len(),
    })
}

/// Metrics of one completed transition.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionMetrics {
    /// Total moving distance `D = Σ dᵢ` over the whole relocation
    /// (transition leg plus coverage adjustment).
    pub total_distance: f64,
    /// Total stable link ratio `L` (Definition 1): the fraction of `M1`
    /// communication links that stayed within range at **every** sampled
    /// instant.
    pub stable_link_ratio: f64,
    /// Global connectivity `C` (Definition 2): 1 when the network was
    /// connected at every sampled instant, else 0.
    pub global_connectivity: u8,
    /// Number of `M1` links that survived the whole transition.
    pub preserved_links: usize,
    /// Number of `M1` links (the denominator of `L`).
    pub initial_links: usize,
    /// Links present at the end that did not exist in `M1` ("red edges"
    /// in the paper's figures).
    pub new_links: usize,
    /// Number of sampled instants that were evaluated.
    pub samples: usize,
}

/// Evaluates `L`, `C` and link counts over a sampled position timeline.
///
/// `timeline[k][i]` is robot `i`'s position at sample `k`; `timeline[0]`
/// must be the initial `M1` deployment (whose unit-disk graph defines
/// the links being tracked). `total_distance` is **not** computed here —
/// it depends on the exact paths, not the samples — and must be supplied
/// by the caller.
///
/// # Panics
///
/// Panics when the timeline is empty, rows have inconsistent lengths, or
/// `range <= 0`.
pub fn evaluate_timeline(
    timeline: &[Vec<Point>],
    range: f64,
    total_distance: f64,
) -> TransitionMetrics {
    assert!(
        !timeline.is_empty(),
        "timeline must have at least one sample"
    );
    assert!(range > 0.0, "communication range must be positive");
    let n = timeline[0].len();
    assert!(
        timeline.iter().all(|row| row.len() == n),
        "every sample must cover every robot"
    );

    let initial = UnitDiskGraph::new(&timeline[0], range);
    let links = initial.links();
    let initial_links = links.len();

    let r2 = range * range;
    let mut alive = vec![true; links.len()];
    let mut connected_everywhere = true;

    for row in timeline {
        for (k, &(i, j)) in links.iter().enumerate() {
            if alive[k] && row[i].distance_sq(row[j]) > r2 {
                alive[k] = false;
            }
        }
        if connected_everywhere && !UnitDiskGraph::new(row, range).is_connected() {
            connected_everywhere = false;
        }
    }

    let preserved_links = alive.iter().filter(|&&a| a).count();
    let stable_link_ratio = if initial_links == 0 {
        1.0
    } else {
        preserved_links as f64 / initial_links as f64
    };

    // New links: present in the final graph but not initially.
    let last = timeline.last().expect("non-empty");
    let final_graph = UnitDiskGraph::new(last, range);
    let new_links = final_graph
        .links()
        .iter()
        .filter(|&&(i, j)| !initial.has_link(i, j))
        .count();

    TransitionMetrics {
        total_distance,
        stable_link_ratio,
        global_connectivity: u8::from(connected_everywhere),
        preserved_links,
        initial_links,
        new_links,
        samples: timeline.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn stationary_swarm_preserves_everything() {
        let row = vec![p(0.0, 0.0), p(50.0, 0.0), p(100.0, 0.0)];
        let timeline = vec![row.clone(), row.clone(), row];
        let m = evaluate_timeline(&timeline, 80.0, 0.0);
        assert_eq!(m.stable_link_ratio, 1.0);
        assert_eq!(m.global_connectivity, 1);
        assert_eq!(m.preserved_links, 2);
        assert_eq!(m.initial_links, 2);
        assert_eq!(m.new_links, 0);
    }

    #[test]
    fn link_broken_mid_transition_counts_broken() {
        // Two robots drift apart then come back: the link is NOT stable
        // (e_ij requires e_ij(t) = 1 for all t).
        let timeline = vec![
            vec![p(0.0, 0.0), p(50.0, 0.0)],
            vec![p(0.0, 0.0), p(200.0, 0.0)],
            vec![p(0.0, 0.0), p(50.0, 0.0)],
        ];
        let m = evaluate_timeline(&timeline, 80.0, 300.0);
        assert_eq!(m.stable_link_ratio, 0.0);
        assert_eq!(m.global_connectivity, 0);
        assert_eq!(m.total_distance, 300.0);
    }

    #[test]
    fn new_links_counted() {
        // Robots far apart come together: one new link appears.
        let timeline = vec![
            vec![p(0.0, 0.0), p(500.0, 0.0)],
            vec![p(0.0, 0.0), p(50.0, 0.0)],
        ];
        let m = evaluate_timeline(&timeline, 80.0, 450.0);
        assert_eq!(m.initial_links, 0);
        assert_eq!(m.stable_link_ratio, 1.0); // vacuous: no links to lose
        assert_eq!(m.new_links, 1);
        assert_eq!(m.global_connectivity, 0); // started disconnected
    }

    #[test]
    fn partial_preservation() {
        // Three in a line; the end robot walks away, the other two hold.
        let timeline = vec![
            vec![p(0.0, 0.0), p(60.0, 0.0), p(120.0, 0.0)],
            vec![p(0.0, 0.0), p(60.0, 0.0), p(400.0, 0.0)],
        ];
        let m = evaluate_timeline(&timeline, 80.0, 280.0);
        assert_eq!(m.initial_links, 2);
        assert_eq!(m.preserved_links, 1);
        assert!((m.stable_link_ratio - 0.5).abs() < 1e-12);
        assert_eq!(m.global_connectivity, 0);
    }

    #[test]
    fn rigid_translation_is_perfect() {
        let row0 = [p(0.0, 0.0), p(50.0, 0.0), p(25.0, 40.0)];
        let timeline: Vec<Vec<Point>> = (0..=10)
            .map(|k| {
                let dx = 100.0 * k as f64;
                row0.iter().map(|q| p(q.x + dx, q.y)).collect()
            })
            .collect();
        let m = evaluate_timeline(&timeline, 80.0, 3000.0);
        assert_eq!(m.stable_link_ratio, 1.0);
        assert_eq!(m.global_connectivity, 1);
        assert_eq!(m.new_links, 0);
    }

    #[test]
    fn stretch_of_rigid_translation_is_one() {
        let from = vec![p(0.0, 0.0), p(50.0, 0.0), p(25.0, 40.0)];
        let to: Vec<Point> = from.iter().map(|q| p(q.x + 500.0, q.y)).collect();
        let s = edge_stretch_stats(&from, &to, 80.0).unwrap();
        assert!((s.min - 1.0).abs() < 1e-9);
        assert!((s.max - 1.0).abs() < 1e-9);
        assert_eq!(s.fraction_compressed, 1.0);
        assert_eq!(s.links, 3);
    }

    #[test]
    fn stretch_detects_expansion() {
        let from = vec![p(0.0, 0.0), p(50.0, 0.0)];
        let to = vec![p(0.0, 0.0), p(150.0, 0.0)];
        let s = edge_stretch_stats(&from, &to, 80.0).unwrap();
        assert!((s.max - 3.0).abs() < 1e-9);
        assert_eq!(s.fraction_compressed, 0.0);
    }

    #[test]
    fn stretch_none_without_links() {
        let from = vec![p(0.0, 0.0), p(500.0, 0.0)];
        let to = from.clone();
        assert!(edge_stretch_stats(&from, &to, 80.0).is_none());
    }

    #[test]
    fn samples_counted() {
        let row = vec![p(0.0, 0.0)];
        let m = evaluate_timeline(&[row.clone(), row.clone(), row], 10.0, 0.0);
        assert_eq!(m.samples, 3);
        assert_eq!(m.stable_link_ratio, 1.0); // no links at all
    }
}
