//! Transition metrics: total moving distance `D`, total stable link
//! ratio `L` (Definition 1) and global connectivity `C` (Definition 2).
//!
//! Both `L` and `C` quantify over **every instant** of the transition.
//! [`evaluate_timeline`] therefore treats its timeline rows as the
//! breakpoints of piecewise-linear motion and evaluates exactly — link
//! maxima from the convexity of the per-piece distance quadratic,
//! connectivity by sweeping the quadratic's range-crossing roots — via
//! the continuous auditor in [`crate::audit`]. No sampled-instant
//! approximation remains.

use crate::audit::audit_piecewise;
use anr_geom::Point;
use anr_netgraph::UnitDiskGraph;
use anr_trace::Tracer;
use std::error::Error;
use std::fmt;

/// Input errors of the metrics and audit functions.
///
/// These used to be `assert!` panics; library callers now get a typed
/// error and the CLI keeps its user-facing message via `Display`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum MetricsError {
    /// Two parallel inputs disagree in length.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// The communication range must be positive.
    NonPositiveRange {
        /// The offending range.
        range: f64,
    },
    /// A timeline needs at least one row.
    EmptyTimeline,
    /// A timeline row covers a different number of robots than row 0.
    RaggedTimeline {
        /// Offending row index.
        row: usize,
        /// Its length.
        got: usize,
        /// Row 0's length.
        expected: usize,
    },
    /// Timeline instants must be finite and strictly increasing.
    NonMonotonicTimes {
        /// Index of the first offending instant.
        index: usize,
    },
    /// A position is NaN or infinite.
    NonFinitePosition {
        /// Row of the offending position.
        row: usize,
        /// Robot index within the row.
        robot: usize,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "expected {expected} entries, got {got} (one target per robot)"
                )
            }
            MetricsError::NonPositiveRange { range } => {
                write!(f, "communication range must be positive, got {range}")
            }
            MetricsError::EmptyTimeline => {
                write!(f, "timeline must have at least one sample")
            }
            MetricsError::RaggedTimeline { row, got, expected } => {
                write!(
                    f,
                    "every sample must cover every robot: row {row} has {got} positions, expected {expected}"
                )
            }
            MetricsError::NonMonotonicTimes { index } => {
                write!(
                    f,
                    "timeline instants must be strictly increasing (index {index})"
                )
            }
            MetricsError::NonFinitePosition { row, robot } => {
                write!(f, "non-finite position for robot {robot} at row {row}")
            }
        }
    }
}

impl Error for MetricsError {}

/// Edge-stretch statistics of a proposed relocation: for every initial
/// communication link `(i, j)`, the ratio `‖qᵢ − qⱼ‖ / ‖pᵢ − pⱼ‖`.
///
/// The harmonic map is "proved least-stretched" (paper Sec. II-B); these
/// statistics let that claim be measured against the baselines: a
/// method with smaller maximum stretch breaks fewer links for the same
/// communication range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchStats {
    /// Smallest link stretch (compression < 1).
    pub min: f64,
    /// Largest link stretch. Infinite when a coincident pair separates
    /// (`before == 0`, `after > 0`): such a link has unbounded stretch.
    pub max: f64,
    /// Mean link stretch over the non-degenerate links.
    pub mean: f64,
    /// Fraction of non-degenerate links with stretch ≤ 1.
    pub fraction_compressed: f64,
    /// Number of links measured (including degenerate ones).
    pub links: usize,
    /// Links whose robots start coincident (`before == 0`): stretch is
    /// undefined there, so they are excluded from `min`, `mean` and
    /// `fraction_compressed`; any such pair that separates forces
    /// `max = ∞`.
    pub degenerate: usize,
}

/// Measures the stretch of every initial link under the relocation
/// `positions[i] → targets[i]`.
///
/// Returns `Ok(None)` when the initial graph has no links. Coincident
/// robots (`before == 0`) are counted in [`StretchStats::degenerate`];
/// if any such pair separates, `max` is infinite (their stretch grows
/// without bound), never silently `1.0`.
///
/// # Errors
///
/// [`MetricsError`] when the slices disagree in length or `range <= 0`.
pub fn edge_stretch_stats(
    positions: &[Point],
    targets: &[Point],
    range: f64,
) -> Result<Option<StretchStats>, MetricsError> {
    if positions.len() != targets.len() {
        return Err(MetricsError::LengthMismatch {
            expected: positions.len(),
            got: targets.len(),
        });
    }
    if range.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(MetricsError::NonPositiveRange { range });
    }
    let g = UnitDiskGraph::new(positions, range);
    let links = g.links();
    if links.is_empty() {
        return Ok(None);
    }
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    let mut sum = 0.0;
    let mut compressed = 0usize;
    let mut degenerate = 0usize;
    for &(i, j) in &links {
        let before = positions[i].distance(positions[j]);
        let after = targets[i].distance(targets[j]);
        if before > 0.0 {
            let stretch = after / before;
            min = min.min(stretch);
            max = max.max(stretch);
            sum += stretch;
            if stretch <= 1.0 {
                compressed += 1;
            }
        } else {
            degenerate += 1;
            if after > 0.0 {
                max = f64::INFINITY;
            }
        }
    }
    let finite = links.len() - degenerate;
    let (min, mean, fraction_compressed) = if finite > 0 {
        (min, sum / finite as f64, compressed as f64 / finite as f64)
    } else {
        (0.0, 0.0, 0.0)
    };
    Ok(Some(StretchStats {
        min,
        max,
        mean,
        fraction_compressed,
        links: links.len(),
        degenerate,
    }))
}

/// Metrics of one completed transition.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionMetrics {
    /// Total moving distance `D = Σ dᵢ` over the whole relocation
    /// (transition leg plus coverage adjustment).
    pub total_distance: f64,
    /// Total stable link ratio `L` (Definition 1): the fraction of `M1`
    /// communication links that stayed within range at **every** instant
    /// of the piecewise-linear motion (exact, not sampled).
    pub stable_link_ratio: f64,
    /// Global connectivity `C` (Definition 2): 1 when the network was
    /// connected at every instant (certified by the continuous range-
    /// crossing sweep), else 0.
    pub global_connectivity: u8,
    /// Number of `M1` links that survived the whole transition.
    pub preserved_links: usize,
    /// Number of `M1` links (the denominator of `L`).
    pub initial_links: usize,
    /// Links present at the end that did not exist in `M1` ("red edges"
    /// in the paper's figures).
    pub new_links: usize,
    /// Number of timeline rows (piecewise-linear breakpoints) evaluated.
    pub samples: usize,
    /// Linear motion pieces the continuous audit decomposed the timeline
    /// into (`samples - 1`, or 0 for a single-row timeline).
    pub audit_pieces: usize,
    /// Connectivity checks the audit's event sweep performed — one per
    /// open interval between range-crossing events. Scales with how much
    /// link churn the motion produced, hence recorded per scenario by the
    /// pipeline bench.
    pub audit_checks: usize,
}

/// Evaluates `L`, `C` and link counts over a position timeline.
///
/// `timeline[k][i]` is robot `i`'s position at breakpoint `k`;
/// `timeline[0]` must be the initial `M1` deployment (whose unit-disk
/// graph defines the links being tracked). Robots are taken to move
/// **linearly** between consecutive rows, and both metrics are evaluated
/// exactly over that continuous motion — the rows must therefore include
/// every trajectory waypoint (see [`TrajectorySet::breakpoints`]), not
/// just uniform samples. `total_distance` is **not** computed here — it
/// depends on the exact paths — and must be supplied by the caller.
///
/// [`TrajectorySet::breakpoints`]: crate::TrajectorySet::breakpoints
///
/// # Errors
///
/// [`MetricsError`] when the timeline is empty, rows have inconsistent
/// lengths, a position is non-finite, or `range <= 0`.
pub fn evaluate_timeline(
    timeline: &[Vec<Point>],
    range: f64,
    total_distance: f64,
) -> Result<TransitionMetrics, MetricsError> {
    let times: Vec<f64> = if timeline.len() <= 1 {
        vec![0.0]
    } else {
        let steps = (timeline.len() - 1) as f64;
        (0..timeline.len()).map(|k| k as f64 / steps).collect()
    };
    let report = audit_piecewise(timeline, &times, range, &Tracer::disabled())?;

    // New links: present in the final graph but not initially.
    let initial = UnitDiskGraph::new(&timeline[0], range);
    let last = timeline.last().ok_or(MetricsError::EmptyTimeline)?;
    let final_graph = UnitDiskGraph::new(last, range);
    let new_links = final_graph
        .links()
        .iter()
        .filter(|&&(i, j)| !initial.has_link(i, j))
        .count();

    Ok(TransitionMetrics {
        total_distance,
        stable_link_ratio: report.stable_link_ratio,
        global_connectivity: report.global_connectivity,
        preserved_links: report.preserved_links,
        initial_links: report.initial_links,
        new_links,
        samples: timeline.len(),
        audit_pieces: report.pieces,
        audit_checks: report.connectivity_checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn stationary_swarm_preserves_everything() {
        let row = vec![p(0.0, 0.0), p(50.0, 0.0), p(100.0, 0.0)];
        let timeline = vec![row.clone(), row.clone(), row];
        let m = evaluate_timeline(&timeline, 80.0, 0.0).unwrap();
        assert_eq!(m.stable_link_ratio, 1.0);
        assert_eq!(m.global_connectivity, 1);
        assert_eq!(m.preserved_links, 2);
        assert_eq!(m.initial_links, 2);
        assert_eq!(m.new_links, 0);
        assert_eq!(m.audit_pieces, 2);
        assert!(m.audit_checks >= 1);
    }

    #[test]
    fn link_broken_mid_transition_counts_broken() {
        // Two robots drift apart then come back: the link is NOT stable
        // (e_ij requires e_ij(t) = 1 for all t).
        let timeline = vec![
            vec![p(0.0, 0.0), p(50.0, 0.0)],
            vec![p(0.0, 0.0), p(200.0, 0.0)],
            vec![p(0.0, 0.0), p(50.0, 0.0)],
        ];
        let m = evaluate_timeline(&timeline, 80.0, 300.0).unwrap();
        assert_eq!(m.stable_link_ratio, 0.0);
        assert_eq!(m.global_connectivity, 0);
        assert_eq!(m.total_distance, 300.0);
    }

    #[test]
    fn new_links_counted() {
        // Robots far apart come together: one new link appears.
        let timeline = vec![
            vec![p(0.0, 0.0), p(500.0, 0.0)],
            vec![p(0.0, 0.0), p(50.0, 0.0)],
        ];
        let m = evaluate_timeline(&timeline, 80.0, 450.0).unwrap();
        assert_eq!(m.initial_links, 0);
        assert_eq!(m.stable_link_ratio, 1.0); // vacuous: no links to lose
        assert_eq!(m.new_links, 1);
        assert_eq!(m.global_connectivity, 0); // started disconnected
    }

    #[test]
    fn partial_preservation() {
        // Three in a line; the end robot walks away, the other two hold.
        let timeline = vec![
            vec![p(0.0, 0.0), p(60.0, 0.0), p(120.0, 0.0)],
            vec![p(0.0, 0.0), p(60.0, 0.0), p(400.0, 0.0)],
        ];
        let m = evaluate_timeline(&timeline, 80.0, 280.0).unwrap();
        assert_eq!(m.initial_links, 2);
        assert_eq!(m.preserved_links, 1);
        assert!((m.stable_link_ratio - 0.5).abs() < 1e-12);
        assert_eq!(m.global_connectivity, 0);
    }

    #[test]
    fn rigid_translation_is_perfect() {
        let row0 = [p(0.0, 0.0), p(50.0, 0.0), p(25.0, 40.0)];
        let timeline: Vec<Vec<Point>> = (0..=10)
            .map(|k| {
                let dx = 100.0 * k as f64;
                row0.iter().map(|q| p(q.x + dx, q.y)).collect()
            })
            .collect();
        let m = evaluate_timeline(&timeline, 80.0, 3000.0).unwrap();
        assert_eq!(m.stable_link_ratio, 1.0);
        assert_eq!(m.global_connectivity, 1);
        assert_eq!(m.new_links, 0);
    }

    /// The sampled-instant bug, pinned from the metrics side: a link
    /// within range at every row would previously be counted stable even
    /// if the motion between rows pushed it out. With rows as true
    /// breakpoints the in-between excursion is part of the motion and
    /// must be caught exactly.
    #[test]
    fn excursion_between_rows_breaks_link_and_connectivity() {
        // Robot B's breakpoint row sits at 80.2 — between any uniform
        // sampling of the old evaluator, but an explicit breakpoint here.
        let timeline = vec![
            vec![p(0.0, 0.0), p(76.0, 0.0)],
            vec![p(0.0, 0.0), p(80.2, 0.0)],
            vec![p(0.0, 0.0), p(72.4, 0.0)],
        ];
        let m = evaluate_timeline(&timeline, 80.0, 12.0).unwrap();
        assert_eq!(m.preserved_links, 0);
        assert_eq!(m.global_connectivity, 0);
    }

    #[test]
    fn stretch_of_rigid_translation_is_one() {
        let from = vec![p(0.0, 0.0), p(50.0, 0.0), p(25.0, 40.0)];
        let to: Vec<Point> = from.iter().map(|q| p(q.x + 500.0, q.y)).collect();
        let s = edge_stretch_stats(&from, &to, 80.0).unwrap().unwrap();
        assert!((s.min - 1.0).abs() < 1e-9);
        assert!((s.max - 1.0).abs() < 1e-9);
        assert_eq!(s.fraction_compressed, 1.0);
        assert_eq!(s.links, 3);
        assert_eq!(s.degenerate, 0);
    }

    #[test]
    fn stretch_detects_expansion() {
        let from = vec![p(0.0, 0.0), p(50.0, 0.0)];
        let to = vec![p(0.0, 0.0), p(150.0, 0.0)];
        let s = edge_stretch_stats(&from, &to, 80.0).unwrap().unwrap();
        assert!((s.max - 3.0).abs() < 1e-9);
        assert_eq!(s.fraction_compressed, 0.0);
    }

    #[test]
    fn stretch_none_without_links() {
        let from = vec![p(0.0, 0.0), p(500.0, 0.0)];
        let to = from.clone();
        assert!(edge_stretch_stats(&from, &to, 80.0).unwrap().is_none());
    }

    /// Coincident robots whose targets separate used to report stretch
    /// 1.0 — as if nothing moved. Their stretch is unbounded.
    #[test]
    fn coincident_separating_pair_is_infinite_stretch() {
        let from = vec![p(0.0, 0.0), p(0.0, 0.0), p(50.0, 0.0)];
        let to = vec![p(0.0, 0.0), p(60.0, 0.0), p(50.0, 0.0)];
        let s = edge_stretch_stats(&from, &to, 80.0).unwrap().unwrap();
        assert!(s.max.is_infinite());
        // Links: (0,1) at d = 0 (degenerate), (0,2) and (1,2) at d = 50.
        assert_eq!(s.degenerate, 1);
        assert_eq!(s.links, 3);
        // Finite links are unaffected by the degenerate one:
        // (0,2) stays at 50 (stretch 1), (1,2) compresses 50 → 10.
        assert!((s.min - 0.2).abs() < 1e-9);
    }

    #[test]
    fn coincident_staying_pair_counts_degenerate_without_infinity() {
        let from = vec![p(0.0, 0.0), p(0.0, 0.0)];
        let to = vec![p(30.0, 0.0), p(30.0, 0.0)];
        let s = edge_stretch_stats(&from, &to, 80.0).unwrap().unwrap();
        assert_eq!(s.degenerate, 1);
        assert_eq!(s.links, 1);
        assert!(!s.max.is_infinite());
        // No finite links: aggregate stats are zeroed, not NaN.
        assert_eq!(s.mean, 0.0);
        assert!(s.min == 0.0 && s.fraction_compressed == 0.0);
    }

    #[test]
    fn bad_input_is_an_error_not_a_panic() {
        let a = vec![p(0.0, 0.0)];
        let b = vec![p(0.0, 0.0), p(1.0, 0.0)];
        assert!(matches!(
            edge_stretch_stats(&a, &b, 80.0),
            Err(MetricsError::LengthMismatch {
                expected: 1,
                got: 2
            })
        ));
        assert!(matches!(
            edge_stretch_stats(&a, &a, 0.0),
            Err(MetricsError::NonPositiveRange { .. })
        ));
        assert!(matches!(
            evaluate_timeline(&[], 80.0, 0.0),
            Err(MetricsError::EmptyTimeline)
        ));
        assert!(matches!(
            evaluate_timeline(&[a.clone(), vec![]], 80.0, 0.0),
            Err(MetricsError::RaggedTimeline { .. })
        ));
        assert!(matches!(
            evaluate_timeline(&[vec![p(f64::NAN, 0.0)]], 80.0, 0.0),
            Err(MetricsError::NonFinitePosition { row: 0, robot: 0 })
        ));
        // Errors render a user-facing message.
        let msg = MetricsError::NonPositiveRange { range: -1.0 }.to_string();
        assert!(msg.contains("positive"));
    }

    #[test]
    fn samples_counted() {
        let row = vec![p(0.0, 0.0)];
        let m = evaluate_timeline(&[row.clone(), row.clone(), row.clone()], 10.0, 0.0).unwrap();
        assert_eq!(m.samples, 3);
        assert_eq!(m.stable_link_ratio, 1.0); // no links at all
        assert_eq!(m.audit_pieces, 2);

        let m = evaluate_timeline(&[row], 10.0, 0.0).unwrap();
        assert_eq!(m.audit_pieces, 0);
        assert_eq!(m.audit_checks, 1);
    }
}
