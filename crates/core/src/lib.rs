//! # anr-march — optimal marching of autonomous networked robots
//!
//! Reference implementation of *"Optimal Marching of Autonomous Networked
//! Robots"* (Ban, Jin, Wu — ICDCS 2016). A swarm of mobile robots that
//! has finished its task in one field of interest (FoI) must redeploy to
//! a second, possibly distant, concave, multiply-connected FoI while
//!
//! * keeping **global connectivity** at every instant of the transition
//!   (no robot or subgroup is ever cut off),
//! * preserving as many **local communication links** as possible (the
//!   *total stable link ratio* `L`, Definition 1),
//! * spending little **total moving distance** `D`.
//!
//! The paper's method — reproduced by [`march`] — harmonically maps both
//! the robot triangulation and the target FoI onto unit disks, searches
//! the disk rotation that maximizes `L` (method **a**,
//! [`Method::MaxStableLinks`]) or minimizes `D` (method **b**,
//! [`Method::MinMovingDistance`]), composes the maps to obtain each
//! robot's destination, repairs any predicted isolation (Sec. III-D-1),
//! moves the robots along straight (hole-avoiding) paths, and finishes
//! with a connectivity-guarded Lloyd refinement to optimal coverage
//! positions.
//!
//! The two comparison methods of the evaluation are also here:
//! [`direct_translation`] (rigid translation + Hungarian touch-up) and
//! [`hungarian_direct`] (pure minimum-distance assignment).
//!
//! ## Example
//!
//! ```no_run
//! use anr_geom::{Point, Polygon, PolygonWithHoles};
//! use anr_march::{march, MarchConfig, MarchProblem, Method};
//!
//! // 36 robots in a square FoI, marching to a translated square.
//! let m1 = PolygonWithHoles::without_holes(
//!     Polygon::rectangle(Point::ORIGIN, 300.0, 300.0),
//! );
//! let m2 = PolygonWithHoles::without_holes(
//!     Polygon::rectangle(Point::new(1000.0, 0.0), 300.0, 300.0),
//! );
//! let problem = MarchProblem::with_lattice_deployment(m1, m2, 36, 80.0)?;
//! let outcome = march(&problem, Method::MaxStableLinks, &MarchConfig::default())?;
//! assert_eq!(outcome.metrics.global_connectivity, 1);
//! println!("L = {:.2}, D = {:.0} m", outcome.metrics.stable_link_ratio,
//!          outcome.metrics.total_distance);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

mod audit;
mod baselines;
mod distributed;
mod energy;
mod error;
mod faultsweep;
mod metrics;
mod mission;
mod pipeline;
mod problem;
mod repair;
mod replan;
mod resilience;
mod trajectory;

pub use audit::{
    audit_piecewise, audit_piecewise_with_workers, audit_trajectories, AuditReport, LinkViolation,
};
pub use baselines::{direct_translation, hungarian_direct};
pub use distributed::{
    distributed_objective, distributed_objective_under_faults, DistributedObjective,
    FaultyObjective,
};
pub use energy::{EnergyModel, EnergyReport};
pub use error::MarchError;
pub use faultsweep::{
    run_fault_sweep, run_fault_sweep_traced, FaultSweepReport, ProtocolGrid, SurvivalStats,
    SweepConfig, SweepEngine, SweepProtocols,
};
pub use metrics::{
    edge_stretch_stats, evaluate_timeline, MetricsError, StretchStats, TransitionMetrics,
};
pub use mission::{march_mission, Mission, MissionMetrics, MissionOutcome};
pub use pipeline::{march, march_traced, MarchOutcome, Method};
pub use problem::{optimal_coverage_positions, MarchConfig, MarchProblem};
pub use repair::{repair_connectivity, repair_connectivity_strict, RepairReport};
pub use replan::{replan_after_failure, replan_midway, shrink_target_for, ReplanOutcome};
pub use resilience::{survives_failures, ResilienceReport};
pub use trajectory::{route_around_obstacles, Polyline, TrajectorySet};
