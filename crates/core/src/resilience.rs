//! Deployment resilience: how much robot failure a network tolerates.
//!
//! The paper motivates ANR systems with fault tolerance — "the failure
//! of an individual robot can be recovered by its peers" (Sec. I) — and
//! keeps the swarm connected so no robot is "excluded from the new plan
//! and thus become permanently lost". This module quantifies the margin:
//! articulation robots (single points of failure), biconnectivity, and
//! an explicit failure-injection check.

use crate::faultsweep::{run_fault_sweep, ProtocolGrid, SweepConfig};
use anr_distsim::SimError;
use anr_geom::Point;
use anr_netgraph::{
    articulation_points, is_biconnected, vertex_connectivity_estimate, UnitDiskGraph,
};

/// Robustness summary of one deployment snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Is the network connected at all?
    pub connected: bool,
    /// Robots whose single failure would split the network.
    pub articulation_robots: Vec<usize>,
    /// Does the network survive any single robot failure?
    pub biconnected: bool,
    /// Lower-bound estimate of the vertex connectivity.
    pub vertex_connectivity: usize,
    /// Minimum robot degree.
    pub min_degree: usize,
    /// Protocol-level survival: rounds-to-quiescence and message
    /// overhead of the robust marching protocols as functions of loss
    /// rate and crash count. Empty unless the report was built with
    /// [`with_protocol_survival`](Self::with_protocol_survival).
    pub protocol_survival: Vec<ProtocolGrid>,
}

impl ResilienceReport {
    /// Analyzes a deployment with communication range `range`.
    ///
    /// The structural metrics only; [`Self::protocol_survival`] stays
    /// empty. Use
    /// [`with_protocol_survival`](Self::with_protocol_survival) to also
    /// run the fault sweep.
    ///
    /// # Panics
    ///
    /// Panics when `range <= 0`.
    pub fn of(positions: &[Point], range: f64) -> ResilienceReport {
        let g = UnitDiskGraph::new(positions, range);
        ResilienceReport {
            connected: g.is_connected(),
            articulation_robots: articulation_points(&g),
            biconnected: is_biconnected(&g),
            vertex_connectivity: vertex_connectivity_estimate(&g),
            min_degree: (0..g.len()).map(|v| g.degree(v)).min().unwrap_or(0),
            protocol_survival: Vec::new(),
        }
    }

    /// Like [`of`](Self::of), but additionally runs the fault sweep of
    /// [`run_fault_sweep`](crate::run_fault_sweep) and attaches the
    /// resulting per-protocol survival grids.
    ///
    /// # Errors
    ///
    /// Simulator/plan errors from the sweep.
    ///
    /// # Panics
    ///
    /// Panics when `range <= 0` or `positions.len() < 2`.
    pub fn with_protocol_survival(
        positions: &[Point],
        range: f64,
        config: &SweepConfig,
    ) -> Result<ResilienceReport, SimError> {
        let mut report = Self::of(positions, range);
        report.protocol_survival = run_fault_sweep(positions, range, config)?.protocols;
        Ok(report)
    }
}

/// Removes the given robots from a deployment and reports whether the
/// survivors remain connected — direct failure injection against
/// Definition 2's motivation.
///
/// Robots listed in `failed` are excluded; duplicate or out-of-range
/// indices are ignored. A network with fewer than two survivors counts
/// as connected.
///
/// # Panics
///
/// Panics when `range <= 0`.
pub fn survives_failures(positions: &[Point], range: f64, failed: &[usize]) -> bool {
    let survivors: Vec<Point> = positions
        .iter()
        .enumerate()
        .filter(|(i, _)| !failed.contains(i))
        .map(|(_, &p)| p)
        .collect();
    if survivors.len() < 2 {
        return true;
    }
    UnitDiskGraph::new(&survivors, range).is_connected()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn line(n: usize) -> Vec<Point> {
        (0..n).map(|i| p(i as f64 * 60.0, 0.0)).collect()
    }

    #[test]
    fn line_deployment_is_fragile() {
        let report = ResilienceReport::of(&line(5), 80.0);
        assert!(report.connected);
        assert!(!report.biconnected);
        assert_eq!(report.articulation_robots, vec![1, 2, 3]);
        assert_eq!(report.vertex_connectivity, 1);
        assert_eq!(report.min_degree, 1);
    }

    #[test]
    fn lattice_deployment_is_robust() {
        let mut pts = Vec::new();
        for r in 0..4 {
            for c in 0..5 {
                let x = c as f64 * 55.0 + if r % 2 == 1 { 27.5 } else { 0.0 };
                let y = r as f64 * 48.0;
                pts.push(p(x, y));
            }
        }
        let report = ResilienceReport::of(&pts, 80.0);
        assert!(report.biconnected);
        assert!(report.articulation_robots.is_empty());
        assert!(report.vertex_connectivity >= 2);
    }

    #[test]
    fn failure_injection_on_line() {
        let pts = line(5);
        // Killing an endpoint keeps the rest connected.
        assert!(survives_failures(&pts, 80.0, &[0]));
        assert!(survives_failures(&pts, 80.0, &[4]));
        // Killing an interior robot splits the chain.
        assert!(!survives_failures(&pts, 80.0, &[2]));
        // Killing all but one survivor is trivially fine.
        assert!(survives_failures(&pts, 80.0, &[0, 1, 2, 3]));
    }

    #[test]
    fn failure_injection_matches_articulation_points() {
        let mut pts = Vec::new();
        for r in 0..3 {
            for c in 0..4 {
                let x = c as f64 * 55.0 + if r % 2 == 1 { 27.5 } else { 0.0 };
                let y = r as f64 * 48.0;
                pts.push(p(x, y));
            }
        }
        let report = ResilienceReport::of(&pts, 80.0);
        for v in 0..pts.len() {
            let survives = survives_failures(&pts, 80.0, &[v]);
            let is_cut = report.articulation_robots.contains(&v);
            assert_eq!(survives, !is_cut, "robot {v}");
        }
    }

    #[test]
    fn bad_indices_ignored() {
        let pts = line(3);
        assert!(survives_failures(&pts, 80.0, &[99, 99]));
    }

    #[test]
    fn protocol_survival_attaches_grids() {
        let mut pts = Vec::new();
        for r in 0..3 {
            for c in 0..4 {
                let x = c as f64 * 55.0 + if r % 2 == 1 { 27.5 } else { 0.0 };
                pts.push(p(x, r as f64 * 48.0));
            }
        }
        let config = SweepConfig {
            loss_rates: vec![0.0, 0.1],
            crash_counts: vec![0],
            seed: 3,
            ..Default::default()
        };
        let report = ResilienceReport::with_protocol_survival(&pts, 80.0, &config).unwrap();
        // Structural metrics unchanged by the sweep.
        assert_eq!(
            ResilienceReport {
                protocol_survival: Vec::new(),
                ..report.clone()
            },
            ResilienceReport::of(&pts, 80.0)
        );
        assert_eq!(report.protocol_survival.len(), 2);
        for grid in &report.protocol_survival {
            assert_eq!(grid.cells.len(), 2);
            assert!(grid.cells.iter().all(|c| c.converged && c.correct));
            // Loss costs messages relative to the zero-fault baseline.
            let lossy = grid.cells.iter().find(|c| c.loss_permille == 100).unwrap();
            assert!(lossy.overhead_permille >= 1000);
        }
    }
}
