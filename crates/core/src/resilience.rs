//! Deployment resilience: how much robot failure a network tolerates.
//!
//! The paper motivates ANR systems with fault tolerance — "the failure
//! of an individual robot can be recovered by its peers" (Sec. I) — and
//! keeps the swarm connected so no robot is "excluded from the new plan
//! and thus become permanently lost". This module quantifies the margin:
//! articulation robots (single points of failure), biconnectivity, and
//! an explicit failure-injection check.

use anr_geom::Point;
use anr_netgraph::{
    articulation_points, is_biconnected, vertex_connectivity_estimate, UnitDiskGraph,
};

/// Robustness summary of one deployment snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Is the network connected at all?
    pub connected: bool,
    /// Robots whose single failure would split the network.
    pub articulation_robots: Vec<usize>,
    /// Does the network survive any single robot failure?
    pub biconnected: bool,
    /// Lower-bound estimate of the vertex connectivity.
    pub vertex_connectivity: usize,
    /// Minimum robot degree.
    pub min_degree: usize,
}

impl ResilienceReport {
    /// Analyzes a deployment with communication range `range`.
    ///
    /// # Panics
    ///
    /// Panics when `range <= 0`.
    pub fn of(positions: &[Point], range: f64) -> ResilienceReport {
        let g = UnitDiskGraph::new(positions, range);
        ResilienceReport {
            connected: g.is_connected(),
            articulation_robots: articulation_points(&g),
            biconnected: is_biconnected(&g),
            vertex_connectivity: vertex_connectivity_estimate(&g),
            min_degree: (0..g.len()).map(|v| g.degree(v)).min().unwrap_or(0),
        }
    }
}

/// Removes the given robots from a deployment and reports whether the
/// survivors remain connected — direct failure injection against
/// Definition 2's motivation.
///
/// Robots listed in `failed` are excluded; duplicate or out-of-range
/// indices are ignored. A network with fewer than two survivors counts
/// as connected.
///
/// # Panics
///
/// Panics when `range <= 0`.
pub fn survives_failures(positions: &[Point], range: f64, failed: &[usize]) -> bool {
    let survivors: Vec<Point> = positions
        .iter()
        .enumerate()
        .filter(|(i, _)| !failed.contains(i))
        .map(|(_, &p)| p)
        .collect();
    if survivors.len() < 2 {
        return true;
    }
    UnitDiskGraph::new(&survivors, range).is_connected()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn line(n: usize) -> Vec<Point> {
        (0..n).map(|i| p(i as f64 * 60.0, 0.0)).collect()
    }

    #[test]
    fn line_deployment_is_fragile() {
        let report = ResilienceReport::of(&line(5), 80.0);
        assert!(report.connected);
        assert!(!report.biconnected);
        assert_eq!(report.articulation_robots, vec![1, 2, 3]);
        assert_eq!(report.vertex_connectivity, 1);
        assert_eq!(report.min_degree, 1);
    }

    #[test]
    fn lattice_deployment_is_robust() {
        let mut pts = Vec::new();
        for r in 0..4 {
            for c in 0..5 {
                let x = c as f64 * 55.0 + if r % 2 == 1 { 27.5 } else { 0.0 };
                let y = r as f64 * 48.0;
                pts.push(p(x, y));
            }
        }
        let report = ResilienceReport::of(&pts, 80.0);
        assert!(report.biconnected);
        assert!(report.articulation_robots.is_empty());
        assert!(report.vertex_connectivity >= 2);
    }

    #[test]
    fn failure_injection_on_line() {
        let pts = line(5);
        // Killing an endpoint keeps the rest connected.
        assert!(survives_failures(&pts, 80.0, &[0]));
        assert!(survives_failures(&pts, 80.0, &[4]));
        // Killing an interior robot splits the chain.
        assert!(!survives_failures(&pts, 80.0, &[2]));
        // Killing all but one survivor is trivially fine.
        assert!(survives_failures(&pts, 80.0, &[0, 1, 2, 3]));
    }

    #[test]
    fn failure_injection_matches_articulation_points() {
        let mut pts = Vec::new();
        for r in 0..3 {
            for c in 0..4 {
                let x = c as f64 * 55.0 + if r % 2 == 1 { 27.5 } else { 0.0 };
                let y = r as f64 * 48.0;
                pts.push(p(x, y));
            }
        }
        let report = ResilienceReport::of(&pts, 80.0);
        for v in 0..pts.len() {
            let survives = survives_failures(&pts, 80.0, &[v]);
            let is_cut = report.articulation_robots.contains(&v);
            assert_eq!(survives, !is_cut, "robot {v}");
        }
    }

    #[test]
    fn bad_indices_ignored() {
        let pts = line(3);
        assert!(survives_failures(&pts, 80.0, &[99, 99]));
    }
}
