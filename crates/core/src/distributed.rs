//! Distributed evaluation of the rotation-search objectives
//! (paper Sec. III-B and III-D-2).
//!
//! During the rotation search "the mobile robot computes its mapped
//! position in M2 and exchanges the position with its one-range
//! neighbors. After calculating its own stable link ratio, the mobile
//! robot then floods the information to other mobile robots." This
//! module runs exactly that protocol on the message-passing simulator:
//! one target-exchange round, a local count, then a network-wide flood —
//! so every robot ends up knowing the *global* stable link ratio (or
//! total moving distance for method (b)) of the candidate rotation.
//!
//! The pipeline itself uses the centralized evaluation (identical by
//! construction, verified in tests); this protocol documents — with
//! round and message accounting — what the swarm would actually run.

use anr_distsim::{
    Envelope, FaultPlan, FaultStats, FaultySimulator, Node, Outbox, SimError, Simulator,
};
use anr_geom::Point;
use anr_netgraph::UnitDiskGraph;

/// Message of the objective-evaluation protocol.
#[derive(Debug, Clone, PartialEq)]
enum ObjectiveMsg {
    /// Round 0: my mapped target position.
    Target(Point),
    /// Flood: (robot id, locally preserved incident links, degree,
    /// my moving distance).
    Local {
        id: usize,
        preserved: usize,
        degree: usize,
        distance: f64,
    },
}

#[derive(Debug, Clone)]
struct ObjectiveNode {
    id: usize,
    n: usize,
    position: Point,
    target: Point,
    range: f64,
    /// Neighbor targets learned in round 0: (id, target).
    neighbor_targets: Vec<(usize, Point)>,
    counted: bool,
    /// Which robots' local reports this robot has seen.
    seen: Vec<bool>,
    total_preserved: usize,
    total_degree: usize,
    total_distance: f64,
}

impl Node for ObjectiveNode {
    type Msg = ObjectiveMsg;

    fn on_start(&mut self, out: &mut Outbox<ObjectiveMsg>) {
        out.broadcast(ObjectiveMsg::Target(self.target));
    }

    fn on_round(
        &mut self,
        _round: usize,
        inbox: &[Envelope<ObjectiveMsg>],
        out: &mut Outbox<ObjectiveMsg>,
    ) {
        for env in inbox {
            match env.msg {
                ObjectiveMsg::Target(t) => self.neighbor_targets.push((env.from, t)),
                ObjectiveMsg::Local {
                    id,
                    preserved,
                    degree,
                    distance,
                } => {
                    if !self.seen[id] {
                        self.seen[id] = true;
                        self.total_preserved += preserved;
                        self.total_degree += degree;
                        self.total_distance += distance;
                        out.broadcast(ObjectiveMsg::Local {
                            id,
                            preserved,
                            degree,
                            distance,
                        });
                    }
                }
            }
        }
        if !self.counted && !self.neighbor_targets.is_empty() {
            self.counted = true;
            // For synchronized straight-line motion, a link survives iff
            // it holds at both endpoints; the start holds by definition.
            let preserved = self
                .neighbor_targets
                .iter()
                .filter(|&&(_, t)| self.target.distance(t) <= self.range)
                .count();
            let degree = self.neighbor_targets.len();
            let distance = self.position.distance(self.target);
            self.seen[self.id] = true;
            self.total_preserved += preserved;
            self.total_degree += degree;
            self.total_distance += distance;
            out.broadcast(ObjectiveMsg::Local {
                id: self.id,
                preserved,
                degree,
                distance,
            });
        }
        let _ = self.n;
    }
}

/// The globally agreed objective values after the protocol runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedObjective {
    /// The total stable link ratio `L` every robot computed.
    pub stable_link_ratio: f64,
    /// The total moving distance `D` every robot computed (straight-line
    /// leg only, as used by method (b)'s search).
    pub total_distance: f64,
    /// Synchronous rounds used.
    pub rounds: usize,
    /// Messages delivered.
    pub messages: usize,
}

/// Runs the distributed objective-evaluation protocol for one candidate
/// rotation: `targets[i]` is robot `i`'s mapped destination.
///
/// Returns the values **all** robots agree on; the function asserts the
/// agreement (any two robots computing different totals is a protocol
/// bug, not an input error).
///
/// # Errors
///
/// Propagates simulator errors (e.g. the round budget when the network
/// is disconnected).
///
/// # Panics
///
/// Panics when `positions.len() != targets.len()` or `range <= 0`.
pub fn distributed_objective(
    positions: &[Point],
    targets: &[Point],
    range: f64,
) -> Result<DistributedObjective, SimError> {
    assert_eq!(positions.len(), targets.len(), "one target per robot");
    assert!(range > 0.0, "communication range must be positive");
    let n = positions.len();
    let graph = UnitDiskGraph::new(positions, range);

    let nodes: Vec<ObjectiveNode> = (0..n)
        .map(|id| ObjectiveNode {
            id,
            n,
            position: positions[id],
            target: targets[id],
            range,
            neighbor_targets: Vec::new(),
            counted: false,
            seen: vec![false; n],
            total_preserved: 0,
            total_degree: 0,
            total_distance: 0.0,
        })
        .collect();
    let mut sim = Simulator::new(nodes, graph.adjacency().to_vec())?;
    let stats = sim.run_until_quiet(4 * n + 16)?;

    let nodes = sim.into_nodes();
    let first = &nodes[0];
    for node in &nodes[1..] {
        assert_eq!(
            node.total_preserved, first.total_preserved,
            "protocol disagreement on preserved links"
        );
        assert_eq!(node.total_degree, first.total_degree);
        assert!((node.total_distance - first.total_distance).abs() < 1e-9);
    }
    let ratio = if first.total_degree == 0 {
        1.0
    } else {
        first.total_preserved as f64 / first.total_degree as f64
    };
    Ok(DistributedObjective {
        stable_link_ratio: ratio,
        total_distance: first.total_distance,
        rounds: stats.rounds,
        messages: stats.messages,
    })
}

/// Outcome of the objective protocol on a faulty network.
///
/// The paper's protocol assumes reliable synchronous delivery; this
/// report measures what happens without it. `agreement` is the paper's
/// implicit correctness condition — every live robot computed the same
/// global totals — and is *not* asserted: under loss the flood can
/// quiesce with robots missing reports, which is precisely the failure
/// mode the robust wrappers in [`anr_netgraph::robust`] exist to fix.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyObjective {
    /// Did every live robot compute identical totals?
    pub agreement: bool,
    /// The totals of the first live robot (the agreed values when
    /// `agreement` holds).
    pub stable_link_ratio: f64,
    /// First live robot's total moving distance.
    pub total_distance: f64,
    /// Synchronous rounds used.
    pub rounds: usize,
    /// Fault-harness accounting.
    pub stats: FaultStats,
}

/// Runs the (idealized, ack-free) objective-evaluation protocol of
/// [`distributed_objective`] under a [`FaultPlan`], reporting whether
/// the swarm still reached agreement and at what cost.
///
/// # Errors
///
/// Propagates simulator errors, including [`SimError::NotQuiescent`]
/// when messages are still in flight after `4 n + 16` rounds.
///
/// # Panics
///
/// Panics when `positions.len() != targets.len()`, `range <= 0`, or no
/// robot is live at the end of the run.
pub fn distributed_objective_under_faults(
    positions: &[Point],
    targets: &[Point],
    range: f64,
    plan: FaultPlan,
) -> Result<FaultyObjective, SimError> {
    assert_eq!(positions.len(), targets.len(), "one target per robot");
    assert!(range > 0.0, "communication range must be positive");
    let n = positions.len();
    let graph = UnitDiskGraph::new(positions, range);

    let nodes: Vec<ObjectiveNode> = (0..n)
        .map(|id| ObjectiveNode {
            id,
            n,
            position: positions[id],
            target: targets[id],
            range,
            neighbor_targets: Vec::new(),
            counted: false,
            seen: vec![false; n],
            total_preserved: 0,
            total_degree: 0,
            total_distance: 0.0,
        })
        .collect();
    let mut sim = FaultySimulator::new(nodes, graph.adjacency().to_vec(), plan)?;
    let stats = sim.run_until_quiet(4 * n + 16)?;

    let live: Vec<usize> = (0..n).filter(|&i| !sim.is_crashed(i)).collect();
    let nodes = sim.nodes();
    let first = &nodes[*live.first().expect("at least one live robot")];
    let agreement = live.iter().all(|&i| {
        nodes[i].total_preserved == first.total_preserved
            && nodes[i].total_degree == first.total_degree
            && (nodes[i].total_distance - first.total_distance).abs() < 1e-9
    });
    let ratio = if first.total_degree == 0 {
        1.0
    } else {
        first.total_preserved as f64 / first.total_degree as f64
    };
    Ok(FaultyObjective {
        agreement,
        stable_link_ratio: ratio,
        total_distance: first.total_distance,
        rounds: stats.rounds,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn lattice(rows: usize, cols: usize, s: f64) -> Vec<Point> {
        let mut pts = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let x = c as f64 * s + if r % 2 == 1 { s / 2.0 } else { 0.0 };
                pts.push(p(x, r as f64 * s * 3f64.sqrt() / 2.0));
            }
        }
        pts
    }

    /// Centralized reference: Definition 1's L from endpoints.
    fn central_ratio(positions: &[Point], targets: &[Point], range: f64) -> f64 {
        let g = UnitDiskGraph::new(positions, range);
        let links = g.links();
        if links.is_empty() {
            return 1.0;
        }
        links
            .iter()
            .filter(|&&(i, j)| targets[i].distance(targets[j]) <= range)
            .count() as f64
            / links.len() as f64
    }

    #[test]
    fn matches_centralized_on_rigid_translation() {
        let positions = lattice(4, 5, 60.0);
        let targets: Vec<Point> = positions.iter().map(|q| p(q.x + 700.0, q.y)).collect();
        let obj = distributed_objective(&positions, &targets, 80.0).unwrap();
        assert_eq!(obj.stable_link_ratio, 1.0);
        assert_eq!(
            obj.stable_link_ratio,
            central_ratio(&positions, &targets, 80.0)
        );
        let expect_d: f64 = positions
            .iter()
            .zip(&targets)
            .map(|(a, b)| a.distance(*b))
            .sum();
        assert!((obj.total_distance - expect_d).abs() < 1e-9);
    }

    #[test]
    fn matches_centralized_on_scrambled_targets() {
        let positions = lattice(4, 5, 60.0);
        // Scramble the assignment with a deterministic non-isometric
        // permutation (stride map): massive link breakage.
        let n = positions.len();
        let targets: Vec<Point> = (0..n)
            .map(|i| {
                let q = positions[(i * 7) % n];
                p(q.x + 700.0, q.y + 100.0)
            })
            .collect();
        let obj = distributed_objective(&positions, &targets, 80.0).unwrap();
        let central = central_ratio(&positions, &targets, 80.0);
        assert!(
            (obj.stable_link_ratio - central).abs() < 1e-12,
            "distributed {} vs centralized {central}",
            obj.stable_link_ratio
        );
        assert!(obj.stable_link_ratio < 1.0);
    }

    #[test]
    fn message_accounting_reported() {
        let positions = lattice(3, 3, 60.0);
        let targets: Vec<Point> = positions.iter().map(|q| p(q.x + 500.0, q.y)).collect();
        let obj = distributed_objective(&positions, &targets, 80.0).unwrap();
        // At least one target broadcast and one flood per robot.
        assert!(obj.messages >= 2 * positions.len());
        assert!(obj.rounds >= 2);
    }

    #[test]
    fn faulty_objective_matches_reliable_under_zero_fault_plan() {
        let positions = lattice(3, 4, 60.0);
        let targets: Vec<Point> = positions.iter().map(|q| p(q.x + 700.0, q.y)).collect();
        let ideal = distributed_objective(&positions, &targets, 80.0).unwrap();
        let faulty =
            distributed_objective_under_faults(&positions, &targets, 80.0, FaultPlan::reliable(99))
                .unwrap();
        assert!(faulty.agreement);
        assert_eq!(faulty.stable_link_ratio, ideal.stable_link_ratio);
        assert!((faulty.total_distance - ideal.total_distance).abs() < 1e-9);
        assert_eq!(faulty.rounds, ideal.rounds);
        assert_eq!(faulty.stats.sent, ideal.messages);
        assert_eq!(faulty.stats.delivered, ideal.messages);
    }

    #[test]
    fn heavy_loss_breaks_the_idealized_protocol() {
        // The ack-free protocol has no defense against loss: some seed
        // in this range must leave the swarm in disagreement.
        let positions = lattice(3, 4, 60.0);
        let targets: Vec<Point> = positions.iter().map(|q| p(q.x + 700.0, q.y)).collect();
        let broke = (0..20).any(|seed| {
            let plan = FaultPlan::reliable(seed).with_loss(0.5);
            match distributed_objective_under_faults(&positions, &targets, 80.0, plan) {
                Ok(out) => !out.agreement,
                // Never quiescing also counts as broken.
                Err(SimError::NotQuiescent { .. }) => true,
                Err(e) => panic!("unexpected error: {e}"),
            }
        });
        assert!(broke, "50% loss should break agreement for some seed");
    }

    #[test]
    fn crashed_robots_excluded_from_agreement() {
        let positions = lattice(3, 4, 60.0);
        let targets: Vec<Point> = positions.iter().map(|q| p(q.x + 700.0, q.y)).collect();
        // Crash a corner robot before the protocol starts: the rest
        // still agree (on totals that exclude the crashed robot).
        let plan = FaultPlan::reliable(0).with_crash(0, 11);
        let out = distributed_objective_under_faults(&positions, &targets, 80.0, plan).unwrap();
        assert!(out.agreement, "live robots agree among themselves");
        assert!(out.stats.dropped_crash > 0);
        let ideal = distributed_objective(&positions, &targets, 80.0).unwrap();
        assert!(
            out.total_distance < ideal.total_distance,
            "crashed robot's leg is missing from the total"
        );
    }

    #[test]
    fn agrees_for_every_rotation_candidate() {
        // Evaluate several candidate rotations of the target pattern and
        // check distributed = centralized for each.
        let positions = lattice(3, 4, 60.0);
        let centroid = Point::centroid_of(positions.iter().copied()).unwrap();
        for k in 0..6 {
            let theta = std::f64::consts::TAU * k as f64 / 6.0;
            let rot = anr_geom::Rotation::about(centroid, theta);
            let targets: Vec<Point> = positions
                .iter()
                .map(|&q| {
                    let r = rot.apply(q);
                    p(r.x + 900.0, r.y)
                })
                .collect();
            let obj = distributed_objective(&positions, &targets, 80.0).unwrap();
            let central = central_ratio(&positions, &targets, 80.0);
            assert!(
                (obj.stable_link_ratio - central).abs() < 1e-12,
                "θ = {theta}"
            );
        }
    }
}
